(* The reproduction harness.

   Running this executable regenerates every quantitative claim of the
   paper (Table 1 lower and upper bounds, the universal bound, the EDF
   observations and both local strategies; see DESIGN.md §3 for the
   index), preceded by Bechamel micro-benchmarks of the machinery —
   one Test.make per experiment family.

   Flags:
     --quick        small parameters (the test suite's sizes)
     --no-micro     skip the bench families (B.micro .. B.serve)
     --only ID      run a single experiment or bench family (by id
                    prefix, e.g. T1.fix or B.scale)
     --csv DIR      also write each experiment table as DIR/<id>.csv
     --json FILE    dump every bench measurement as machine-readable
                    family/metric/value records (the perf trajectory
                    baseline committed as BENCH_scale.json)
     --jobs N       worker domains for the experiment job runner
     --cache-dir D  cache job results under D (with --resume: read too)
     --resume       answer jobs from the cache when possible
     --retries K    extra attempts per failing job
     --metrics FMT  format of the closing metrics dump: text (default),
                    csv or json
     --metrics-out FILE  write the metrics dump to FILE instead of stdout
     --no-metrics   run without the ambient metrics registry (the
                    baseline for measuring instrumentation overhead) *)

open Bechamel
open Toolkit

let flag name = Report.Flags.flag Sys.argv name

(* a value flag with a missing value is a usage error, not a silent
   None (the old in-house parser dropped a trailing "--only") *)
let string_flag name =
  match Report.Flags.value_flag Sys.argv name with
  | Ok v -> v
  | Error msg ->
    Printf.eprintf
      "bench: %s\nusage: main.exe [--quick] [--no-micro] [--only ID] [--csv \
       DIR] [--json FILE] [--jobs N] [--cache-dir DIR] [--resume] \
       [--retries K] [--metrics FMT] [--metrics-out FILE] [--no-metrics]\n"
      msg;
    exit 2

let int_flag name =
  match string_flag name with
  | None -> None
  | Some s ->
    (match int_of_string_opt s with
     | Some v -> Some v
     | None ->
       Printf.eprintf "bench: %s expects an integer, got %S\n" name s;
       exit 2)

let only_filter () = string_flag "--only"

(* ------------------------------------------------------------------ *)
(* bench checks and the --json record sink *)

let bench_check_failures = ref 0

let check name ok =
  Printf.printf "check: %s: %b\n%!" name ok;
  if not ok then incr bench_check_failures

(* Every bench family reports its measurements here; --json FILE dumps
   them as one array of {family, params, metric, value} objects. *)
let json_records :
  (string * (string * string) list * string * float) list ref = ref []

let record ~family ~params ~metric value =
  json_records := (family, params, metric, value) :: !json_records

let write_json path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (family, params, metric, value) ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "  {\"family\": %S, \"params\": {%s}, \"metric\": %S, \
             \"value\": %s}"
            family
            (String.concat ", "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%S: %S" k v)
                  params))
            metric
            (Printf.sprintf "%.17g" value)))
    (List.rev !json_records);
  Buffer.add_string buf "\n]\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ------------------------------------------------------------------ *)
(* micro-benchmarks *)

let thm21_instance =
  lazy (Adversary.Thm21.make ~d:4 ~phases:3).Adversary.Scenario.instance

let thm23_instance =
  lazy (Adversary.Thm23.make ~d:4 ~phases:3).Adversary.Scenario.instance

let random_instance =
  lazy
    (let rng = Prelude.Rng.create ~seed:7 in
     Adversary.Random_workload.make ~rng ~n:8 ~d:4 ~rounds:60 ~load:1.1 ())

let micro_tests () =
  let run_strategy inst factory () =
    ignore (Sched.Engine.run (Lazy.force inst) factory : Sched.Outcome.t)
  in
  [
    (* Table 1 rows 1-2: the frozen-assignment solver *)
    Test.make ~name:"T1.fix/engine-run-thm2.1"
      (Staged.stage (fun () ->
           run_strategy thm21_instance (Strategies.Global.fix ()) ()));
    (* Table 1 rows 3-5: the tiered full-reschedule solver *)
    Test.make ~name:"T1.balance/engine-run-thm2.3"
      (Staged.stage (fun () ->
           run_strategy thm23_instance (Strategies.Global.balance ()) ()));
    (* Table 1 row 6: one adaptive phase *)
    Test.make ~name:"T1.any/adaptive-thm2.6"
      (Staged.stage (fun () ->
           let adv = Adversary.Thm26.create ~d:3 ~phases:1 in
           ignore
             (Sched.Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d:3
                ~last_arrival_round:3
                ~adversary:(Adversary.Thm26.adversary adv)
                (Strategies.Global.eager ())
               : Sched.Outcome.t)));
    (* offline optimum engines used by every experiment *)
    Test.make ~name:"OPT/grouped-maxflow"
      (Staged.stage (fun () ->
           ignore (Offline.Opt.grouped (Lazy.force thm21_instance) : int)));
    Test.make ~name:"OPT/hopcroft-karp"
      (Staged.stage (fun () ->
           ignore (Offline.Opt.expanded (Lazy.force random_instance) : int)));
    (* local strategies over the message-passing simulator *)
    Test.make ~name:"E.local/local-eager-run"
      (Staged.stage (fun () ->
           run_strategy random_instance (Localstrat.Local.eager ()) ()));
    (* the EDF baseline of the average-case figure *)
    Test.make ~name:"F.avgcase/edf-run"
      (Staged.stage (fun () ->
           run_strategy random_instance (Strategies.Edf.independent ()) ()));
    (* the greedy baselines of F.greedy *)
    Test.make ~name:"F.greedy/twochoice-run"
      (Staged.stage (fun () ->
           run_strategy random_instance
             (Strategies.Twochoice.least_loaded ())
             ()));
    (* trace generation for F.placement *)
    Test.make ~name:"F.placement/session-trace"
      (Staged.stage (fun () ->
           let rng = Prelude.Rng.create ~seed:11 in
           let placement =
             Dataserver.Placement.random ~rng ~disks:8 ~items:100 ~copies:2
           in
           ignore
             (Dataserver.Trace.sessions ~rng ~placement ~rounds:60
                ~arrivals_per_round:1.5 ~mean_length:5 ~d:4 ()
               : Sched.Instance.t * Dataserver.Trace.session_stats)));
    (* the Hall capacity bound used as an analytic cross-check *)
    Test.make ~name:"OPT/hall-bound"
      (Staged.stage (fun () ->
           ignore
             (Analysis.Hall.opt_upper_bound (Lazy.force random_instance)
               : int)));
    (* the streaming OPT-prefix tracker vs its from-scratch baseline *)
    Test.make ~name:"OPT.stream/prefix-curve"
      (Staged.stage (fun () ->
           ignore
             (Offline.Opt_stream.prefix_curve (Lazy.force random_instance)
               : int array)));
    Test.make ~name:"OPT.stream/naive-prefix-curve"
      (Staged.stage (fun () ->
           ignore
             (Offline.Opt_stream.naive_prefix_curve
                (Lazy.force random_instance)
               : int array)));
  ]

(* A direct scaling table: microseconds per engine round as the system
   grows -- the systems-facing cost model of the matching strategies.
   Every shape times the warm-start kernel against the from-scratch
   rebuild oracle and compares their outcomes: a disagreement is a
   correctness bug, not a benchmark artifact, so both checks feed the
   exit code. *)
let outcomes_agree (a : Sched.Outcome.t) (b : Sched.Outcome.t) =
  a.Sched.Outcome.served_at = b.Sched.Outcome.served_at
  && a.Sched.Outcome.wasted = b.Sched.Outcome.wasted
  && a.Sched.Outcome.per_round_served = b.Sched.Outcome.per_round_served

let run_scale ~quick =
  (* Three tiers.  `Oracle shapes time every solver against the
     from-scratch rebuild oracle (seconds per round by n=128, so rounds
     shrink with size).  Past that the oracle is unaffordable: `Fix
     shapes time the fix kernel plus the linear strategies, and also
     run the kernel's ring-select variant as a differential — the
     bucketed target selection must produce the identical schedule and
     never be slower.  At the top, `Local keeps only the bucketed fix
     kernel (the ring variant's O(nd) scan per augmenting sweep is what
     made fix quadratic there) next to the linear strategies.  Skipped
     cells print "-". *)
  let shapes =
    if quick then
      [ (4, 2, 40, `Oracle); (8, 4, 40, `Oracle); (1024, 8, 3, `Fix) ]
    else
      [ (4, 2, 100, `Oracle); (8, 4, 100, `Oracle); (16, 4, 100, `Oracle);
        (16, 8, 100, `Oracle); (32, 8, 100, `Oracle); (64, 8, 60, `Oracle);
        (128, 8, 30, `Oracle); (256, 8, 20, `Fix); (1024, 8, 6, `Fix);
        (4096, 8, 2, `Fix); (10000, 8, 2, `Local) ]
  in
  let table =
    Prelude.Texttable.create
      ~title:
        "B.scale  --  us/round vs system size: warm-start kernel vs \
         rebuild oracle (random load 1.1, mean over the run)"
      ~header:
        [ "n"; "d"; "requests"; "fix kern"; "fix ring"; "fix reb"; "x";
          "bal kern"; "bal reb"; "x"; "local"; "2choice"; "agree" ]
      ()
  in
  let all_agree = ref true and never_slower = ref true in
  let bucketed_agree = ref true and bucketed_never_slower = ref true in
  List.iter
    (fun (n, d, rounds, tier) ->
       let rng = Prelude.Rng.create ~seed:21 in
       let inst =
         Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load:1.1 ()
       in
       let horizon = float_of_int inst.Sched.Instance.horizon in
       (* best-of-reps on the small shapes de-noises the never-slower
          assertion; the big shapes are long enough to be stable *)
       let reps = if n <= 16 then 3 else 1 in
       let time factory =
         let best = ref infinity and out = ref None in
         for _ = 1 to reps do
           let t0 = Unix.gettimeofday () in
           let o = Sched.Engine.run inst factory in
           let us = (Unix.gettimeofday () -. t0) *. 1e6 /. horizon in
           if us < !best then best := us;
           out := Some o
         done;
         (!best, Option.get !out)
       in
       let local, _ = time (Localstrat.Local.eager ()) in
       let twochoice, _ = time (Strategies.Twochoice.least_loaded ()) in
       let fix_k = Some (time (Strategies.Global.fix ())) in
       (* ring-select differential at the sizes where the scan term
          shows (n >= 256): identical schedules, bucketed never slower *)
       let fix_ring =
         match tier with
         | `Fix ->
           let ring_us, out_ring =
             time
               (Strategies.Global.fix
                  ~solver:Strategies.Global.Kernel_ring ())
           in
           let bucket_us, out_bucket = Option.get fix_k in
           if not (outcomes_agree out_bucket out_ring) then
             bucketed_agree := false;
           if bucket_us > ring_us *. 1.1 then bucketed_never_slower := false;
           Some ring_us
         | `Oracle | `Local -> None
       in
       let oracle =
         match tier with
         | `Oracle ->
           let fix_r, out_fix_r =
             time (Strategies.Global.fix ~solver:Strategies.Global.Rebuild ())
           in
           let bal_k, out_bal_k = time (Strategies.Global.balance ()) in
           let bal_r, out_bal_r =
             time
               (Strategies.Global.balance ~solver:Strategies.Global.Rebuild ())
           in
           let _, out_fix_k = Option.get fix_k in
           let agree =
             outcomes_agree out_fix_k out_fix_r
             && outcomes_agree out_bal_k out_bal_r
           in
           if not agree then all_agree := false;
           (* 10% tolerance absorbs scheduler jitter on the tiny shapes *)
           if fst (Option.get fix_k) > fix_r *. 1.1 || bal_k > bal_r *. 1.1
           then never_slower := false;
           Some (fix_r, bal_k, bal_r, agree)
         | `Fix | `Local -> None
       in
       let params =
         [ ("n", string_of_int n); ("d", string_of_int d);
           ("rounds", string_of_int rounds) ]
       in
       let rec_metric metric v = record ~family:"B.scale" ~params ~metric v in
       rec_metric "local_eager_us_per_round" local;
       rec_metric "twochoice_us_per_round" twochoice;
       Option.iter
         (fun (us, _) ->
            record ~family:"B.scale"
              ~params:(params @ [ ("spfa", "bucketed") ])
              ~metric:"fix_kernel_us_per_round" us)
         fix_k;
       Option.iter
         (fun us ->
            record ~family:"B.scale"
              ~params:(params @ [ ("spfa", "ring") ])
              ~metric:"fix_kernel_us_per_round" us)
         fix_ring;
       Option.iter
         (fun (fix_r, bal_k, bal_r, _) ->
            rec_metric "fix_rebuild_us_per_round" fix_r;
            rec_metric "balance_kernel_us_per_round" bal_k;
            rec_metric "balance_rebuild_us_per_round" bal_r)
         oracle;
       let dash = "-" in
       let fix_cell = function
         | Some (us, _) -> Printf.sprintf "%.1f" us
         | None -> dash
       in
       let cells =
         match oracle with
         | Some (fix_r, bal_k, bal_r, agree) ->
           [ Printf.sprintf "%.1f" fix_r;
             Printf.sprintf "%.1fx" (fix_r /. fst (Option.get fix_k));
             Printf.sprintf "%.1f" bal_k;
             Printf.sprintf "%.1f" bal_r;
             Printf.sprintf "%.1fx" (bal_r /. bal_k);
             Printf.sprintf "%.1f" local;
             Printf.sprintf "%.1f" twochoice;
             string_of_bool agree ]
         | None ->
           [ dash; dash; dash; dash; dash;
             Printf.sprintf "%.1f" local;
             Printf.sprintf "%.1f" twochoice;
             dash ]
       in
       let ring_cell =
         match fix_ring with
         | Some us -> Printf.sprintf "%.1f" us
         | None -> dash
       in
       Prelude.Texttable.add_row table
         (string_of_int n :: string_of_int d
          :: string_of_int (Sched.Instance.n_requests inst)
          :: fix_cell fix_k :: ring_cell :: cells))
    shapes;
  Prelude.Texttable.print table;
  check "kernel outcomes match rebuild on every shape" !all_agree;
  check "kernel never slower than rebuild (10% tolerance)" !never_slower;
  check "bucketed select matches ring select on every fix-tier shape"
    !bucketed_agree;
  check "bucketed select never slower than ring (10% tolerance)"
    !bucketed_never_slower;
  print_newline ()

(* The served cost model: the same instance replayed through the full
   server stack ([reqsched load] open-loop against a manual-tick
   unix-socket server), kernel vs rebuild.  Manual ticks make the
   decision stream a deterministic function of the instance, so the two
   solvers must also produce byte-identical decision logs end to end --
   a differential check through sharding, the wire protocol and the
   live engine, not just Engine.run. *)
let run_serve ~quick =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reqsched-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let serve_once ?(domains = 0) ~inst ~n ~d ~shards ~strategy ~batch () =
    if Sys.file_exists sock then Sys.remove sock;
    let cfg =
      {
        Serve.Server.addr = Serve.Server.Unix_sock sock;
        n_resources = n;
        d;
        shards;
        domains;
        strategy;
        tick = `Manual;
        queue_capacity = 8192;
        max_batch = 512;
        outbox_capacity = 8192;
        read_timeout = 10.0;
        name = "bench";
      }
    in
    match Serve.Server.start cfg with
    | Error msg -> Error msg
    | Ok srv ->
      let rep =
        Serve.Client.open_loop ~addr:cfg.Serve.Server.addr ~inst
          ~tick:`Manual ~batch ()
      in
      Serve.Server.drain srv;
      ignore (Serve.Server.wait srv : Obs.Metrics.snapshot);
      rep
  in
  (* Part 1: the solver differential.  Manual ticks make the decision
     stream a deterministic function of the instance, so kernel and
     rebuild must produce byte-identical decision logs end to end -- a
     differential check through sharding, the wire protocol and the
     live engine, not just Engine.run. *)
  let n = 16 and d = 4 in
  let rounds = if quick then 60 else 240 in
  let rng = Prelude.Rng.create ~seed:55 in
  let inst = Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load:1.1 () in
  let run_solver solver =
    serve_once ~inst ~n ~d ~shards:2
      ~strategy:(fun ~shard:_ ~metrics:_ -> Strategies.Global.balance ~solver ())
      ~batch:1 ()
  in
  (match
     ( run_solver Strategies.Global.Kernel,
       run_solver Strategies.Global.Rebuild )
   with
   | Error msg, _ | _, Error msg ->
     Printf.printf "B.serve: solver differential skipped (%s)\n\n%!" msg
   | Ok kern, Ok reb ->
     let table =
       Prelude.Texttable.create
         ~title:
           (Printf.sprintf
              "B.serve  --  open-loop replay through the server (n=%d d=%d \
               %d rounds, 2 shards, A_balance, manual tick)"
              n d rounds)
         ~header:
           [ "solver"; "submitted"; "scheduled"; "duration s"; "rounds/s" ]
         ()
     in
     let row name (r : Serve.Client.report) =
       let rps = float_of_int rounds /. r.Serve.Client.duration in
       record ~family:"B.serve"
         ~params:
           [ ("n", string_of_int n); ("d", string_of_int d);
             ("rounds", string_of_int rounds); ("solver", name) ]
         ~metric:"rounds_per_s" rps;
       Prelude.Texttable.add_row table
         [
           name;
           string_of_int r.Serve.Client.submitted;
           string_of_int r.Serve.Client.scheduled;
           Printf.sprintf "%.3f" r.Serve.Client.duration;
           Printf.sprintf "%.0f" rps;
         ]
     in
     row "kernel" kern;
     row "rebuild" reb;
     Prelude.Texttable.print table;
     check "served decisions: kernel == rebuild byte-identical"
       (Serve.Client.render_decisions kern
        = Serve.Client.render_decisions reb);
     print_newline ());
  (* Part 2: the throughput push.  A high-fanout workload (hundreds of
     requests per round) replayed per-line (batch=1) and batched
     (batch=64) against a 4-shard server running the O(1)-per-request
     two-choice strategy, so the wire/admission path — not the engine —
     dominates.  Same instance, manual lock-step: the decision logs
     must stay byte-identical, batching may only change the speed. *)
  let n2 = 64 and d2 = 4 in
  let rounds2 = if quick then 30 else 120 in
  let rng2 = Prelude.Rng.create ~seed:56 in
  let inst2 =
    Adversary.Random_workload.make ~rng:rng2 ~n:n2 ~d:d2 ~rounds:rounds2
      ~load:6.0 ()
  in
  let strategy2 ~shard:_ ~metrics:_ = Strategies.Twochoice.least_loaded () in
  (* best-of-3 fresh-server runs per mode, after a compaction: when the
     whole bench runs, the Bechamel micro families leave an inflated
     major heap behind, and one unlucky GC pause or scheduler stall
     inside a submit window is enough to blur the >=2x submission-path
     assertion *)
  let run_load batch =
    Gc.compact ();
    let best = ref None in
    for _ = 1 to 3 do
      match
        serve_once ~inst:inst2 ~n:n2 ~d:d2 ~shards:4 ~strategy:strategy2
          ~batch ()
      with
      | Error _ -> ()
      | Ok r ->
        (match !best with
         | Some b when b.Serve.Client.submit_s <= r.Serve.Client.submit_s ->
           ()
         | _ -> best := Some r)
    done;
    match !best with
    | Some r -> Ok r
    | None -> Error "all runs failed"
  in
  (match run_load 1, run_load 64 with
   | Error msg, _ | _, Error msg ->
     Printf.printf "B.serve: batching comparison skipped (%s)\n\n%!" msg
   | Ok perline, Ok batched ->
     let table =
       Prelude.Texttable.create
         ~title:
           (Printf.sprintf
              "B.serve  --  per-line vs batched submission (n=%d d=%d %d \
               rounds, load 6.0, 4 shards, greedy_2choice, manual tick)"
              n2 d2 rounds2)
         ~header:
           [ "mode"; "submitted"; "duration s"; "req/s"; "submit req/s";
             "p50 ms"; "p99 ms" ]
         ()
     in
     let row name (r : Serve.Client.report) =
       let rqs =
         if r.Serve.Client.duration > 0.0 then
           float_of_int r.Serve.Client.submitted /. r.Serve.Client.duration
         else 0.0
       in
       (* the submission-path rate isolates what batching accelerates:
          seconds spent rendering and writing frames, apart from the
          lock-step round-trips that dominate [duration] *)
       let srqs =
         if r.Serve.Client.submit_s > 0.0 then
           float_of_int r.Serve.Client.submitted /. r.Serve.Client.submit_s
         else 0.0
       in
       let q p =
         if Array.length r.Serve.Client.rtt_samples = 0 then nan
         else 1e3 *. Prelude.Stats.quantile r.Serve.Client.rtt_samples p
       in
       let params =
         [ ("n", string_of_int n2); ("d", string_of_int d2);
           ("rounds", string_of_int rounds2); ("mode", name) ]
       in
       List.iter
         (fun (metric, v) -> record ~family:"B.serve" ~params ~metric v)
         [ ("throughput_req_per_s", rqs);
           ("submit_throughput_req_per_s", srqs);
           ("latency_p50_ms", q 0.5); ("latency_p99_ms", q 0.99) ];
       Prelude.Texttable.add_row table
         [
           name;
           string_of_int r.Serve.Client.submitted;
           Printf.sprintf "%.3f" r.Serve.Client.duration;
           Printf.sprintf "%.0f" rqs;
           Printf.sprintf "%.0f" srqs;
           Printf.sprintf "%.2f" (q 0.5);
           Printf.sprintf "%.2f" (q 0.99);
         ];
       (rqs, srqs)
     in
     let perline_rqs, perline_srqs = row "per-line" perline in
     let batched_rqs, batched_srqs = row "batched x64" batched in
     Prelude.Texttable.print table;
     check "served decisions: batched == per-line byte-identical"
       (Serve.Client.render_decisions perline
        = Serve.Client.render_decisions batched);
     (* the submission path is where the batch frame pays off; the
        end-to-end rate also improves, but on a single-core host the
        serialized server+client pipeline bounds that gain, so the
        end-to-end check only guards against regressions.  The 2x
        submit-path margin is likewise core-aware: with one core the
        submit window is exactly where the OS slices in the five server
        domains, which adds enough run-to-run variance (observed
        1.6x-4.4x across identical runs) that the strict margin flakes
        — there the check only asserts a clear win. *)
     (if Domain.recommended_domain_count () >= 2 then
        check "batched submission path >= 2x per-line"
          (batched_srqs >= 2.0 *. perline_srqs)
      else
        check "batched submission path beats per-line (single-core)"
          (batched_srqs >= 1.2 *. perline_srqs));
     check "batched end-to-end throughput never slower"
       (batched_rqs >= 0.95 *. perline_rqs);
     print_newline ());
  (* Part 3: the domain-scaling family.  The same high-fanout workload
     on 4 shards, stepped by 1, 2 and 4 worker domains, per-line and
     batched.  Manual lock-step means the decision log is a function of
     the instance alone — spreading the shards over fewer or more
     domains may only change the speed.  The >=2x scaling assertion is
     core-aware: on boxes with fewer than 4 cores the extra domains
     just time-slice one core, so only never-slower (with tolerance)
     is checked there. *)
  let cores = Domain.recommended_domain_count () in
  let run_domains ~domains ~batch =
    Gc.compact ();
    (* best-of-3: on an oversubscribed box the OS scheduler adds real
       variance between identical runs *)
    let best = ref None in
    for _ = 1 to 3 do
      match
        serve_once ~domains ~inst:inst2 ~n:n2 ~d:d2 ~shards:4
          ~strategy:strategy2 ~batch ()
      with
      | Error _ -> ()
      | Ok r ->
        (match !best with
         | Some b when b.Serve.Client.duration <= r.Serve.Client.duration ->
           ()
         | _ -> best := Some r)
    done;
    match !best with
    | Some r -> Ok r
    | None -> Error "all runs failed"
  in
  let grid =
    List.concat_map
      (fun domains ->
         List.map (fun batch -> (domains, batch)) [ 1; 64 ])
      [ 1; 2; 4 ]
  in
  let results =
    List.filter_map
      (fun (domains, batch) ->
         match run_domains ~domains ~batch with
         | Error msg ->
           Printf.printf
             "B.serve: domain scaling point (domains=%d batch=%d) skipped \
              (%s)\n%!"
             domains batch msg;
           None
         | Ok r -> Some ((domains, batch), r))
      grid
  in
  if List.length results = List.length grid then begin
    let table =
      Prelude.Texttable.create
        ~title:
          (Printf.sprintf
             "B.serve  --  domain scaling (n=%d d=%d %d rounds, load 6.0, \
              4 shards, greedy_2choice, manual tick, %d core(s))"
             n2 d2 rounds2 cores)
        ~header:
          [ "domains"; "mode"; "req/s"; "p50 ms"; "p99 ms" ]
        ()
    in
    let stats ((domains, batch), (r : Serve.Client.report)) =
      let mode = if batch = 1 then "per-line" else "batched x64" in
      let rqs =
        if r.Serve.Client.duration > 0.0 then
          float_of_int r.Serve.Client.submitted /. r.Serve.Client.duration
        else 0.0
      in
      let q p =
        if Array.length r.Serve.Client.rtt_samples = 0 then nan
        else 1e3 *. Prelude.Stats.quantile r.Serve.Client.rtt_samples p
      in
      let params =
        [ ("n", string_of_int n2); ("d", string_of_int d2);
          ("rounds", string_of_int rounds2);
          ("domains", string_of_int domains); ("mode", mode) ]
      in
      List.iter
        (fun (metric, v) -> record ~family:"B.serve" ~params ~metric v)
        [ ("throughput_req_per_s", rqs);
          ("latency_p50_ms", q 0.5); ("latency_p99_ms", q 0.99) ];
      Prelude.Texttable.add_row table
        [
          string_of_int domains;
          mode;
          Printf.sprintf "%.0f" rqs;
          Printf.sprintf "%.2f" (q 0.5);
          Printf.sprintf "%.2f" (q 0.99);
        ];
      ((domains, batch), (rqs, q 0.99))
    in
    let measured = List.map stats results in
    Prelude.Texttable.print table;
    let dec (domains, batch) =
      Serve.Client.render_decisions
        (List.assoc (domains, batch) results)
    in
    check "domain scaling: decisions invariant across 1/2/4 domains"
      (dec (1, 1) = dec (2, 1)
       && dec (2, 1) = dec (4, 1)
       && dec (1, 64) = dec (2, 64)
       && dec (2, 64) = dec (4, 64));
    let rqs k = fst (List.assoc k measured) in
    let p99 k = snd (List.assoc k measured) in
    if cores >= 4 then begin
      check "domain scaling: 4 domains >= 2x 1 domain (batched)"
        (rqs (4, 64) >= 2.0 *. rqs (1, 64));
      check "domain scaling: p99 no worse at 4 domains (1.25x tolerance)"
        (p99 (4, 64) <= 1.25 *. p99 (1, 64))
    end
    else begin
      (* with fewer cores than domains the workers time-slice, so a
         speedup claim is meaningless; guard only against pathological
         collapse (lost wakeups, a barrier bug) and report the curve *)
      Printf.printf
        "note: %d core(s) < 4 domains -- scaling assertion not \
         applicable on this box, guarding against collapse only\n%!"
        cores;
      check "domain scaling: no pathological slowdown from extra domains"
        (rqs (4, 64) >= 0.5 *. rqs (1, 64)
         && rqs (2, 64) >= 0.5 *. rqs (1, 64))
    end;
    print_newline ()
  end;
  if Sys.file_exists sock then Sys.remove sock

(* The cluster tier's cost model: the paper's local strategies live
   across a multi-node router.  Three angles: the Thm 3.7 certificate
   measured over the wire (ratio exactly 2 at exactly 2 comm rounds),
   the Thm 3.8 round budgets, and a straddle sweep -- the fraction of
   requests whose two alternatives land on different nodes swept
   0..100% to price cross-node coordination -- with the placement
   invariant (identical decision logs on 1, 2 and 3 nodes) checked on
   the way. *)
let run_cluster ~quick =
  let n = 16 and d = 4 in
  let rounds = if quick then 40 else 160 in
  (* classify resources by the 2-node ring the sweep runs on, so the
     straddle fraction is a construction parameter, not an estimate *)
  let ring2 = Cluster.Ring.create ~nodes:[ 0; 1 ] () in
  let side k =
    Array.of_list
      (List.filter
         (fun r -> Cluster.Ring.owner ring2 r = k)
         (List.init n Fun.id))
  in
  let side0 = side 0 and side1 = side 1 in
  assert (Array.length side0 >= 2 && Array.length side1 >= 2);
  let straddle_instance ~pct ~seed =
    let rng = Prelude.Rng.create ~seed in
    let pick arr = arr.(Prelude.Rng.int rng (Array.length arr)) in
    let per_round = n + (n / 8) in
    let reqs = ref [] in
    for round = 0 to rounds - 1 do
      for _ = 1 to per_round do
        let a, b =
          if Prelude.Rng.int rng 100 < pct then
            if Prelude.Rng.int rng 2 = 0 then (pick side0, pick side1)
            else (pick side1, pick side0)
          else begin
            let s = if Prelude.Rng.int rng 2 = 0 then side0 else side1 in
            let a = pick s in
            let rec other () =
              let b = pick s in
              if b = a then other () else b
            in
            (a, other ())
          end
        in
        reqs :=
          Sched.Request.make ~arrival:round ~alternatives:[ a; b ]
            ~deadline:(1 + Prelude.Rng.int rng d)
          :: !reqs
      done
    done;
    Sched.Instance.build ~n_resources:n ~d (List.rev !reqs)
  in
  let run_one ?priority ~strategy ~nodes inst =
    let session = ref None in
    let t0 = Unix.gettimeofday () in
    let o =
      Sched.Engine.run inst
        (Cluster.Session.factory ?priority
           ~on_create:(fun s -> session := Some s)
           ~strategy ~nodes ())
    in
    let dt = Unix.gettimeofday () -. t0 in
    let stats =
      match !session with
      | Some s -> Cluster.Session.stats s
      | None -> failwith "cluster factory never ran"
    in
    (o, stats, dt)
  in
  let decisions (o : Sched.Outcome.t) =
    let lines = ref [] in
    Array.iteri
      (fun id sv ->
         match sv with
         | Some (res, round) -> lines := (round, id, res) :: !lines
         | None -> ())
      o.Sched.Outcome.served_at;
    String.concat "\n"
      (List.map
         (fun (round, id, res) -> Printf.sprintf "t%d sched@%d S%d" round id res)
         (List.sort compare !lines))
  in
  (* part 1: the straddle sweep on 2 nodes under A_local_fix *)
  let table =
    Prelude.Texttable.create
      ~title:
        (Printf.sprintf
           "B.cluster  --  straddle sweep, A_local_fix on 2 nodes (n=%d \
            d=%d %d rounds)"
           n d rounds)
      ~header:
        [ "straddle %"; "requests"; "served"; "comm max"; "msgs/round";
          "rounds/s" ]
      ()
  in
  let fix_msg_budget_ok = ref true in
  List.iter
    (fun pct ->
       let inst = straddle_instance ~pct ~seed:(900 + pct) in
       let o, s, dt =
         run_one ~strategy:Cluster.Session.Local_fix ~nodes:2 inst
       in
       let mpr =
         float_of_int s.Cluster.Session.messages
         /. float_of_int (max 1 s.Cluster.Session.scheduling_rounds)
       in
       let rps =
         if dt > 0.0 then
           float_of_int s.Cluster.Session.scheduling_rounds /. dt
         else 0.0
       in
       (* A_local_fix speaks at most twice per request, ever *)
       if s.Cluster.Session.messages > 2 * s.Cluster.Session.requests then
         fix_msg_budget_ok := false;
       if s.Cluster.Session.comm_rounds_max > 2 then
         fix_msg_budget_ok := false;
       let params =
         [ ("n", string_of_int n); ("d", string_of_int d);
           ("rounds", string_of_int rounds); ("nodes", "2");
           ("straddle", string_of_int pct) ]
       in
       record ~family:"B.cluster" ~params ~metric:"msgs_per_round" mpr;
       record ~family:"B.cluster" ~params ~metric:"rounds_per_s" rps;
       Prelude.Texttable.add_row table
         [
           string_of_int pct;
           string_of_int s.Cluster.Session.requests;
           string_of_int o.Sched.Outcome.served;
           string_of_int s.Cluster.Session.comm_rounds_max;
           Printf.sprintf "%.1f" mpr;
           Printf.sprintf "%.0f" rps;
         ])
    [ 0; 25; 50; 75; 100 ];
  Prelude.Texttable.print table;
  check "fix within budget: <= 2 msgs/request, <= 2 comm rounds"
    !fix_msg_budget_ok;
  (* part 2: placement invariance -- the router's mirror decides, so
     the node layout must never change a decision *)
  let inv_inst = straddle_instance ~pct:50 ~seed:950 in
  let logs =
    List.map
      (fun nodes ->
         let o, _, _ =
           run_one ~strategy:Cluster.Session.Local_fix ~nodes inv_inst
         in
         decisions o)
      [ 1; 2; 3 ]
  in
  check "decisions byte-identical across 1/2/3-node layouts"
    (match logs with
     | a :: rest -> List.for_all (fun b -> b = a) rest
     | [] -> false);
  (* part 3: the theorem certificates over the wire *)
  let intervals = if quick then 4 else 12 in
  let sc, priority = Adversary.Thm37.make ~d ~intervals in
  let o37, s37, _ =
    run_one ~priority ~strategy:Cluster.Session.Local_fix ~nodes:3
      sc.Adversary.Scenario.instance
  in
  let opt37 = Offline.Opt.value sc.Adversary.Scenario.instance in
  let params37 = [ ("d", string_of_int d); ("nodes", "3") ] in
  record ~family:"B.cluster" ~params:params37 ~metric:"thm37_ratio"
    (float_of_int opt37 /. float_of_int (max 1 o37.Sched.Outcome.served));
  record ~family:"B.cluster" ~params:params37 ~metric:"thm37_comm_rounds_max"
    (float_of_int s37.Cluster.Session.comm_rounds_max);
  check "thm 3.7 live on 3 nodes: ratio exactly 2 at 2 comm rounds"
    (opt37 = 2 * o37.Sched.Outcome.served
     && s37.Cluster.Session.comm_rounds_max = 2);
  let eager_inst = straddle_instance ~pct:50 ~seed:960 in
  let budgets =
    List.map
      (fun (name, compact, bound) ->
         let _, s, _ =
           run_one
             ~strategy:(Cluster.Session.Local_eager { compact })
             ~nodes:3 eager_inst
         in
         record ~family:"B.cluster"
           ~params:[ ("variant", name); ("nodes", "3") ]
           ~metric:"comm_rounds_max"
           (float_of_int s.Cluster.Session.comm_rounds_max);
         s.Cluster.Session.comm_rounds_max <= bound)
      [ ("eager", false, 9); ("eager_compact", true, 8) ]
  in
  check "thm 3.8 budgets live: eager <= 9 rounds, compact <= 8"
    (List.for_all Fun.id budgets);
  print_newline ()

(* The anytime-monitoring cost model: the whole per-round OPT prefix
   curve by the incremental tracker vs one full Hopcroft-Karp solve per
   prefix, on long workloads (the streaming regime the tracker exists
   for).  The two curves are also compared element-wise: a mismatch is a
   correctness bug, not a benchmark artifact. *)
let run_stream ~quick =
  let shapes =
    if quick then [ (8, 4, 200) ] else [ (8, 4, 200); (8, 6, 400); (16, 4, 300) ]
  in
  let table =
    Prelude.Texttable.create
      ~title:
        "B.stream  --  per-round OPT prefix curve: incremental tracker vs \
         naive per-round recompute (random load 1.1)"
      ~header:
        [ "n"; "d"; "horizon"; "requests"; "stream ms"; "naive ms";
          "speedup"; "curves agree" ]
      ()
  in
  let min_speedup = ref infinity in
  List.iter
    (fun (n, d, rounds) ->
       let rng = Prelude.Rng.create ~seed:33 in
       let inst =
         Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load:1.1 ()
       in
       let time f =
         let t0 = Unix.gettimeofday () in
         let r = f () in
         (r, (Unix.gettimeofday () -. t0) *. 1e3)
       in
       let stream_curve, stream_ms =
         time (fun () -> Offline.Opt_stream.prefix_curve inst)
       in
       let naive_curve, naive_ms =
         time (fun () -> Offline.Opt_stream.naive_prefix_curve inst)
       in
       let speedup = naive_ms /. stream_ms in
       if speedup < !min_speedup then min_speedup := speedup;
       Prelude.Texttable.add_row table
         [
           string_of_int n;
           string_of_int d;
           string_of_int rounds;
           string_of_int (Sched.Instance.n_requests inst);
           Printf.sprintf "%.2f" stream_ms;
           Printf.sprintf "%.2f" naive_ms;
           Printf.sprintf "%.1fx" speedup;
           string_of_bool (stream_curve = naive_curve);
         ])
    shapes;
  Prelude.Texttable.print table;
  check "streaming >= 5x faster" (!min_speedup >= 5.0);
  print_newline ()

(* The job-runner cost model: the same experiment battery executed
   serially, across domains, and against a warm on-disk cache.  The
   cached pass must answer (nearly) everything without computing — the
   hit rate is asserted, the wall-clock numbers are informational. *)
let run_jobs ~quick =
  let ids = [ "T1.fix.lb"; "T1.eager.lb"; "T1.any.lb"; "T1.ub" ] in
  let families =
    List.filter (fun (id, _) -> List.mem id ids) Report.Experiments.catalog
  in
  let run ctx =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (_, f) -> ignore (f ~ctx ~quick : Report.Experiments.t))
      families;
    let elapsed = Unix.gettimeofday () -. t0 in
    (elapsed, Report.Jobs.stats ctx)
  in
  let serial_s, serial_st = run (Report.Jobs.create ~domains:1 ()) in
  let par_s, par_st = run (Report.Jobs.create ()) in
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reqsched-bench-jobcache-%d" (Unix.getpid ()))
  in
  let cold_s, cold_st = run (Report.Jobs.create ~cache_dir ~resume:true ()) in
  let warm_s, warm_st = run (Report.Jobs.create ~cache_dir ~resume:true ()) in
  Array.iter
    (fun f -> Sys.remove (Filename.concat cache_dir f))
    (Sys.readdir cache_dir);
  Sys.rmdir cache_dir;
  let table =
    Prelude.Texttable.create
      ~title:
        (Printf.sprintf
           "B.jobs  --  battery of %d families through the job runner: \
            serial vs parallel vs on-disk cache"
           (List.length families))
      ~header:
        [ "mode"; "battery s"; "executed"; "cache hits"; "hit rate" ]
      ()
  in
  let row name s (st : Report.Jobs.stats) =
    Prelude.Texttable.add_row table
      [
        name;
        Printf.sprintf "%.2f" s;
        string_of_int st.Report.Jobs.executed;
        string_of_int st.Report.Jobs.cache_hits;
        Printf.sprintf "%.1f%%" (100.0 *. Report.Jobs.hit_rate st);
      ]
  in
  row "serial (--jobs 1)" serial_s serial_st;
  row "parallel" par_s par_st;
  row "cache cold" cold_s cold_st;
  row "cache warm" warm_s warm_st;
  Prelude.Texttable.print table;
  check "warm cache answers everything"
    (warm_st.Report.Jobs.executed = 0
     && warm_st.Report.Jobs.cache_hits = warm_st.Report.Jobs.total);
  print_newline ()

(* The zoo scoring path: one streaming pass (live engine + SLO
   accumulator + prefix optimum) versus the batch recompute from the
   recorded outcome, on every workload family.  The equality check is
   the bench-side differential for Analysis.Slo; the per-family scores
   land in the --json records so a committed baseline can watch the
   workloads themselves drift. *)
let run_zoo ~quick =
  let n, d, rounds = Report.Zoo.tier ~quick in
  let seed = Report.Zoo.seed in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, 1e3 *. (Unix.gettimeofday () -. t0))
  in
  let feq a b = (Float.is_nan a && Float.is_nan b) || a = b in
  let scores_equal (a : Analysis.Slo.scores) (b : Analysis.Slo.scores) =
    a.submitted = b.submitted && a.served = b.served && a.expired = b.expired
    && a.rounds = b.rounds
    && feq a.violation_rate b.violation_rate
    && feq a.throughput b.throughput
    && feq a.antt b.antt
    && feq a.max_delay_factor b.max_delay_factor
    && a.machines_needed = b.machines_needed
  in
  let factory () =
    match Report.Registry.factory_of_name ~seed "balance" with
    | Ok f -> f
    | Error m -> failwith m
  in
  let table =
    Prelude.Texttable.create
      ~title:
        (Printf.sprintf
           "B.zoo  --  SLO scoring: one streaming pass vs batch recompute \
            (balance, n=%d d=%d rounds=%d)"
           n d rounds)
      ~header:
        [
          "workload"; "requests"; "stream ms"; "batch ms"; "viol%";
          "thr/round"; "antt"; "maxDF"; "m>="; "equal";
        ]
      ()
  in
  let all_equal = ref true in
  List.iter
    (fun (f : Workload.Zoo.family) ->
       let inst =
         f.generate ~n ~d ~rounds ~load:f.default_load ~seed
       in
       let streamed, stream_ms =
         time (fun () -> Analysis.Slo.score_stream inst (factory ()))
       in
       let batch, batch_ms =
         time (fun () ->
             Analysis.Slo.of_outcome (Sched.Engine.run inst (factory ())))
       in
       let s = streamed.Analysis.Slo.scores in
       let equal = scores_equal s batch in
       if not equal then all_equal := false;
       let params =
         [
           ("workload", f.key); ("n", string_of_int n);
           ("d", string_of_int d); ("rounds", string_of_int rounds);
         ]
       in
       record ~family:"B.zoo" ~params ~metric:"stream_ms" stream_ms;
       record ~family:"B.zoo" ~params ~metric:"violation_rate"
         s.violation_rate;
       record ~family:"B.zoo" ~params ~metric:"throughput" s.throughput;
       record ~family:"B.zoo" ~params ~metric:"anytime_ratio"
         streamed.anytime_ratio;
       Prelude.Texttable.add_row table
         [
           f.key;
           string_of_int (Sched.Instance.n_requests inst);
           Printf.sprintf "%.2f" stream_ms;
           Printf.sprintf "%.2f" batch_ms;
           Printf.sprintf "%.1f%%" (100.0 *. s.violation_rate);
           Printf.sprintf "%.2f" s.throughput;
           (if Float.is_nan s.antt then "-" else Printf.sprintf "%.3f" s.antt);
           (if Float.is_nan s.max_delay_factor then "-"
            else Printf.sprintf "%.3f" s.max_delay_factor);
           string_of_int s.machines_needed;
           string_of_bool equal;
         ])
    Workload.Zoo.families;
  Prelude.Texttable.print table;
  check "streaming slo == batch recompute on every zoo family" !all_equal;
  print_newline ()

let run_micro () =
  let tests = Test.make_grouped ~name:"reqsched" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Prelude.Texttable.create ~title:"B.micro  --  machinery timings"
      ~header:[ "benchmark"; "time per run"; "r^2" ] ()
  in
  Prelude.Texttable.set_align table
    [ Prelude.Texttable.Left; Prelude.Texttable.Right; Prelude.Texttable.Right ];
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  in
  List.iter
    (fun (name, ols) ->
       let ns =
         match Analyze.OLS.estimates ols with
         | Some (t :: _) -> t
         | Some [] | None -> nan
       in
       let cell =
         if Float.is_nan ns then "-"
         else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
         else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
         else Printf.sprintf "%.3f us" (ns /. 1e3)
       in
       let r2 =
         match Analyze.OLS.r_square ols with
         | Some r -> Printf.sprintf "%.4f" r
         | None -> "-"
       in
       Prelude.Texttable.add_row table [ name; cell; r2 ])
    (List.sort compare rows);
  Prelude.Texttable.print table;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let quick = flag "--quick" in
  let metrics_fmt =
    match string_flag "--metrics" with
    | None -> Obs.Export.Text
    | Some s ->
      (match Obs.Export.format_of_string s with
       | Ok f -> f
       | Error msg ->
         Printf.eprintf "bench: %s\n" msg;
         exit 2)
  in
  let metrics_out = string_flag "--metrics-out" in
  let metrics =
    if flag "--no-metrics" then None
    else begin
      let m = Obs.Metrics.create () in
      Obs.Metrics.set_ambient (Some m);
      Some m
    end
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "reqsched reproduction harness -- Berenbrink, Riedel, Scheideler (SPAA \
     1999)\nmode: %s\n\n%!"
    (if quick then "quick" else "full");
  let only = only_filter () in
  let selected id =
    match only with
    | None -> true
    | Some prefix ->
      String.length id >= String.length prefix
      && String.sub id 0 (String.length prefix) = prefix
  in
  (* bench families have ids like the experiments, so --only B.scale
     runs just that family (and no experiments) *)
  let bench_family id f = if (not (flag "--no-micro")) && selected id then f () in
  bench_family "B.micro" run_micro;
  bench_family "B.scale" (fun () -> run_scale ~quick);
  bench_family "B.stream" (fun () -> run_stream ~quick);
  bench_family "B.jobs" (fun () -> run_jobs ~quick);
  bench_family "B.serve" (fun () -> run_serve ~quick);
  bench_family "B.cluster" (fun () -> run_cluster ~quick);
  bench_family "B.zoo" (fun () -> run_zoo ~quick);
  let catalog =
    List.filter (fun (id, _) -> selected id)
      (Report.Experiments.catalog @ Report.Zoo.catalog)
  in
  let ctx =
    Report.Jobs.create ?domains:(int_flag "--jobs")
      ?cache_dir:(string_flag "--cache-dir")
      ~resume:(flag "--resume")
      ~retries:(Option.value ~default:0 (int_flag "--retries"))
      ?metrics ()
  in
  let experiments = List.map (fun (_, f) -> f ~ctx ~quick) catalog in
  let csv_dir = string_flag "--csv" in
  (match csv_dir with
   | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
   | Some _ | None -> ());
  let failures = ref 0 in
  List.iter
    (fun (e : Report.Experiments.t) ->
       print_string (Report.Experiments.render e);
       (match csv_dir with
        | Some dir ->
          Report.Export.write_file
            ~path:(Filename.concat dir (e.id ^ ".csv"))
            (Report.Export.csv_of_table e.table)
        | None -> ());
       List.iter (fun (_, ok) -> if not ok then incr failures) e.checks)
    experiments;
  let job_failures = Report.Jobs.render_failures ctx in
  if job_failures <> "" then print_string job_failures;
  print_endline (Report.Jobs.summary ctx);
  Report.Jobs.finish ctx;
  Printf.printf "total: %d experiments, %d failed checks, %.1f s\n"
    (List.length experiments)
    (!failures + !bench_check_failures)
    (Unix.gettimeofday () -. t0);
  (match string_flag "--json" with
   | Some path ->
     write_json path;
     Printf.printf "json: wrote %s (%d records)\n" path
       (List.length !json_records)
   | None -> ());
  (match metrics with
   | None -> ()
   | Some m ->
     print_newline ();
     Obs.Export.output ?path:metrics_out metrics_fmt (Obs.Metrics.snapshot m);
     (match metrics_out with
      | Some path -> Printf.printf "metrics: wrote %s\n" path
      | None -> ()));
  if !failures + !bench_check_failures > 0 then exit 1
