(* Distributed scheduling: the local strategies and their price.

   Global strategies assume one coordinator that sees every request.  In
   a real distributed server the clients and disks exchange messages
   under bandwidth limits instead — the paper's model gives every
   resource a mailbox of d messages per communication round, drops the
   overflow by latest-deadline-first, and charges the protocols by
   communication rounds.

   This example runs A_local_fix (2 communication rounds, 2-competitive)
   and A_local_eager (9 communication rounds, 5/3-competitive) on the
   same workloads as the global A_eager, showing what the missing
   coordination costs, and demonstrates the mailbox overflow on the
   Theorem 3.7 worst case.

     dune exec examples/distributed_server.exe *)

module Rng = Prelude.Rng
module Local = Localstrat.Local

let () =
  (* A mid-sized server under slight overload. *)
  let rng = Rng.create ~seed:2024 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:10 ~d:4 ~rounds:300 ~load:1.15 ()
  in
  let opt = Offline.Opt.value inst in
  let table =
    Prelude.Texttable.create
      ~title:
        (Printf.sprintf
           "random workload: n=10 d=4 load=1.15, %d requests, optimum %d"
           (Sched.Instance.n_requests inst)
           opt)
      ~header:
        [ "strategy"; "accepted"; "ratio"; "comm rounds/round (max)";
          "messages"; "bounced" ]
      ()
  in
  let row name factory stats_opt =
    let o = Sched.Engine.run inst factory in
    let comm, msgs, bounced =
      match stats_opt with
      | None -> ("-", "-", "-")
      | Some stats ->
        let s : Local.stats = stats () in
        ( string_of_int s.comm_rounds_max,
          string_of_int s.messages,
          string_of_int s.bounced )
    in
    Prelude.Texttable.add_row table
      [
        name;
        string_of_int o.served;
        Prelude.Texttable.cell_ratio
          (float_of_int opt /. float_of_int o.served);
        comm;
        msgs;
        bounced;
      ]
  in
  row "A_eager (global)" (Strategies.Global.eager ()) None;
  let fix_factory, fix_stats = Local.fix_with_stats () in
  row "A_local_fix" fix_factory (Some fix_stats);
  let eager_factory, eager_stats = Local.eager_with_stats () in
  row "A_local_eager" eager_factory (Some eager_stats);
  Prelude.Texttable.print table;
  print_newline ();

  (* The Theorem 3.7 worst case: mailbox overflow in action.  R3's 2d
     messages to S1 exceed the capacity-d mailbox; the adversarial
     tie-break delivers R1's instead, and R3's second try hits the
     already-full S3. *)
  let d = 4 and intervals = 8 in
  let sc, priority = Adversary.Thm37.make ~d ~intervals in
  let factory, stats = Local.fix_with_stats ~priority () in
  let o = Sched.Engine.run sc.instance factory in
  let s = stats () in
  let opt = Offline.Opt.value sc.instance in
  Printf.printf
    "Theorem 3.7 adversary (d=%d, %d intervals) against A_local_fix:\n" d
    intervals;
  Printf.printf "  accepted %d of %d; optimum %d; ratio %.4f (paper: 2)\n"
    o.served
    (Sched.Instance.n_requests sc.instance)
    opt
    (float_of_int opt /. float_of_int o.served);
  Printf.printf
    "  %d messages sent, %d bounced by the capacity-%d mailboxes, %d \
     communication rounds per scheduling round\n"
    s.messages s.bounced d s.comm_rounds_max;
  (* A_local_eager rescues the same workload: its phase-3 swaps re-home
     the requests occupying R3's resources. *)
  let factory, stats = Local.eager_with_stats ~priority () in
  let o = Sched.Engine.run sc.instance factory in
  let s = stats () in
  Printf.printf
    "  A_local_eager on the same input: accepted %d (ratio %.4f) using %d \
     communication rounds per scheduling round\n"
    o.served
    (float_of_int opt /. float_of_int o.served)
    s.comm_rounds_max
