(* Video-on-demand: the application that motivates the paper.

   A movie catalogue is striped over a disk farm with two replicas per
   title on distinct disks (the "random duplicated assignment" of
   [Kor97]).  Clients request titles with Zipf popularity — a few
   blockbusters dominate — and every request must start streaming
   within d rounds or the client walks away.

   The experiment answers two questions the introduction raises:
     1. how much does the second replica buy over a single copy?
     2. how far apart are the paper's strategies on a realistic
        (non-adversarial) workload?

     dune exec examples/video_on_demand.exe *)

module Rng = Prelude.Rng

let n_disks = 12
let n_titles = 300
let deadline = 5
let rounds = 400
let zipf_s = 1.1

(* Replica placement: two distinct uniformly random disks per title. *)
let placement rng ~copies =
  Array.init n_titles (fun _ ->
      let rec pick acc k =
        if k = 0 then acc
        else begin
          let disk = Rng.int rng n_disks in
          if List.mem disk acc then pick acc k
          else pick (acc @ [ disk ]) (k - 1)
        end
      in
      pick [] copies)

let workload rng ~load ~copies =
  let disks_of_title = placement rng ~copies in
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let arrivals =
      Rng.poisson rng ~lambda:(load *. float_of_int n_disks)
    in
    for _ = 1 to arrivals do
      let title = Rng.zipf rng ~n:n_titles ~s:zipf_s in
      protos :=
        Sched.Request.make ~arrival:round
          ~alternatives:disks_of_title.(title) ~deadline
        :: !protos
    done
  done;
  Sched.Instance.build ~n_resources:n_disks ~d:deadline (List.rev !protos)

let strategies =
  [
    ("A_fix", fun () -> Strategies.Global.fix ());
    ("A_current", fun () -> Strategies.Global.current ());
    ("A_fix_balance", fun () -> Strategies.Global.fix_balance ());
    ("A_eager", fun () -> Strategies.Global.eager ());
    ("A_balance", fun () -> Strategies.Global.balance ());
    ("EDF (uncoordinated)", fun () -> Strategies.Edf.independent ());
    ("A_local_fix", fun () -> Localstrat.Local.fix ());
    ("A_local_eager", fun () -> Localstrat.Local.eager ());
  ]

let () =
  let loads = [ 0.7; 0.9; 1.1 ] in
  (* Question 1: one replica vs two.  With a single copy the scheduler
     has no freedom at all; hot titles overload their disk. *)
  let table1 =
    Prelude.Texttable.create
      ~title:
        (Printf.sprintf
           "VoD farm: %d disks, %d titles, Zipf(%.1f) popularity, d=%d -- \
            accepted streams / optimum (A_balance scheduler)"
           n_disks n_titles zipf_s deadline)
      ~header:[ "load"; "1 replica"; "2 replicas"; "optimum (2 replicas)" ]
      ()
  in
  List.iter
    (fun load ->
       let one_copy =
         let rng = Rng.create ~seed:100 in
         workload rng ~load ~copies:1
       in
       let two_copies =
         let rng = Rng.create ~seed:100 in
         workload rng ~load ~copies:2
       in
       let served inst =
         (Sched.Engine.run inst (Strategies.Global.balance ())).served
       in
       Prelude.Texttable.add_row table1
         [
           Printf.sprintf "%.1f" load;
           Printf.sprintf "%d / %d" (served one_copy)
             (Sched.Instance.n_requests one_copy);
           Printf.sprintf "%d / %d" (served two_copies)
             (Sched.Instance.n_requests two_copies);
           string_of_int (Offline.Opt.value two_copies);
         ])
    loads;
  Prelude.Texttable.print table1;
  print_newline ();

  (* Question 2: strategy comparison on the two-replica farm at high
     load. *)
  let inst =
    let rng = Rng.create ~seed:100 in
    workload rng ~load:1.1 ~copies:2
  in
  let opt = Offline.Opt.value inst in
  let table2 =
    Prelude.Texttable.create
      ~title:
        (Printf.sprintf
           "strategy comparison at load 1.1 (total %d, optimum %d)"
           (Sched.Instance.n_requests inst)
           opt)
      ~header:[ "strategy"; "accepted"; "lost"; "measured ratio" ] ()
  in
  List.iter
    (fun (name, mk) ->
       let o = Sched.Engine.run inst (mk ()) in
       Prelude.Texttable.add_row table2
         [
           name;
           string_of_int o.served;
           string_of_int (Sched.Outcome.failed o);
           Prelude.Texttable.cell_ratio
             (float_of_int opt /. float_of_int o.served);
         ])
    strategies;
  Prelude.Texttable.print table2;
  print_newline ();
  print_endline
    "Note how every two-choice strategy sits far below its worst-case bound \
     from Table 1: the adversarial analysis is (as the paper remarks) \
     pessimistic for stochastic traffic, while the single-replica farm \
     loses streams even at moderate load."
