examples/capacity_planning.ml: Adversary List Localstrat Prelude Printf Sched Strategies
