examples/quickstart.ml: Analysis Array Format List Offline Prelude Sched Strategies
