examples/adversary_gallery.ml: Adversary List Localstrat Offline Prelude Printf Report Sched Strategies
