examples/video_on_demand.ml: Array List Localstrat Offline Prelude Printf Sched Strategies
