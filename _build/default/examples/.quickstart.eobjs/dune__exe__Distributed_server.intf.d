examples/distributed_server.mli:
