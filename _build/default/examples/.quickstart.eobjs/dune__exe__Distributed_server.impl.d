examples/distributed_server.ml: Adversary Localstrat Offline Prelude Printf Sched Strategies
