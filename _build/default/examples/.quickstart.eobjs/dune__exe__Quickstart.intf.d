examples/quickstart.mli:
