(* Quickstart: the five-minute tour of the reqsched API.

   We model a tiny data server with 3 disks, requests with two replica
   choices and a deadline of 3 rounds, schedule them online with
   A_balance, and compare against the exact offline optimum.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the workload.  A request names its arrival round, the
     resources (disks) holding a replica of its data item, and its
     deadline. *)
  let requests =
    [
      (* three clients hit disk pair (0,1) at once ... *)
      Sched.Request.make ~arrival:0 ~alternatives:[ 0; 1 ] ~deadline:3;
      Sched.Request.make ~arrival:0 ~alternatives:[ 0; 1 ] ~deadline:3;
      Sched.Request.make ~arrival:0 ~alternatives:[ 1; 0 ] ~deadline:3;
      (* ... one wants (1,2) ... *)
      Sched.Request.make ~arrival:0 ~alternatives:[ 1; 2 ] ~deadline:3;
      (* ... and a second wave lands one round later *)
      Sched.Request.make ~arrival:1 ~alternatives:[ 2; 0 ] ~deadline:3;
      Sched.Request.make ~arrival:1 ~alternatives:[ 0; 2 ] ~deadline:2;
    ]
  in
  let instance = Sched.Instance.build ~n_resources:3 ~d:3 requests in
  Format.printf "%a@." Sched.Instance.pp_summary instance;

  (* 2. Run an online strategy.  The engine reveals requests round by
     round and validates every service decision. *)
  let outcome = Sched.Engine.run instance (Strategies.Global.balance ()) in
  Format.printf "%a@." Sched.Outcome.pp_summary outcome;
  Array.iteri
    (fun id served ->
       match served with
       | Some (disk, round) ->
         Format.printf "  request %d -> disk %d at round %d@." id disk round
       | None -> Format.printf "  request %d -> failed@." id)
    outcome.served_at;

  (* 3. Compare with the exact offline optimum (a maximum matching in
     the paper's request/time-slot graph). *)
  let opt = Offline.Opt.value instance in
  Format.printf "offline optimum: %d of %d@." opt
    (Sched.Instance.n_requests instance);
  Format.printf "competitive ratio on this input: %.3f@."
    (float_of_int opt /. float_of_int outcome.served);

  (* 4. Audit the outcome: where (if anywhere) could the optimum still
     improve on the online schedule? *)
  let audit = Analysis.Audit.of_outcome outcome in
  Format.printf "augmenting-path audit: %a@." Analysis.Audit.pp audit;

  (* 5. The paper's Table 1 bounds for this deadline, for reference. *)
  Format.printf "@.Paper bounds at d = 3:@.";
  List.iter
    (fun (name, lb, ub) ->
       let cell = function
         | Some r -> Prelude.Rat.to_string r
         | None -> "-"
       in
       Format.printf "  %-14s LB %-8s UB %s@." name (cell lb) (cell ub))
    (Analysis.Bounds.table1 ~d:3)
