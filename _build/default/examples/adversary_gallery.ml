(* The adversary gallery: every lower-bound construction of the paper,
   run live against its target strategy.

   Each theorem in Section 2 builds a periodic request sequence plus an
   adversarial tie-break under which the target strategy provably loses
   a fixed fraction per phase.  This example replays each construction
   and prints the measured per-phase competitive ratio next to the
   paper's bound — they agree exactly (Thm 2.2 up to its drain-argument
   boundary effects).

     dune exec examples/adversary_gallery.exe *)

module Rat = Prelude.Rat

let gallery =
  let k = 6 in
  [
    ( "Thm 2.1: A_fix vs block-and-overlap phases",
      "2 - 1/d = 7/4",
      fun () ->
        Report.Harness.asymptotic_ratio
          ~make:(fun phases -> Adversary.Thm21.make ~d:4 ~phases)
          ~factory:(fun sc -> Strategies.Global.fix ~bias:sc.bias ())
          ~k );
    ( "Thm 2.2: A_current starves late groups (ell=4, d=12)",
      "-> e/(e-1) = 1.5820 (finite: 1.41)",
      fun () ->
        Report.Harness.asymptotic_ratio
          ~make:(fun phases -> Adversary.Thm22.make ~ell:4 ~d:12 ~phases)
          ~factory:(fun sc -> Strategies.Global.current ~bias:sc.bias ())
          ~k:1 );
    ( "Thm 2.3: A_fix_balance lured onto the target pair",
      "3d/(2d+2) = 6/5",
      fun () ->
        Report.Harness.asymptotic_ratio
          ~make:(fun phases -> Adversary.Thm23.make ~d:4 ~phases)
          ~factory:(fun sc -> Strategies.Global.fix_balance ~bias:sc.bias ())
          ~k );
    ( "Thm 2.4: A_eager serves the wrong pair first",
      "4/3",
      fun () ->
        Report.Harness.asymptotic_ratio
          ~make:(fun phases -> Adversary.Thm24.make ~d:4 ~phases)
          ~factory:(fun sc -> Strategies.Global.eager ~bias:sc.bias ())
          ~k );
    ( "Thm 2.5: A_balance ignores the overloaded second choice (d=5)",
      "(5d+2)/(4d+1) = 27/21 (diluted by anchors at 6 groups: 1.24)",
      fun () ->
        Report.Harness.asymptotic_ratio
          ~make:(fun i -> Adversary.Thm25.make ~d:5 ~groups:6 ~intervals:i)
          ~factory:(fun sc -> Strategies.Global.balance ~bias:sc.bias ())
          ~k );
    ( "Thm 3.7: A_local_fix drowned by mailbox overflow",
      "exactly 2",
      fun () ->
        let sc, priority = Adversary.Thm37.make ~d:4 ~intervals:10 in
        let r =
          Report.Harness.run_scenario sc (Localstrat.Local.fix ~priority ())
        in
        r.ratio );
  ]

let () =
  (* one construction drawn as an occupancy chart: Theorem 2.1's trap
     visible to the naked eye -- S1 (row S0) and S4 (row S3) idle in
     stripes while R1/R2 clog the pair the blocks need *)
  let sc = Adversary.Thm21.make ~d:4 ~phases:4 in
  let o =
    Sched.Engine.run sc.instance (Strategies.Global.fix ~bias:sc.bias ())
  in
  print_endline "Theorem 2.1's adversary against A_fix, as a schedule:";
  print_newline ();
  print_string (Report.Gantt.render_with_failures ~max_rounds:40 o);
  print_newline ();
  print_endline "Lower-bound constructions, measured live:";
  print_newline ();
  List.iter
    (fun (title, paper, run) ->
       let measured = run () in
       Printf.printf "%-60s\n    paper %-42s measured %.4f\n\n" title paper
         measured)
    gallery;
  (* the adaptive universal adversary, against the strongest strategy *)
  let d = 9 and phases = 10 in
  let adv = Adversary.Thm26.create ~d ~phases in
  let outcome =
    Sched.Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d
      ~last_arrival_round:(Adversary.Thm26.last_arrival_round ~d ~phases)
      ~adversary:(Adversary.Thm26.adversary adv)
      (Strategies.Global.balance ())
  in
  let opt = Offline.Opt.value outcome.instance in
  Printf.printf
    "Thm 2.6: the adaptive adversary vs A_balance (d=%d, %d phases)\n    \
     paper >= 45/41 = %.4f%40s measured %.4f\n"
    d phases
    (Rat.to_float Adversary.Thm26.ratio_bound)
    ""
    (float_of_int opt /. float_of_int outcome.served)
