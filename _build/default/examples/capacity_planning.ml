(* Capacity planning: using the simulator to answer an operator's
   question.

   "How much load can this server take before it drops more than p% of
   requests?"  The worst-case bounds of the paper answer conservatively
   (a 4/3-competitive scheduler may lose 25% against an adversary); the
   simulator answers for the traffic you actually expect.  This example
   binary-searches the highest sustainable load for a loss SLO under
   Zipf traffic, for three schedulers of very different cost:

     - A_balance      (the paper's best global strategy; a matching per round)
     - A_local_eager  (distributed, 9 communication rounds per round)
     - greedy 2-choice (O(1) per request, the balls-into-bins heuristic)

     dune exec examples/capacity_planning.exe *)

module Rng = Prelude.Rng

let n = 10
let d = 4
let rounds = 400
let slo = 0.01 (* at most 1% of requests lost *)

let loss_at ~factory ~load =
  (* mean over a few seeds to smooth Poisson noise *)
  let seeds = [ 1; 2; 3 ] in
  let losses =
    Prelude.Parmap.map
      (fun seed ->
         let rng = Rng.create ~seed in
         let inst =
           Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load
             ~profile:(Adversary.Random_workload.Zipf 1.1) ()
         in
         let o = Sched.Engine.run inst (factory ()) in
         let total = Sched.Instance.n_requests inst in
         if total = 0 then 0.0
         else float_of_int (Sched.Outcome.failed o) /. float_of_int total)
      seeds
  in
  List.fold_left ( +. ) 0.0 losses /. float_of_int (List.length losses)

(* highest load with loss <= slo, by bisection on [lo, hi] *)
let max_sustainable ~factory =
  let rec bisect lo hi iters =
    if iters = 0 then lo
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if loss_at ~factory ~load:mid <= slo then bisect mid hi (iters - 1)
      else bisect lo mid (iters - 1)
    end
  in
  bisect 0.5 1.5 10

let () =
  Printf.printf
    "Capacity planning: %d disks, d=%d, Zipf(1.1) traffic, SLO: <= %.0f%% \
     loss\n\n"
    n d (100.0 *. slo);
  let table =
    Prelude.Texttable.create
      ~header:
        [ "scheduler"; "max sustainable load"; "loss at load 1.0";
          "loss at load 1.2" ]
      ()
  in
  List.iter
    (fun (name, factory) ->
       let cap = max_sustainable ~factory in
       let l10 = loss_at ~factory ~load:1.0 in
       let l12 = loss_at ~factory ~load:1.2 in
       Prelude.Texttable.add_row table
         [
           name;
           Printf.sprintf "%.3f" cap;
           Printf.sprintf "%.2f%%" (100.0 *. l10);
           Printf.sprintf "%.2f%%" (100.0 *. l12);
         ])
    [
      ("A_balance", fun () -> Strategies.Global.balance ());
      ("A_local_eager", fun () -> Localstrat.Local.eager ());
      ("greedy 2-choice", fun () -> Strategies.Twochoice.least_loaded ());
      ("EDF (uncoordinated)", fun () -> Strategies.Edf.independent ());
    ];
  Prelude.Texttable.print table;
  print_newline ();
  print_endline
    "Reading: the matching-based scheduler and the O(1) two-choice greedy \
     sustain nearly the same load under stochastic traffic -- the paper's \
     competitive gaps only open up against adversarial correlation -- while \
     uncoordinated EDF burns capacity on duplicate services and saturates \
     far earlier."
