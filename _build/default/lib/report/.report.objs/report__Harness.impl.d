lib/report/harness.ml: Adversary Offline Prelude Printf Sched
