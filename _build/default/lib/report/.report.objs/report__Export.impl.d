lib/report/export.ml: Array Buffer Fun List Prelude Sched String
