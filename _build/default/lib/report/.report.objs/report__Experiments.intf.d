lib/report/experiments.mli: Prelude
