lib/report/experiments.ml: Adversary Analysis Array Buffer Dataserver Float Harness List Localstrat Offline Prelude Printf Sched Strategies
