lib/report/export.mli: Prelude Sched
