lib/report/harness.mli: Adversary Prelude Sched
