lib/report/gantt.ml: Array Buffer Hashtbl List Option Printf Sched String
