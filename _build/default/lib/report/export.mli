(** CSV export of instances, outcomes and experiment tables.

    The harness prints human-readable tables; this module writes the
    same data in machine-readable form so results can be analysed or
    plotted outside OCaml.  All writers escape per RFC 4180 (quotes
    doubled, fields with separators quoted) and end every record with
    ["\n"]. *)

val csv_of_table : Prelude.Texttable.t -> string
(** The header and data rows of a rendered table as CSV (rules are
    skipped; the title, if any, becomes a ["# ..."] comment line). *)

val csv_of_instance : Sched.Instance.t -> string
(** One row per request:
    [id,arrival,deadline,last_round,alternatives] with alternatives
    separated by ['|']. *)

val csv_of_outcome : Sched.Outcome.t -> string
(** One row per request:
    [id,arrival,deadline,served,resource,round,latency] (empty
    resource/round/latency for failed requests). *)

val write_file : path:string -> string -> unit
(** Write a string to a file (truncating). *)
