let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string buf "\"\""
         else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row fields = String.concat "," (List.map escape fields) ^ "\n"

let csv_of_table table =
  let buf = Buffer.create 512 in
  (match Prelude.Texttable.title table with
   | Some t -> Buffer.add_string buf ("# " ^ t ^ "\n")
   | None -> ());
  Buffer.add_string buf (row (Prelude.Texttable.header table));
  List.iter
    (fun r -> Buffer.add_string buf (row r))
    (Prelude.Texttable.rows table);
  Buffer.contents buf

let csv_of_instance (inst : Sched.Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (row [ "id"; "arrival"; "deadline"; "last_round"; "alternatives" ]);
  Array.iter
    (fun (r : Sched.Request.t) ->
       Buffer.add_string buf
         (row
            [
              string_of_int r.Sched.Request.id;
              string_of_int r.Sched.Request.arrival;
              string_of_int r.Sched.Request.deadline;
              string_of_int (Sched.Request.last_round r);
              String.concat "|"
                (Array.to_list
                   (Array.map string_of_int r.Sched.Request.alternatives));
            ]))
    inst.Sched.Instance.requests;
  Buffer.contents buf

let csv_of_outcome (o : Sched.Outcome.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (row
       [ "id"; "arrival"; "deadline"; "served"; "resource"; "round";
         "latency" ]);
  Array.iteri
    (fun id served ->
       let r = o.Sched.Outcome.instance.Sched.Instance.requests.(id) in
       let arrival = r.Sched.Request.arrival in
       let cells =
         match served with
         | Some (res, round) ->
           [
             string_of_int id;
             string_of_int arrival;
             string_of_int r.Sched.Request.deadline;
             "1";
             string_of_int res;
             string_of_int round;
             string_of_int (round - arrival);
           ]
         | None ->
           [
             string_of_int id;
             string_of_int arrival;
             string_of_int r.Sched.Request.deadline;
             "0"; ""; ""; "";
           ]
       in
       Buffer.add_string buf (row cells))
    o.Sched.Outcome.served_at;
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
