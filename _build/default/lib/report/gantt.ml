(* Request ids are drawn base-62 single characters (cycling for larger
   ids), which keeps the chart aligned: one column per round. *)
let glyph id =
  let alphabet =
    "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
  in
  alphabet.[id mod String.length alphabet]

let grid (o : Sched.Outcome.t) ~max_rounds =
  let inst = o.Sched.Outcome.instance in
  let rounds = min inst.Sched.Instance.horizon max_rounds in
  let n = inst.Sched.Instance.n_resources in
  let cells = Array.make_matrix n rounds '.' in
  Array.iteri
    (fun id served ->
       match served with
       | Some (res, round) when round < rounds ->
         cells.(res).(round) <- glyph id
       | Some _ | None -> ())
    o.Sched.Outcome.served_at;
  (cells, rounds, n)

let render ?(max_rounds = 120) o =
  let cells, rounds, n = grid o ~max_rounds in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s: rounds 0..%d (one column per round, '.' = idle)\n"
       o.Sched.Outcome.strategy_name (rounds - 1));
  (* decade ruler *)
  Buffer.add_string buf "      ";
  for t = 0 to rounds - 1 do
    Buffer.add_char buf (if t mod 10 = 0 then '|' else ' ')
  done;
  Buffer.add_char buf '\n';
  for res = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "S%-4d " res);
    for t = 0 to rounds - 1 do
      Buffer.add_char buf cells.(res).(t)
    done;
    Buffer.add_char buf '\n'
  done;
  if o.Sched.Outcome.instance.Sched.Instance.horizon > rounds then
    Buffer.add_string buf
      (Printf.sprintf "(truncated at %d of %d rounds)\n" rounds
         o.Sched.Outcome.instance.Sched.Instance.horizon);
  Buffer.contents buf

let render_with_failures ?max_rounds o =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render ?max_rounds o);
  let inst = o.Sched.Outcome.instance in
  let by_round = Hashtbl.create 16 in
  Array.iteri
    (fun id served ->
       if served = None then begin
         let arrival =
           inst.Sched.Instance.requests.(id).Sched.Request.arrival
         in
         Hashtbl.replace by_round arrival
           (id :: Option.value ~default:[] (Hashtbl.find_opt by_round arrival))
       end)
    o.Sched.Outcome.served_at;
  let rounds = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) by_round []) in
  if rounds = [] then Buffer.add_string buf "no failed requests\n"
  else
    List.iter
      (fun round ->
         let ids = List.sort compare (Hashtbl.find by_round round) in
         Buffer.add_string buf
           (Printf.sprintf "failed (arrived round %d): %s\n" round
              (String.concat " " (List.map string_of_int ids))))
      rounds;
  Buffer.contents buf

let render_comparison ?max_rounds a b =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (render ?max_rounds a);
  Buffer.add_string buf (String.make 40 '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render ?max_rounds b);
  Buffer.contents buf
