(** ASCII occupancy charts for schedules.

    One row per resource, one column per round; each served request is
    drawn in its slot.  Makes the adversary constructions visible — the
    block structures, the clogged pairs, the idle resources the optimum
    would have used — and doubles as a debugging aid for new
    strategies. *)

val render : ?max_rounds:int -> Sched.Outcome.t -> string
(** Draw the outcome's schedule.  Cells show the served request id
    modulo the alphabet; ['.'] is an idle slot.  Requests that share an
    arrival round and alternatives (the adversary's groups) are not
    distinguished beyond their ids.  [max_rounds] truncates wide
    charts (default 120 columns). *)

val render_with_failures : ?max_rounds:int -> Sched.Outcome.t -> string
(** Like {!render}, followed by one line per arrival round listing the
    requests that eventually failed, so losses line up with the chart. *)

val render_comparison :
  ?max_rounds:int -> Sched.Outcome.t -> Sched.Outcome.t -> string
(** Two outcomes on the same instance, one above the other, with a
    divider — e.g. a strategy against the offline optimum replayed as a
    schedule. *)
