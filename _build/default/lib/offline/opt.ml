module Instance = Sched.Instance
module Request = Sched.Request

let expanded_matching inst =
  let g = Sched.Paper_graph.of_instance inst in
  (* warm start with a greedy matching: cuts Hopcroft-Karp phases on the
     dense adversarial instances *)
  let m = Graph.Hopcroft_karp.solve_from g (Graph.Matching.greedy_maximal g) in
  (g, m)

let expanded inst =
  let _, m = expanded_matching inst in
  Graph.Matching.size m

(* Group key: requests that are interchangeable for the optimum. *)
let group_key (r : Request.t) =
  (r.Request.arrival, r.Request.deadline, Array.to_list r.Request.alternatives)

let grouped inst =
  let groups = Hashtbl.create 64 in
  Array.iter
    (fun r ->
       let key = group_key r in
       Hashtbl.replace groups key
         (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
    inst.Instance.requests;
  let group_list = Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups [] in
  let n_groups = List.length group_list in
  let n_slots = Instance.total_slots inst in
  if n_groups = 0 then 0
  else begin
    let source = n_groups + n_slots in
    let sink = source + 1 in
    let f = Graph.Maxflow.create ~n_nodes:(sink + 1) in
    List.iteri
      (fun gi ((arrival, deadline, alternatives), count) ->
         ignore (Graph.Maxflow.add_edge f ~src:source ~dst:gi ~cap:count);
         List.iter
           (fun res ->
              for round = arrival to arrival + deadline - 1 do
                let slot =
                  n_groups + Instance.slot_index inst ~resource:res ~round
                in
                ignore (Graph.Maxflow.add_edge f ~src:gi ~dst:slot ~cap:1)
              done)
           alternatives)
      group_list;
    for s = 0 to n_slots - 1 do
      ignore (Graph.Maxflow.add_edge f ~src:(n_groups + s) ~dst:sink ~cap:1)
    done;
    Graph.Maxflow.max_flow f ~source ~sink
  end

let value = grouped

let single_alternative_edf inst =
  Array.iter
    (fun (r : Request.t) ->
       if Array.length r.Request.alternatives <> 1 then
         invalid_arg
           "Opt.single_alternative_edf: request with multiple alternatives")
    inst.Instance.requests;
  (* per resource, an EDF sweep over rounds: serving the live request
     with the earliest deadline each round is exactly optimal for unit
     jobs on one machine *)
  let by_resource = Array.make inst.Instance.n_resources [] in
  Array.iter
    (fun (r : Request.t) ->
       let res = r.Request.alternatives.(0) in
       by_resource.(res) <- r :: by_resource.(res))
    inst.Instance.requests;
  let served = ref 0 in
  Array.iter
    (fun reqs ->
       let reqs =
         List.sort
           (fun (a : Request.t) b -> compare a.Request.arrival b.Request.arrival)
           reqs
       in
       (* pending: live requests ordered by (last_round, id) *)
       let module Pq = Set.Make (struct
           type t = int * int (* last_round, id *)
           let compare = compare
         end)
       in
       let pending = ref Pq.empty in
       let remaining = ref reqs in
       let round = ref 0 in
       let continue_ = ref true in
       while !continue_ do
         (* admit arrivals *)
         let rec admit () =
           match !remaining with
           | r :: rest when r.Request.arrival <= !round ->
             pending := Pq.add (Request.last_round r, r.Request.id) !pending;
             remaining := rest;
             admit ()
           | _ -> ()
         in
         admit ();
         (* expire *)
         let rec expire () =
           match Pq.min_elt_opt !pending with
           | Some ((last, _) as e) when last < !round ->
             pending := Pq.remove e !pending;
             expire ()
           | _ -> ()
         in
         expire ();
         (* serve earliest deadline *)
         (match Pq.min_elt_opt !pending with
          | Some e ->
            pending := Pq.remove e !pending;
            incr served
          | None -> ());
         if !remaining = [] && Pq.is_empty !pending then continue_ := false
         else incr round
       done)
    by_resource;
  !served
