lib/offline/opt.ml: Array Graph Hashtbl List Option Sched Set
