lib/offline/opt.mli: Graph Sched
