module Rng = Prelude.Rng

let pick_item rng ~placement ~zipf =
  Rng.zipf rng ~n:placement.Placement.items ~s:zipf

let point_requests ~rng ~placement ~rounds ~load ~d ?(zipf = 1.0) () =
  if rounds < 1 then invalid_arg "Trace.point_requests: rounds must be >= 1";
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let lambda = load *. float_of_int placement.Placement.disks in
    let count = Rng.poisson rng ~lambda in
    for _ = 1 to count do
      let item = pick_item rng ~placement ~zipf in
      protos :=
        Sched.Request.make ~arrival:round
          ~alternatives:(Placement.disks_of placement item)
          ~deadline:d
        :: !protos
    done
  done;
  Sched.Instance.build ~n_resources:placement.Placement.disks ~d
    (List.rev !protos)

type session_stats = {
  started : int;
  mean_length : float;
}

let sessions ~rng ~placement ~rounds ~arrivals_per_round ~mean_length ~d
    ?(zipf = 1.0) () =
  if rounds < 1 then invalid_arg "Trace.sessions: rounds must be >= 1";
  if mean_length < 1 then
    invalid_arg "Trace.sessions: mean_length must be >= 1";
  (* collect (arrival, item) per stream request, then sort by arrival
     for the instance builder *)
  let events = ref [] in
  let started = ref 0 in
  let total_length = ref 0 in
  for round = 0 to rounds - 1 do
    let newcomers = Rng.poisson rng ~lambda:arrivals_per_round in
    for _ = 1 to newcomers do
      incr started;
      let item = pick_item rng ~placement ~zipf in
      (* geometric with mean [mean_length] (at least one round) *)
      let length =
        1 + Rng.geometric rng ~p:(1.0 /. float_of_int mean_length)
      in
      total_length := !total_length + length;
      for k = 0 to length - 1 do
        let at = round + k in
        if at < rounds then events := (at, item) :: !events
      done
    done
  done;
  let ordered = List.sort compare (List.rev !events) in
  let protos =
    List.map
      (fun (arrival, item) ->
         Sched.Request.make ~arrival
           ~alternatives:(Placement.disks_of placement item)
           ~deadline:d)
      ordered
  in
  let inst =
    Sched.Instance.build ~n_resources:placement.Placement.disks ~d protos
  in
  ( inst,
    {
      started = !started;
      mean_length =
        (if !started = 0 then 0.0
         else float_of_int !total_length /. float_of_int !started);
    } )
