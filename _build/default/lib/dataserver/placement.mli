(** Replica placement: which disks hold the copies of each data item.

    The paper's application layer (Sec. 1): a distributed data server
    stores two copies of every data item on different disks ([Kor97]'s
    "random duplicated assignment"), and a request for an item may be
    served by either copy.  The placement policy decides the pairs — and
    it matters: structured placements correlate the alternatives of hot
    items, random placements decorrelate them.

    A placement maps item ids [0 .. items-1] to lists of [copies]
    distinct disks in [0 .. disks-1]. *)

type t = private {
  disks : int;
  items : int;
  copies : int;
  of_item : int array array; (** item -> its disks, length [copies] *)
}

val random : rng:Prelude.Rng.t -> disks:int -> items:int -> copies:int -> t
(** [Kor97]: each item's copies land on uniformly random distinct
    disks.
    @raise Invalid_argument if [copies > disks] or any count < 1. *)

val partner : disks:int -> items:int -> copies:int -> t
(** Structured mirroring: item [i]'s primary is disk [i mod disks] and
    copy [j] sits on disk [(i + j) mod disks] — chained declustering.
    Deterministic; adjacent disks share load. *)

val striped : disks:int -> items:int -> copies:int -> t
(** Primary [i mod disks]; copy [j] on the diametrically shifted disk
    [(i + j * disks / copies) mod disks] — mirrors half a rotation
    away, the classic RAID-10-ish layout. *)

val disks_of : t -> int -> int list
(** Alternatives of an item, primary first.
    @raise Invalid_argument on an unknown item. *)

val load_spread : t -> popularity:(int -> float) -> float
(** A placement-quality diagnostic: the max/mean ratio of expected disk
    load when item [i] is requested with weight [popularity i] and each
    request is split evenly across the item's copies.  1.0 is perfectly
    even. *)
