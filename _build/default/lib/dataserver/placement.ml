type t = {
  disks : int;
  items : int;
  copies : int;
  of_item : int array array;
}

let check ~disks ~items ~copies =
  if disks < 1 then invalid_arg "Placement: disks must be >= 1";
  if items < 1 then invalid_arg "Placement: items must be >= 1";
  if copies < 1 || copies > disks then
    invalid_arg "Placement: copies out of [1, disks]"

let random ~rng ~disks ~items ~copies =
  check ~disks ~items ~copies;
  let of_item =
    Array.init items (fun _ ->
        let chosen = ref [] in
        while List.length !chosen < copies do
          let d = Prelude.Rng.int rng disks in
          if not (List.mem d !chosen) then chosen := !chosen @ [ d ]
        done;
        Array.of_list !chosen)
  in
  { disks; items; copies; of_item }

let partner ~disks ~items ~copies =
  check ~disks ~items ~copies;
  let of_item =
    Array.init items (fun i ->
        Array.init copies (fun j -> (i + j) mod disks))
  in
  { disks; items; copies; of_item }

let striped ~disks ~items ~copies =
  check ~disks ~items ~copies;
  let shift = max 1 (disks / copies) in
  let of_item =
    Array.init items (fun i ->
        Array.init copies (fun j -> (i + (j * shift)) mod disks))
  in
  (* the shift can collide for copies > disks/shift combinations; fall
     back to consecutive slots to keep the copies distinct *)
  Array.iteri
    (fun i ds ->
       let seen = Hashtbl.create 4 in
       Array.iteri
         (fun j d ->
            let d = ref d in
            while Hashtbl.mem seen !d do
              d := (!d + 1) mod disks
            done;
            Hashtbl.replace seen !d ();
            ds.(j) <- !d;
            ignore j)
         ds;
       of_item.(i) <- ds)
    of_item;
  { disks; items; copies; of_item }

let disks_of t item =
  if item < 0 || item >= t.items then
    invalid_arg "Placement.disks_of: unknown item";
  Array.to_list t.of_item.(item)

let load_spread t ~popularity =
  let load = Array.make t.disks 0.0 in
  for i = 0 to t.items - 1 do
    let w = popularity i /. float_of_int t.copies in
    Array.iter (fun d -> load.(d) <- load.(d) +. w) t.of_item.(i)
  done;
  let total = Array.fold_left ( +. ) 0.0 load in
  if total <= 0.0 then 1.0
  else begin
    let mean = total /. float_of_int t.disks in
    let worst = Array.fold_left Float.max 0.0 load in
    worst /. mean
  end
