lib/dataserver/placement.ml: Array Float Hashtbl List Prelude
