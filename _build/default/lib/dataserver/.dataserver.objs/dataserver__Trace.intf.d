lib/dataserver/trace.mli: Placement Prelude Sched
