lib/dataserver/placement.mli: Prelude
