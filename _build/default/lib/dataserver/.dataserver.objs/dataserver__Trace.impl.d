lib/dataserver/trace.ml: List Placement Prelude Sched
