(** Client traffic over a replicated catalogue.

    Two generators, both turning item-level traffic into scheduling
    instances through a {!Placement.t}:

    - {!point_requests}: independent item accesses (OLTP-ish) — each
      request is one row access with Zipf-popular items.
    - {!sessions}: continuous-media streams in the spirit of the
      paper's predecessor [MBLR97] ("online scheduling of continuous
      media streams"): a client who starts a stream issues {e one
      request per round for the stream's whole duration}, each against
      the item's replica disks.  Hot movies therefore produce long
      correlated bursts on the same disk pair — exactly the correlation
      the paper's adversarial model warns idealised probabilistic
      analyses about. *)

val point_requests :
  rng:Prelude.Rng.t -> placement:Placement.t -> rounds:int -> load:float ->
  d:int -> ?zipf:float -> unit -> Sched.Instance.t
(** Poisson([load * disks]) accesses per round; items Zipf-ranked with
    exponent [zipf] (default 1.0); each access becomes a request for
    the item's replica disks with deadline [d]. *)

type session_stats = {
  started : int;       (** sessions admitted into the trace *)
  mean_length : float; (** mean requested stream length, in rounds *)
}

val sessions :
  rng:Prelude.Rng.t -> placement:Placement.t -> rounds:int ->
  arrivals_per_round:float -> mean_length:int -> d:int -> ?zipf:float ->
  unit -> Sched.Instance.t * session_stats
(** Poisson([arrivals_per_round]) new streams per round; each picks a
    Zipf-popular item and a geometric duration with the given mean (at
    least 1), then issues one request per round of its life (truncated
    at [rounds]).  Deadline [d] models the client's playout buffer. *)
