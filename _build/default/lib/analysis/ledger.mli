(** Windowed accounting of outcomes.

    The lower-bound adversaries are periodic; slicing an outcome into
    fixed windows shows the per-phase behaviour directly (how many
    arrived, were served, failed in each slice) and whether the run has
    reached its steady state — the empirical counterpart of the
    doubling-difference estimator. *)

type window = {
  start : int;       (** first round of the window (inclusive) *)
  stop : int;        (** last round (inclusive) *)
  arrived : int;     (** requests with arrival in the window *)
  served : int;      (** of those, eventually served (anywhere) *)
  failed : int;      (** of those, expired unserved *)
}

val by_window : Sched.Outcome.t -> period:int -> window list
(** Slice the instance's rounds into consecutive windows of [period]
    rounds (the last may be shorter) and attribute each request to the
    window of its {e arrival}.
    @raise Invalid_argument if [period < 1]. *)

val steady_state : Sched.Outcome.t -> period:int -> (int * int) option
(** The per-window [(arrived, served)] once it stabilises: the values
    shared by all interior windows (first and last discarded as warm-up
    and cool-down) when they agree, [None] when they don't — a quick
    periodicity check for adversary constructions. *)

val pp : Format.formatter -> window -> unit
