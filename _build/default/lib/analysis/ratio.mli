(** Competitive-ratio accounting: compare an online outcome with the
    exact offline optimum of the same instance. *)

type t = {
  opt : int;            (** offline optimum (maximum matching in [G]) *)
  alg : int;            (** requests the online strategy served *)
  total : int;          (** requests in the instance *)
  ratio : float;        (** [opt / alg] ([nan] when both are zero) *)
}

val of_outcome : Sched.Outcome.t -> t
(** Computes the optimum via {!Offline.Opt.value} (grouped max-flow). *)

val of_outcome_with_opt : Sched.Outcome.t -> opt:int -> t
(** When the optimum is already known (e.g. an adversary's analytic
    value, or a shared computation across strategies). *)

val exact : t -> Prelude.Rat.t
(** [opt / alg] as an exact rational.
    @raise Division_by_zero when [alg = 0]. *)

val pp : Format.formatter -> t -> unit
