type t = {
  census : (int * int) list;
  opt : int;
  alg : int;
  n_paths : int;
}

let of_outcome (o : Sched.Outcome.t) =
  let g, alg_matching = Sched.Outcome.to_matching o in
  let opt_matching =
    Graph.Hopcroft_karp.solve_from g
      (Graph.Matching.greedy_maximal g)
  in
  let census = Graph.Altpath.census g alg_matching opt_matching in
  {
    census;
    opt = Graph.Matching.size opt_matching;
    alg = Graph.Matching.size alg_matching;
    n_paths = List.fold_left (fun acc (_, c) -> acc + c) 0 census;
  }

let min_order t =
  match t.census with [] -> None | (o, _) :: _ -> Some o

let paths_of_order t order =
  Option.value ~default:0 (List.assoc_opt order t.census)

(* Bounded-depth alternating search from every failed request: an
   augmenting path of order k uses k request nodes, so we explore up to
   [order] request levels.  Marks visited requests to keep the search
   linear per start. *)
let has_augmenting_of_order (o : Sched.Outcome.t) ~order =
  if order < 1 then invalid_arg "Audit.has_augmenting_of_order: order >= 1";
  let g, m = Sched.Outcome.to_matching o in
  let n_req = Graph.Bipartite.n_left g in
  let found = ref false in
  let visited = Array.make n_req (-1) in
  let rec explore ~start ~depth u =
    if depth > order || !found then ()
    else begin
      visited.(u) <- start;
      Prelude.Ivec.iter
        (fun e ->
           if not !found then begin
             let v = Graph.Bipartite.edge_right g e in
             let occupant = m.Graph.Matching.right_to.(v) in
             if occupant < 0 then found := true
             else if visited.(occupant) <> start && depth < order then
               explore ~start ~depth:(depth + 1) occupant
           end)
        (Graph.Bipartite.adj_left g u)
    end
  in
  for u = 0 to n_req - 1 do
    if (not !found) && not (Graph.Matching.is_matched_left m u) then
      explore ~start:u ~depth:1 u
  done;
  !found

let pp fmt t =
  Format.fprintf fmt "opt=%d alg=%d paths=[%s]" t.opt t.alg
    (String.concat "; "
       (List.map
          (fun (o, c) -> Printf.sprintf "order %d x%d" o c)
          t.census))
