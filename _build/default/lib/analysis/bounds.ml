open Prelude

let check_d d = if d < 2 then invalid_arg "Bounds: d must be >= 2"

let fix_lb ~d =
  check_d d;
  Rat.make ((2 * d) - 1) d

let current_lb_limit = Rat.make 15820 10000

let current_lb_float = Float.exp 1.0 /. (Float.exp 1.0 -. 1.0)

let fix_balance_lb ~d =
  check_d d;
  if d = 2 then Rat.make 4 3 else Rat.make (3 * d) ((2 * d) + 2)

let eager_lb = Rat.make 4 3

let balance_lb ~d =
  check_d d;
  if d = 2 then Rat.make 4 3
  else if (d + 1) mod 3 = 0 then Rat.make ((5 * d) + 2) ((4 * d) + 1)
  else
    invalid_arg "Bounds.balance_lb: defined for d = 2 or d = 3x - 1 only"

let universal_lb = Rat.make 45 41

let universal_lb_finite ~d =
  if d < 3 || d mod 3 <> 0 then
    invalid_arg "Bounds.universal_lb_finite: need 3 | d";
  let lost = ((8 * d) + 8) / 9 in
  (* ceil(8d/9) *)
  Rat.make (10 * d) ((10 * d) - lost)

let fix_ub ~d =
  check_d d;
  Rat.make ((2 * d) - 1) d

let fix_balance_ub ~d =
  check_d d;
  if d = 2 then Rat.make 4 3
  else if d = 3 then Rat.make 7 5
  else Rat.make ((2 * d) - 2) d

let eager_ub ~d =
  check_d d;
  Rat.make ((3 * d) - 2) ((2 * d) - 1)

let balance_ub ~d =
  check_d d;
  if d = 2 then Rat.make 4 3
  else Rat.make (6 * (d - 1)) ((4 * d) - 3)

let edf_ub ~alternatives =
  if alternatives < 1 then invalid_arg "Bounds.edf_ub: need c >= 1";
  Rat.of_int alternatives

let local_fix_ratio = Rat.of_int 2

let local_eager_ub = Rat.make 5 3

let table1 ~d =
  check_d d;
  let balance_lb_opt =
    if d = 2 || (d + 1) mod 3 = 0 then Some (balance_lb ~d) else None
  in
  [
    ("A_fix", Some (fix_lb ~d), Some (fix_ub ~d));
    ( "A_current",
      Some (if d = 2 then Rat.make 4 3 else current_lb_limit),
      Some (fix_ub ~d) );
    ("A_fix_balance", Some (fix_balance_lb ~d), Some (fix_balance_ub ~d));
    ("A_eager", Some eager_lb, Some (eager_ub ~d));
    ("A_balance", balance_lb_opt, Some (balance_ub ~d));
    ( "any online",
      (if d mod 3 = 0 then Some (universal_lb_finite ~d) else Some universal_lb),
      None );
  ]
