module Instance = Sched.Instance
module Request = Sched.Request

let check_interval ~s ~t =
  if s < 0 || s > t then invalid_arg "Hall: bad interval"

(* confined(s,t) = number of requests whose whole window lies in [s,t];
   computed for all intervals at once via a 2D suffix/prefix sum over
   the (arrival, last_round) histogram. *)
let confined_table inst =
  let h = max 1 inst.Instance.horizon in
  let m = Array.make_matrix h h 0 in
  Array.iter
    (fun (r : Request.t) ->
       let a = r.Request.arrival and l = Request.last_round r in
       if a < h && l < h then m.(a).(l) <- m.(a).(l) + 1)
    inst.Instance.requests;
  (* c.(s).(t) = sum over a >= s, l <= t of m.(a).(l) *)
  let c = Array.make_matrix h h 0 in
  for s = h - 1 downto 0 do
    for t = 0 to h - 1 do
      let here = m.(s).(t) in
      let below = if s + 1 < h then c.(s + 1).(t) else 0 in
      let left = if t > 0 then c.(s).(t - 1) else 0 in
      let overlap = if s + 1 < h && t > 0 then c.(s + 1).(t - 1) else 0 in
      c.(s).(t) <- here + below + left - overlap
    done
  done;
  c

let interval_deficiency inst ~s ~t =
  check_interval ~s ~t;
  let confined = ref 0 in
  Array.iter
    (fun (r : Request.t) ->
       if r.Request.arrival >= s && Request.last_round r <= t then
         incr confined)
    inst.Instance.requests;
  max 0 (!confined - (inst.Instance.n_resources * (t - s + 1)))

let opt_upper_bound inst =
  let total = Instance.n_requests inst in
  if total = 0 then 0
  else begin
    let h = inst.Instance.horizon in
    let c = confined_table inst in
    let n = inst.Instance.n_resources in
    (* dp.(t+1) = best deficiency sum using disjoint intervals within
       rounds 0..t *)
    let dp = Array.make (h + 1) 0 in
    for t = 0 to h - 1 do
      dp.(t + 1) <- dp.(t);
      for s = 0 to t do
        let def = max 0 (c.(s).(t) - (n * (t - s + 1))) in
        if dp.(s) + def > dp.(t + 1) then dp.(t + 1) <- dp.(s) + def
      done
    done;
    total - dp.(h)
  end

let resource_interval_deficiency inst ~resource ~s ~t =
  check_interval ~s ~t;
  if resource < 0 || resource >= inst.Instance.n_resources then
    invalid_arg "Hall: resource out of range";
  let confined = ref 0 in
  Array.iter
    (fun (r : Request.t) ->
       if
         r.Request.arrival >= s
         && Request.last_round r <= t
         && Array.for_all (( = ) resource) r.Request.alternatives
       then incr confined)
    inst.Instance.requests;
  max 0 (!confined - (t - s + 1))
