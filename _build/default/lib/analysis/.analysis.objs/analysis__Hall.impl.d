lib/analysis/hall.ml: Array Sched
