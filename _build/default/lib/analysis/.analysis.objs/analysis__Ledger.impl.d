lib/analysis/ledger.ml: Array Format List Sched
