lib/analysis/audit.ml: Array Format Graph List Option Prelude Printf Sched String
