lib/analysis/ratio.ml: Format Offline Prelude Sched
