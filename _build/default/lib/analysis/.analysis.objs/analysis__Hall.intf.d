lib/analysis/hall.mli: Sched
