lib/analysis/audit.mli: Format Sched
