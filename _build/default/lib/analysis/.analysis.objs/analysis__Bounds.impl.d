lib/analysis/bounds.ml: Float Prelude Rat
