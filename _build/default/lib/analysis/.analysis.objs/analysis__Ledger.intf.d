lib/analysis/ledger.mli: Format Sched
