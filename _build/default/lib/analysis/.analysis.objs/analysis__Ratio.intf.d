lib/analysis/ratio.mli: Format Prelude Sched
