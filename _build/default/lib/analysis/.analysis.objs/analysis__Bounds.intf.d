lib/analysis/bounds.mli: Prelude Rat
