module Instance = Sched.Instance
module Request = Sched.Request

type window = {
  start : int;
  stop : int;
  arrived : int;
  served : int;
  failed : int;
}

let by_window (o : Sched.Outcome.t) ~period =
  if period < 1 then invalid_arg "Ledger.by_window: period must be >= 1";
  let inst = o.Sched.Outcome.instance in
  let h = inst.Instance.horizon in
  if h = 0 then []
  else begin
    let n_windows = (h + period - 1) / period in
    let arrived = Array.make n_windows 0 in
    let served = Array.make n_windows 0 in
    Array.iteri
      (fun id sv ->
         let w = inst.Instance.requests.(id).Request.arrival / period in
         arrived.(w) <- arrived.(w) + 1;
         if sv <> None then served.(w) <- served.(w) + 1)
      o.Sched.Outcome.served_at;
    List.init n_windows (fun w ->
        {
          start = w * period;
          stop = min ((w + 1) * period - 1) (h - 1);
          arrived = arrived.(w);
          served = served.(w);
          failed = arrived.(w) - served.(w);
        })
  end

let steady_state o ~period =
  match by_window o ~period with
  | [] | [ _ ] | [ _; _ ] -> None
  | windows ->
    let interior = List.tl (List.rev (List.tl (List.rev windows))) in
    (match interior with
     | [] -> None
     | w0 :: rest ->
       let key w = (w.arrived, w.served) in
       if List.for_all (fun w -> key w = key w0) rest then Some (key w0)
       else None)

let pp fmt w =
  Format.fprintf fmt "rounds %d..%d: arrived %d, served %d, failed %d"
    w.start w.stop w.arrived w.served w.failed
