(** Hall-style capacity bounds on the offline optimum.

    For any round interval [\[s, t\]], the requests whose whole service
    window lies inside it can receive at most [n * (t - s + 1)] services
    (and only on resources they actually name).  Summing the worst
    deficiencies over disjoint intervals gives an upper bound on the
    optimum that needs no matching computation — an independent sanity
    certificate for {!Offline.Opt}, and an exact value in the
    single-resource case, where interval deficiencies are precisely
    Hall's condition for unit jobs. *)

val interval_deficiency : Sched.Instance.t -> s:int -> t:int -> int
(** [max 0 (confined - capacity)] where [confined] counts requests with
    [s <= arrival] and [last_round <= t], and capacity is
    [n_resources * (t - s + 1)].
    @raise Invalid_argument unless [0 <= s <= t]. *)

val opt_upper_bound : Sched.Instance.t -> int
(** [total - (max deficiency sum over disjoint intervals)], computed by
    weighted interval scheduling over all O(horizon²) intervals.  Always
    [>= Offline.Opt.value] … i.e. an upper bound on it; tight whenever
    losses are forced purely by interval capacity (always, for
    [n = 1]). *)

val resource_interval_deficiency :
  Sched.Instance.t -> resource:int -> s:int -> t:int -> int
(** The per-resource refinement: requests {e all of whose alternatives
    equal} [resource] and whose window lies in [\[s, t\]], against that
    single resource's capacity [t - s + 1].  Sharper on single-choice
    traffic. *)
