(** Closed-form competitive-ratio bounds from the paper, as exact
    rationals (Table 1, Theorems 3.3–3.8, Observations 3.1–3.2). *)

open Prelude

(** {1 Lower bounds (Section 2)} *)

val fix_lb : d:int -> Rat.t
(** Theorem 2.1: [2 - 1/d]. *)

val current_lb_limit : Rat.t
(** Theorem 2.2 in the limit [d → ∞]: [e/(e-1)] is irrational; this is
    the convergent [1.5819767…] truncated to [15820/10000] for display
    comparisons only (use {!current_lb_float} for numerics). *)

val current_lb_float : float
(** [e /. (e -. 1.)]. *)

val fix_balance_lb : d:int -> Rat.t
(** Theorems 2.3 / 2.4: [4/3] for [d = 2], else [3d/(2d+2)]. *)

val eager_lb : Rat.t
(** Theorem 2.4: [4/3] for every [d >= 2]. *)

val balance_lb : d:int -> Rat.t
(** Theorems 2.4 / 2.5: [4/3] for [d = 2]; [(5d+2)/(4d+1)] for
    [d = 3x - 1]; undefined otherwise.
    @raise Invalid_argument unless [d = 2] or [d ≡ 2 (mod 3)]. *)

val universal_lb : Rat.t
(** Theorem 2.6: [45/41]. *)

val universal_lb_finite : d:int -> Rat.t
(** Theorem 2.6 for a finite multiple of 3:
    [10d / (10d - ceil(8d/9))]. *)

(** {1 Upper bounds (Section 3)} *)

val fix_ub : d:int -> Rat.t
(** Theorem 3.3: [2 - 1/d] (also [A_current]). *)

val fix_balance_ub : d:int -> Rat.t
(** Theorem 3.4: [4/3] (d=2), [7/5] (d=3), [2 - 2/d] (d>3). *)

val eager_ub : d:int -> Rat.t
(** Theorem 3.5: [(3d-2)/(2d-1)]. *)

val balance_ub : d:int -> Rat.t
(** Theorem 3.6: [4/3] (d=2), [6(d-1)/(4d-3)] (d>2). *)

val edf_ub : alternatives:int -> Rat.t
(** Observations 3.1/3.2 (and the noted extension): [c]. *)

val local_fix_ratio : Rat.t
(** Theorem 3.7: exactly 2. *)

val local_eager_ub : Rat.t
(** Theorem 3.8: [5/3]. *)

val table1 : d:int -> (string * Rat.t option * Rat.t option) list
(** The rows of Table 1 at a given [d]:
    [(strategy, lower bound if defined at this d, upper bound)]. *)
