(** Structural audits of online outcomes against the optimum.

    The upper-bound proofs of Section 3 rest on structural facts about
    the augmenting paths the optimum holds against the online matching:
    maximal strategies admit none of order 1 (Thm 3.3), [A_eager] and
    [A_balance] none of order 1 or 2 (Thms 3.5/3.6), and [A_local_eager]
    handles order 2 except through one counted exception (Thm 3.8).
    This module decomposes [ALG ⊕ OPT] and reports the order census so
    tests and experiments can check those facts on real runs. *)

type t = {
  census : (int * int) list;
      (** (order, count) over augmenting paths for the online matching *)
  opt : int;
  alg : int;
  n_paths : int; (** total augmenting paths = opt - alg *)
}

val of_outcome : Sched.Outcome.t -> t
(** Builds the paper graph, one maximum matching, and the census. *)

val min_order : t -> int option
(** Smallest augmenting-path order present, if any. *)

val paths_of_order : t -> int -> int

val has_augmenting_of_order : Sched.Outcome.t -> order:int -> bool
(** Direct existence check (independent of any particular optimum
    matching): is there an augmenting path for the online matching with
    at most [order] request nodes?  [order = 1] asks for a failed request
    with a free alternative slot (impossible for maximal strategies,
    Thm 3.3); [order = 2] additionally follows one occupied slot to its
    occupant's other free slots (impossible for [A_eager]/[A_balance],
    Thms 3.5/3.6). *)

val pp : Format.formatter -> t -> unit
