lib/distnet/net.ml: Array Hashtbl List Prelude
