lib/distnet/net.mli: Prelude
