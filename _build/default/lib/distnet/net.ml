type 'a message = {
  sender : int;
  dst : int;
  deadline_key : int;
  tagged : bool;
  payload : 'a;
}

type t = {
  n : int;
  capacity : int;
  priority : sender:int -> dst:int -> int;
  loss : float;
  loss_rng : Prelude.Rng.t;
  mutable comm_rounds : int;
  mutable sent : int;
  mutable bounced : int;
}

let create ~n ~capacity ?(priority = fun ~sender:_ ~dst:_ -> 0)
    ?(loss = 0.0) ?loss_rng () =
  if n < 1 then invalid_arg "Net.create: n must be >= 1";
  if capacity < 1 then invalid_arg "Net.create: capacity must be >= 1";
  if not (loss >= 0.0 && loss <= 1.0) then
    invalid_arg "Net.create: loss out of [0, 1]";
  let loss_rng =
    match loss_rng with
    | Some rng -> rng
    | None -> Prelude.Rng.create ~seed:0
  in
  { n; capacity; priority; loss; loss_rng;
    comm_rounds = 0; sent = 0; bounced = 0 }

let exchange t msgs =
  match msgs with
  | [] -> []
  | _ :: _ ->
    t.comm_rounds <- t.comm_rounds + 1;
    t.sent <- t.sent + List.length msgs;
    (* failure injection: drop untagged messages before the mailbox;
       tagged messages keep their delivery guarantee *)
    let survives m =
      m.tagged || t.loss = 0.0
      || Prelude.Rng.float t.loss_rng 1.0 >= t.loss
    in
    (* bucket by destination *)
    let buckets = Array.make t.n [] in
    List.iter
      (fun m ->
         if m.dst < 0 || m.dst >= t.n then
           invalid_arg "Net.exchange: destination out of range";
         if survives m then buckets.(m.dst) <- m :: buckets.(m.dst))
      msgs;
    let delivered = Hashtbl.create 64 in
    Array.iteri
      (fun dst inbox ->
         let tagged, untagged = List.partition (fun m -> m.tagged) inbox in
         List.iter (fun m -> Hashtbl.replace delivered (m.sender, dst) ()) tagged;
         (* LDF: keep the [capacity] messages with the latest deadlines;
            ties by higher priority, then lower sender id *)
         let ranked =
           List.sort
             (fun a b ->
                if a.deadline_key <> b.deadline_key then
                  compare b.deadline_key a.deadline_key
                else begin
                  let pa = t.priority ~sender:a.sender ~dst
                  and pb = t.priority ~sender:b.sender ~dst in
                  if pa <> pb then compare pb pa
                  else compare a.sender b.sender
                end)
             untagged
         in
         List.iteri
           (fun i m ->
              if i < t.capacity then
                Hashtbl.replace delivered (m.sender, dst) ())
           ranked)
      buckets;
    List.map
      (fun m ->
         let ok = Hashtbl.mem delivered (m.sender, m.dst) in
         if not ok then t.bounced <- t.bounced + 1;
         (m, ok))
      msgs

let tick t = t.comm_rounds <- t.comm_rounds + 1
let comm_rounds t = t.comm_rounds
let messages_sent t = t.sent
let messages_bounced t = t.bounced

let reset_counters t =
  t.comm_rounds <- 0;
  t.sent <- 0;
  t.bounced <- 0
