let group ~arrival ~alternatives ~deadline ~count =
  List.init count (fun _ ->
      Sched.Request.make ~arrival ~alternatives ~deadline)

let ring ~arrival ~resources ~d =
  let a = Array.length resources in
  if a < 2 then invalid_arg "Block.ring: need at least two resources";
  List.concat
    (List.init a (fun i ->
         group ~arrival
           ~alternatives:[ resources.(i); resources.((i + 1) mod a) ]
           ~deadline:d ~count:d))

let pair ~arrival ~r0 ~r1 ~d =
  group ~arrival ~alternatives:[ r0; r1 ] ~deadline:d ~count:d
  @ group ~arrival ~alternatives:[ r1; r0 ] ~deadline:d ~count:d

let one ~arrival ~anchor ~target ~d =
  group ~arrival ~alternatives:[ target; anchor ] ~deadline:d ~count:d
