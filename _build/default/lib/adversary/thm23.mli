(** Theorem 2.3 adversary: forces [A_fix_balance] to ratio [3d/(2d+2)].

    Six resources in three pairs P0=(S1,S2), P1=(S3,S4), P2=(S5,S6); [d]
    even.  Round 0 blocks P0 with a [block(2,d)].  Phase [p >= 1] starts
    at round [d/2 + (p-1)(d/2+1)], when the pair blocked in the previous
    step is still busy for [d/2] more rounds; it injects [R1] ([d/2]
    requests to (blocked.0, target.0)) and [R2] ([d/2] to (blocked.1,
    target.1)), then one round later a [block(2,d)] on the target pair.
    The balancing function forces [R1],[R2] onto the target pair (their
    earliest free slots), so only [d+2] of the following [2d] block
    requests fit; the optimum waits and serves everything.

    Per phase: OPT = 3d, A_fix_balance = 2d+2, ratio → 3d/(2d+2). *)

val make : d:int -> phases:int -> Scenario.t
(** @raise Invalid_argument if [d] is odd, [d < 2] or [phases < 1]. *)

val n_resources : int
(** Always 6. *)
