(** Theorem 2.1 adversary: forces [A_fix] to competitive ratio [2 - 1/d].

    Four resources S1..S4 (indices 0..3).  Round 0 injects a [block(2,d)]
    on (S2,S3).  Phase [i >= 1] injects, at round [i*d - 1], the groups
    [R1] ([d-1] requests to (S1,S2)) and [R2] ([d-1] to (S3,S4)), and at
    round [i*d] another [block(2,d)] on (S2,S3).  The bias makes [A_fix]
    schedule [R1] on S2 and [R2] on S3, where they block all but two of
    the following block's slots; the optimum serves everything
    ([R1]→S1, [R2]→S4, blocks→S2,S3).

    Per phase: OPT = 4d-2, A_fix = 2d, ratio → 2 - 1/d. *)

val make : d:int -> phases:int -> Scenario.t
(** @raise Invalid_argument if [d < 2] or [phases < 1]. *)

val n_resources : int
(** Always 4. *)
