type t = {
  name : string;
  instance : Sched.Instance.t;
  bias : Sched.Strategy.bias;
  opt_hint : int option;
  alg_hint : int option;
}

module Builder = struct
  type 'role b = {
    mutable rev_entries : (Sched.Request.t * 'role) list;
    mutable n : int;
    mutable sorted_cache : (Sched.Request.t * 'role) array option;
  }

  let create () = { rev_entries = []; n = 0; sorted_cache = None }

  let add b role reqs =
    List.iter
      (fun r ->
         b.rev_entries <- (r, role) :: b.rev_entries;
         b.n <- b.n + 1)
      reqs;
    b.sorted_cache <- None

  (* Scenarios may emit requests out of chronological order (e.g. all
     maintenance blocks up front); instances require arrival order, so
     the builder stable-sorts by arrival at finalisation and ids refer
     to the sorted positions. *)
  let sorted b =
    match b.sorted_cache with
    | Some a -> a
    | None ->
      let a =
        List.stable_sort
          (fun ((r1 : Sched.Request.t), _) ((r2 : Sched.Request.t), _) ->
             compare r1.Sched.Request.arrival r2.Sched.Request.arrival)
          (List.rev b.rev_entries)
        |> Array.of_list
      in
      b.sorted_cache <- Some a;
      a

  let protos b = Array.to_list (Array.map fst (sorted b))

  let role_of b id =
    if id < 0 || id >= b.n then
      invalid_arg "Scenario.Builder.role_of: id out of range";
    snd (sorted b).(id)

  let count b = b.n
end
