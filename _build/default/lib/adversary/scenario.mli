(** Packaged adversarial workloads.

    Each lower-bound theorem of the paper becomes a [Scenario.t]: the
    request sequence, the tie-break bias realising the theorem's
    "the strategy can be implemented such that …" clause, and analytic
    hints (expected OPT / expected strategy performance) the tests check
    the simulation against exactly.

    The [Builder] sub-API tracks a role for every emitted request (which
    group of the construction it belongs to), so bias functions can
    dispatch on the role of a request id — instance ids equal emission
    positions. *)

type t = {
  name : string;
  instance : Sched.Instance.t;
  bias : Sched.Strategy.bias;
  opt_hint : int option;  (** analytic offline optimum, when known *)
  alg_hint : int option;
      (** analytic performance of the theorem's target strategy under
          this bias, when known *)
}

module Builder : sig
  type 'role b

  val create : unit -> 'role b

  val add : 'role b -> 'role -> Sched.Request.t list -> unit
  (** Append requests, all tagged with the given role.  Scenarios may
      emit out of chronological order; finalisation stable-sorts by
      arrival round, and ids refer to the sorted positions. *)

  val protos : 'role b -> Sched.Request.t list
  (** All requests, stably sorted by arrival round. *)

  val role_of : 'role b -> int -> 'role
  (** Role of the request that will receive the given id.
      @raise Invalid_argument out of range. *)

  val count : 'role b -> int
end
