let n_resources = 4

type role =
  | Steered of { inner : int; until : int }
      (* R1/R2: bias +1 on [inner] before round [until] *)
  | Plain (* R3 and blocks *)

let make ~d ~phases =
  if d < 2 || d mod 2 <> 0 then
    invalid_arg "Thm24.make: d must be even and >= 2";
  if phases < 1 then invalid_arg "Thm24.make: phases must be >= 1";
  let b = Scenario.Builder.create () in
  (* S1..S4 = 0..3; round 0 blocks (S1,S4) *)
  Scenario.Builder.add b Plain (Block.pair ~arrival:0 ~r0:0 ~r1:3 ~d);
  for i = 1 to phases do
    let start = ((i - 1) * d) + (d / 2) in
    let odd = i mod 2 = 1 in
    (* odd phases clog (S2,S3); even phases clog (S1,S4) *)
    let r1_inner = if odd then 1 else 0 in
    let r2_inner = if odd then 2 else 3 in
    let pair0 = if odd then 1 else 0 and pair1 = if odd then 2 else 3 in
    let until = start + (d / 2) in
    Scenario.Builder.add b
      (Steered { inner = r1_inner; until })
      (Block.group ~arrival:start ~alternatives:[ 0; 1 ] ~deadline:d
         ~count:(d / 2));
    Scenario.Builder.add b
      (Steered { inner = r2_inner; until })
      (Block.group ~arrival:start ~alternatives:[ 2; 3 ] ~deadline:d
         ~count:(d / 2));
    Scenario.Builder.add b Plain
      (Block.group ~arrival:start ~alternatives:[ pair0; pair1 ] ~deadline:d
         ~count:d);
    Scenario.Builder.add b Plain
      (Block.pair ~arrival:(start + (d / 2)) ~r0:pair0 ~r1:pair1 ~d)
  done;
  let instance =
    Sched.Instance.build ~n_resources ~d (Scenario.Builder.protos b)
  in
  (* R1/R2 are both steered onto the pair R3 needs and pushed to be
     served in the first d/2 rounds of the phase, so that when the block
     arrives they are already gone and cannot be moved out of the way *)
  let bias ~request ~resource ~round =
    match Scenario.Builder.role_of b request.Sched.Request.id with
    | Steered { inner; until } when resource = inner && round < until -> 1
    | Steered _ | Plain -> 0
  in
  {
    Scenario.name = Printf.sprintf "thm2.4(d=%d,phases=%d)" d phases;
    instance;
    bias;
    opt_hint = Some ((2 * d) + (phases * 4 * d));
    alg_hint = Some ((2 * d) + (phases * 3 * d));
  }
