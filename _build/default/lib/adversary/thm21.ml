let n_resources = 4

type role = Block | R1 | R2

let make ~d ~phases =
  if d < 2 then invalid_arg "Thm21.make: d must be >= 2";
  if phases < 1 then invalid_arg "Thm21.make: phases must be >= 1";
  let b = Scenario.Builder.create () in
  (* resources: S1=0 S2=1 S3=2 S4=3 *)
  Scenario.Builder.add b Block (Block.pair ~arrival:0 ~r0:1 ~r1:2 ~d);
  for i = 1 to phases do
    let start = (i * d) - 1 in
    Scenario.Builder.add b R1
      (Block.group ~arrival:start ~alternatives:[ 0; 1 ] ~deadline:d
         ~count:(d - 1));
    Scenario.Builder.add b R2
      (Block.group ~arrival:start ~alternatives:[ 2; 3 ] ~deadline:d
         ~count:(d - 1));
    Scenario.Builder.add b Block (Block.pair ~arrival:(i * d) ~r0:1 ~r1:2 ~d)
  done;
  let instance =
    Sched.Instance.build ~n_resources ~d (Scenario.Builder.protos b)
  in
  (* steer R1 toward S2 (resource 1) and R2 toward S3 (resource 2); the
     strategy's own tiers sit above this bias, so the choice is only
     exercised among the matchings A_fix's definition allows *)
  let bias ~request ~resource ~round:_ =
    match Scenario.Builder.role_of b request.Sched.Request.id with
    | R1 -> if resource = 1 then 1 else 0
    | R2 -> if resource = 2 then 1 else 0
    | Block -> 0
  in
  {
    Scenario.name = Printf.sprintf "thm2.1(d=%d,phases=%d)" d phases;
    instance;
    bias;
    opt_hint = Some ((2 * d) + (phases * ((4 * d) - 2)));
    alg_hint = Some ((2 * d) + (phases * 2 * d));
  }
