(** Theorem 2.4 adversary: forces [A_eager] to ratio 4/3 for any even
    [d >= 2] (and, at [d = 2], also [A_current], [A_fix_balance] and
    [A_balance]).

    Four resources S1..S4.  Round 0 blocks (S1,S4).  Phase [i >= 1]
    starts at round [(i-1)d + d/2], while the previous block still holds
    its pair for [d/2] more rounds.  Odd phases inject [R1] ([d/2] to
    (S1,S2)), [R2] ([d/2] to (S3,S4)) and [R3] ([d] to (S2,S3)); [d/2]
    rounds later a [block(2,d)] lands on (S2,S3).  Even phases swap the
    roles of the pairs: [R3] and the block target (S1,S4).  The bias
    makes the strategy stuff [R1],[R2] onto the pair [R3] needs, so
    [R3] + block can realise only [2d] of their [3d] requests; the
    optimum serves all [4d].

    Per phase: OPT = 4d, ALG = 3d, ratio → 4/3. *)

val make : d:int -> phases:int -> Scenario.t
(** @raise Invalid_argument if [d] is odd, [d < 2] or [phases < 1]. *)

val n_resources : int
(** Always 4. *)
