let n_resources = 4

type role = Favoured | Victim (* R1/R2 vs R3 in the mailbox tie-break *)

let make ~d ~intervals =
  if d < 1 then invalid_arg "Thm37.make: d must be >= 1";
  if intervals < 1 then invalid_arg "Thm37.make: intervals must be >= 1";
  let b = Scenario.Builder.create () in
  for m = 0 to intervals - 1 do
    let arrival = m * d in
    (* S1=0 S2=1 S3=2 S4=3; alternative order matters to the protocol *)
    Scenario.Builder.add b Favoured
      (Block.group ~arrival ~alternatives:[ 0; 1 ] ~deadline:d ~count:d);
    Scenario.Builder.add b Favoured
      (Block.group ~arrival ~alternatives:[ 2; 3 ] ~deadline:d ~count:d);
    Scenario.Builder.add b Victim
      (Block.group ~arrival ~alternatives:[ 0; 2 ] ~deadline:d
         ~count:(2 * d))
  done;
  let instance =
    Sched.Instance.build ~n_resources ~d (Scenario.Builder.protos b)
  in
  let priority ~sender ~dst:_ =
    match Scenario.Builder.role_of b sender with
    | Favoured -> 1
    | Victim -> 0
  in
  ( {
      Scenario.name = Printf.sprintf "thm3.7(d=%d,intervals=%d)" d intervals;
      instance;
      bias = Sched.Strategy.no_bias;
      opt_hint = Some (intervals * 4 * d);
      alg_hint = Some (intervals * 2 * d);
    },
    priority )
