let n_resources = 10

(* Five pairs of resources; pair g owns resources 2g and 2g+1. *)
let pair_resources g = [| 2 * g; (2 * g) + 1 |]

type t = {
  d : int;
  phases : int;
  mutable next_id : int; (* mirrors the engine's id assignment *)
  mutable blocked : int array; (* three currently blocked pair indices *)
  mutable free : int array; (* two currently free pair indices *)
  mutable colored : int list array; (* colour -> ids of current phase *)
}

let create ~d ~phases =
  if d < 3 || d mod 3 <> 0 then
    invalid_arg "Thm26.create: d must be a positive multiple of 3";
  if phases < 1 then invalid_arg "Thm26.create: phases must be >= 1";
  {
    d;
    phases;
    next_id = 0;
    blocked = [| 0; 1; 2 |];
    free = [| 3; 4 |];
    colored = Array.make 3 [];
  }

let last_arrival_round ~d ~phases = phases * d

let opt_expected ~d ~phases = (6 * d) + (10 * d * phases)

let ratio_bound = Prelude.Rat.make 45 41

(* Emit [reqs], keeping the id mirror in sync, and return the ids. *)
let emit t reqs =
  List.map
    (fun r ->
       let id = t.next_id in
       t.next_id <- t.next_id + 1;
       (id, r))
    reqs

let block6 t ~arrival ~pairs =
  let resources = Array.concat (List.map pair_resources (Array.to_list pairs)) in
  List.map snd (emit t (Block.ring ~arrival ~resources ~d:t.d))

(* Phase-1 colours: for each colour c, 4d/3 requests; first alternatives
   cycle over the four free resources (d/3 each), second alternatives
   cycle over the two resources of the blocked pair the colour points
   at. *)
let colored_requests t ~arrival =
  let free_res = Array.concat (List.map pair_resources (Array.to_list t.free)) in
  let out = ref [] in
  for c = 0 to 2 do
    let second_res = pair_resources t.blocked.(c) in
    let reqs =
      List.init (4 * t.d / 3) (fun j ->
          Sched.Request.make ~arrival
            ~alternatives:
              [ free_res.(j mod 4); second_res.(j mod 2) ]
            ~deadline:t.d)
    in
    let tagged = emit t reqs in
    t.colored.(c) <- List.map fst tagged;
    out := !out @ List.map snd tagged
  done;
  !out

let adversary t : Sched.Engine.adaptive =
 fun ~round ~is_served ->
  let d = t.d in
  if round = 0 then
    block6 t ~arrival:0 ~pairs:t.blocked
  else if round >= d && round mod d = 0 && round / d <= t.phases then begin
    (* block boundary: pick the colour with the most unserved requests,
       re-block the free duo plus its pair, and rotate the roles *)
    let unserved c =
      List.length (List.filter (fun id -> not (is_served id)) t.colored.(c))
    in
    let worst = ref 0 in
    for c = 1 to 2 do
      if unserved c > unserved !worst then worst := c
    done;
    let reblocked_pair = t.blocked.(!worst) in
    let survivors =
      Array.of_list
        (List.filteri (fun i _ -> i <> !worst) (Array.to_list t.blocked))
    in
    let new_blocked = [| t.free.(0); t.free.(1); reblocked_pair |] in
    let reqs = block6 t ~arrival:round ~pairs:new_blocked in
    t.blocked <- new_blocked;
    t.free <- survivors;
    Array.fill t.colored 0 3 [];
    reqs
  end
  else if round mod d = 2 * d / 3 && round / d < t.phases then
    colored_requests t ~arrival:round
  else []
