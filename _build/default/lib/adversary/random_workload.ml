module Rng = Prelude.Rng

type profile =
  | Uniform
  | Zipf of float
  | Bursty of { period : int; duty : float; peak : float }

let check ~n ~d ~rounds ~load ~alternatives =
  if n < 1 then invalid_arg "Random_workload: n must be >= 1";
  if d < 1 then invalid_arg "Random_workload: d must be >= 1";
  if rounds < 1 then invalid_arg "Random_workload: rounds must be >= 1";
  if not (load >= 0.0) then invalid_arg "Random_workload: negative load";
  if alternatives < 1 || alternatives > n then
    invalid_arg "Random_workload: alternatives out of [1, n]"

(* [k] distinct resources; the first is drawn from the profile, the
   rest re-drawn until distinct (k is tiny compared to n in practice,
   and the loop is guarded by the distinctness check above). *)
let draw_alternatives ~n ~k pick =
  let chosen = ref [] in
  while List.length !chosen < k do
    let r = pick () in
    if not (List.mem r !chosen) then chosen := !chosen @ [ r ]
  done;
  ignore n;
  !chosen

let rate_of_round ~profile ~load ~n round =
  let base = load *. float_of_int n in
  match profile with
  | Uniform | Zipf _ -> base
  | Bursty { period; duty; peak } ->
    let phase = float_of_int (round mod period) /. float_of_int period in
    if phase < duty then base *. peak
    else begin
      (* keep the mean: the off part compensates *)
      let off = (1.0 -. (duty *. peak)) /. (1.0 -. duty) in
      base *. Float.max 0.0 off
    end

let picker rng ~profile ~n () =
  match profile with
  | Uniform | Bursty _ -> Rng.int rng n
  | Zipf s -> Rng.zipf rng ~n ~s

let make ~rng ~n ~d ~rounds ~load ?(alternatives = 2) ?(profile = Uniform) () =
  check ~n ~d ~rounds ~load ~alternatives;
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let lambda = rate_of_round ~profile ~load ~n round in
    let count = Rng.poisson rng ~lambda in
    for _ = 1 to count do
      let alts =
        draw_alternatives ~n ~k:alternatives (picker rng ~profile ~n)
      in
      protos :=
        Sched.Request.make ~arrival:round ~alternatives:alts ~deadline:d
        :: !protos
    done
  done;
  Sched.Instance.build ~n_resources:n ~d (List.rev !protos)

let make_mixed_deadlines ~rng ~n ~d ~rounds ~load ?(alternatives = 2) () =
  check ~n ~d ~rounds ~load ~alternatives;
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let count = Rng.poisson rng ~lambda:(load *. float_of_int n) in
    for _ = 1 to count do
      let alts =
        draw_alternatives ~n ~k:alternatives (fun () -> Rng.int rng n)
      in
      let deadline = Rng.int_in rng 1 d in
      protos :=
        Sched.Request.make ~arrival:round ~alternatives:alts ~deadline
        :: !protos
    done
  done;
  Sched.Instance.build ~n_resources:n ~d (List.rev !protos)
