let n_resources ~groups = (3 * groups) + 2

type role =
  | Maint (* anchor-pair maintenance: stay on S'/S'' *)
  | Blk1 of { target : int } (* block(1,d): stay on its group resource *)
  | R1 of { s2 : int; until : int } (* occupy s2 before [until] *)
  | R2

let make ~d ~groups ~intervals =
  if d < 2 || (d + 1) mod 3 <> 0 then
    invalid_arg "Thm25.make: d must be 3x-1 for some x >= 1 (and >= 2)";
  if groups < 1 then invalid_arg "Thm25.make: groups must be >= 1";
  if intervals < 1 then invalid_arg "Thm25.make: intervals must be >= 1";
  let x = (d + 1) / 3 in
  let anchor0 = 3 * groups and anchor1 = (3 * groups) + 1 in
  let b = Scenario.Builder.create () in
  let last_event_end = (2 * x * intervals) + (3 * x) - 2 in
  (* anchor maintenance: one block(2,d) per d rounds exactly saturates
     S' and S'' for the whole run *)
  let maint_blocks = ref 0 in
  let t = ref 0 in
  while !t <= last_event_end do
    Scenario.Builder.add b Maint
      (Block.pair ~arrival:!t ~r0:anchor0 ~r1:anchor1 ~d);
    incr maint_blocks;
    t := !t + d
  done;
  (* initial block(1,d) on every group's first resource *)
  for g = 0 to groups - 1 do
    Scenario.Builder.add b
      (Blk1 { target = 3 * g })
      (Block.one ~arrival:0 ~anchor:anchor0 ~target:(3 * g) ~d)
  done;
  for m = 0 to intervals - 1 do
    let p1 = x + (2 * x * m) in
    let p2 = p1 + x in
    for g = 0 to groups - 1 do
      let base = 3 * g in
      let s1 = base + (m mod 3) and s2 = base + ((m + 1) mod 3) in
      Scenario.Builder.add b
        (R1 { s2; until = p1 + x })
        (Block.group ~arrival:p1 ~alternatives:[ s1; s2 ] ~deadline:d
           ~count:x);
      Scenario.Builder.add b R2
        (Block.group ~arrival:p1 ~alternatives:[ s2; anchor0 ] ~deadline:d
           ~count:x);
      Scenario.Builder.add b
        (Blk1 { target = s2 })
        (Block.one ~arrival:p2 ~anchor:anchor0 ~target:s2 ~d)
    done
  done;
  let instance =
    Sched.Instance.build ~n_resources:(n_resources ~groups) ~d
      (Scenario.Builder.protos b)
  in
  let bias ~request ~resource ~round =
    match Scenario.Builder.role_of b request.Sched.Request.id with
    | Maint -> if resource = anchor0 || resource = anchor1 then 2 else 0
    | Blk1 { target } -> if resource = target then 2 else 0
    | R1 { s2; until } -> if resource = s2 && round < until then 1 else 0
    | R2 -> 0
  in
  let n_req = Scenario.Builder.count b in
  let alg =
    (2 * d * !maint_blocks) (* anchors *)
    + (groups * d) (* initial group blocks *)
    + (groups * intervals * ((4 * x) - 1))
  in
  {
    Scenario.name =
      Printf.sprintf "thm2.5(d=%d,groups=%d,intervals=%d)" d groups
        intervals;
    instance;
    bias;
    opt_hint = Some n_req;
    alg_hint = Some alg;
  }
