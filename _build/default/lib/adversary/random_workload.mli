(** Stochastic workloads for the average-case study.

    The paper motivates two-choice scheduling with distributed data
    servers (video-on-demand, OLTP) and notes that adversarial analysis
    "may sometimes be unrealistically pessimistic"; these generators
    provide the matching average-case inputs: arrivals are Poisson with
    mean [load * n] per round and each request draws [alternatives]
    distinct resources from a popularity profile. *)

type profile =
  | Uniform
      (** all resources equally popular *)
  | Zipf of float
      (** resource ranks follow a Zipf law with the given exponent — the
          hot-spot pattern two-choice replication targets *)
  | Bursty of { period : int; duty : float; peak : float }
      (** on/off arrivals: for the first [duty] fraction of each
          [period], the arrival rate is multiplied by [peak]; off
          otherwise.  Mean load is preserved. *)

val make :
  rng:Prelude.Rng.t -> n:int -> d:int -> rounds:int -> load:float ->
  ?alternatives:int -> ?profile:profile -> unit -> Sched.Instance.t
(** A [rounds]-round instance over [n] resources with nominal deadline
    [d].  [load] is the mean number of arrivals per round divided by [n]
    (1.0 saturates the server).  [alternatives] defaults to 2; it must
    not exceed [n].
    @raise Invalid_argument on a bad parameter. *)

val make_mixed_deadlines :
  rng:Prelude.Rng.t -> n:int -> d:int -> rounds:int -> load:float ->
  ?alternatives:int -> unit -> Sched.Instance.t
(** Like {!make} (uniform profile) but each request's deadline is drawn
    uniformly from [1..d] — exercising the per-request-deadline
    extension the paper notes for the EDF observations. *)
