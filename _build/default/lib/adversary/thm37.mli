(** Theorem 3.7 adversary: forces [A_local_fix] to ratio exactly 2.

    Four resources; intervals of [d] rounds; at every interval start the
    groups [R1] ([d] requests, first alternative S1, second S2), [R2]
    ([d] requests, first S3, second S4) and [R3] ([2d] requests, first
    S1, second S3) arrive together.  In the first communication round S1
    receives [3d] messages and the LDF tie-break (all deadlines equal)
    is resolved by the returned priority in favour of [R1]; S3 accepts
    [R2].  [R3]'s retries hit the now-full S3 and fail entirely, so the
    protocol serves [2d] of the [4d] requests per interval while the
    optimum serves all of them ([R1]→S2, [R2]→S4, [R3] split over S1 and
    S3). *)

val make : d:int -> intervals:int ->
  Scenario.t * (sender:int -> dst:int -> int)
(** The scenario (its [bias] field is unused by local strategies) and
    the network tie-break priority to pass to
    {!Localstrat.Local.fix}.
    @raise Invalid_argument if [d < 1] or [intervals < 1]. *)

val n_resources : int
(** Always 4. *)
