let n_resources = 6

let pairs = [| (0, 1); (2, 3); (4, 5) |]

let make ~d ~phases =
  if d < 2 || d mod 2 <> 0 then
    invalid_arg "Thm23.make: d must be even and >= 2";
  if phases < 1 then invalid_arg "Thm23.make: phases must be >= 1";
  let b = Scenario.Builder.create () in
  let r0, r1 = pairs.(0) in
  Scenario.Builder.add b () (Block.pair ~arrival:0 ~r0 ~r1 ~d);
  for p = 1 to phases do
    let start = (d / 2) + ((p - 1) * ((d / 2) + 1)) in
    let blocked = pairs.((p - 1) mod 3) and target = pairs.(p mod 3) in
    Scenario.Builder.add b ()
      (Block.group ~arrival:start
         ~alternatives:[ fst blocked; fst target ]
         ~deadline:d ~count:(d / 2));
    Scenario.Builder.add b ()
      (Block.group ~arrival:start
         ~alternatives:[ snd blocked; snd target ]
         ~deadline:d ~count:(d / 2));
    Scenario.Builder.add b ()
      (Block.pair ~arrival:(start + 1) ~r0:(fst target) ~r1:(snd target) ~d)
  done;
  let instance =
    Sched.Instance.build ~n_resources ~d (Scenario.Builder.protos b)
  in
  (* the balancing function F alone forces the bad placement: R1/R2 can
     only be served immediately on the target pair, and F insists on
     immediate service, so no tie-break bias is needed *)
  {
    Scenario.name = Printf.sprintf "thm2.3(d=%d,phases=%d)" d phases;
    instance;
    bias = Sched.Strategy.no_bias;
    opt_hint = Some ((2 * d) + (phases * 3 * d));
    alg_hint = Some ((2 * d) + (phases * ((2 * d) + 2)));
  }
