type role = { group : int } (* 1-based group index within its phase *)

let check_params ~ell ~d =
  if ell < 2 then invalid_arg "Thm22.make: ell must be >= 2";
  for i = 1 to ell - 1 do
    if d mod (ell - i) <> 0 then
      invalid_arg
        (Printf.sprintf "Thm22.make: %d must divide d=%d" (ell - i) d)
  done

(* Group R_i of one phase: d requests, first alternatives evenly over
   resources 0..ell-i-1, second alternative ell-i (0-indexed). *)
let group_requests ~ell ~d ~arrival i =
  let spread = ell - i in
  let second = ell - i in
  List.concat
    (List.init spread (fun j ->
         Block.group ~arrival ~alternatives:[ j; second ] ~deadline:d
           ~count:(d / spread)))

let make ~ell ~d ~phases =
  check_params ~ell ~d;
  if phases < 1 then invalid_arg "Thm22.make: phases must be >= 1";
  let b = Scenario.Builder.create () in
  for p = 0 to phases - 1 do
    let arrival = p * d in
    for i = 1 to ell - 1 do
      Scenario.Builder.add b { group = i } (group_requests ~ell ~d ~arrival i)
    done;
    (* R_ell copies R_{ell-1} *)
    Scenario.Builder.add b { group = ell }
      (group_requests ~ell ~d ~arrival (ell - 1))
  done;
  let instance =
    Sched.Instance.build ~n_resources:ell ~d (Scenario.Builder.protos b)
  in
  (* drain low-index groups first; weights separated enough that one
     group-(i) service outweighs any combination of ell services from
     group i+1 *)
  let weight = Array.init (ell + 1) (fun g ->
      int_of_float (Float.pow (float_of_int (ell + 1)) (float_of_int (ell - g))))
  in
  let bias ~request ~resource:_ ~round:_ =
    let { group } = Scenario.Builder.role_of b request.Sched.Request.id in
    weight.(group)
  in
  {
    Scenario.name = Printf.sprintf "thm2.2(ell=%d,d=%d,phases=%d)" ell d phases;
    instance;
    bias;
    opt_hint = Some (phases * ell * d);
    alg_hint = None;
  }

(* Reference count from the proof's drain argument: groups are consumed
   in index order; while group i (i <= ell-1) is the lowest live one,
   resources 0..ell-i are busy (rate ell-i+1); once only the twin groups
   ell-1 and ell remain, the rate is 2.  We charge whole rounds and stop
   after d rounds. *)
let alg_lower_bound_per_phase ~ell ~d =
  check_params ~ell ~d;
  let remaining = Array.make (ell + 1) d in
  let served = ref 0 in
  let rounds_left = ref d in
  let lowest = ref 1 in
  while !rounds_left > 0 && !lowest <= ell do
    let rate =
      if !lowest <= ell - 1 then ell - !lowest + 1
      else 2 (* both twin groups live on the pair (S1,S2) *)
    in
    let live_total =
      let t = ref 0 in
      for g = !lowest to ell do
        t := !t + remaining.(g)
      done;
      !t
    in
    let serve_now = min rate live_total in
    served := !served + serve_now;
    (* consume from the lowest groups first *)
    let todo = ref serve_now in
    let g = ref !lowest in
    while !todo > 0 && !g <= ell do
      let take = min !todo remaining.(!g) in
      remaining.(!g) <- remaining.(!g) - take;
      todo := !todo - take;
      incr g
    done;
    while !lowest <= ell && remaining.(!lowest) = 0 do
      incr lowest
    done;
    decr rounds_left
  done;
  !served
