lib/adversary/thm22.mli: Scenario
