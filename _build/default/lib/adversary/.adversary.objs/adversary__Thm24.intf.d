lib/adversary/thm24.mli: Scenario
