lib/adversary/thm23.mli: Scenario
