lib/adversary/block.mli: Sched
