lib/adversary/thm37.ml: Block Printf Scenario Sched
