lib/adversary/thm22.ml: Array Block Float List Printf Scenario Sched
