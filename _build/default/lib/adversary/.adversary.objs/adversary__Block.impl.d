lib/adversary/block.ml: Array List Sched
