lib/adversary/thm26.ml: Array Block List Prelude Sched
