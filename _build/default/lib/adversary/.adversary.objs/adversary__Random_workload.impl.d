lib/adversary/random_workload.ml: Float List Prelude Sched
