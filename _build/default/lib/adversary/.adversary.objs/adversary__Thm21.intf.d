lib/adversary/thm21.mli: Scenario
