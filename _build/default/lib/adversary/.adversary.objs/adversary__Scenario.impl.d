lib/adversary/scenario.ml: Array List Sched
