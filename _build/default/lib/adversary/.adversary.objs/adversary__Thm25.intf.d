lib/adversary/thm25.mli: Scenario
