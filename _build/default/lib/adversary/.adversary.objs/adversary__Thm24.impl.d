lib/adversary/thm24.ml: Block Printf Scenario Sched
