lib/adversary/thm25.ml: Block Printf Scenario Sched
