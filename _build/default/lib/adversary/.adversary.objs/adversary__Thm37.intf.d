lib/adversary/thm37.mli: Scenario
