lib/adversary/thm23.ml: Array Block Printf Scenario Sched
