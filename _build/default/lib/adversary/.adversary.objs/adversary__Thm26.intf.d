lib/adversary/thm26.mli: Prelude Sched
