lib/adversary/scenario.mli: Sched
