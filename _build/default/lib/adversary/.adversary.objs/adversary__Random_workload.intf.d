lib/adversary/random_workload.mli: Prelude Sched
