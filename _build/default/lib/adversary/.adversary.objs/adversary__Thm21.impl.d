lib/adversary/thm21.ml: Block Printf Scenario Sched
