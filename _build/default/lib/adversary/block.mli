(** The paper's [block(a,d)] input structures (Sec. 2).

    A [block(a,d)] is a set of [a*d] requests generated in one round over
    [a] resources arranged in a ring: for each [i], [d] requests directed
    to resource [i] and resource [(i+1) mod a].  It exactly saturates the
    [a] resources for [d] rounds — dense enough to block them and cut
    augmenting-path dependencies.  [block(2,d)] degenerates to [2d]
    requests over one resource pair; [block(1,d)] is the paper's special
    form: [d] requests directed to a permanently-blocked anchor and one
    real resource. *)

val ring : arrival:int -> resources:int array -> d:int -> Sched.Request.t list
(** General [block(a,d)] over the given (distinct) resources, [a >= 2].
    Request order: group by ring position, then copy index.  First
    alternative of group [i] is [resources.(i)]. *)

val pair : arrival:int -> r0:int -> r1:int -> d:int -> Sched.Request.t list
(** [block(2,d)]: [2d] requests directed to [{r0, r1}] — the first [d]
    with first alternative [r0], the rest with first alternative [r1]. *)

val one : arrival:int -> anchor:int -> target:int -> d:int ->
  Sched.Request.t list
(** [block(1,d)]: [d] requests directed to the (blocked) [anchor] and the
    [target]; first alternative is [target]. *)

val group : arrival:int -> alternatives:int list -> deadline:int ->
  count:int -> Sched.Request.t list
(** [count] identical requests with the given ordered alternatives and
    deadline. *)
