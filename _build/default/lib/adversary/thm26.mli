(** Theorem 2.6: the universal adaptive adversary — every deterministic
    online algorithm has competitive ratio at least 45/41 ≈ 1.0976.

    Ten resources in five pairs.  A rolling [block(6,d)] keeps three
    pairs busy at all times.  Each phase injects, [d/3] rounds before the
    current block expires, [4d] "coloured" requests in three colour
    classes whose first alternatives share the four free resources and
    whose second alternatives each point at one blocked pair.  When the
    block expires the adversary {e observes the algorithm} ([is_served])
    and re-blocks the four free resources together with the pair backing
    the colour with the most unserved requests — an averaging argument
    shows at least [⌈8d/9⌉] of the [10d] requests per phase must fail.

    Unlike the other constructions this adversary is adaptive, so it
    plugs into {!Sched.Engine.run_adaptive} rather than producing a fixed
    instance. *)

type t
(** Mutable adversary state for one run. *)

val n_resources : int
(** Always 10. *)

val create : d:int -> phases:int -> t
(** @raise Invalid_argument unless [3 | d], [d >= 3], [phases >= 1]. *)

val last_arrival_round : d:int -> phases:int -> int
(** The round of the final block injection, [phases * d]. *)

val adversary : t -> Sched.Engine.adaptive
(** The round callback to hand to {!Sched.Engine.run_adaptive}.  A [t]
    must be used for exactly one run. *)

val opt_expected : d:int -> phases:int -> int
(** The optimum serves every request: [6d + 10d * phases]. *)

val ratio_bound : Prelude.Rat.t
(** [45/41]. *)
