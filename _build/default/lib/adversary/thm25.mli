(** Theorem 2.5 adversary: forces [A_balance] to ratio [(5d+2)/(4d+1)]
    in the limit of many resource groups, for [d = 3x - 1].

    [k] groups of three resources plus two anchors S', S'' that are kept
    permanently busy by maintenance blocks.  Per group and per interval
    of [2x] rounds: a [block(1,d)] holds the current "S1"-role resource;
    phase 1 injects [R1] ([x] requests to (S1-role, S2-role)) and [R2]
    ([x] to (S2-role, S')); phase 2 injects a [block(1,d)] on the
    S2-role.  [A_balance] — whose rules never prefer a request whose
    second alternative is overloaded — is biased to serve [R1] before
    [R2], after which [R2] and the new block together can only get [x]
    services before the interval ends; the optimum serves [R2] early and
    [R1] on the S1-role right after its block expires.

    Per interval and group: OPT = 5x-1 services, A_balance = 4x-1,
    ratio → (5x-1)/(4x-1) = (5d+2)/(4d+1) as the anchor traffic washes
    out with growing [k]. *)

val make : d:int -> groups:int -> intervals:int -> Scenario.t
(** @raise Invalid_argument unless [d = 3x-1] for some [x >= 1],
    [groups >= 1] and [intervals >= 1]. *)

val n_resources : groups:int -> int
(** [3*groups + 2]. *)
