(** Theorem 2.2 adversary: forces [A_current] toward [e/(e-1) ≈ 1.58].

    [ell] resources; phases of [d] rounds ([d] divisible by every
    [1..ell-1], e.g. [d = ell!] as in the paper).  Each phase injects, in
    its first round, groups [R_1 .. R_ell] of [d] requests: for
    [i < ell], the first alternatives of [R_i] spread evenly over
    [S_1..S_{ell-i}] and the second alternative is [S_{ell-i+1}];
    [R_ell] copies [R_{ell-1}].  The optimum serves group [R_i] entirely
    on its common resource; [A_current], biased to drain low-index groups
    first, exhausts the [d] rounds after
    [k = max { k : Σ_{i<=k} d/(ell-i+1) <= d }] complete groups and loses
    the rest, which yields ratio [→ e/(e-1)] as [ell → ∞]. *)

val make : ell:int -> d:int -> phases:int -> Scenario.t
(** @raise Invalid_argument if [ell < 2], [phases < 1] or some
    [i ∈ 1..ell-1] does not divide [d]. *)

val alg_lower_bound_per_phase : ell:int -> d:int -> int
(** The number of requests the biased [A_current] serves per phase
    according to the proof's counting: [ell] resources serving for [d]
    rounds drain groups in index order, each group [i] occupying
    [d/(ell-i+1)] rounds of full service. *)
