(** Growable arrays of unboxed [int]s.

    The graph and engine layers build adjacency incrementally; a
    specialised int vector avoids the boxing and indirection a generic
    dynamic array would pay on the hot path.  (OCaml 5.1 predates
    [Stdlib.Dynarray].) *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds index. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument on out-of-bounds index. *)

val push : t -> int -> unit
(** Append, growing geometrically as needed. *)

val pop : t -> int
(** Remove and return the last element.
    @raise Invalid_argument when empty. *)

val clear : t -> unit
(** Reset to length 0; capacity is retained. *)

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val exists : (int -> bool) -> t -> bool
val to_array : t -> int array
val of_array : int array -> t
val to_list : t -> int list
val copy : t -> t

val sort : t -> unit
(** In-place ascending sort of the used prefix. *)
