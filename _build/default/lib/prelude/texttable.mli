(** Plain-text table rendering for experiment reports.

    The benchmark harness prints paper-vs-measured tables on stdout; this
    module right-pads cells, draws a header rule, and supports per-column
    alignment.  Output is plain ASCII so logs diff cleanly. *)

type align = Left | Right

type t

val create : ?title:string -> header:string list -> unit -> t
(** A table with the given column headers.  Columns default to left
    alignment; see {!set_align}. *)

val set_align : t -> align list -> unit
(** Per-column alignment; shorter lists leave remaining columns [Left]. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Insert a horizontal rule between rows. *)

val render : t -> string
(** The whole table as a string, trailing newline included. *)

val title : t -> string option
val header : t -> string list
val rows : t -> string list list
(** Data rows in insertion order (rules omitted); short rows appear
    padded to the header width, as rendered. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float for a table cell ([decimals] defaults to 4); [nan]
    renders as ["-"]. *)

val cell_ratio : float -> string
(** A competitive-ratio cell: 4 decimals. *)
