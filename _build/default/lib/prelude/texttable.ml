type align = Left | Right

type line = Row of string array | Rule

type t = {
  title : string option;
  header : string array;
  mutable aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ?title ~header () =
  let header = Array.of_list header in
  {
    title;
    header;
    aligns = Array.make (Array.length header) Left;
    lines = [];
  }

let set_align t aligns =
  List.iteri
    (fun i a -> if i < Array.length t.aligns then t.aligns.(i) <- a)
    aligns

let add_row t cells =
  let ncols = Array.length t.header in
  let n = List.length cells in
  if n > ncols then
    invalid_arg
      (Printf.sprintf "Texttable.add_row: %d cells for %d columns" n ncols);
  let row = Array.make ncols "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let ncols = Array.length t.header in
  let widths = Array.map String.length t.header in
  let lines = List.rev t.lines in
  List.iter
    (function
      | Rule -> ()
      | Row r ->
        Array.iteri
          (fun i c -> if String.length c > widths.(i) then
              widths.(i) <- String.length c)
          r)
    lines;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_row aligns r =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad aligns.(i) widths.(i) r.(i))
    done;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  (match t.title with
   | Some title ->
     Buffer.add_string buf title;
     Buffer.add_char buf '\n';
     rule ()
   | None -> ());
  emit_row (Array.make ncols Left) t.header;
  rule ();
  List.iter
    (function Rule -> rule () | Row r -> emit_row t.aligns r)
    lines;
  Buffer.contents buf

let print t = print_string (render t)

let title t = t.title
let header t = Array.to_list t.header

let rows t =
  List.filter_map
    (function Rule -> None | Row r -> Some (Array.to_list r))
    (List.rev t.lines)

let cell_float ?(decimals = 4) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let cell_ratio v = cell_float ~decimals:4 v
