type t = { num : int; den : int }

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Overflow-checked primitives: detect by reversing the operation. *)
let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let checked_add a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let num t = t.num
let den t = t.den

let add a b =
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  make
    (checked_add (checked_mul a.num db) (checked_mul b.num da))
    (checked_mul a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* cross-reduce before multiplying to delay overflow *)
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let compare a b =
  (* exact comparison by cross multiplication, guarded against overflow by
     comparing the integer parts first *)
  let qa = a.num / a.den and qb = b.num / b.den in
  if qa <> qb then Stdlib.compare qa qb
  else
    let ra = a.num mod a.den and rb = b.num mod b.den in
    (* compare ra/a.den vs rb/b.den; remainders have magnitude < den so the
       cross products stay well within range for den < 2^31; fall back to
       checked multiplication otherwise *)
    Stdlib.compare (checked_mul ra b.den) (checked_mul rb a.den)

let equal a b = a.num = b.num && a.den = b.den
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let to_float t = float_of_int t.num /. float_of_int t.den

let to_string t =
  if t.den = 1 then string_of_int t.num
  else Printf.sprintf "%d/%d" t.num t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)
