(** Parallel map over OCaml 5 domains.

    The experiment harness runs many independent simulations (seeds ×
    loads × strategies); this module fans them out over domains with a
    static block partition — no dependencies between tasks, deterministic
    result order, exceptions re-raised in the caller.

    Tasks must not share mutable state (every simulation in this library
    owns its instance, strategy state and RNG; the one shared cache, the
    Zipf CDF table, is mutex-protected). *)

val recommended_domains : unit -> int
(** [max 1 (cpu count - 1)], capped at 8: leave a core for the runtime
    and avoid oversubscription on big machines. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed on up to [domains]
    domains (default {!recommended_domains}).  Order is preserved.  If
    any task raises, the first exception (in input order) is re-raised
    after all domains have joined.  With [domains = 1] or a short input
    list this degrades to plain [List.map] with no domain spawns. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Indexed variant. *)
