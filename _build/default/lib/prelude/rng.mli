(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64).  Every randomised
    component of the library takes an explicit [t] so that experiments and
    tests are reproducible from a single integer seed; the global [Random]
    state of the standard library is never used. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to
    give sub-components their own generators without sharing state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val poisson : t -> lambda:float -> int
(** Poisson-distributed count with the given mean (Knuth's product
    method; intended for [lambda] up to a few hundred). *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success of
    a Bernoulli(p) trial, for [0 < p <= 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] from a Zipf distribution
    with exponent [s] (by inversion on the precomputed CDF; intended for
    modest [n], it recomputes the normaliser per call only when [n] or [s]
    changes). *)
