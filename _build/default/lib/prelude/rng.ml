(* Splitmix64 (Steele, Lea, Flood: "Fast splittable pseudorandom number
   generators", OOPSLA 2014).  One 64-bit word of state advanced by the
   golden-gamma; finalised by a variant of Murmur3's mixer. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Rejection sampling on the top bits keeps the distribution exactly
   uniform for any positive bound. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask *)
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (bound - 1)))
  else begin
    let b = Int64.of_int bound in
    let rec draw () =
      let raw = Int64.shift_right_logical (bits64 t) 1 in
      let v = Int64.rem raw b in
      (* reject the final partial block to avoid modulo bias *)
      if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int b) 1L
      then draw ()
      else Int64.to_int v
    in
    draw ()
  end

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let poisson t ~lambda =
  if not (lambda >= 0.) then invalid_arg "Rng.poisson: negative lambda";
  (* split large means so the running product stays away from underflow *)
  let rec draw lambda acc =
    if lambda > 30.0 then
      draw (lambda -. 30.0) (acc + draw_small 30.0)
    else acc + draw_small lambda
  and draw_small lambda =
    let limit = exp (-.lambda) in
    let rec go k p =
      let p = p *. float t 1.0 in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  in
  draw lambda 0

let geometric t ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of range";
  if p >= 1. then 0
  else begin
    let u = float t 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

(* Zipf sampling by inversion; the CDF is cached across calls with the same
   (n, s) since workload generators draw many samples from one law.  The
   cache is shared process state, so it is mutex-protected: generators may
   run on several domains (see Prelude.Parmap). *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_cache_lock = Mutex.create ()

let zipf_cdf n s =
  Mutex.lock zipf_cache_lock;
  let cached = Hashtbl.find_opt zipf_cache (n, s) in
  Mutex.unlock zipf_cache_lock;
  match cached with
  | Some cdf -> cdf
  | None ->
    let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (w.(i) /. total);
      cdf.(i) <- !acc
    done;
    cdf.(n - 1) <- 1.0;
    Mutex.lock zipf_cache_lock;
    Hashtbl.replace zipf_cache (n, s) cdf;
    Mutex.unlock zipf_cache_lock;
    cdf

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let cdf = zipf_cdf n s in
  let u = float t 1.0 in
  (* binary search for the first index with cdf.(i) >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)
