type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () =
  let capacity = if capacity < 1 then 1 else capacity in
  { data = Array.make capacity 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Ivec.%s: index %d out of [0,%d)" op i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let bigger = Array.make (2 * cap) 0 in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Ivec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.data 0 t.len

let of_array a =
  let len = Array.length a in
  let data = if len = 0 then Array.make 1 0 else Array.copy a in
  { data; len }

let to_list t = Array.to_list (to_array t)

let copy t = { data = Array.copy t.data; len = t.len }

let sort t =
  let a = to_array t in
  Array.sort compare a;
  Array.blit a 0 t.data 0 t.len
