let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count () - 1))

type 'b cell = Pending | Done of 'b | Failed of exn

let mapi ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> recommended_domains ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if domains = 1 || n <= 1 then
    List.mapi f xs
  else begin
    let results = Array.make n Pending in
    let workers = min domains n in
    (* static block partition: task i goes to domain (i mod workers);
       tasks are independent simulations of comparable cost, so the
       round-robin split balances well without a work queue *)
    let run_worker w () =
      let i = ref w in
      while !i < n do
        (results.(!i) <-
           (match f !i items.(!i) with
            | v -> Done v
            | exception e -> Failed e));
        i := !i + workers
      done
    in
    let spawned =
      List.init (workers - 1) (fun w -> Domain.spawn (run_worker (w + 1)))
    in
    run_worker 0 ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end

let map ?domains f xs = mapi ?domains (fun _ x -> f x) xs
