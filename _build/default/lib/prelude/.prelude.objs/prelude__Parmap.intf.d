lib/prelude/parmap.mli:
