lib/prelude/texttable.ml: Array Buffer Float List Printf String
