lib/prelude/texttable.mli:
