lib/prelude/rng.ml: Array Float Hashtbl Int64 Mutex
