lib/prelude/stats.mli:
