lib/prelude/parmap.ml: Array Domain List
