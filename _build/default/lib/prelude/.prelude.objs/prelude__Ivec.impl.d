lib/prelude/ivec.ml: Array Printf
