lib/prelude/rng.mli:
