lib/prelude/rat.ml: Format Printf Stdlib
