lib/prelude/stats.ml: Array Float Stdlib
