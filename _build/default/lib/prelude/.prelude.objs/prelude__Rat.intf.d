lib/prelude/rat.mli: Format
