lib/prelude/ivec.mli:
