(** Exact rational arithmetic on machine integers.

    The paper's bounds are small rationals ([45/41], [3d/(2d+2)], …) and the
    measured quantities are ratios of request counters, so exact comparison
    never needs more than 63 bits.  All operations keep values normalised
    (positive denominator, gcd 1) and raise [Overflow] rather than wrap. *)

type t = private { num : int; den : int }
(** Normalised rational: [den > 0], [gcd |num| den = 1]. *)

exception Overflow
(** Raised when an operation would exceed the machine-integer range. *)

val make : int -> int -> t
(** [make num den] is the normalised rational [num/den].
    @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val to_string : t -> string
(** ["45/41"], or just ["3"] when the denominator is 1. *)

val pp : Format.formatter -> t -> unit
