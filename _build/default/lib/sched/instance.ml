type t = {
  n_resources : int;
  d : int;
  requests : Request.t array;
  arrivals_by_round : int array array;
  horizon : int;
}

let build ~n_resources ~d protos =
  if n_resources < 1 then invalid_arg "Instance.build: need >= 1 resource";
  if d < 1 then invalid_arg "Instance.build: d must be >= 1";
  let requests =
    Array.of_list (List.mapi (fun i r -> Request.with_id r i) protos)
  in
  let last_arrival = ref 0 in
  Array.iter
    (fun (r : Request.t) ->
       Array.iter
         (fun res ->
            if res >= n_resources then
              invalid_arg
                (Printf.sprintf
                   "Instance.build: request %d names resource %d >= n=%d"
                   r.id res n_resources))
         r.alternatives;
       if r.deadline > d then
         invalid_arg
           (Printf.sprintf
              "Instance.build: request %d deadline %d exceeds d=%d" r.id
              r.deadline d);
       if r.arrival < !last_arrival then
         invalid_arg "Instance.build: requests out of arrival order";
       last_arrival := r.arrival)
    requests;
  let horizon =
    Array.fold_left
      (fun acc r -> max acc (Request.last_round r + 1))
      0 requests
  in
  let buckets = Array.make (max horizon 1) [] in
  (* collect in reverse id order so each bucket ends up id-ascending *)
  for i = Array.length requests - 1 downto 0 do
    let a = requests.(i).Request.arrival in
    buckets.(a) <- i :: buckets.(a)
  done;
  {
    n_resources;
    d;
    requests;
    arrivals_by_round = Array.map Array.of_list buckets;
    horizon;
  }

let n_requests t = Array.length t.requests

let arrivals_at t round =
  if round < 0 || round >= Array.length t.arrivals_by_round then [||]
  else Array.map (fun i -> t.requests.(i)) t.arrivals_by_round.(round)

let total_slots t = t.n_resources * t.horizon

let slot_index t ~resource ~round =
  if resource < 0 || resource >= t.n_resources then
    invalid_arg "Instance.slot_index: resource out of range";
  if round < 0 || round >= t.horizon then
    invalid_arg "Instance.slot_index: round out of range";
  (round * t.n_resources) + resource

let slot_of_index t idx =
  if idx < 0 || idx >= total_slots t then
    invalid_arg "Instance.slot_of_index: out of range";
  (idx mod t.n_resources, idx / t.n_resources)

let restrict_alternatives t ~max:m =
  if m < 1 then invalid_arg "Instance.restrict_alternatives: max < 1";
  let protos =
    Array.to_list
      (Array.map
         (fun (r : Request.t) ->
            let alts = Array.to_list r.Request.alternatives in
            let rec take k = function
              | [] -> []
              | _ when k = 0 -> []
              | x :: rest -> x :: take (k - 1) rest
            in
            Request.make ~arrival:r.Request.arrival
              ~alternatives:(take m alts) ~deadline:r.Request.deadline)
         t.requests)
  in
  build ~n_resources:t.n_resources ~d:t.d protos

let concat = function
  | [] -> invalid_arg "Instance.concat: empty list"
  | first :: _ as parts ->
    let n_resources = first.n_resources and d = first.d in
    List.iter
      (fun p ->
         if p.n_resources <> n_resources || p.d <> d then
           invalid_arg "Instance.concat: mismatched parameters")
      parts;
    let offset = ref 0 in
    let protos = ref [] in
    List.iter
      (fun p ->
         Array.iter
           (fun (r : Request.t) ->
              protos :=
                Request.make ~arrival:(r.Request.arrival + !offset)
                  ~alternatives:(Array.to_list r.Request.alternatives)
                  ~deadline:r.Request.deadline
                :: !protos)
           p.requests;
         offset := !offset + p.horizon)
      parts;
    build ~n_resources ~d (List.rev !protos)

let pp_summary fmt t =
  Format.fprintf fmt "instance: n=%d d=%d requests=%d horizon=%d"
    t.n_resources t.d (n_requests t) t.horizon
