type serve = { request : int; resource : int }

type t = {
  name : string;
  step : round:int -> arrivals:Request.t array -> serve list;
}

type bias = request:Request.t -> resource:int -> round:int -> int

type factory = n:int -> d:int -> t

let no_bias : bias = fun ~request:_ ~resource:_ ~round:_ -> 0
