(** The paper's bipartite graph [G = (R ∪ S, E)] of an instance.

    Left vertices are request ids; right vertices are dense time-slot
    indices ({!Instance.slot_index}); a request is connected to every slot
    of each of its alternative resources inside its service window.  Any
    feasible schedule induces a matching in this graph, and the offline
    optimum is a maximum matching (Sec. 1.2). *)

val of_instance : Instance.t -> Graph.Bipartite.t
(** Build [G].  Edge ids are in (request, alternative, round) order. *)

val edge_for :
  Graph.Bipartite.t -> Instance.t -> request:int -> resource:int ->
  round:int -> int option
(** The edge id connecting the request to slot (resource, round), if it
    exists in [G]. *)
