lib/sched/request.ml: Array Format List String
