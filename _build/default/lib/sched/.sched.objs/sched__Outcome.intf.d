lib/sched/outcome.mli: Format Graph Instance
