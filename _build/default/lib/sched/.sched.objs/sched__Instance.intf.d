lib/sched/instance.mli: Format Request
