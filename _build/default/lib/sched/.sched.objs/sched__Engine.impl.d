lib/sched/engine.ml: Array Hashtbl Instance List Outcome Printf Request Strategy
