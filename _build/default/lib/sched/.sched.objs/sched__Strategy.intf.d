lib/sched/strategy.mli: Request
