lib/sched/engine.mli: Instance Outcome Request Strategy
