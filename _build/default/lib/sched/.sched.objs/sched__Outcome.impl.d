lib/sched/outcome.ml: Array Format Graph Hashtbl Instance List Paper_graph Request
