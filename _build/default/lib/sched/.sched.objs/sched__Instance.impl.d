lib/sched/instance.ml: Array Format List Printf Request
