lib/sched/paper_graph.mli: Graph Instance
