lib/sched/paper_graph.ml: Array Graph Instance Prelude Request
