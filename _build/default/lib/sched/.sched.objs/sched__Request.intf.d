lib/sched/request.mli: Format
