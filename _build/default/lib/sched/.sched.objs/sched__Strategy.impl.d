lib/sched/strategy.ml: Request
