(** Requests: the unit of work in the scheduling model.

    A request arrives at a round, names a set of alternative resources
    (two in the paper's core model; the library supports any [c >= 1] for
    the EDF observations), and must be served within [deadline] rounds of
    arrival: a request arriving at round [t] with deadline [d] may be
    served in rounds [t .. t+d-1] only. *)

type t = private {
  id : int;            (** dense id, assigned by {!Instance.build} *)
  arrival : int;       (** round of arrival, [>= 0] *)
  alternatives : int array;
      (** distinct resource indices the request may be served by, in the
          order given to {!make}: element 0 is the {e first alternative}
          the local protocols contact first *)
  deadline : int;      (** relative deadline, [>= 1] *)
}

val make : arrival:int -> alternatives:int list -> deadline:int -> t
(** A request proto with [id = -1]; {!Instance.build} renumbers.
    @raise Invalid_argument on negative arrival, deadline < 1, an empty or
    duplicate-containing alternative list, or a negative resource. *)

val with_id : t -> int -> t
(** Copy with the given id (used by {!Instance.build}). *)

val last_round : t -> int
(** Latest round in which the request may be served:
    [arrival + deadline - 1]. *)

val is_live : t -> round:int -> bool
(** Whether [round] lies inside the request's service window. *)

val has_alternative : t -> int -> bool
(** Whether the given resource is one of the request's alternatives. *)

val pp : Format.formatter -> t -> unit
