type t = {
  id : int;
  arrival : int;
  alternatives : int array;
  deadline : int;
}

let make ~arrival ~alternatives ~deadline =
  if arrival < 0 then invalid_arg "Request.make: negative arrival";
  if deadline < 1 then invalid_arg "Request.make: deadline must be >= 1";
  if alternatives = [] then
    invalid_arg "Request.make: at least one alternative required";
  List.iter
    (fun r -> if r < 0 then invalid_arg "Request.make: negative resource")
    alternatives;
  (* order is preserved: local strategies distinguish the first and the
     second alternative *)
  let sorted = List.sort_uniq compare alternatives in
  if List.length sorted <> List.length alternatives then
    invalid_arg "Request.make: duplicate alternatives";
  { id = -1; arrival; alternatives = Array.of_list alternatives; deadline }

let with_id t id = { t with id }

let last_round t = t.arrival + t.deadline - 1

let is_live t ~round = round >= t.arrival && round <= last_round t

let has_alternative t resource =
  Array.exists (fun r -> r = resource) t.alternatives

let pp fmt t =
  Format.fprintf fmt "r%d@@%d->{%s} d=%d" t.id t.arrival
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.alternatives)))
    t.deadline
