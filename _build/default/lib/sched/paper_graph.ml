let of_instance inst =
  let g =
    Graph.Bipartite.create
      ~n_left:(Instance.n_requests inst)
      ~n_right:(Instance.total_slots inst)
  in
  Array.iter
    (fun (r : Request.t) ->
       Array.iter
         (fun res ->
            for round = r.Request.arrival to Request.last_round r do
              ignore
                (Graph.Bipartite.add_edge g ~left:r.Request.id
                   ~right:(Instance.slot_index inst ~resource:res ~round))
            done)
         r.Request.alternatives)
    inst.Instance.requests;
  g

let edge_for g inst ~request ~resource ~round =
  if round < 0 || round >= inst.Instance.horizon
     || resource < 0 || resource >= inst.Instance.n_resources
  then None
  else begin
    let slot = Instance.slot_index inst ~resource ~round in
    let found = ref None in
    Prelude.Ivec.iter
      (fun e ->
         if Graph.Bipartite.edge_right g e = slot && !found = None then
           found := Some e)
      (Graph.Bipartite.adj_left g request);
    !found
  end
