(** The result of running a strategy over an instance. *)

type t = {
  instance : Instance.t;
  strategy_name : string;
  served_at : (int * int) option array;
      (** request id -> [(resource, round)] of its (first) service *)
  served : int;           (** number of distinct requests served *)
  wasted : int;
      (** services of already-served requests (EDF-style duplicate work) *)
  per_round_served : int array;  (** services per round, length horizon *)
}

val failed : t -> int
(** Requests that expired unserved. *)

val served_ids : t -> int list
(** Ids of served requests, ascending. *)

val latencies : t -> int list
(** Per served request, [service round - arrival] (0 = served on
    arrival), in id order. *)

val mean_latency : t -> float
(** Mean of {!latencies}; [nan] when nothing was served. *)

val to_matching :
  t -> Graph.Bipartite.t * Graph.Matching.t
(** The induced matching in the paper's graph [G = (R ∪ S, E)]: left
    vertices are request ids, right vertices are dense slot indices (see
    {!Instance.slot_index}), edges are every legal (request, slot) pair,
    and the matching contains the pairs actually served.  Feeding the same
    graph to {!Graph.Hopcroft_karp.solve} yields the offline optimum, and
    {!Graph.Altpath} compares the two. *)

val is_consistent : t -> bool
(** Every recorded service respects alternatives, windows and slot
    exclusivity, and the counters agree with [served_at].  The engine
    guarantees this; tests re-check. *)

val pp_summary : Format.formatter -> t -> unit
