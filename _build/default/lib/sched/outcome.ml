type t = {
  instance : Instance.t;
  strategy_name : string;
  served_at : (int * int) option array;
  served : int;
  wasted : int;
  per_round_served : int array;
}

let failed t = Instance.n_requests t.instance - t.served

let served_ids t =
  let acc = ref [] in
  for i = Array.length t.served_at - 1 downto 0 do
    if t.served_at.(i) <> None then acc := i :: !acc
  done;
  !acc

let latencies t =
  let acc = ref [] in
  for i = Array.length t.served_at - 1 downto 0 do
    match t.served_at.(i) with
    | Some (_, round) ->
      acc := (round - t.instance.Instance.requests.(i).Request.arrival) :: !acc
    | None -> ()
  done;
  !acc

let mean_latency t =
  match latencies t with
  | [] -> nan
  | ls ->
    float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (List.length ls)

let to_matching t =
  let g = Paper_graph.of_instance t.instance in
  let m = Graph.Matching.empty g in
  Array.iteri
    (fun id sv ->
       match sv with
       | None -> ()
       | Some (resource, round) ->
         match
           Paper_graph.edge_for g t.instance ~request:id ~resource ~round
         with
         | None -> invalid_arg "Outcome.to_matching: service outside graph G"
         | Some e -> Graph.Matching.use_edge g m e)
    t.served_at;
  (g, m)

let is_consistent t =
  let inst = t.instance in
  let slot_used = Hashtbl.create 64 in
  let ok = ref true in
  let count = ref 0 in
  Array.iteri
    (fun id sv ->
       match sv with
       | None -> ()
       | Some (resource, round) ->
         incr count;
         let r = inst.Instance.requests.(id) in
         if not (Request.has_alternative r resource) then ok := false;
         if not (Request.is_live r ~round) then ok := false;
         let key = (resource, round) in
         if Hashtbl.mem slot_used key then ok := false;
         Hashtbl.replace slot_used key ())
    t.served_at;
  !ok && !count = t.served
  && Array.fold_left ( + ) 0 t.per_round_served = t.served

let pp_summary fmt t =
  Format.fprintf fmt "%s: served %d/%d (failed %d, wasted %d)"
    t.strategy_name t.served
    (Instance.n_requests t.instance)
    (failed t) t.wasted
