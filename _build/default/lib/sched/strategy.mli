(** The online strategy interface.

    A strategy instance is stateful: the engine creates one per run, feeds
    it the arrivals of each round in order, and executes the services the
    strategy returns for the current round.  Everything a strategy plans
    for future rounds is its own internal state; only current-round
    services cross the interface, which keeps the engine's bookkeeping
    (and its validity checking) strategy-agnostic.

    The [bias] hook is how the paper's {e existential} lower bounds are
    realised: strategies defined as "choose {e any} matching such that …"
    are implemented as tiered-weight optimisation, and [bias] supplies the
    lowest tier, steering ties without ever violating the strategy's
    defining rules (which occupy strictly higher tiers).  A neutral run
    passes {!no_bias}. *)

type serve = { request : int; resource : int }
(** One service decision: the given request is served by the given
    resource in the current round. *)

type t = {
  name : string;
  step : round:int -> arrivals:Request.t array -> serve list;
      (** Called once per round, rounds strictly increasing from 0;
          returns the services to execute this round. *)
}

type bias = request:Request.t -> resource:int -> round:int -> int
(** Tie-break weight of scheduling [request] on [resource] at [round]
    (bigger = more attractive).  Must be bounded for the run. *)

type factory = n:int -> d:int -> t
(** Fresh strategy state for an instance with [n] resources and nominal
    deadline [d]. *)

val no_bias : bias
(** Always 0. *)
