(** Scheduling instances: a finite workload over [n] resources.

    An instance fixes the resource count, the nominal deadline [d] the
    strategies parameterise their windows with (individual requests may
    carry smaller deadlines), and the full request sequence.  The online
    engine reveals requests round by round; the offline solvers see the
    whole instance. *)

type t = private {
  n_resources : int;
  d : int;                              (** nominal (maximum) deadline *)
  requests : Request.t array;           (** [requests.(i).id = i] *)
  arrivals_by_round : int array array;  (** round -> request ids arriving *)
  horizon : int;
      (** number of rounds: every service happens in [0 .. horizon-1] *)
}

val build : n_resources:int -> d:int -> Request.t list -> t
(** Renumber the given request protos in list order (stable for equal
    arrivals, matching the paper's per-round request identifiers) and
    index them by round.
    @raise Invalid_argument if a request names a resource
    [>= n_resources], has [deadline > d], or the list is out of arrival
    order. *)

val n_requests : t -> int

val arrivals_at : t -> int -> Request.t array
(** Requests arriving at the given round (empty outside the horizon). *)

val total_slots : t -> int
(** [n_resources * horizon]: capacity of the whole schedule. *)

val slot_index : t -> resource:int -> round:int -> int
(** Dense encoding of time slot (resource, round) in
    [0 .. total_slots - 1].
    @raise Invalid_argument out of range. *)

val slot_of_index : t -> int -> int * int
(** Inverse of {!slot_index}: [(resource, round)]. *)

val restrict_alternatives : t -> max:int -> t
(** A copy with every request's alternative list truncated to its first
    [max] entries — same arrivals and deadlines, fewer choices.  Used by
    the power-of-choices study to compare [c = 1, 2, …] on identical
    traffic.
    @raise Invalid_argument if [max < 1]. *)

val concat : t list -> t
(** Concatenate instances over the same [n_resources] and [d] in time:
    each subsequent instance's arrivals are shifted to start after the
    previous instance's horizon.  Used to repeat adversarial phases.
    @raise Invalid_argument on an empty list or mismatched parameters. *)

val pp_summary : Format.formatter -> t -> unit
