lib/localstrat/local.mli: Sched
