lib/localstrat/local.ml: Array Distnet Hashtbl List Prelude Sched
