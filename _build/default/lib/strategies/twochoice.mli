(** Greedy multiple-choice baselines from the balls-into-bins literature.

    The paper's introduction motivates two-choice scheduling via
    [KLM92]/[ABKU94]: sending each ball to the lesser-loaded of two
    random bins exponentially improves the maximum load.  These
    strategies transplant that heuristic to the scheduling model: each
    request is assigned on arrival, greedily and irrevocably, with no
    matching computation — O(alternatives · d) per request, the cheapest
    reasonable baselines against which the paper's matching-based
    strategies can be judged.

    All three freeze assignments like [A_fix]; they differ only in how
    the resource is picked. *)

val least_loaded : ?bias:Sched.Strategy.bias -> unit -> Sched.Strategy.factory
(** [ABKU94]'s rule: each arriving request compares its alternatives by
    the number of free slots left in its window and takes the emptiest
    (earliest free slot there; [bias], then lower index, breaks ties).
    Named ["greedy_2choice"]. *)

val random_choice : rng:Prelude.Rng.t -> unit -> Sched.Strategy.factory
(** The one-choice yardstick: pick a uniformly random alternative
    (regardless of load), then the earliest free slot on it; if that
    resource is full the request is lost — deliberately no retry, this
    is the "no load balancing" end of the spectrum.  Named
    ["greedy_random"]. *)

val first_fit : unit -> Sched.Strategy.factory
(** Always the first alternative, earliest free slot, retrying the
    remaining alternatives in order when full — what [A_local_fix]'s
    first communication round does, without the network.  Named
    ["greedy_firstfit"]. *)
