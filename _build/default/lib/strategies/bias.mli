(** Tie-break biases for the tiered strategies.

    The strategies' defining rules occupy the high weight tiers; a bias
    only selects among the matchings those rules already allow.  The
    adversary scenarios construct their own theorem-specific biases; the
    combinators here cover the rest: neutral runs, randomised
    tie-breaking (a natural extension the paper's related-work section
    points at via RANKING), and simple deterministic preferences for
    ablation studies. *)

val neutral : Sched.Strategy.bias
(** Always 0 (same as {!Sched.Strategy.no_bias}). *)

val random : rng:Prelude.Rng.t -> magnitude:int -> Sched.Strategy.bias
(** A random integer in [\[0, magnitude)] per (request, resource, round)
    triple, memoised so repeated queries within a run agree.  Using a
    fresh seed per run turns any deterministic strategy into a
    randomised one, defeating the deterministic adversary
    constructions. *)

val prefer_first_alternative : Sched.Strategy.bias
(** +1 when the resource is the request's first alternative — makes the
    global strategies comparable with the local protocols' first-try
    behaviour. *)

val spread : Sched.Strategy.bias
(** A deterministic hash of (request id, resource, round) in [\[0, 8)]:
    de-correlates ties without any shared randomness — the poor man's
    randomised tie-break, reproducible across runs by construction. *)

val scale : int -> Sched.Strategy.bias -> Sched.Strategy.bias
(** Multiply a bias by a constant. *)

val add : Sched.Strategy.bias -> Sched.Strategy.bias -> Sched.Strategy.bias
(** Pointwise sum — combine a primary preference with a secondary one by
    scaling the primary above the secondary's range. *)
