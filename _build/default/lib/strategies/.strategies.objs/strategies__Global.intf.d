lib/strategies/global.mli: Sched
