lib/strategies/twochoice.mli: Prelude Sched
