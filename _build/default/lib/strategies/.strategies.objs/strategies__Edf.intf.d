lib/strategies/edf.mli: Sched
