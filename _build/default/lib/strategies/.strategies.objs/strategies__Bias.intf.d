lib/strategies/bias.mli: Prelude Sched
