lib/strategies/twochoice.ml: Array Hashtbl List Option Prelude Sched
