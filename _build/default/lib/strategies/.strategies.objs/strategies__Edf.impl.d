lib/strategies/edf.ml: Array Hashtbl List Sched
