lib/strategies/bias.ml: Array Hashtbl Int64 Prelude Sched
