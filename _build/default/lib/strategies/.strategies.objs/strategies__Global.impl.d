lib/strategies/global.ml: Array Graph Hashtbl List Sched
