(** Earliest-deadline-first baselines (Observations 3.1 and 3.2).

    The paper's EDF treats the [c] copies of each request (one per
    alternative resource) as independent: every resource runs a local EDF
    queue over the requests that list it, with no coordination, so a
    request can be served more than once (the duplicate services are the
    waste the 2-competitiveness argument charges).  The engine counts
    duplicates as [wasted].

    With a single alternative this is 1-competitive (Obs 3.1); with [c]
    alternatives it is exactly [c]-competitive (Obs 3.2 and its noted
    extension). *)

val independent : ?bias:Sched.Strategy.bias -> unit -> Sched.Strategy.factory
(** The paper's uncoordinated EDF.  Each round every resource serves, of
    the live requests listing it, one with the earliest deadline; among
    deadline ties, higher [bias] wins, then lower request id (the
    "arbitrary" tie-break the lower-bound examples exploit). *)

val coordinated : ?bias:Sched.Strategy.bias -> unit -> Sched.Strategy.factory
(** A mild folklore improvement used by the average-case study: identical
    to {!independent} except resources skip requests that were already
    served — including earlier in the same round, i.e. a centralised
    "served" bit is the only shared state. *)
