module Request = Sched.Request
module Strategy = Sched.Strategy

type state = {
  n : int;
  bias : Strategy.bias;
  coordinate : bool;
  queues : (int, Request.t) Hashtbl.t array; (* per resource: id -> request *)
  served : (int, unit) Hashtbl.t;
}

(* The request resource [res] serves at [round]: live, not yet served
   (when coordinating), earliest deadline; ties by higher bias, then
   lower id. *)
let pick st ~round res =
  let better (a : Request.t) (b : Request.t) =
    let da = Request.last_round a and db = Request.last_round b in
    if da <> db then da < db
    else begin
      let ba = st.bias ~request:a ~resource:res ~round
      and bb = st.bias ~request:b ~resource:res ~round in
      if ba <> bb then ba > bb else a.Request.id < b.Request.id
    end
  in
  Hashtbl.fold
    (fun _ r best ->
       if not (Request.is_live r ~round) then best
       else if st.coordinate && Hashtbl.mem st.served r.Request.id then best
       else
         match best with
         | None -> Some r
         | Some b -> if better r b then Some r else best)
    st.queues.(res) None

let step st ~round ~arrivals =
  (* admit arrivals into each listed resource's queue *)
  Array.iter
    (fun (r : Request.t) ->
       Array.iter
         (fun res -> Hashtbl.replace st.queues.(res) r.Request.id r)
         r.Request.alternatives)
    arrivals;
  (* drop expired entries to keep the queues small *)
  Array.iter
    (fun q ->
       let dead =
         Hashtbl.fold
           (fun id r acc ->
              if Request.last_round r < round then id :: acc else acc)
           q []
       in
       List.iter (Hashtbl.remove q) dead)
    st.queues;
  let serves = ref [] in
  for res = 0 to st.n - 1 do
    match pick st ~round res with
    | None -> ()
    | Some r ->
      Hashtbl.remove st.queues.(res) r.Request.id;
      Hashtbl.replace st.served r.Request.id ();
      serves := { Strategy.request = r.Request.id; resource = res } :: !serves
  done;
  List.rev !serves

let make ~coordinate ~name ?(bias = Strategy.no_bias) () : Strategy.factory =
 fun ~n ~d:_ ->
  let st =
    {
      n;
      bias;
      coordinate;
      queues = Array.init n (fun _ -> Hashtbl.create 16);
      served = Hashtbl.create 64;
    }
  in
  { Strategy.name = name; step = (fun ~round ~arrivals -> step st ~round ~arrivals) }

let independent ?bias () = make ~coordinate:false ~name:"EDF" ?bias ()
let coordinated ?bias () = make ~coordinate:true ~name:"EDF_coord" ?bias ()
