module Request = Sched.Request
module Strategy = Sched.Strategy

type state = {
  n : int;
  slots : (int * int, int) Hashtbl.t; (* (resource, round) -> request id *)
}

(* free slots of [res] within [r]'s window at [round] *)
let free_slots st ~round res (r : Request.t) =
  let lo = max round r.Request.arrival and hi = Request.last_round r in
  let count = ref 0 in
  for t = lo to hi do
    if not (Hashtbl.mem st.slots (res, t)) then incr count
  done;
  !count

let earliest_free st ~round res (r : Request.t) =
  let lo = max round r.Request.arrival and hi = Request.last_round r in
  let rec find t =
    if t > hi then None
    else if Hashtbl.mem st.slots (res, t) then find (t + 1)
    else Some t
  in
  find lo

let assign st (r : Request.t) res t = Hashtbl.replace st.slots (res, t) r.Request.id

let collect_serves st ~round =
  let serves = ref [] in
  for res = 0 to st.n - 1 do
    match Hashtbl.find_opt st.slots (res, round) with
    | None -> ()
    | Some id ->
      Hashtbl.remove st.slots (res, round);
      serves := { Strategy.request = id; resource = res } :: !serves
  done;
  List.rev !serves

let make ~name ~choose : Strategy.factory =
 fun ~n ~d:_ ->
  let st = { n; slots = Hashtbl.create 128 } in
  {
    Strategy.name;
    step =
      (fun ~round ~arrivals ->
         Array.iter
           (fun (r : Request.t) ->
              match choose st ~round r with
              | Some (res, t) -> assign st r res t
              | None -> ())
           arrivals;
         collect_serves st ~round);
  }

let least_loaded ?(bias = Strategy.no_bias) () =
  let choose st ~round (r : Request.t) =
    let best = ref None in
    Array.iter
      (fun res ->
         match earliest_free st ~round res r with
         | None -> ()
         | Some t ->
           let key =
             (free_slots st ~round res r, bias ~request:r ~resource:res ~round,
              -res)
           in
           (match !best with
            | Some (key', _, _) when key' >= key -> ()
            | Some _ | None -> best := Some (key, res, t)))
      r.Request.alternatives;
    Option.map (fun (_, res, t) -> (res, t)) !best
  in
  make ~name:"greedy_2choice" ~choose

let random_choice ~rng () =
  let choose st ~round (r : Request.t) =
    let res = Prelude.Rng.pick rng r.Request.alternatives in
    Option.map (fun t -> (res, t)) (earliest_free st ~round res r)
  in
  make ~name:"greedy_random" ~choose

let first_fit () =
  let choose st ~round (r : Request.t) =
    let rec try_alts i =
      if i >= Array.length r.Request.alternatives then None
      else
        let res = r.Request.alternatives.(i) in
        match earliest_free st ~round res r with
        | Some t -> Some (res, t)
        | None -> try_alts (i + 1)
    in
    try_alts 0
  in
  make ~name:"greedy_firstfit" ~choose
