module Strategy = Sched.Strategy
module Request = Sched.Request

let neutral = Strategy.no_bias

let random ~rng ~magnitude : Strategy.bias =
  if magnitude < 1 then invalid_arg "Bias.random: magnitude must be >= 1";
  let cache : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  fun ~request ~resource ~round ->
    let key = (request.Request.id, resource, round) in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
      let v = Prelude.Rng.int rng magnitude in
      Hashtbl.replace cache key v;
      v

let prefer_first_alternative : Strategy.bias =
 fun ~request ~resource ~round:_ ->
  if Array.length request.Request.alternatives > 0
     && request.Request.alternatives.(0) = resource
  then 1
  else 0

(* splitmix-style finaliser over the packed key *)
let spread : Strategy.bias =
 fun ~request ~resource ~round ->
  let z =
    Int64.of_int
      ((request.Request.id * 1_000_003) + (resource * 10_007) + round)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.logand z 7L)

let scale k (bias : Strategy.bias) : Strategy.bias =
 fun ~request ~resource ~round -> k * bias ~request ~resource ~round

let add (a : Strategy.bias) (b : Strategy.bias) : Strategy.bias =
 fun ~request ~resource ~round ->
  a ~request ~resource ~round + b ~request ~resource ~round
