type t = int array

let zero k = Array.make k 0

let unit k i =
  let v = Array.make k 0 in
  v.(i) <- 1;
  v

let of_array a = a

let check_len a b op =
  if Array.length a <> Array.length b then
    invalid_arg ("Lexvec." ^ op ^ ": length mismatch")

let add a b =
  check_len a b "add";
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let neg a = Array.map (fun x -> -x) a

let sub a b =
  check_len a b "sub";
  Array.init (Array.length a) (fun i -> a.(i) - b.(i))

let compare a b =
  check_len a b "compare";
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let is_positive a = compare a (zero (Array.length a)) > 0
let is_negative a = compare a (zero (Array.length a)) < 0

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b

let to_string a =
  "(" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ ")"
