lib/graph/tiered.ml: Array Bipartite Lexvec List Matching Prelude Printf Queue
