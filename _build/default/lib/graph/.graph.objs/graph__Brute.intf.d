lib/graph/brute.mli: Bipartite Lexvec
