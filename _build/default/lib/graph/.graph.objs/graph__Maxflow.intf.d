lib/graph/maxflow.mli:
