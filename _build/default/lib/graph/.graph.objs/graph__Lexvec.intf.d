lib/graph/lexvec.mli:
