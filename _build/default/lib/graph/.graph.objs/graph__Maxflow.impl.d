lib/graph/maxflow.ml: Array Prelude Queue
