lib/graph/hopcroft_karp.ml: Array Bipartite List Matching Prelude Queue
