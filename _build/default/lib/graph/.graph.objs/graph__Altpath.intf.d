lib/graph/altpath.mli: Bipartite Matching
