lib/graph/matching.ml: Array Bipartite List Prelude
