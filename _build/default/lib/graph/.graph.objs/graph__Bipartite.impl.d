lib/graph/bipartite.ml: Array Prelude
