lib/graph/lexvec.ml: Array Stdlib String
