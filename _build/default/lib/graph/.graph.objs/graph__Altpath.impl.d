lib/graph/altpath.ml: Array Bipartite Hashtbl List Matching Option Prelude
