lib/graph/matching.mli: Bipartite
