lib/graph/bipartite.mli: Prelude
