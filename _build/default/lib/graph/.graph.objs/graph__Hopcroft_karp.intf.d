lib/graph/hopcroft_karp.mli: Bipartite Matching
