lib/graph/tiered.mli: Bipartite Lexvec Matching
