lib/graph/brute.ml: Array Bipartite Lexvec List
