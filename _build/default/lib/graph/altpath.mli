(** Alternating path/cycle decomposition of two matchings.

    For matchings [M1] (the online algorithm's) and [M2] (the optimum's)
    in the same graph, the symmetric difference [M1 ⊕ M2] decomposes into
    node-disjoint alternating paths and cycles (Sec. 1.2 of the paper).
    Augmenting paths for [M1] witness exactly where the online algorithm
    lost requests, and the paper's upper-bound proofs constrain their
    {e order} (number of request nodes on the path); the analysis layer
    audits those constraints on real runs through this module. *)

type kind =
  | Augmenting_first   (** both endpoints free in [M1]: augments [M1] *)
  | Augmenting_second  (** both endpoints free in [M2]: augments [M2] *)
  | Even_path          (** one endpoint free in each: equal edge counts *)
  | Cycle

type component = {
  kind : kind;
  edges : int list;  (** edge ids in walk order along the component *)
  n_left : int;      (** distinct left vertices on the component *)
  n_right : int;     (** distinct right vertices on the component *)
}

val decompose : Bipartite.t -> Matching.t -> Matching.t -> component list
(** All components of [M1 ⊕ M2].  Edges present in both matchings (or in
    neither) do not appear. *)

val order : component -> int
(** The paper's order of an augmenting path: its number of request (left)
    vertices. *)

val census : Bipartite.t -> Matching.t -> Matching.t -> (int * int) list
(** [(order, count)] pairs, ascending, over the [Augmenting_first]
    components of [decompose g m1 m2]: the orders of the augmenting paths
    available to the optimum against the online matching. *)
