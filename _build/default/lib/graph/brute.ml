(* Branch on each edge id in order: skip it, or (if both endpoints are
   still free) take it.  2^E worst case; tests keep E small. *)

let fold_matchings g ~init ~f =
  let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
  let used_l = Array.make nl false and used_r = Array.make nr false in
  let ne = Bipartite.n_edges g in
  let acc = ref init in
  let taken = ref [] in
  let rec go id =
    if id >= ne then acc := f !acc !taken
    else begin
      go (id + 1);
      let u = Bipartite.edge_left g id and v = Bipartite.edge_right g id in
      if (not used_l.(u)) && not used_r.(v) then begin
        used_l.(u) <- true;
        used_r.(v) <- true;
        taken := id :: !taken;
        go (id + 1);
        taken := List.tl !taken;
        used_l.(u) <- false;
        used_r.(v) <- false
      end
    end
  in
  go 0;
  !acc

let max_matching_size g =
  fold_matchings g ~init:0 ~f:(fun best taken ->
      max best (List.length taken))

let max_weight g ~weight =
  let ne = Bipartite.n_edges g in
  let k = if ne = 0 then 0 else Array.length (weight 0) in
  let zero = Lexvec.zero k in
  fold_matchings g ~init:zero ~f:(fun best taken ->
      let w =
        List.fold_left (fun acc id -> Lexvec.add acc (weight id)) zero taken
      in
      Lexvec.max best w)

let count_maximum_matchings g =
  let best = max_matching_size g in
  fold_matchings g ~init:0 ~f:(fun count taken ->
      if List.length taken = best then count + 1 else count)
