(** Maximum cardinality bipartite matching (Hopcroft–Karp, 1973).

    [O(E √V)]: each phase finds a maximal set of vertex-disjoint shortest
    augmenting paths by one BFS + one DFS; at most [√V] phases are needed.
    This is the offline-optimum engine for expanded (one-node-per-request)
    instances; grouped instances use {!Maxflow} instead. *)

val solve : Bipartite.t -> Matching.t
(** A maximum cardinality matching of the graph. *)

val solve_from : Bipartite.t -> Matching.t -> Matching.t
(** Like {!solve} but starting from an existing valid matching (which is
    not modified); useful to warm-start from a greedy matching. *)

val max_matching_size : Bipartite.t -> int
(** [size (solve g)] without exposing the matching. *)

val min_vertex_cover : Bipartite.t -> Matching.t -> int list * int list
(** König's construction: from a {e maximum} matching, the minimum
    vertex cover [(left_vertices, right_vertices)] — left vertices not
    reachable by an alternating path from any free left vertex, plus
    right vertices that are.  Its size equals the matching's size, which
    certifies the matching is maximum; {!is_koenig_certificate} checks
    both properties.  Garbage in, garbage out: the input must be a
    maximum matching. *)

val is_koenig_certificate : Bipartite.t -> Matching.t -> bool
(** Verify that [min_vertex_cover g m] really covers every edge and has
    exactly [Matching.size m] vertices — a self-contained optimality
    certificate for [m] (used by tests to certify the offline optimum
    without trusting the solver twice). *)
