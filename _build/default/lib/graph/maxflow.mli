(** Integer maximum flow (Dinic's algorithm).

    Adversarial instances contain large groups of identical requests (the
    paper's [block(a,d)] structures); collapsing each group to one node
    with capacity = group size turns the offline-optimum computation from
    a huge expanded matching into a small flow problem.  Complexity
    [O(V² E)] in general and [O(E √V)] on unit networks — far more than
    enough for every instance in the harness. *)

type t

val create : n_nodes:int -> t
(** A flow network on nodes [0 .. n_nodes-1] with no arcs. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Add a directed arc with the given capacity (its reverse arc with
    capacity 0 is added implicitly) and return an arc id usable with
    {!flow_on}.
    @raise Invalid_argument on out-of-range endpoints or negative
    capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Run Dinic to completion and return the flow pushed {e by this call}.
    On a fresh network that is the max-flow value.  Calling again (e.g.
    after adding arcs) retains the flow already routed and returns only
    the additional amount. *)

val flow_on : t -> int -> int
(** Flow currently routed through the given arc id. *)

val min_cut : t -> source:int -> int list
(** After {!max_flow} has run to completion: the source side of a
    minimum cut (the nodes reachable from [source] in the residual
    graph).  By max-flow/min-cut the capacity crossing out of this set
    equals the flow value; {!is_cut_certificate} checks it. *)

val is_cut_certificate : t -> source:int -> sink:int -> flow:int -> bool
(** Verify that the residual reachability cut after a completed
    {!max_flow} separates source from sink and that exactly [flow]
    units of original capacity cross it — a self-contained optimality
    certificate. *)

val n_nodes : t -> int
