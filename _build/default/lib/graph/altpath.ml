module Ivec = Prelude.Ivec

type kind =
  | Augmenting_first
  | Augmenting_second
  | Even_path
  | Cycle

type component = {
  kind : kind;
  edges : int list;
  n_left : int;
  n_right : int;
}

(* Vertices are encoded left as [2u], right as [2v+1] so one adjacency
   table serves both sides. *)
let decompose g m1 m2 =
  let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
  let in_m1 id = m1.Matching.left_edge.(Bipartite.edge_left g id) = id in
  let in_m2 id = m2.Matching.left_edge.(Bipartite.edge_left g id) = id in
  let adj = Array.init (2 * max 1 (max nl nr)) (fun _ -> Ivec.create ~capacity:2 ()) in
  let sym_edges = Ivec.create () in
  Bipartite.iter_edges g (fun id ~left ~right ->
      if in_m1 id <> in_m2 id then begin
        Ivec.push adj.(2 * left) id;
        Ivec.push adj.((2 * right) + 1) id;
        Ivec.push sym_edges id
      end);
  let edge_seen = Hashtbl.create 16 in
  let other_endpoint id v =
    let l = 2 * Bipartite.edge_left g id
    and r = (2 * Bipartite.edge_right g id) + 1 in
    if v = l then r else l
  in
  (* walk from vertex [v] along unseen symdiff edges, collecting edge ids *)
  let walk start =
    let rec go v acc =
      let next =
        Ivec.fold
          (fun found id ->
             match found with
             | Some _ -> found
             | None ->
               if Hashtbl.mem edge_seen id then None else Some id)
          None adj.(v)
      in
      match next with
      | None -> (v, List.rev acc)
      | Some id ->
        Hashtbl.replace edge_seen id ();
        go (other_endpoint id v) (id :: acc)
    in
    go start []
  in
  let classify_path endpoint_a endpoint_b =
    let free_in_m1 v =
      if v mod 2 = 0 then not (Matching.is_matched_left m1 (v / 2))
      else not (Matching.is_matched_right m1 (v / 2))
    in
    match (free_in_m1 endpoint_a, free_in_m1 endpoint_b) with
    | true, true -> Augmenting_first
    | false, false -> Augmenting_second
    | true, false | false, true -> Even_path
  in
  let stats edges =
    let lefts = Hashtbl.create 8 and rights = Hashtbl.create 8 in
    List.iter
      (fun id ->
         Hashtbl.replace lefts (Bipartite.edge_left g id) ();
         Hashtbl.replace rights (Bipartite.edge_right g id) ())
      edges;
    (Hashtbl.length lefts, Hashtbl.length rights)
  in
  let components = ref [] in
  (* paths first: start from degree-1 vertices *)
  let degree v = Ivec.length adj.(v) in
  let visit_path_from v =
    if degree v = 1 then begin
      let only = Ivec.get adj.(v) 0 in
      if not (Hashtbl.mem edge_seen only) then begin
        let endpoint, edges = walk v in
        let n_left, n_right = stats edges in
        components :=
          { kind = classify_path v endpoint; edges; n_left; n_right }
          :: !components
      end
    end
  in
  for v = 0 to Array.length adj - 1 do
    visit_path_from v
  done;
  (* remaining unseen symdiff edges belong to cycles *)
  Ivec.iter
    (fun id ->
       if not (Hashtbl.mem edge_seen id) then begin
         let start = 2 * Bipartite.edge_left g id in
         let _, edges = walk start in
         let n_left, n_right = stats edges in
         components := { kind = Cycle; edges; n_left; n_right } :: !components
       end)
    sym_edges;
  List.rev !components

(* A path's endpoints: one is a free request (left, in the augmenting-M1
   case) and the other a free slot; every interior request appears with
   both its edges, so the number of request nodes equals the paper's
   order ℓ. *)
let order c = c.n_left

let census g m1 m2 =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
       match c.kind with
       | Augmenting_first ->
         let o = order c in
         Hashtbl.replace tbl o (1 + Option.value ~default:0 (Hashtbl.find_opt tbl o))
       | Augmenting_second | Even_path | Cycle -> ())
    (decompose g m1 m2);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
