(** Exponential-time matching oracles, for tests only.

    Enumerates matchings by branching on edges in id order.  Keep graphs
    tiny (≈ 12 edges or fewer); the property tests use these as ground
    truth for {!Hopcroft_karp} and {!Tiered}. *)

val max_matching_size : Bipartite.t -> int
(** Cardinality of a maximum matching, by exhaustive branching. *)

val max_weight : Bipartite.t -> weight:(int -> Lexvec.t) -> Lexvec.t
(** Lexicographic maximum of total matching weight over all matchings
    (including the empty one). *)

val count_maximum_matchings : Bipartite.t -> int
(** Number of distinct maximum-cardinality matchings. *)
