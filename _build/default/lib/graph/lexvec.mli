(** Integer weight vectors under lexicographic order.

    The tiered-weight matching engine ({!Tiered}) expresses strategy
    objectives as ranked tiers: a weight is a short vector of ints, added
    pointwise and compared lexicographically (earlier components dominate).
    [(Z^k, +, <=_lex)] is a totally ordered abelian group, which is exactly
    what successive-shortest-path augmentation needs, so the engine is
    exact without ever forming the huge scalar weights
    [(n+1)^(d-j)] from the paper's balancing function [F]. *)

type t = int array
(** Weights of one problem must share a common length. *)

val zero : int -> t
(** [zero k] is the additive identity of length [k]. *)

val unit : int -> int -> t
(** [unit k i] has a single 1 at index [i]. *)

val of_array : int array -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val compare : t -> t -> int
(** Lexicographic; vectors must have equal length. *)

val equal : t -> t -> bool
val is_positive : t -> bool
(** Strictly greater than zero. *)

val is_negative : t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t
val to_string : t -> string
(** e.g. ["(1,0,3)"], for diagnostics. *)
