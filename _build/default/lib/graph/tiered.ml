module Ivec = Prelude.Ivec

(* Residual digraph of a matching M:
     - unmatched edge (u,v): arc u -> v with gain +w(e)
     - matched edge (u,v):  arc v -> u with gain -w(e)
   An augmenting path is a residual path from a free left vertex to a free
   right vertex; its total gain is the weight change of augmenting along
   it.  While the current matching is maximum-weight among matchings of
   its cardinality, the residual graph has no positive-gain cycle, so
   queue-based Bellman-Ford (SPFA) computes maximum-gain paths in finite
   time. *)

type state = {
  g : Bipartite.t;
  w : Lexvec.t array; (* edge id -> weight *)
  zero : Lexvec.t;
  m : Matching.t;
  dist_l : Lexvec.t option array;
  dist_r : Lexvec.t option array;
  parent_l : int array; (* left vertex  -> matched edge used to reach it *)
  parent_r : int array; (* right vertex -> unmatched edge used to reach it *)
}

let load_weights g ~weight =
  let ne = Bipartite.n_edges g in
  let w = Array.init ne weight in
  if ne > 0 then begin
    let k = Array.length w.(0) in
    Array.iteri
      (fun id v ->
         if Array.length v <> k then
           invalid_arg
             (Printf.sprintf
                "Tiered: edge %d weight length %d, expected %d" id
                (Array.length v) k))
      w
  end;
  w

let make_state g ~weight =
  let w = load_weights g ~weight in
  let k = if Array.length w = 0 then 0 else Array.length w.(0) in
  {
    g;
    w;
    zero = Lexvec.zero k;
    m = Matching.empty g;
    dist_l = Array.make (Bipartite.n_left g) None;
    dist_r = Array.make (Bipartite.n_right g) None;
    parent_l = Array.make (Bipartite.n_left g) (-1);
    parent_r = Array.make (Bipartite.n_right g) (-1);
  }

(* One SPFA sweep from all free left vertices.  Fills dist/parent arrays.
   The relaxation budget guards the internal no-positive-cycle invariant:
   exceeding it means the invariant was broken (a bug), not bad input. *)
let spfa st =
  let nl = Bipartite.n_left st.g and nr = Bipartite.n_right st.g in
  Array.fill st.dist_l 0 nl None;
  Array.fill st.dist_r 0 nr None;
  Array.fill st.parent_l 0 nl (-1);
  Array.fill st.parent_r 0 nr (-1);
  (* queue of vertices: left encoded as v, right as nl + v *)
  let queue = Queue.create () in
  let in_queue = Array.make (nl + nr) false in
  let push code =
    if not in_queue.(code) then begin
      in_queue.(code) <- true;
      Queue.add code queue
    end
  in
  for u = 0 to nl - 1 do
    if not (Matching.is_matched_left st.m u) then begin
      st.dist_l.(u) <- Some st.zero;
      push u
    end
  done;
  let budget =
    let v = nl + nr and e = Bipartite.n_edges st.g in
    (v + 1) * (e + 1) * 2
  in
  let steps = ref 0 in
  while not (Queue.is_empty queue) do
    incr steps;
    if !steps > budget then
      failwith "Tiered.spfa: relaxation budget exceeded (positive cycle?)";
    let code = Queue.pop queue in
    in_queue.(code) <- false;
    if code < nl then begin
      (* left vertex: relax along its non-matching edges *)
      let u = code in
      match st.dist_l.(u) with
      | None -> ()
      | Some du ->
        Ivec.iter
          (fun id ->
             if st.m.Matching.left_edge.(u) <> id then begin
               let v = Bipartite.edge_right st.g id in
               let cand = Lexvec.add du st.w.(id) in
               let better =
                 match st.dist_r.(v) with
                 | None -> true
                 | Some dv -> Lexvec.compare cand dv > 0
               in
               if better then begin
                 st.dist_r.(v) <- Some cand;
                 st.parent_r.(v) <- id;
                 push (nl + v)
               end
             end)
          (Bipartite.adj_left st.g u)
    end
    else begin
      (* right vertex: relax along its matching edge (if matched) *)
      let v = code - nl in
      match st.dist_r.(v) with
      | None -> ()
      | Some dv ->
        let u = st.m.Matching.right_to.(v) in
        if u >= 0 then begin
          let id = st.m.Matching.left_edge.(u) in
          let cand = Lexvec.sub dv st.w.(id) in
          let better =
            match st.dist_l.(u) with
            | None -> true
            | Some du -> Lexvec.compare cand du > 0
          in
          if better then begin
            st.dist_l.(u) <- Some cand;
            st.parent_l.(u) <- id;
            push u
          end
        end
    end
  done

(* Best free right vertex by gain, if any. *)
let best_target st =
  let nr = Bipartite.n_right st.g in
  let best = ref None in
  for v = 0 to nr - 1 do
    if not (Matching.is_matched_right st.m v) then
      match st.dist_r.(v) with
      | None -> ()
      | Some dv ->
        (match !best with
         | Some (_, d) when Lexvec.compare dv d <= 0 -> ()
         | _ -> best := Some (v, dv))
  done;
  !best

(* Reconstruct the augmenting path ending at free right vertex [v] as the
   edge list from the free left start (even positions unmatched, odd
   matched), then flip it. *)
let augment st v =
  let rec collect v acc =
    let e = st.parent_r.(v) in
    assert (e >= 0);
    let u = Bipartite.edge_left st.g e in
    if Matching.is_matched_left st.m u then begin
      let e' = st.m.Matching.left_edge.(u) in
      (* reached u by stealing it from its matched slot; continue from
         the slot we freed *)
      assert (st.parent_l.(u) = e');
      collect (Bipartite.edge_right st.g e') (e' :: e :: acc)
    end
    else e :: acc
  in
  let path = collect v [] in
  Matching.augment_along st.g st.m path

let solve g ~weight =
  let st = make_state g ~weight in
  let continue_ = ref true in
  while !continue_ do
    spfa st;
    match best_target st with
    | Some (v, gain) when Lexvec.compare gain st.zero > 0 -> augment st v
    | Some _ | None -> continue_ := false
  done;
  st.m

let weight_of g ~weight m =
  let w = load_weights g ~weight in
  let k = if Array.length w = 0 then 0 else Array.length w.(0) in
  List.fold_left
    (fun acc id -> Lexvec.add acc w.(id))
    (Lexvec.zero k) (Matching.matched_edges m)

(* Optimality certificate.  (1) No augmenting path of positive gain:
   free-left-source SPFA must give non-positive gain at every free right
   vertex.  (2) No positive alternating cycle: Bellman-Ford with all
   distances seeded to zero; if any distance can still improve after
   V full rounds, a positive cycle exists. *)
let is_max_weight_certificate g ~weight m =
  let w = load_weights g ~weight in
  let k = if Array.length w = 0 then 0 else Array.length w.(0) in
  let zero = Lexvec.zero k in
  let st =
    {
      g;
      w;
      zero;
      m = Matching.copy m;
      dist_l = Array.make (Bipartite.n_left g) None;
      dist_r = Array.make (Bipartite.n_right g) None;
      parent_l = Array.make (Bipartite.n_left g) (-1);
      parent_r = Array.make (Bipartite.n_right g) (-1);
    }
  in
  let no_augmenting =
    try
      spfa st;
      match best_target st with
      | Some (_, gain) -> Lexvec.compare gain zero <= 0
      | None -> true
    with Failure _ -> false
  in
  if not no_augmenting then false
  else begin
    (* positive-cycle detection by dense Bellman-Ford *)
    let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
    let dl = Array.make nl zero and dr = Array.make nr zero in
    let changed = ref true in
    let rounds = ref 0 in
    let has_cycle = ref false in
    while !changed && not !has_cycle do
      changed := false;
      incr rounds;
      Bipartite.iter_edges g (fun id ~left ~right ->
          if m.Matching.left_edge.(left) = id then begin
            (* matched: arc right -> left with -w *)
            let cand = Lexvec.sub dr.(right) w.(id) in
            if Lexvec.compare cand dl.(left) > 0 then begin
              dl.(left) <- cand;
              changed := true
            end
          end
          else begin
            let cand = Lexvec.add dl.(left) w.(id) in
            if Lexvec.compare cand dr.(right) > 0 then begin
              dr.(right) <- cand;
              changed := true
            end
          end);
      if !rounds > nl + nr + 1 then has_cycle := true
    done;
    not !has_cycle
  end
