module Ivec = Prelude.Ivec

(* Adjacency holds indices into the shared arc arrays; arc [2k] and
   [2k+1] are mutual reverses, so the reverse of arc [a] is [a lxor 1]. *)

type t = {
  n_nodes : int;
  mutable caps : Ivec.t;  (* residual capacity per arc *)
  mutable dsts : Ivec.t;  (* head node per arc *)
  adj : Ivec.t array;     (* node -> arc indices *)
  mutable level : int array;
  mutable iter : int array;
}

let create ~n_nodes =
  if n_nodes <= 0 then invalid_arg "Maxflow.create: n_nodes must be positive";
  {
    n_nodes;
    caps = Ivec.create ();
    dsts = Ivec.create ();
    adj = Array.init n_nodes (fun _ -> Ivec.create ~capacity:4 ());
    level = Array.make n_nodes (-1);
    iter = Array.make n_nodes 0;
  }

let n_nodes t = t.n_nodes

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n_nodes || dst < 0 || dst >= t.n_nodes then
    invalid_arg "Maxflow.add_edge: endpoint out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let a = Ivec.length t.caps in
  Ivec.push t.caps cap;
  Ivec.push t.dsts dst;
  Ivec.push t.adj.(src) a;
  Ivec.push t.caps 0;
  Ivec.push t.dsts src;
  Ivec.push t.adj.(dst) (a + 1);
  a / 2

let bfs t ~source ~sink =
  Array.fill t.level 0 t.n_nodes (-1);
  let q = Queue.create () in
  t.level.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Ivec.iter
      (fun a ->
         let v = Ivec.get t.dsts a in
         if Ivec.get t.caps a > 0 && t.level.(v) < 0 then begin
           t.level.(v) <- t.level.(u) + 1;
           Queue.add v q
         end)
      t.adj.(u)
  done;
  t.level.(sink) >= 0

let rec dfs t ~sink u pushed =
  if u = sink then pushed
  else begin
    let adj = t.adj.(u) in
    let n = Ivec.length adj in
    let result = ref 0 in
    while !result = 0 && t.iter.(u) < n do
      let a = Ivec.get adj t.iter.(u) in
      let v = Ivec.get t.dsts a in
      let cap = Ivec.get t.caps a in
      if cap > 0 && t.level.(v) = t.level.(u) + 1 then begin
        let got = dfs t ~sink v (min pushed cap) in
        if got > 0 then begin
          Ivec.set t.caps a (cap - got);
          Ivec.set t.caps (a lxor 1) (Ivec.get t.caps (a lxor 1) + got);
          result := got
        end
        else t.iter.(u) <- t.iter.(u) + 1
      end
      else t.iter.(u) <- t.iter.(u) + 1
    done;
    !result
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let total = ref 0 in
  while bfs t ~source ~sink do
    Array.fill t.iter 0 t.n_nodes 0;
    let continue_ = ref true in
    while !continue_ do
      let got = dfs t ~sink source max_int in
      if got = 0 then continue_ := false else total := !total + got
    done
  done;
  !total

let residual_reachable t ~source =
  let seen = Array.make t.n_nodes false in
  let q = Queue.create () in
  seen.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Ivec.iter
      (fun a ->
         let v = Ivec.get t.dsts a in
         if Ivec.get t.caps a > 0 && not seen.(v) then begin
           seen.(v) <- true;
           Queue.add v q
         end)
      t.adj.(u)
  done;
  seen

let min_cut t ~source =
  let seen = residual_reachable t ~source in
  let acc = ref [] in
  for v = t.n_nodes - 1 downto 0 do
    if seen.(v) then acc := v :: !acc
  done;
  !acc

let is_cut_certificate t ~source ~sink ~flow =
  let seen = residual_reachable t ~source in
  if seen.(sink) then false
  else begin
    (* original capacity of forward arc [2k] is residual + flow on it;
       sum capacities of arcs leaving the source side *)
    let crossing = ref 0 in
    let n_arcs = Ivec.length t.caps in
    let a = ref 0 in
    while !a < n_arcs do
      (* even indices are the original (forward) arcs *)
      let src_side =
        (* the tail of arc a is the head of its reverse *)
        seen.(Ivec.get t.dsts (!a + 1))
      in
      let dst_side = seen.(Ivec.get t.dsts !a) in
      if src_side && not dst_side then begin
        let original_cap = Ivec.get t.caps !a + Ivec.get t.caps (!a + 1) in
        (* flow on the arc = residual of its reverse, but the reverse's
           residual also includes any initial reverse capacity (always 0
           here: add_edge creates reverses with capacity 0) *)
        crossing := !crossing + original_cap
      end;
      a := !a + 2
    done;
    !crossing = flow
  end

let flow_on t id =
  let a = 2 * id in
  if a < 0 || a >= Ivec.length t.caps then
    invalid_arg "Maxflow.flow_on: arc id out of range";
  (* flow = residual capacity accumulated on the reverse arc *)
  Ivec.get t.caps (a + 1)
