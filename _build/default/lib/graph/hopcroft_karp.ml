module Ivec = Prelude.Ivec

(* Standard Hopcroft–Karp.  [dist] holds BFS levels over free left
   vertices; the DFS extends along level-increasing edges only, so each
   phase augments along shortest paths and the number of phases is
   O(sqrt V). *)

let infinity_dist = max_int

let solve_from g start =
  let n_l = Bipartite.n_left g in
  let m = Matching.copy start in
  let dist = Array.make n_l infinity_dist in
  let queue = Queue.create () in

  (* BFS from all free left vertices; returns true if some free right
     vertex is reachable (i.e. an augmenting path exists). *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to n_l - 1 do
      if not (Matching.is_matched_left m u) then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    let frontier_limit = ref infinity_dist in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if dist.(u) < !frontier_limit then
        Ivec.iter
          (fun id ->
             let v = Bipartite.edge_right g id in
             let u' = m.Matching.right_to.(v) in
             if u' < 0 then begin
               (* free right vertex: stop expanding deeper levels *)
               if !frontier_limit = infinity_dist then
                 frontier_limit := dist.(u) + 1;
               found := true
             end
             else if dist.(u') = infinity_dist then begin
               dist.(u') <- dist.(u) + 1;
               Queue.add u' queue
             end)
          (Bipartite.adj_left g u)
    done;
    !found
  in

  (* DFS along level-increasing edges; flips matching in place. *)
  let rec dfs u =
    let adj = Bipartite.adj_left g u in
    let n = Ivec.length adj in
    let rec try_edge i =
      if i >= n then begin
        dist.(u) <- infinity_dist;
        false
      end
      else begin
        let id = Ivec.get adj i in
        let v = Bipartite.edge_right g id in
        let u' = m.Matching.right_to.(v) in
        let extends =
          if u' < 0 then true
          else if dist.(u') = dist.(u) + 1 then dfs u'
          else false
        in
        if extends then begin
          (* rematch u across v, displacing nothing (u' was rematched by
             the recursive call already) *)
          if m.Matching.left_to.(u) >= 0 then Matching.drop_left m u;
          m.Matching.left_to.(u) <- v;
          m.Matching.right_to.(v) <- u;
          m.Matching.left_edge.(u) <- id;
          true
        end
        else try_edge (i + 1)
      end
    in
    try_edge 0
  in

  while bfs () do
    for u = 0 to n_l - 1 do
      if not (Matching.is_matched_left m u) then ignore (dfs u : bool)
    done
  done;
  m

let solve g = solve_from g (Matching.empty g)

let max_matching_size g = Matching.size (solve g)

(* Koenig: mark everything reachable from free left vertices by
   alternating paths (unmatched edge left->right, matched edge
   right->left).  Cover = unmarked lefts + marked rights. *)
let koenig_marks g m =
  let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
  let mark_l = Array.make nl false and mark_r = Array.make nr false in
  let queue = Queue.create () in
  for u = 0 to nl - 1 do
    if not (Matching.is_matched_left m u) then begin
      mark_l.(u) <- true;
      Queue.add u queue
    end
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Ivec.iter
      (fun id ->
         if m.Matching.left_edge.(u) <> id then begin
           let v = Bipartite.edge_right g id in
           if not mark_r.(v) then begin
             mark_r.(v) <- true;
             let u' = m.Matching.right_to.(v) in
             if u' >= 0 && not mark_l.(u') then begin
               mark_l.(u') <- true;
               Queue.add u' queue
             end
           end
         end)
      (Bipartite.adj_left g u)
  done;
  (mark_l, mark_r)

let min_vertex_cover g m =
  let mark_l, mark_r = koenig_marks g m in
  let lefts = ref [] and rights = ref [] in
  for u = Bipartite.n_left g - 1 downto 0 do
    if not mark_l.(u) then lefts := u :: !lefts
  done;
  for v = Bipartite.n_right g - 1 downto 0 do
    if mark_r.(v) then rights := v :: !rights
  done;
  (!lefts, !rights)

let is_koenig_certificate g m =
  if not (Matching.is_valid g m) then false
  else begin
    let lefts, rights = min_vertex_cover g m in
    let in_l = Array.make (Bipartite.n_left g) false in
    let in_r = Array.make (Bipartite.n_right g) false in
    List.iter (fun u -> in_l.(u) <- true) lefts;
    List.iter (fun v -> in_r.(v) <- true) rights;
    let covers_all = ref true in
    Bipartite.iter_edges g (fun _ ~left ~right ->
        if (not in_l.(left)) && not in_r.(right) then covers_all := false);
    !covers_all
    && List.length lefts + List.length rights = Matching.size m
  end
