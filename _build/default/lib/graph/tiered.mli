(** Maximum-weight bipartite matching over lexicographic weight tiers.

    Edge weights are {!Lexvec.t} vectors of a common length; the engine
    returns a matching maximising the pointwise sum of its edge weights
    under lexicographic comparison.  This captures every strategy of the
    paper as a ranked objective list (keep previously scheduled requests >
    cardinality > balancing function [F] per-round counts > adversarial
    tie-break), see DESIGN.md §4.1.

    Method: successive maximum-gain augmenting paths.  Starting from the
    empty matching (trivially optimal at cardinality 0), each step finds an
    augmenting path of maximum total gain via queue-based Bellman–Ford on
    the residual digraph and augments while the gain is lexicographically
    positive.  Over an ordered abelian group the classical exchange
    argument applies unchanged, so each intermediate matching is
    maximum-weight among matchings of its cardinality and the final
    matching is a global optimum.

    A key structural fact used throughout the library: when every edge
    weight is positive in some tier at or above all negative tiers (true
    for all strategy weightings), every augmenting path has positive gain,
    hence the result is also a {e maximum cardinality} matching. *)

val solve : Bipartite.t -> weight:(int -> Lexvec.t) -> Matching.t
(** [solve g ~weight] maximises [Σ weight e] over matchings of [g].
    [weight] is consulted once per edge id; all vectors must share one
    length.
    @raise Invalid_argument on inconsistent vector lengths. *)

val weight_of : Bipartite.t -> weight:(int -> Lexvec.t) -> Matching.t ->
  Lexvec.t
(** Total weight of a matching under the given weighting (zero vector for
    the empty matching; length taken from edge 0, or 0 if no edges). *)

val is_max_weight_certificate : Bipartite.t -> weight:(int -> Lexvec.t) ->
  Matching.t -> bool
(** Certify optimality of a matching: no augmenting path and no
    alternating cycle has positive gain.  Exponential-free (one
    Bellman–Ford sweep); used by tests. *)
