(* The integration test: every reproduction experiment of DESIGN.md §3
   runs at quick parameters and every one of its named checks must
   pass.  This is the test-suite mirror of `dune exec bench/main.exe`. *)

let experiment_case (id, f) =
  Alcotest.test_case id `Slow (fun () ->
      let e = f ~quick:true in
      List.iter
        (fun (name, ok) ->
           Alcotest.check Alcotest.bool
             (Printf.sprintf "[%s] %s" e.Report.Experiments.id name)
             true ok)
        e.Report.Experiments.checks)

let test_harness_asymptotic_exact () =
  (* the doubling-difference estimator must cancel additive terms:
     thm 2.1 at d=3 gives exactly 5/3 per phase *)
  let measured =
    Report.Harness.asymptotic_ratio_exact
      ~make:(fun phases -> Adversary.Thm21.make ~d:3 ~phases)
      ~factory:(fun sc -> Strategies.Global.fix ~bias:sc.bias ())
      ~k:2
  in
  Alcotest.check
    (Alcotest.testable Prelude.Rat.pp Prelude.Rat.equal)
    "5/3" (Prelude.Rat.make 5 3) measured

let test_harness_opt_hint_mismatch_detected () =
  let sc = Adversary.Thm21.make ~d:2 ~phases:1 in
  let broken = { sc with Adversary.Scenario.opt_hint = Some 1 } in
  match
    Report.Harness.run_scenario broken (Strategies.Global.fix ())
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on wrong optimum hint"

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_contains_pass_lines () =
  let e = Report.Experiments.t1_fix_lb ~quick:true in
  let s = Report.Experiments.render e in
  Alcotest.check Alcotest.bool "has PASS marker" true
    (contains ~needle:"[PASS]" s)

let () =
  Alcotest.run "report"
    ~and_exit:true
    [
      ( "harness",
        [
          Alcotest.test_case "asymptotic exact" `Quick
            test_harness_asymptotic_exact;
          Alcotest.test_case "hint mismatch detected" `Quick
            test_harness_opt_hint_mismatch_detected;
          Alcotest.test_case "render" `Quick test_render_contains_pass_lines;
        ] );
      ("experiments", List.map experiment_case Report.Experiments.catalog);
    ]
