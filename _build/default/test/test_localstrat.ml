(* Tests for the local (distributed) strategies: communication-round
   budgets, the Theorem 3.7 worst case, the 5/3 bound of Theorem 3.8,
   and structural invariants shared with the global strategies. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine
module Outcome = Sched.Outcome
module Local = Localstrat.Local
module Rng = Prelude.Rng

let check = Alcotest.check
let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

(* ------------------------------------------------------------------ *)
(* basic behaviour *)

let test_local_fix_serves_simple () =
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
      ]
  in
  let factory, stats = Local.fix_with_stats () in
  let o = Engine.run inst factory in
  check Alcotest.int "both served" 2 o.Outcome.served;
  let s = stats () in
  check Alcotest.bool "at most 2 comm rounds" true (s.Local.comm_rounds_max <= 2)

let test_local_fix_first_alternative_first () =
  (* a lone request goes to its first alternative *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [ req ~arrival:0 ~alts:[ 1; 0 ] ~deadline:1 ]
  in
  let o = Engine.run inst (Local.fix ()) in
  (match o.Outcome.served_at.(0) with
   | Some (1, 0) -> ()
   | Some (res, round) ->
     Alcotest.failf "expected resource 1 round 0, got %d/%d" res round
   | None -> Alcotest.fail "should be served")

let test_local_fix_overflow_retry () =
  (* second alternative used when the first is full *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Local.fix ()) in
  check Alcotest.int "both served via retry" 2 o.Outcome.served

let test_local_fix_never_reschedules () =
  (* CR1 floods resource 0 beyond its capacity-2 mailbox; the LDF rule
     drops r0 (earliest deadline), and the accepted r1/r2 freeze both
     of resource 0's slots, so r3 fails too: local_fix serves only 2.
     local_eager recovers everything -- phase 2 moves r2 to the idle
     resource 1, phase 3 swaps r0 into r1's slot (re-homing r1), and
     the freed slot serves r3 next round. *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Local.fix ()) in
  check Alcotest.int "local_fix loses two" 2 o.Outcome.served;
  let o2 = Engine.run inst (Local.eager ()) in
  check Alcotest.int "local_eager saves all" 4 o2.Outcome.served

let test_local_eager_phase2_pulls_forward () =
  (* a request scheduled in the future moves onto a free current slot
     at its other resource: resource 1 idles at round 0 otherwise *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
      ]
  in
  let o = Engine.run inst (Local.eager ()) in
  check Alcotest.int "both served" 2 o.Outcome.served;
  (* r1 was queued behind r0 on resource 0; phase 2 moves it to
     resource 1 at round 0 *)
  (match o.Outcome.served_at.(1) with
   | Some (1, 0) -> ()
   | Some (res, round) ->
     Alcotest.failf "expected phase-2 move to (1,0), got (%d,%d)" res round
   | None -> Alcotest.fail "r1 should be served")

(* ------------------------------------------------------------------ *)
(* theorem-level behaviour *)

let test_thm37_exactly_two_competitive () =
  List.iter
    (fun d ->
       let sc, priority = Adversary.Thm37.make ~d ~intervals:6 in
       let factory, stats = Local.fix_with_stats ~priority () in
       let o = Engine.run sc.instance factory in
       let opt = Offline.Opt.value sc.instance in
       check Alcotest.int
         (Printf.sprintf "alg d=%d" d)
         (6 * 2 * d) o.Outcome.served;
       check Alcotest.int (Printf.sprintf "opt d=%d" d) (6 * 4 * d) opt;
       let s = stats () in
       check Alcotest.int "exactly 2 comm rounds per scheduling round" 2
         s.Local.comm_rounds_max)
    [ 2; 4; 6 ]

let test_local_eager_budget () =
  let rng = Rng.create ~seed:77 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds:60 ~load:1.4 ()
  in
  let factory, stats = Local.eager_with_stats () in
  let o = Engine.run inst factory in
  let s = stats () in
  check Alcotest.bool "at most 9 comm rounds" true (s.Local.comm_rounds_max <= 9);
  check Alcotest.bool "consistent" true (Outcome.is_consistent o)

let test_local_eager_compact_saves_a_round () =
  (* the paper's remark: capacity 2d-2 merges phase 2's cancellation
     round into phase 3's first round -- same schedule quality class,
     at most 8 communication rounds *)
  let rng = Rng.create ~seed:78 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds:80 ~load:1.3 ()
  in
  let normal_factory, normal_stats = Local.eager_with_stats () in
  let normal = Engine.run inst normal_factory in
  let compact_factory, compact_stats =
    Local.eager_with_stats ~compact:true ()
  in
  let compact = Engine.run inst compact_factory in
  check Alcotest.bool "compact <= 8 comm rounds" true
    ((compact_stats ()).Local.comm_rounds_max <= 8);
  check Alcotest.bool "normal <= 9 comm rounds" true
    ((normal_stats ()).Local.comm_rounds_max <= 9);
  check Alcotest.bool "compact within 5/3 of normal's count" true
    (compact.Outcome.served * 5 >= normal.Outcome.served * 3);
  check Alcotest.bool "compact consistent" true
    (Outcome.is_consistent compact);
  (* with the bigger mailbox the compact variant keeps the 5/3 bound *)
  let opt = Offline.Opt.value inst in
  check Alcotest.bool "compact within 5/3 of optimum" true
    (float_of_int opt /. float_of_int compact.Outcome.served
     <= (5.0 /. 3.0) +. 1e-9)

let test_local_eager_within_5_3 () =
  (* the 5/3 bound on the adversarial battery *)
  let instances =
    [
      (Adversary.Thm21.make ~d:4 ~phases:6).instance;
      (Adversary.Thm23.make ~d:4 ~phases:6).instance;
      (Adversary.Thm24.make ~d:4 ~phases:6).instance;
      (fst (Adversary.Thm37.make ~d:4 ~intervals:6)).instance;
    ]
  in
  List.iter
    (fun inst ->
       let o = Engine.run inst (Local.eager ()) in
       let opt = Offline.Opt.value inst in
       check Alcotest.bool "within 5/3" true
         (float_of_int opt /. float_of_int o.Outcome.served
          <= (5.0 /. 3.0) +. 1e-9))
    instances

(* ------------------------------------------------------------------ *)
(* properties *)

let instance_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    int_range 2 4 >>= fun d ->
    int_range 0 30 >>= fun n_req ->
    int_range 0 10_000 >>= fun seed ->
    return (n, d, n_req, seed))

let instance_arb =
  QCheck.make instance_gen ~print:(fun (n, d, n_req, seed) ->
      Printf.sprintf "n=%d d=%d req=%d seed=%d" n d n_req seed)

let build_random (n, d, n_req, seed) =
  let rng = Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Rng.int rng 2;
    let a = Rng.int rng n in
    let b = (a + 1 + Rng.int rng (n - 1)) mod n in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:[ a; b ] ~deadline:d
      :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let prop_local_outcomes_consistent =
  qtest "local strategies produce consistent outcomes" instance_arb
    (fun spec ->
       let inst = build_random spec in
       List.for_all
         (fun factory -> Outcome.is_consistent (Engine.run inst factory))
         [ Local.fix (); Local.eager () ])

let prop_local_fix_no_order1 =
  qtest "local_fix leaves no order-1 augmenting path (Thm 3.7 proof)"
    instance_arb (fun spec ->
        let inst = build_random spec in
        let o = Engine.run inst (Local.fix ()) in
        not (Analysis.Audit.has_augmenting_of_order o ~order:1))

let prop_local_eager_dominates_fix =
  qtest "local_eager serves at least local_fix minus rounding"
    instance_arb (fun spec ->
        let inst = build_random spec in
        let e = (Engine.run inst (Local.eager ())).Outcome.served in
        let f = (Engine.run inst (Local.fix ())).Outcome.served in
        (* not a theorem, but on two-choice uniform-deadline inputs the
           richer protocol should never be substantially worse *)
        e >= f - 2)

let prop_local_consistent_under_loss =
  (* under loss the protocols may serve less but must never serve
     wrongly: the engine's consistency contract is the invariant *)
  qtest ~count:40 "protocols stay consistent at any loss rate"
    instance_arb (fun spec ->
        let inst = build_random spec in
        List.for_all
          (fun loss ->
             let fix = Engine.run inst (Local.fix ~loss ()) in
             let eager = Engine.run inst (Local.eager ~loss ()) in
             Outcome.is_consistent fix && Outcome.is_consistent eager)
          [ 0.2; 0.7; 1.0 ])

let prop_local_comm_budgets =
  qtest ~count:40 "communication budgets hold on random inputs"
    instance_arb (fun spec ->
        let inst = build_random spec in
        let fix_factory, fix_stats = Local.fix_with_stats () in
        ignore (Engine.run inst fix_factory);
        let eager_factory, eager_stats = Local.eager_with_stats () in
        ignore (Engine.run inst eager_factory);
        (fix_stats ()).Local.comm_rounds_max <= 2
        && (eager_stats ()).Local.comm_rounds_max <= 9)

let () =
  Alcotest.run "localstrat"
    [
      ( "local_fix",
        [
          Alcotest.test_case "serves simple" `Quick test_local_fix_serves_simple;
          Alcotest.test_case "first alternative first" `Quick
            test_local_fix_first_alternative_first;
          Alcotest.test_case "overflow retry" `Quick
            test_local_fix_overflow_retry;
          Alcotest.test_case "never reschedules" `Quick
            test_local_fix_never_reschedules;
        ] );
      ( "local_eager",
        [
          Alcotest.test_case "phase 2 pulls forward" `Quick
            test_local_eager_phase2_pulls_forward;
          Alcotest.test_case "comm budget" `Quick test_local_eager_budget;
          Alcotest.test_case "compact variant" `Quick
            test_local_eager_compact_saves_a_round;
          Alcotest.test_case "within 5/3" `Quick test_local_eager_within_5_3;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "thm 3.7 exact" `Quick
            test_thm37_exactly_two_competitive;
        ] );
      ( "properties",
        [
          prop_local_outcomes_consistent;
          prop_local_fix_no_order1;
          prop_local_eager_dominates_fix;
          prop_local_consistent_under_loss;
          prop_local_comm_budgets;
        ] );
    ]
