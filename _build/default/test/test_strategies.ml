(* Tests for the five global strategies and the EDF baselines: each
   strategy's defining rule, hand-computed small scenarios, and the
   structural invariants the upper-bound proofs rely on. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine
module Outcome = Sched.Outcome
module Global = Strategies.Global
module Edf = Strategies.Edf
module Rng = Prelude.Rng

let check = Alcotest.check
let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

let served_round (o : Outcome.t) id =
  match o.Outcome.served_at.(id) with
  | Some (_, round) -> round
  | None -> -1

let served_resource (o : Outcome.t) id =
  match o.Outcome.served_at.(id) with
  | Some (res, _) -> res
  | None -> -1

(* ------------------------------------------------------------------ *)
(* A_fix: no rescheduling *)

let test_fix_no_rescheduling_costs () =
  (* round 0: r0 can go to 0 or 1 (bias pushes it to 0);
     round 1: r1 wants resource 0 only, with deadline 1 -- rescheduling
     r0 to resource 1 would save r1, but A_fix must not *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  let bias ~request:(r : Request.t) ~resource ~round =
    if r.Request.arrival = 0 && resource = 0 && round = 1 then 1 else 0
  in
  (* bias lures r0 onto slot (0, round 1), exactly where r1 will need *)
  let o_fix = Engine.run inst (Global.fix ~bias ()) in
  check Alcotest.int "A_fix loses r1" 1 o_fix.Outcome.served;
  (* A_eager may move r0 and save both *)
  let o_eager = Engine.run inst (Global.eager ~bias ()) in
  check Alcotest.int "A_eager serves both" 2 o_eager.Outcome.served

let test_fix_prioritises_new_requests () =
  (* an old failed request competes with a new one for a slot that only
     the new one's rule protects: the maximum-new tier must prefer
     scheduling all arrivals of the round *)
  let inst =
    Instance.build ~n_resources:1 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
      ]
  in
  (* one resource, three identical requests, 2 slots: serves 2 *)
  let o = Engine.run inst (Global.fix ()) in
  check Alcotest.int "capacity-limited" 2 o.Outcome.served

(* ------------------------------------------------------------------ *)
(* A_current: only the current round's slots *)

let test_current_is_myopic () =
  (* r0 (deadline 2) and r1 (deadline 1) both want resource 0 at round
     0; resource 1 is free for r0 at round 1.  A far-sighted strategy
     serves r1 now and r0 later at its other resource; A_current's
     maximum matching on round 0 can serve only one request on
     resource 0 -- but r0 also lists resource 1, so the maximum
     matching serves both immediately.  Make r0 single-choice to
     expose the myopia. *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  (* A_current at round 0: max matching serves one of the two on
     resource 0.  If it serves r0 (bias), r1 expires.  The optimum and
     A_eager serve r1 first and r0 at round 1. *)
  let bias ~request:(r : Request.t) ~resource:_ ~round:_ =
    if r.Request.deadline = 2 then 1 else 0
  in
  let o_current = Engine.run inst (Global.current ~bias ()) in
  check Alcotest.int "A_current biased loses r1" 1 o_current.Outcome.served;
  let o_eager = Engine.run inst (Global.eager ()) in
  check Alcotest.int "A_eager serves both" 2 o_eager.Outcome.served

let test_current_never_plans_ahead () =
  (* nothing to serve now, plenty later: A_current must still serve as
     soon as slots open *)
  let inst =
    Instance.build ~n_resources:1 ~d:3
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
      ]
  in
  let o = Engine.run inst (Global.current ()) in
  check Alcotest.int "one per round" 3 o.Outcome.served;
  check Alcotest.(list int) "rounds 0,1,2"
    [ 0; 1; 2 ]
    (List.sort compare
       (List.map (served_round o) [ 0; 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* A_fix_balance: the balancing function F *)

let test_fix_balance_serves_earliest () =
  (* two resources; resource 0 blocked at round 0 by an earlier
     request; F forces the new request onto resource 1 NOW rather than
     resource 0 later *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
      ]
  in
  let o = Engine.run inst (Global.fix_balance ()) in
  check Alcotest.int "both served" 2 o.Outcome.served;
  check Alcotest.int "r1 on resource 1" 1 (served_resource o 1);
  check Alcotest.int "r1 at round 0" 0 (served_round o 1)

let test_fix_balance_is_lexicographic_not_cardinal () =
  (* F maximisation implies maximum cardinality on the subproblem (see
     DESIGN §4.1): a single new request must never be dropped in
     favour of an earlier placement of another *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
      ]
  in
  let o = Engine.run inst (Global.fix_balance ()) in
  check Alcotest.int "all four served" 4 o.Outcome.served

(* ------------------------------------------------------------------ *)
(* A_eager / A_balance: previously scheduled requests stay scheduled *)

let test_eager_rescues_by_moving () =
  (* same instance as the A_fix test: moving r0 is allowed and saves
     everything, and the previously scheduled r0 is indeed served *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  List.iter
    (fun factory ->
       let o = Engine.run inst factory in
       check Alcotest.int "both served" 2 o.Outcome.served)
    [ Global.eager (); Global.balance () ]

let test_eager_maximises_current_round () =
  (* A_eager prefers serving now; A_balance agrees through F *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [ req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2 ]
  in
  List.iter
    (fun factory ->
       let o = Engine.run inst factory in
       check Alcotest.int "served immediately" 0 (served_round o 0))
    [ Global.eager (); Global.balance () ]

let test_keep_invariant_under_pressure () =
  (* a request scheduled early must not be dropped when a flood of
     later requests arrives (they may displace it in space, not
     existence) *)
  let flood =
    List.init 6 (fun _ -> req ~arrival:1 ~alts:[ 0; 1 ] ~deadline:2)
  in
  let inst =
    Instance.build ~n_resources:2 ~d:3
      (req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:3 :: flood)
  in
  List.iter
    (fun factory ->
       let o = Engine.run inst factory in
       check Alcotest.bool "r0 still served" true
         (o.Outcome.served_at.(0) <> None))
    [ Global.eager (); Global.balance () ]

(* ------------------------------------------------------------------ *)
(* EDF *)

let test_edf_serves_earliest_deadline () =
  let inst =
    Instance.build ~n_resources:1 ~d:3
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Edf.independent ()) in
  check Alcotest.int "tight one first" 0 (served_round o 1);
  check Alcotest.int "loose one later" 1 (served_round o 0)

let test_edf_duplicates_are_wasted () =
  (* two resources both pick the same two-choice request *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Edf.independent ()) in
  check Alcotest.int "one distinct" 1 o.Outcome.served;
  check Alcotest.int "one wasted" 1 o.Outcome.wasted;
  (* the coordinated variant's shared served-bit fixes the collision *)
  let oc = Engine.run inst (Edf.coordinated ()) in
  check Alcotest.int "coordination serves both" 2 oc.Outcome.served;
  check Alcotest.int "nothing wasted" 0 oc.Outcome.wasted

let test_edf_coordinated_skips_served () =
  (* across rounds coordination does help *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:1 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Edf.coordinated ()) in
  check Alcotest.int "coordinated serves all" 3 o.Outcome.served

(* ------------------------------------------------------------------ *)
(* Two-choice greedy baselines *)

let test_twochoice_least_loaded_balances () =
  (* two requests with the same pair: the second must take the other
     resource (resource 0 has one slot fewer after the first) *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Strategies.Twochoice.least_loaded ()) in
  check Alcotest.int "both served" 2 o.Outcome.served;
  check Alcotest.bool "distinct resources" true
    (served_resource o 0 <> served_resource o 1)

let test_twochoice_random_no_retry () =
  (* the random baseline deliberately does not retry: with one full
     resource it can drop requests the others would save *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  let rng = Prelude.Rng.create ~seed:1 in
  let o = Engine.run inst (Strategies.Twochoice.random_choice ~rng ()) in
  check Alcotest.bool "consistent" true (Outcome.is_consistent o);
  check Alcotest.bool "at most capacity" true (o.Outcome.served <= 2)

let test_twochoice_first_fit_order () =
  let inst =
    Instance.build ~n_resources:3 ~d:1
      [
        req ~arrival:0 ~alts:[ 1; 2 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 1; 2 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 1; 0 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Strategies.Twochoice.first_fit ()) in
  (* r0 -> 1, r1 -> 2 (retry), r2 -> 0 (retry) *)
  check Alcotest.int "r0 first alternative" 1 (served_resource o 0);
  check Alcotest.int "r1 retried" 2 (served_resource o 1);
  check Alcotest.int "r2 retried" 0 (served_resource o 2)

(* ------------------------------------------------------------------ *)
(* Bias combinators *)

let dummy_request = req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1

let test_bias_combinators () =
  check Alcotest.int "neutral" 0
    (Strategies.Bias.neutral ~request:dummy_request ~resource:0 ~round:0);
  check Alcotest.int "prefer first" 1
    (Strategies.Bias.prefer_first_alternative ~request:dummy_request
       ~resource:0 ~round:0);
  check Alcotest.int "prefer first (other)" 0
    (Strategies.Bias.prefer_first_alternative ~request:dummy_request
       ~resource:1 ~round:0);
  let sum =
    Strategies.Bias.add
      (Strategies.Bias.scale 10 Strategies.Bias.prefer_first_alternative)
      Strategies.Bias.spread
  in
  let v = sum ~request:dummy_request ~resource:0 ~round:3 in
  check Alcotest.bool "scaled sum in range" true (v >= 10 && v < 18)

let test_bias_random_memoised () =
  let rng = Prelude.Rng.create ~seed:8 in
  let bias = Strategies.Bias.random ~rng ~magnitude:100 in
  let a = bias ~request:dummy_request ~resource:1 ~round:5 in
  let b = bias ~request:dummy_request ~resource:1 ~round:5 in
  check Alcotest.int "memoised" a b;
  let spread_vals =
    List.init 20 (fun round ->
        Strategies.Bias.spread ~request:dummy_request ~resource:0 ~round)
  in
  check Alcotest.bool "spread varies" true
    (List.exists (fun v -> v <> List.hd spread_vals) spread_vals);
  check Alcotest.bool "spread in [0,8)" true
    (List.for_all (fun v -> v >= 0 && v < 8) spread_vals)

(* ------------------------------------------------------------------ *)
(* Remax ablation *)

let test_remax_can_unschedule () =
  (* remax carries the A_remax name and behaves like a maximal
     strategy *)
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Global.remax ()) in
  check Alcotest.string "name" "A_remax" o.Outcome.strategy_name;
  check Alcotest.bool "consistent" true (Outcome.is_consistent o);
  check Alcotest.int "still serves both here" 2 o.Outcome.served

(* ------------------------------------------------------------------ *)
(* cross-strategy properties on random instances *)

let instance_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    int_range 2 4 >>= fun d ->
    int_range 0 30 >>= fun n_req ->
    int_range 0 10_000 >>= fun seed ->
    return (n, d, n_req, seed))

let instance_arb =
  QCheck.make instance_gen ~print:(fun (n, d, n_req, seed) ->
      Printf.sprintf "n=%d d=%d req=%d seed=%d" n d n_req seed)

let build_random (n, d, n_req, seed) =
  let rng = Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Rng.int rng 2;
    let a = Rng.int rng n in
    let b = (a + 1 + Rng.int rng (n - 1)) mod n in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:[ a; b ] ~deadline:d
      :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let prop_no_order1_path_for_maximal =
  qtest "maximal strategies leave no order-1 augmenting path" instance_arb
    (fun spec ->
       let inst = build_random spec in
       List.for_all
         (fun factory ->
            let o = Engine.run inst factory in
            not (Analysis.Audit.has_augmenting_of_order o ~order:1))
         [
           Global.fix ();
           Global.current ();
           Global.fix_balance ();
           Global.eager ();
           Global.balance ();
         ])

let prop_no_order2_path_for_rescheduling =
  qtest "A_eager and A_balance leave no order-2 augmenting path"
    instance_arb (fun spec ->
        let inst = build_random spec in
        List.for_all
          (fun factory ->
             let o = Engine.run inst factory in
             not (Analysis.Audit.has_augmenting_of_order o ~order:2))
          [ Global.eager (); Global.balance () ])

let prop_rescheduling_dominates_fix =
  qtest "A_eager serves at least as many as A_fix" instance_arb (fun spec ->
      let inst = build_random spec in
      let eager = (Engine.run inst (Global.eager ())).Outcome.served in
      let fix = (Engine.run inst (Global.fix ())).Outcome.served in
      eager >= fix)

let prop_within_upper_bounds =
  qtest ~count:40 "every strategy respects its Table 1 upper bound"
    instance_arb (fun (n, d, n_req, seed) ->
        let inst = build_random (n, d, n_req, seed) in
        let opt = Offline.Opt.value inst in
        opt = 0
        || List.for_all
             (fun (factory, ub) ->
                let served = (Engine.run inst factory).Outcome.served in
                served > 0
                && float_of_int opt /. float_of_int served
                   <= Prelude.Rat.to_float ub +. 1e-9)
             [
               (Global.fix (), Analysis.Bounds.fix_ub ~d);
               (Global.current (), Analysis.Bounds.fix_ub ~d);
               (Global.fix_balance (), Analysis.Bounds.fix_balance_ub ~d);
               (Global.eager (), Analysis.Bounds.eager_ub ~d);
               (Global.balance (), Analysis.Bounds.balance_ub ~d);
             ])

let prop_all_equal_at_d1 =
  (* with deadline 1 every strategy's rule collapses to "maximum
     matching between the live requests and the current round's slots",
     so they all serve the same COUNT (possibly different requests) *)
  qtest ~count:60 "all matching strategies serve equally at d = 1"
    instance_arb (fun (n, _, n_req, seed) ->
        let inst =
          let rng = Rng.create ~seed in
          let protos = ref [] in
          let arrival = ref 0 in
          for _ = 1 to n_req do
            arrival := !arrival + Rng.int rng 2;
            let a = Rng.int rng n in
            let b = (a + 1 + Rng.int rng (n - 1)) mod n in
            protos :=
              Request.make ~arrival:!arrival ~alternatives:[ a; b ]
                ~deadline:1
              :: !protos
          done;
          Instance.build ~n_resources:n ~d:1 (List.rev !protos)
        in
        let counts =
          List.map
            (fun factory -> (Engine.run inst factory).Outcome.served)
            [
              Global.fix ();
              Global.current ();
              Global.fix_balance ();
              Global.eager ();
              Global.balance ();
              Global.remax ();
            ]
        in
        match counts with
        | [] -> true
        | c :: rest -> List.for_all (( = ) c) rest)

let prop_deterministic =
  qtest ~count:30 "strategies are deterministic" instance_arb (fun spec ->
      let inst = build_random spec in
      List.for_all
        (fun mk ->
           let a = Engine.run inst (mk ()) in
           let b = Engine.run inst (mk ()) in
           a.Outcome.served_at = b.Outcome.served_at)
        [
          (fun () -> Global.fix ());
          (fun () -> Global.balance ());
          (fun () -> Edf.independent ());
        ])

let () =
  Alcotest.run "strategies"
    [
      ( "fix",
        [
          Alcotest.test_case "no rescheduling" `Quick
            test_fix_no_rescheduling_costs;
          Alcotest.test_case "new requests maximised" `Quick
            test_fix_prioritises_new_requests;
        ] );
      ( "current",
        [
          Alcotest.test_case "myopic" `Quick test_current_is_myopic;
          Alcotest.test_case "serves as slots open" `Quick
            test_current_never_plans_ahead;
        ] );
      ( "fix_balance",
        [
          Alcotest.test_case "serves earliest" `Quick
            test_fix_balance_serves_earliest;
          Alcotest.test_case "max cardinality via F" `Quick
            test_fix_balance_is_lexicographic_not_cardinal;
        ] );
      ( "eager/balance",
        [
          Alcotest.test_case "rescues by moving" `Quick
            test_eager_rescues_by_moving;
          Alcotest.test_case "maximises current round" `Quick
            test_eager_maximises_current_round;
          Alcotest.test_case "keep invariant" `Quick
            test_keep_invariant_under_pressure;
        ] );
      ( "twochoice",
        [
          Alcotest.test_case "least loaded balances" `Quick
            test_twochoice_least_loaded_balances;
          Alcotest.test_case "random no retry" `Quick
            test_twochoice_random_no_retry;
          Alcotest.test_case "first fit order" `Quick
            test_twochoice_first_fit_order;
        ] );
      ( "bias",
        [
          Alcotest.test_case "combinators" `Quick test_bias_combinators;
          Alcotest.test_case "random memoised" `Quick
            test_bias_random_memoised;
        ] );
      ( "remax",
        [ Alcotest.test_case "ablation strategy" `Quick test_remax_can_unschedule ] );
      ( "edf",
        [
          Alcotest.test_case "earliest deadline first" `Quick
            test_edf_serves_earliest_deadline;
          Alcotest.test_case "duplicates wasted" `Quick
            test_edf_duplicates_are_wasted;
          Alcotest.test_case "coordinated skips served" `Quick
            test_edf_coordinated_skips_served;
        ] );
      ( "properties",
        [
          prop_no_order1_path_for_maximal;
          prop_no_order2_path_for_rescheduling;
          prop_rescheduling_dominates_fix;
          prop_within_upper_bounds;
          prop_all_equal_at_d1;
          prop_deterministic;
        ] );
    ]
