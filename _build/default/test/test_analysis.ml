(* Tests for the analysis layer: the paper's bound formulas, ratio
   accounting and the augmenting-path audits. *)

module Bounds = Analysis.Bounds
module Rat = Prelude.Rat
module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine

let check = Alcotest.check
let rat = Alcotest.testable Rat.pp Rat.equal

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

(* ------------------------------------------------------------------ *)
(* Bounds: spot-check every formula against hand-computed values *)

let test_bounds_table_values () =
  check rat "fix lb d=2" (Rat.make 3 2) (Bounds.fix_lb ~d:2);
  check rat "fix lb d=4" (Rat.make 7 4) (Bounds.fix_lb ~d:4);
  check rat "fix ub = fix lb" (Bounds.fix_lb ~d:7) (Bounds.fix_ub ~d:7);
  check rat "fixbal lb d=2" (Rat.make 4 3) (Bounds.fix_balance_lb ~d:2);
  check rat "fixbal lb d=8" (Rat.make 4 3) (Bounds.fix_balance_lb ~d:8);
  check rat "fixbal lb d=10" (Rat.make 15 11) (Bounds.fix_balance_lb ~d:10);
  check rat "fixbal ub d=2" (Rat.make 4 3) (Bounds.fix_balance_ub ~d:2);
  check rat "fixbal ub d=3" (Rat.make 7 5) (Bounds.fix_balance_ub ~d:3);
  check rat "fixbal ub d=6" (Rat.make 5 3) (Bounds.fix_balance_ub ~d:6);
  check rat "eager lb" (Rat.make 4 3) Bounds.eager_lb;
  check rat "eager ub d=2" (Rat.make 4 3) (Bounds.eager_ub ~d:2);
  check rat "eager ub d=5" (Rat.make 13 9) (Bounds.eager_ub ~d:5);
  check rat "balance lb d=5" (Rat.make 27 21) (Bounds.balance_lb ~d:5);
  check rat "balance ub d=2" (Rat.make 4 3) (Bounds.balance_ub ~d:2);
  check rat "balance ub d=5" (Rat.make 24 17) (Bounds.balance_ub ~d:5);
  check rat "universal" (Rat.make 45 41) Bounds.universal_lb;
  check rat "universal finite d=9" (Rat.make 90 82)
    (Bounds.universal_lb_finite ~d:9);
  check rat "universal finite d=6" (Rat.make 60 54)
    (Bounds.universal_lb_finite ~d:6);
  check rat "edf c" (Rat.of_int 3) (Bounds.edf_ub ~alternatives:3);
  check rat "local fix" (Rat.of_int 2) Bounds.local_fix_ratio;
  check rat "local eager" (Rat.make 5 3) Bounds.local_eager_ub

let test_bounds_ordering () =
  (* for every d, the paper's hierarchy: balance_ub <= eager_ub <=
     fixbal_ub <= fix_ub, and every lb <= its ub *)
  List.iter
    (fun d ->
       check Alcotest.bool "balance <= eager" true
         Rat.(Bounds.balance_ub ~d <= Bounds.eager_ub ~d);
       check Alcotest.bool "eager <= fixbal" true
         Rat.(Bounds.eager_ub ~d <= Bounds.fix_balance_ub ~d);
       check Alcotest.bool "fixbal <= fix" true
         Rat.(Bounds.fix_balance_ub ~d <= Bounds.fix_ub ~d);
       check Alcotest.bool "fix lb <= ub" true
         Rat.(Bounds.fix_lb ~d <= Bounds.fix_ub ~d);
       check Alcotest.bool "fixbal lb <= ub" true
         Rat.(Bounds.fix_balance_lb ~d <= Bounds.fix_balance_ub ~d);
       check Alcotest.bool "eager lb <= ub" true
         Rat.(Bounds.eager_lb <= Bounds.eager_ub ~d))
    [ 2; 3; 4; 5; 6; 8; 10; 12; 20 ]

let test_bounds_balance_lb_domain () =
  (match Bounds.balance_lb ~d:4 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "d=4 should be out of domain");
  check rat "d=2 via thm 2.4" (Rat.make 4 3) (Bounds.balance_lb ~d:2)

let test_bounds_table1_rows () =
  let rows = Bounds.table1 ~d:6 in
  check Alcotest.int "six rows" 6 (List.length rows);
  let names = List.map (fun (n, _, _) -> n) rows in
  check Alcotest.bool "has universal row" true
    (List.mem "any online" names)

let test_bounds_validation () =
  match Bounds.fix_lb ~d:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "d=1 accepted"

(* ------------------------------------------------------------------ *)
(* Ratio *)

let serve_all : Sched.Strategy.factory =
 fun ~n:_ ~d:_ ->
  let pending = ref [] in
  {
    Sched.Strategy.name = "serve-first";
    step =
      (fun ~round ~arrivals ->
         pending := !pending @ Array.to_list arrivals;
         match !pending with
         | r :: rest when Request.is_live r ~round ->
           pending := rest;
           [
             {
               Sched.Strategy.request = r.Request.id;
               resource = r.Request.alternatives.(0);
             };
           ]
         | _ -> []);
  }

let test_ratio_accounting () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 1 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst serve_all in
  (* the toy strategy serves only one per round *)
  let r = Analysis.Ratio.of_outcome o in
  check Alcotest.int "opt" 2 r.Analysis.Ratio.opt;
  check Alcotest.int "alg" 1 r.Analysis.Ratio.alg;
  check (Alcotest.float 1e-9) "ratio" 2.0 r.Analysis.Ratio.ratio;
  check rat "exact" (Rat.of_int 2) (Analysis.Ratio.exact r)

(* ------------------------------------------------------------------ *)
(* Audit *)

let test_audit_order1_detection () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 1 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst serve_all in
  (* request 1 failed with resource 1 idle: an order-1 path exists *)
  check Alcotest.bool "order-1 path" true
    (Analysis.Audit.has_augmenting_of_order o ~order:1);
  let a = Analysis.Audit.of_outcome o in
  check Alcotest.int "one missing" 1 (a.Analysis.Audit.opt - a.Analysis.Audit.alg);
  check Alcotest.(list (pair int int)) "census" [ (1, 1) ]
    a.Analysis.Audit.census

let test_audit_order2_detection () =
  (* r0 served on the slot r1 needed; r0's other slot is free: an
     order-2 augmenting path but no order-1 *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst serve_all in
  check Alcotest.bool "no order-1" false
    (Analysis.Audit.has_augmenting_of_order o ~order:1);
  check Alcotest.bool "order-2 exists" true
    (Analysis.Audit.has_augmenting_of_order o ~order:2)

let test_audit_perfect_outcome () =
  let inst =
    Instance.build ~n_resources:1 ~d:2
      [ req ~arrival:0 ~alts:[ 0 ] ~deadline:2 ]
  in
  let o = Engine.run inst serve_all in
  let a = Analysis.Audit.of_outcome o in
  check Alcotest.int "no paths" 0 a.Analysis.Audit.n_paths;
  check Alcotest.(option int) "no min order" None
    (Analysis.Audit.min_order a);
  check Alcotest.bool "no order-3 either" false
    (Analysis.Audit.has_augmenting_of_order o ~order:3)

let test_audit_counts_match_census () =
  let rng = Prelude.Rng.create ~seed:15 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:4 ~d:3 ~rounds:40 ~load:1.5 ()
  in
  let o = Engine.run inst (Strategies.Edf.independent ()) in
  let a = Analysis.Audit.of_outcome o in
  check Alcotest.int "gap equals path count"
    (a.Analysis.Audit.opt - a.Analysis.Audit.alg)
    a.Analysis.Audit.n_paths;
  check Alcotest.int "paths_of_order sums"
    a.Analysis.Audit.n_paths
    (List.fold_left
       (fun acc (o', _) -> acc + Analysis.Audit.paths_of_order a o')
       0 a.Analysis.Audit.census)

(* ------------------------------------------------------------------ *)
(* Hall bounds *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_hall_interval_deficiency () =
  (* 3 requests confined to one round on one resource: deficiency 2 *)
  let inst =
    Instance.build ~n_resources:1 ~d:1
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  check Alcotest.int "deficiency" 2
    (Analysis.Hall.interval_deficiency inst ~s:0 ~t:0);
  (* a wider interval has more capacity, so its own deficiency drops;
     the disjoint-interval optimisation in opt_upper_bound picks the
     tight one *)
  check Alcotest.int "wider interval has spare capacity" 0
    (Analysis.Hall.interval_deficiency inst ~s:0 ~t:5);
  check Alcotest.int "upper bound = optimum" (Offline.Opt.value inst)
    (Analysis.Hall.opt_upper_bound inst)

let test_hall_two_bottlenecks () =
  (* two separate overloads: the disjoint-interval sum catches both *)
  let inst =
    Instance.build ~n_resources:1 ~d:1
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:3 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:3 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  check Alcotest.int "bound 2" 2 (Analysis.Hall.opt_upper_bound inst);
  check Alcotest.int "matches optimum" (Offline.Opt.value inst)
    (Analysis.Hall.opt_upper_bound inst)

let test_hall_per_resource () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  (* two single-choice requests on resource 0 in one round *)
  check Alcotest.int "per-resource deficiency" 1
    (Analysis.Hall.resource_interval_deficiency inst ~resource:0 ~s:0 ~t:0);
  check Alcotest.int "global interval sees all three" 1
    (Analysis.Hall.interval_deficiency inst ~s:0 ~t:0)

let hall_instance_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun n ->
    int_range 1 3 >>= fun d ->
    int_range 0 30 >>= fun n_req ->
    int_range 0 10_000 >>= fun seed ->
    return (n, d, n_req, seed))

let build_hall_random (n, d, n_req, seed) =
  let rng = Prelude.Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Prelude.Rng.int rng 2;
    let deadline = 1 + Prelude.Rng.int rng d in
    let a = Prelude.Rng.int rng n in
    let alts =
      if n > 1 && Prelude.Rng.bool rng then
        [ a; (a + 1) mod n ]
      else [ a ]
    in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:alts ~deadline :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let prop_hall_bounds_opt =
  qtest ~count:200 "Hall bound dominates the optimum"
    (QCheck.make hall_instance_gen ~print:(fun (n, d, r, s) ->
         Printf.sprintf "n=%d d=%d req=%d seed=%d" n d r s))
    (fun spec ->
       let inst = build_hall_random spec in
       Analysis.Hall.opt_upper_bound inst >= Offline.Opt.value inst)

let prop_hall_exact_single_resource =
  qtest ~count:200 "Hall bound is exact on a single resource"
    (QCheck.make
       (QCheck.Gen.map (fun (_, d, r, s) -> (1, d, r, s)) hall_instance_gen)
       ~print:(fun (n, d, r, s) ->
           Printf.sprintf "n=%d d=%d req=%d seed=%d" n d r s))
    (fun spec ->
       let inst = build_hall_random spec in
       Analysis.Hall.opt_upper_bound inst = Offline.Opt.value inst)

(* ------------------------------------------------------------------ *)
(* Ledger *)

let test_ledger_windows () =
  let sc = Adversary.Thm21.make ~d:4 ~phases:5 in
  let o =
    Engine.run sc.Adversary.Scenario.instance
      (Strategies.Global.fix ~bias:sc.Adversary.Scenario.bias ())
  in
  let windows = Analysis.Ledger.by_window o ~period:4 in
  (* arrivals must sum to the instance size, served to the outcome *)
  let arrived = List.fold_left (fun a w -> a + w.Analysis.Ledger.arrived) 0 windows in
  let served = List.fold_left (fun a w -> a + w.Analysis.Ledger.served) 0 windows in
  check Alcotest.int "arrived total" 78 arrived;
  check Alcotest.int "served total" o.Sched.Outcome.served served;
  (* phases of Thm 2.1 start at round i*d-1, so the period-d windows
     after the first all see the same traffic; interior steady state *)
  match Analysis.Ledger.steady_state o ~period:4 with
  | Some (arrived, served) ->
    check Alcotest.int "per-phase arrivals" 14 arrived;
    check Alcotest.int "per-phase served" 8 served
  | None -> Alcotest.fail "expected a steady state"

let test_ledger_validation () =
  let sc = Adversary.Thm21.make ~d:2 ~phases:1 in
  let o =
    Engine.run sc.Adversary.Scenario.instance (Strategies.Global.fix ())
  in
  match Analysis.Ledger.by_window o ~period:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "period 0 accepted"

let () =
  Alcotest.run "analysis"
    [
      ( "bounds",
        [
          Alcotest.test_case "table values" `Quick test_bounds_table_values;
          Alcotest.test_case "ordering" `Quick test_bounds_ordering;
          Alcotest.test_case "balance domain" `Quick
            test_bounds_balance_lb_domain;
          Alcotest.test_case "table1 rows" `Quick test_bounds_table1_rows;
          Alcotest.test_case "validation" `Quick test_bounds_validation;
        ] );
      ("ratio", [ Alcotest.test_case "accounting" `Quick test_ratio_accounting ]);
      ( "audit",
        [
          Alcotest.test_case "order-1 detection" `Quick
            test_audit_order1_detection;
          Alcotest.test_case "order-2 detection" `Quick
            test_audit_order2_detection;
          Alcotest.test_case "perfect outcome" `Quick
            test_audit_perfect_outcome;
          Alcotest.test_case "census consistency" `Quick
            test_audit_counts_match_census;
        ] );
      ( "hall",
        [
          Alcotest.test_case "interval deficiency" `Quick
            test_hall_interval_deficiency;
          Alcotest.test_case "two bottlenecks" `Quick
            test_hall_two_bottlenecks;
          Alcotest.test_case "per resource" `Quick test_hall_per_resource;
          prop_hall_bounds_opt;
          prop_hall_exact_single_resource;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "windows" `Quick test_ledger_windows;
          Alcotest.test_case "validation" `Quick test_ledger_validation;
        ] );
    ]
