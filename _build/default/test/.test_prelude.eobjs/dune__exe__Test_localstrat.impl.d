test/test_localstrat.ml: Adversary Alcotest Analysis Array List Localstrat Offline Prelude Printf QCheck QCheck_alcotest Sched
