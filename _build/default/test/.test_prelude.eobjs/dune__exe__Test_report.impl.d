test/test_report.ml: Adversary Alcotest List Prelude Printf Report Strategies String
