test/test_distnet.ml: Alcotest Array Distnet Gen List Prelude QCheck QCheck_alcotest
