test/test_distnet.mli:
