test/test_report2.mli:
