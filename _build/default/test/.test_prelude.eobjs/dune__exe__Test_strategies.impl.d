test/test_strategies.ml: Alcotest Analysis Array List Offline Prelude Printf QCheck QCheck_alcotest Sched Strategies
