test/test_report2.ml: Adversary Alcotest Filename Fun List Prelude QCheck QCheck_alcotest Report Sched Strategies String Sys
