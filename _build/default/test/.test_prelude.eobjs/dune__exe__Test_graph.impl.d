test/test_graph.ml: Alcotest Array Graph Hashtbl List Prelude Printf QCheck QCheck_alcotest String
