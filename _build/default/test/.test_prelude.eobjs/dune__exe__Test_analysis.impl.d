test/test_analysis.ml: Adversary Alcotest Analysis Array List Offline Prelude Printf QCheck QCheck_alcotest Sched Strategies
