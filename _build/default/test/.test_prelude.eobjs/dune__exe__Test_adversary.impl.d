test/test_adversary.ml: Adversary Alcotest Analysis Array Hashtbl List Localstrat Offline Prelude Printf Sched Strategies
