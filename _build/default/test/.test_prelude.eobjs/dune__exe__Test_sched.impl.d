test/test_sched.ml: Alcotest Array Float Graph Hashtbl List Localstrat Offline Prelude Printf QCheck QCheck_alcotest Sched Strategies
