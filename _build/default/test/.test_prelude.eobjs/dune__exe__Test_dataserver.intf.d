test/test_dataserver.mli:
