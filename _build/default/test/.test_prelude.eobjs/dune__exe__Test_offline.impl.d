test/test_offline.ml: Adversary Alcotest Array Graph List Offline Prelude Printf QCheck QCheck_alcotest Sched
