test/test_localstrat.mli:
