test/test_prelude.ml: Alcotest Array Float Gen List Prelude QCheck QCheck_alcotest String
