test/test_dataserver.ml: Alcotest Array Dataserver List Prelude QCheck QCheck_alcotest Sched
