(* Tests for the offline optimum solvers: the grouped max-flow route
   must agree with Hopcroft-Karp on the expanded graph, and the greedy
   EDF oracle must match both on single-alternative instances. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Rng = Prelude.Rng

let check = Alcotest.check
let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

(* ------------------------------------------------------------------ *)
(* hand instances with known optima *)

let test_opt_trivial () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  (* 2 resources, 1 round each: optimum 2 of 3 *)
  check Alcotest.int "expanded" 2 (Offline.Opt.expanded inst);
  check Alcotest.int "grouped" 2 (Offline.Opt.grouped inst)

let test_opt_block_saturation () =
  (* a block(2,d) exactly saturates its pair *)
  let d = 4 in
  let inst =
    Instance.build ~n_resources:2 ~d
      (Adversary.Block.pair ~arrival:0 ~r0:0 ~r1:1 ~d)
  in
  check Alcotest.int "all served" (2 * d) (Offline.Opt.value inst);
  (* doubling the block overloads: still only 2d slots *)
  let inst2 =
    Instance.build ~n_resources:2 ~d
      (Adversary.Block.pair ~arrival:0 ~r0:0 ~r1:1 ~d
       @ Adversary.Block.pair ~arrival:0 ~r0:0 ~r1:1 ~d)
  in
  check Alcotest.int "capacity bound" (2 * d) (Offline.Opt.value inst2)

let test_opt_ring_block () =
  (* block(a,d) admits a perfect schedule for any ring size *)
  List.iter
    (fun a ->
       let d = 3 in
       let resources = Array.init a (fun i -> i) in
       let inst =
         Instance.build ~n_resources:a ~d
           (Adversary.Block.ring ~arrival:0 ~resources ~d)
       in
       check Alcotest.int
         (Printf.sprintf "ring a=%d fully servable" a)
         (a * d) (Offline.Opt.value inst))
    [ 2; 3; 4; 6 ]

let test_opt_empty () =
  let inst = Instance.build ~n_resources:3 ~d:2 [] in
  check Alcotest.int "empty expanded" 0 (Offline.Opt.expanded inst);
  check Alcotest.int "empty grouped" 0 (Offline.Opt.grouped inst)

let test_opt_windows_matter () =
  (* same resource, deadline 1: only one of two same-round requests *)
  let inst =
    Instance.build ~n_resources:1 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:1 ~alts:[ 0 ] ~deadline:2;
      ]
  in
  check Alcotest.int "windows respected" 2 (Offline.Opt.value inst)

(* ------------------------------------------------------------------ *)
(* EDF oracle *)

let test_edf_oracle_simple () =
  let inst =
    Instance.build ~n_resources:1 ~d:3
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
      ]
  in
  (* rounds 0,1,2 serve the three tightest; one deadline-3 request is
     lost (only 3 slots before every window closes) *)
  check Alcotest.int "edf oracle" 3 (Offline.Opt.single_alternative_edf inst);
  check Alcotest.int "matches matching" (Offline.Opt.value inst)
    (Offline.Opt.single_alternative_edf inst)

let test_edf_oracle_rejects_two_alts () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [ req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1 ]
  in
  match Offline.Opt.single_alternative_edf inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* properties *)

let instance_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    int_range 1 4 >>= fun d ->
    int_range 0 35 >>= fun n_req ->
    int_range 0 10_000 >>= fun seed ->
    return (n, d, n_req, seed))

let instance_arb ~alts_max =
  QCheck.make
    (QCheck.Gen.map (fun s -> (s, alts_max)) instance_gen)
    ~print:(fun ((n, d, n_req, seed), am) ->
        Printf.sprintf "n=%d d=%d req=%d seed=%d alts<=%d" n d n_req seed am)

let build_random ((n, d, n_req, seed), alts_max) =
  let rng = Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Rng.int rng 2;
    let deadline = 1 + Rng.int rng d in
    let n_alts = 1 + Rng.int rng (min alts_max n) in
    let all = Array.init n (fun i -> i) in
    Rng.shuffle rng all;
    let alts = Array.to_list (Array.sub all 0 n_alts) in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:alts ~deadline :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let prop_grouped_equals_expanded =
  qtest ~count:250 "grouped max-flow = Hopcroft-Karp"
    (instance_arb ~alts_max:3) (fun spec ->
        let inst = build_random spec in
        Offline.Opt.grouped inst = Offline.Opt.expanded inst)

let prop_edf_oracle_equals_matching =
  qtest ~count:250 "EDF oracle = maximum matching (single alternative)"
    (instance_arb ~alts_max:1) (fun spec ->
        let inst = build_random spec in
        Offline.Opt.single_alternative_edf inst = Offline.Opt.value inst)

let prop_opt_monotone_in_duplication =
  qtest ~count:100 "optimum grows (weakly) when the instance is repeated"
    (instance_arb ~alts_max:2) (fun spec ->
        let inst = build_random spec in
        if Instance.n_requests inst = 0 then true
        else begin
          let double = Instance.concat [ inst; inst ] in
          let o1 = Offline.Opt.value inst and o2 = Offline.Opt.value double in
          o2 >= o1 && o2 <= 2 * o1 + Instance.n_requests inst
        end)

let prop_expanded_matching_is_valid =
  qtest ~count:150 "expanded_matching returns a valid maximum matching"
    (instance_arb ~alts_max:2) (fun spec ->
        let inst = build_random spec in
        let g, m = Offline.Opt.expanded_matching inst in
        Graph.Matching.is_valid g m
        && Graph.Matching.size m = Offline.Opt.grouped inst)

let prop_opt_koenig_certified =
  (* independent optimality certificate: a vertex cover of equal size
     proves the computed optimum maximum without re-trusting the solver *)
  qtest ~count:150 "offline optimum carries a Koenig certificate"
    (instance_arb ~alts_max:3) (fun spec ->
        let inst = build_random spec in
        let g, m = Offline.Opt.expanded_matching inst in
        Graph.Hopcroft_karp.is_koenig_certificate g m)

let test_opt_adversary_certified () =
  (* certify the optima of the adversarial instances used throughout *)
  List.iter
    (fun inst ->
       let g, m = Offline.Opt.expanded_matching inst in
       check Alcotest.bool "certificate" true
         (Graph.Hopcroft_karp.is_koenig_certificate g m))
    [
      (Adversary.Thm21.make ~d:4 ~phases:3).instance;
      (Adversary.Thm23.make ~d:4 ~phases:3).instance;
      (Adversary.Thm24.make ~d:4 ~phases:3).instance;
      (Adversary.Thm25.make ~d:5 ~groups:2 ~intervals:3).instance;
    ]

let () =
  Alcotest.run "offline"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial" `Quick test_opt_trivial;
          Alcotest.test_case "block saturation" `Quick
            test_opt_block_saturation;
          Alcotest.test_case "ring blocks" `Quick test_opt_ring_block;
          Alcotest.test_case "empty" `Quick test_opt_empty;
          Alcotest.test_case "windows matter" `Quick test_opt_windows_matter;
          Alcotest.test_case "edf oracle" `Quick test_edf_oracle_simple;
          Alcotest.test_case "edf oracle validation" `Quick
            test_edf_oracle_rejects_two_alts;
          Alcotest.test_case "adversary optima certified" `Quick
            test_opt_adversary_certified;
        ] );
      ( "properties",
        [
          prop_grouped_equals_expanded;
          prop_edf_oracle_equals_matching;
          prop_opt_monotone_in_duplication;
          prop_expanded_matching_is_valid;
          prop_opt_koenig_certified;
        ] );
    ]
