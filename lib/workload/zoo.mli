(** The workload zoo: production-shaped traffic families.

    The paper's introduction motivates two-choice request scheduling
    with exactly the traffic the adversarial constructions do not
    cover: hot items whose popularity drifts, video-on-demand bursts
    where many viewers demand the same replicated title at once,
    daily load curves, and plain sustained overload.  Each generator
    here is a {e seeded, deterministic} {!Sched.Instance.t} producer
    for one such family; the [zoo] experiment family scores every
    strategy on SLO-style objectives ({!Analysis.Slo}) across all of
    them.

    Determinism and the load knob.  Every random draw comes from a
    generator keyed by [(seed, family, round)] — never from one
    sequential stream — so:

    - equal parameters produce byte-identical instances (pinned via
      the {!Sched.Codec} round-trip by the property suite);
    - the per-round arrival count is [floor rate] plus a Bernoulli
      trial on the fractional part against a fixed uniform, which is
      monotone in [rate] for a fixed draw — so raising [load] never
      removes a request, it only appends ({e monotone load knob},
      also pinned by the property suite). *)

type family = {
  key : string;       (** registry name, e.g. ["hotspot"] *)
  label : string;     (** one-line display name *)
  synopsis : string;  (** what the family models *)
  default_load : float;
      (** the canonical load the zoo sweeps run the family at *)
  generate :
    n:int -> d:int -> rounds:int -> load:float -> seed:int ->
    Sched.Instance.t;
}

val hotspot :
  n:int -> d:int -> rounds:int -> load:float -> seed:int -> Sched.Instance.t
(** Zipf popularity over resources with a {e drifting} hot set: ranks
    map to resources through a rotation that re-randomises every
    [max 1 (rounds/6)] rounds, so the hot spot relocates several times
    per run and a scheduler cannot statically over-provision it.
    Alternatives are two distinct Zipf draws; deadlines are [d].
    @raise Invalid_argument on [n < 1], [d < 1], [rounds < 1] or a
    negative load. *)

val diurnal :
  n:int -> d:int -> rounds:int -> load:float -> seed:int -> Sched.Instance.t
(** Sinusoidal day curve: the arrival rate is
    [load * n * (1 + 0.75 sin)] over a period of [max 4 (rounds/2)]
    rounds (two "days" per run), uniform resource picks — peaks reach
    1.75x the mean, troughs 0.25x. *)

val vod :
  n:int -> d:int -> rounds:int -> load:float -> seed:int -> Sched.Instance.t
(** Correlated video-on-demand bursts: sessions start at a rate tuned
    so the mean load is [load]; each session picks a title from a Zipf
    catalogue, and {e every} request of the session carries that
    title's fixed two-replica set for its whole burst (1..2d rounds, a
    few viewers per round) — the correlated-alternatives pattern that
    makes replicated catalogues hard to balance. *)

val overload :
  n:int -> d:int -> rounds:int -> load:float -> seed:int -> Sched.Instance.t
(** Open-loop overload ramp: uniform traffic whose instantaneous rate
    climbs linearly from [load] to [2 load] across the horizon — at the
    family's canonical load 1.5 this is the 1.5x–3x overload regime the
    admission-control roadmap item is judged under. *)

val mix :
  n:int -> d:int -> rounds:int -> load:float -> seed:int -> Sched.Instance.t
(** Adversarial-then-benign phase mix: even phases open with a
    saturating burst on each adjacent resource pair (the shape of the
    paper's block constructions, half the requests on a tightened
    deadline), odd phases carry light uniform traffic — alternating
    drain pressure with recovery room. *)

val families : family list
(** The five families above, in display order. *)

val names : string list
(** [families] keys, in the same order. *)

val find : string -> family option

val generate :
  name:string -> n:int -> d:int -> rounds:int -> load:float -> seed:int ->
  (Sched.Instance.t, string) result
(** Generate by family key; [Error] on an unknown name or invalid
    parameter (never raises). *)
