(* The workload zoo: seeded, deterministic production-shaped traffic.

   Two structural rules keep the generators honest (both pinned by the
   qcheck suite in test/test_zoo.ml):

   - every draw comes from an RNG keyed by (seed, family, round) —
     never from one long sequential stream — so two rounds never share
     generator state and equal parameters give byte-identical
     instances;

   - the per-round arrival count is floor(rate) plus one Bernoulli
     trial of the fractional part against a fixed uniform draw.  For a
     fixed draw that count is non-decreasing in the rate, and request
     attributes are drawn sequentially after the count, so raising the
     load knob can only append requests to a round, never perturb the
     ones already there. *)

module Rng = Prelude.Rng

type family = {
  key : string;
  label : string;
  synopsis : string;
  default_load : float;
  generate :
    n:int -> d:int -> rounds:int -> load:float -> seed:int ->
    Sched.Instance.t;
}

let check ~n ~d ~rounds ~load =
  if n < 1 then invalid_arg "Workload.Zoo: n_resources must be >= 1";
  if d < 1 then invalid_arg "Workload.Zoo: d must be >= 1";
  if rounds < 1 then invalid_arg "Workload.Zoo: rounds must be >= 1";
  if not (load >= 0.0) then invalid_arg "Workload.Zoo: load must be >= 0"

(* Independent generator for (seed, family tag, round): splitmix64
   seeds that differ in any bit give independent streams, so mixing
   the three keys with odd multipliers is enough. *)
let keyed ~seed ~tag ~round =
  Rng.create
    ~seed:((seed * 0x9E3779B1) lxor (tag * 0x85EBCA77) lxor (round * 0xC2B2AE35))

(* floor(rate) + Bernoulli(frac rate): monotone in [rate] for a fixed
   uniform.  The uniform is drawn unconditionally so the stream
   position after the count never depends on the rate. *)
let count_of_rate rng rate =
  let rate = Float.max 0.0 rate in
  let base = Float.floor rate in
  let u = Rng.float rng 1.0 in
  int_of_float base + (if u < rate -. base then 1 else 0)

(* Two distinct alternatives via an arbitrary picker.  Bounded
   rejection keeps heavy-tailed pickers (Zipf) terminating
   deterministically; the fallback neighbour is reached only when the
   picker keeps returning [first]. *)
let distinct_pair ~n pick =
  let first = pick () in
  if n < 2 then [ first ]
  else begin
    let second = ref (pick ()) in
    let tries = ref 0 in
    while !second = first && !tries < 16 do
      second := pick ();
      incr tries
    done;
    if !second = first then second := (first + 1) mod n;
    [ first; !second ]
  end

let build ~n ~d protos = Sched.Instance.build ~n_resources:n ~d protos

(* -- hotspot: Zipf popularity over a drifting hot set ----------------- *)

let tag_hotspot = 11
let tag_hotspot_epoch = 12

let hotspot ~n ~d ~rounds ~load ~seed =
  check ~n ~d ~rounds ~load;
  let drift = max 1 (rounds / 6) in
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let shift =
      (* the epoch RNG re-randomises where rank 0 lives, so the hot
         spot relocates every [drift] rounds *)
      Rng.int (keyed ~seed ~tag:tag_hotspot_epoch ~round:(round / drift)) n
    in
    let rng = keyed ~seed ~tag:tag_hotspot ~round in
    let count = count_of_rate rng (load *. float_of_int n) in
    for _ = 1 to count do
      let pick () = (Rng.zipf rng ~n ~s:1.2 + shift) mod n in
      let alternatives = distinct_pair ~n pick in
      protos :=
        Sched.Request.make ~arrival:round ~alternatives ~deadline:d :: !protos
    done
  done;
  build ~n ~d (List.rev !protos)

(* -- diurnal: sinusoidal day curve ------------------------------------ *)

let tag_diurnal = 21

let diurnal ~n ~d ~rounds ~load ~seed =
  check ~n ~d ~rounds ~load;
  let period = max 4 (rounds / 2) in
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let rng = keyed ~seed ~tag:tag_diurnal ~round in
    let phase = 2.0 *. Float.pi *. float_of_int round /. float_of_int period in
    let rate = load *. float_of_int n *. (1.0 +. (0.75 *. sin phase)) in
    let count = count_of_rate rng rate in
    for _ = 1 to count do
      let pick () = Rng.int rng n in
      let alternatives = distinct_pair ~n pick in
      protos :=
        Sched.Request.make ~arrival:round ~alternatives ~deadline:d :: !protos
    done
  done;
  build ~n ~d (List.rev !protos)

(* -- vod: correlated video-on-demand bursts --------------------------- *)

let tag_vod = 31
let tag_vod_title = 32

(* A title's replica set is a pure function of (seed, title): every
   session for the title, in any round, contends for the same pair. *)
let title_alternatives ~seed ~n title =
  let rng = keyed ~seed ~tag:tag_vod_title ~round:title in
  let pick () = Rng.int rng n in
  distinct_pair ~n pick

let vod ~n ~d ~rounds ~load ~seed =
  check ~n ~d ~rounds ~load;
  let titles = max 8 (4 * n) in
  (* a session emits [viewers] requests per round for [len] rounds;
     viewers ~ U{1..3} (mean 2), len ~ U{1..2d} (mean d + 1/2), so one
     session contributes 2(d + 1/2) requests on average and the session
     rate below makes the mean offered load [load]. *)
  let session_rate =
    load *. float_of_int n /. (2.0 *. (float_of_int d +. 0.5))
  in
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let rng = keyed ~seed ~tag:tag_vod ~round in
    let sessions = count_of_rate rng session_rate in
    for _ = 1 to sessions do
      let title = Rng.zipf rng ~n:titles ~s:1.1 in
      let len = Rng.int_in rng 1 (2 * d) in
      let viewers = Rng.int_in rng 1 3 in
      let alternatives = title_alternatives ~seed ~n title in
      for off = 0 to len - 1 do
        let arrival = round + off in
        if arrival < rounds then
          for _ = 1 to viewers do
            protos :=
              Sched.Request.make ~arrival ~alternatives ~deadline:d :: !protos
          done
      done
    done
  done;
  (* sessions span rounds, so protos are not in arrival order; the
     sort is stable, keeping same-round requests in emission order *)
  let arr = Array.of_list (List.rev !protos) in
  let () =
    let key (r : Sched.Request.t) = r.arrival in
    (* stable sort by arrival *)
    let tagged = Array.mapi (fun i r -> (key r, i, r)) arr in
    Array.sort
      (fun (a, i, _) (b, j, _) -> if a <> b then compare a b else compare i j)
      tagged;
    Array.iteri (fun i (_, _, r) -> arr.(i) <- r) tagged
  in
  build ~n ~d (Array.to_list arr)

(* -- overload: open-loop ramp ----------------------------------------- *)

let tag_overload = 41

let overload ~n ~d ~rounds ~load ~seed =
  check ~n ~d ~rounds ~load;
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let rng = keyed ~seed ~tag:tag_overload ~round in
    let ramp =
      if rounds = 1 then 1.0
      else 1.0 +. (float_of_int round /. float_of_int (rounds - 1))
    in
    let count = count_of_rate rng (load *. ramp *. float_of_int n) in
    for _ = 1 to count do
      let pick () = Rng.int rng n in
      let alternatives = distinct_pair ~n pick in
      protos :=
        Sched.Request.make ~arrival:round ~alternatives ~deadline:d :: !protos
    done
  done;
  build ~n ~d (List.rev !protos)

(* -- mix: adversarial bursts alternating with benign traffic ---------- *)

let tag_mix = 51

let mix ~n ~d ~rounds ~load ~seed =
  check ~n ~d ~rounds ~load;
  let phase_len = max 1 (2 * d) in
  let tight = max 1 ((d + 1) / 2) in
  let protos = ref [] in
  for round = 0 to rounds - 1 do
    let rng = keyed ~seed ~tag:tag_mix ~round in
    let phase = round / phase_len in
    if phase mod 2 = 0 then begin
      (* adversarial phase: at its first round, a saturating burst on
         each adjacent resource pair (the paper's block shape); the
         rest of the phase is drain time.  1.5x the pair's capacity
         over a window of d rounds, every other request tightened. *)
      if round mod phase_len = 0 then begin
        let burst = int_of_float (1.5 *. load *. float_of_int (2 * d)) in
        for pair = 0 to (n / 2) - 1 do
          let a = 2 * pair and b = (2 * pair) + 1 in
          for j = 0 to burst - 1 do
            let deadline = if j mod 2 = 0 then d else tight in
            let alternatives = if Rng.bool rng then [ a; b ] else [ b; a ] in
            protos :=
              Sched.Request.make ~arrival:round ~alternatives ~deadline
              :: !protos
          done
        done;
        if n = 1 then begin
          (* degenerate single-resource instance: burst on resource 0 *)
          let burst = int_of_float (1.5 *. load *. float_of_int d) in
          for j = 0 to burst - 1 do
            let deadline = if j mod 2 = 0 then d else tight in
            protos :=
              Sched.Request.make ~arrival:round ~alternatives:[ 0 ] ~deadline
              :: !protos
          done
        end
      end
    end
    else begin
      (* benign phase: light uniform traffic, room to recover *)
      let count = count_of_rate rng (0.5 *. load *. float_of_int n) in
      for _ = 1 to count do
        let pick () = Rng.int rng n in
        let alternatives = distinct_pair ~n pick in
        protos :=
          Sched.Request.make ~arrival:round ~alternatives ~deadline:d
          :: !protos
      done
    end
  done;
  build ~n ~d (List.rev !protos)

(* -- registry --------------------------------------------------------- *)

let families =
  [
    {
      key = "hotspot";
      label = "Zipf hot spot, drifting";
      synopsis = "Zipf(1.2) resource popularity; hot set relocates ~6x per run";
      default_load = 1.2;
      generate = hotspot;
    };
    {
      key = "diurnal";
      label = "diurnal load curve";
      synopsis = "sinusoidal rate 0.25x-1.75x of mean, two periods per run";
      default_load = 1.1;
      generate = diurnal;
    };
    {
      key = "vod";
      label = "correlated VoD bursts";
      synopsis = "Zipf titles; all viewers of a title share one replica pair";
      default_load = 1.2;
      generate = vod;
    };
    {
      key = "overload";
      label = "open-loop overload ramp";
      synopsis = "uniform traffic ramping 1x-2x of load (1.5x-3x at load 1.5)";
      default_load = 1.5;
      generate = overload;
    };
    {
      key = "mix";
      label = "adversarial/benign mix";
      synopsis = "paired saturating bursts alternating with light uniform";
      default_load = 1.2;
      generate = mix;
    };
  ]

let names = List.map (fun f -> f.key) families
let find key = List.find_opt (fun f -> f.key = key) families

let generate ~name ~n ~d ~rounds ~load ~seed =
  match find name with
  | None ->
      Error
        (Printf.sprintf "unknown zoo workload %S (expected one of: %s)" name
           (String.concat ", " names))
  | Some f -> (
      try Ok (f.generate ~n ~d ~rounds ~load ~seed)
      with Invalid_argument m -> Error m)
