(** Name-indexed strategy and workload factories.

    The [reqsched] CLI (and any harness code that takes strategy or
    workload names) resolves them here, so the name → factory mapping is
    testable without spawning the executable.  Every randomised piece is
    derived from the one integer [seed]: the workload generator consumes
    the seed's stream directly, while randomised strategies
    ([greedy_random]) take a {!Prelude.Rng.split} of it, so strategy
    coins and workload coins are independent yet both reproducible. *)

val strategy_names : string list
(** Every name {!factory_of_name} accepts, in display order. *)

val solver_names : string list
(** Solver names {!solver_of_name} accepts
    (["kernel"; "kernel-ring"; "rebuild"]). *)

val solver_of_name : string -> (Strategies.Global.solver, string) result
(** ["kernel"] is the warm-start incremental kernel (the default
    everywhere), ["rebuild"] the from-scratch differential oracle. *)

val factory_of_name :
  seed:int -> ?metrics:Obs.Metrics.t -> ?solver:Strategies.Global.solver ->
  string -> (Sched.Strategy.factory, string) result
(** [seed] drives randomised strategies (currently [greedy_random]) —
    distinct seeds give distinct coin streams.  [metrics] is forwarded
    to factories with an instrumented substrate (the local strategies'
    {!Distnet.Net} and the global strategies' kernel).  [solver] selects
    the global strategies' solver; strategies without a solver choice
    ignore it. *)

val instance_of_workload :
  name:string -> n:int -> d:int -> rounds:int -> load:float -> seed:int ->
  (Sched.Instance.t, string) result
(** [uniform], [zipf], [bursty] generate from the size parameters and
    [seed]; theorem adversaries ([thm21] …) fix their own scenario and
    use [d] and [rounds] only to size it; the zoo families
    ({!Workload.Zoo.names}: [hotspot], [diurnal], [vod], [overload],
    [mix]) generate from all of them with per-round keyed seeding. *)

val workload_names : string list
(** Every name {!instance_of_workload} accepts, in display order
    (stochastic, theorem adversaries, then the zoo families). *)
