(** Shared machinery for the reproduction experiments. *)

type run = {
  outcome : Sched.Outcome.t;
  opt : int;
  ratio : float;
}

val ratio_of : opt:int -> served:int -> float
(** The competitive ratio [opt / served] with the degenerate cases made
    explicit: [1.0] when both are zero (vacuously competitive),
    [infinity] when the algorithm served nothing against a positive
    optimum.  Every ratio the reports print goes through this — a naive
    [opt /. max 1 served] silently reports [opt] itself for a strategy
    that served nothing. *)

val run_scenario : Adversary.Scenario.t -> Sched.Strategy.factory -> run
(** Run and compute the exact optimum (grouped max-flow); when the
    scenario carries an [opt_hint] it is checked against the computed
    optimum and a mismatch raises [Failure] — the adversary constructions
    are exact, so disagreement means a bug. *)

val run_instance :
  ?metrics:Obs.Metrics.t -> Sched.Instance.t -> Sched.Strategy.factory ->
  run
(** With a registry (explicit or ambient) the engine records its
    per-round metrics, and the offline optimum is computed by the
    instrumented streaming tracker ({!Offline.Opt_stream.value}, pinned
    equal to {!Offline.Opt.value} by the differential suite) so the run
    profiles the augmenting-path machinery too. *)

type anytime = {
  run : run;
  opt_curve : int array;   (** streaming OPT prefix per round *)
  alg_curve : int array;   (** cumulative requests served per round *)
  ratio_curve : float array;
      (** [opt_curve.(r) / alg_curve.(r)]; [1.0] when both are zero,
          [infinity] when only the algorithm is at zero *)
}

val run_instance_anytime :
  ?metrics:Obs.Metrics.t -> Sched.Instance.t -> Sched.Strategy.factory ->
  anytime
(** Like {!run_instance} but with anytime competitive monitoring: the
    final optimum and the whole per-round curve come from one streaming
    pass ({!Offline.Opt_stream.prefix_curve}) instead of per-round full
    recomputes, so long workloads can be monitored at every round for
    roughly the cost of the final solve. *)

val asymptotic_ratio :
  make:(int -> Adversary.Scenario.t) ->
  factory:(Adversary.Scenario.t -> Sched.Strategy.factory) ->
  k:int -> float
(** The doubling-difference estimator of the limiting competitive ratio:
    run at [k] and [2k] phases and return
    [(opt_2k - opt_k) / (alg_2k - alg_k)] — the additive constant
    [α] of the competitive definition cancels exactly, so for the
    periodic adversary constructions this is the {e exact} per-phase
    ratio. *)

val asymptotic_ratio_exact :
  make:(int -> Adversary.Scenario.t) ->
  factory:(Adversary.Scenario.t -> Sched.Strategy.factory) ->
  k:int -> Prelude.Rat.t
(** As {!asymptotic_ratio}, as an exact rational. *)

val parmap :
  ?metrics:Obs.Metrics.t -> ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!Prelude.Parmap.map} with domain-utilisation metrics
    ({!Obs.Instrument.parmap_map}); the experiment fan-outs use this so
    [parmap.*] counters appear whenever a registry is ambient. *)

val rat_cell : Prelude.Rat.t -> string
(** ["45/41 (1.0976)"]. *)

val float_cell : float -> string
