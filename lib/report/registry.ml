let strategy_names =
  [
    "fix"; "current"; "fix_balance"; "eager"; "balance"; "edf"; "edf_coord";
    "local_fix"; "local_eager"; "greedy_2choice"; "greedy_random";
    "greedy_firstfit";
  ]

let solver_names = [ "kernel"; "kernel-ring"; "rebuild" ]

let solver_of_name = function
  | "kernel" -> Ok Strategies.Global.Kernel
  | "kernel-ring" -> Ok Strategies.Global.Kernel_ring
  | "rebuild" -> Ok Strategies.Global.Rebuild
  | other -> Error (Printf.sprintf "unknown solver %S" other)

let factory_of_name ~seed ?metrics ?solver name =
  match name with
  | "fix" -> Ok (Strategies.Global.fix ?solver ?metrics ())
  | "current" -> Ok (Strategies.Global.current ?solver ?metrics ())
  | "fix_balance" -> Ok (Strategies.Global.fix_balance ?solver ?metrics ())
  | "eager" -> Ok (Strategies.Global.eager ?solver ?metrics ())
  | "balance" -> Ok (Strategies.Global.balance ?solver ?metrics ())
  | "edf" -> Ok (Strategies.Edf.independent ())
  | "edf_coord" -> Ok (Strategies.Edf.coordinated ())
  | "local_fix" -> Ok (Localstrat.Local.fix ?metrics ())
  | "local_eager" -> Ok (Localstrat.Local.eager ?metrics ())
  | "greedy_2choice" -> Ok (Strategies.Twochoice.least_loaded ())
  | "greedy_random" ->
    (* split so the strategy's coin stream is independent of a workload
       generated from the same CLI seed *)
    Ok
      (Strategies.Twochoice.random_choice
         ~rng:(Prelude.Rng.split (Prelude.Rng.create ~seed)) ())
  | "greedy_firstfit" -> Ok (Strategies.Twochoice.first_fit ())
  | other -> Error (Printf.sprintf "unknown strategy %S" other)

(* A workload either fixes its own scenario (theorem adversaries) or is
   generated from the CLI's size parameters. *)
let instance_of_workload ~name ~n ~d ~rounds ~load ~seed =
  let rng = Prelude.Rng.create ~seed in
  let random profile =
    Ok
      (Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load ?profile ())
  in
  let phases = max 1 (rounds / max 1 d) in
  match name with
  | "uniform" -> random None
  | "zipf" -> random (Some (Adversary.Random_workload.Zipf 1.2))
  | "bursty" ->
    random
      (Some
         (Adversary.Random_workload.Bursty
            { period = 20; duty = 0.3; peak = 2.5 }))
  | "thm21" -> Ok (Adversary.Thm21.make ~d ~phases).instance
  | "thm22" ->
    (try Ok (Adversary.Thm22.make ~ell:4 ~d ~phases).instance
     with Invalid_argument m -> Error m)
  | "thm23" ->
    (try Ok (Adversary.Thm23.make ~d ~phases).instance
     with Invalid_argument m -> Error m)
  | "thm24" ->
    (try Ok (Adversary.Thm24.make ~d ~phases).instance
     with Invalid_argument m -> Error m)
  | "thm25" ->
    (try Ok (Adversary.Thm25.make ~d ~groups:3 ~intervals:phases).instance
     with Invalid_argument m -> Error m)
  | "thm37" -> Ok (fst (Adversary.Thm37.make ~d ~intervals:phases)).instance
  | other when List.mem other Workload.Zoo.names ->
    Workload.Zoo.generate ~name:other ~n ~d ~rounds ~load ~seed
  | other -> Error (Printf.sprintf "unknown workload %S" other)

let workload_names =
  [
    "uniform"; "zipf"; "bursty"; "thm21"; "thm22"; "thm23"; "thm24"; "thm25";
    "thm37";
  ]
  @ Workload.Zoo.names
