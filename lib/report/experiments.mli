(** The reproduction experiments: one per table/figure claim of the
    paper (see DESIGN.md §3 for the index).  Every experiment returns a
    rendered table plus named pass/fail checks; the test suite runs them
    in [quick] mode and asserts every check, the benchmark executable
    runs them full-size and prints the tables that EXPERIMENTS.md
    records.

    Every family enumerates its cases as {!Jobs.job}s and executes them
    through {!Jobs.map} on the caller-supplied {!Jobs.ctx} — so one
    battery run shares a domain pool, an optional on-disk result cache,
    retry policy and failure accounting across all families.  Pass
    [Jobs.local ()] for the plain in-process behaviour. *)

type t = {
  id : string;                     (** experiment id, e.g. "T1.fix.lb" *)
  title : string;
  table : Prelude.Texttable.t;
  checks : (string * bool) list;   (** named assertions, all expected true *)
}

val t1_fix_lb : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 row 1, lower bound (Thm 2.1): A_fix vs its adversary,
    measured per-phase ratio must equal [2 - 1/d] exactly. *)

val t1_current_lb : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 row 2, lower bound (Thm 2.2): A_current, ratio growing
    toward [e/(e-1)]. *)

val t1_fixbal_lb : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 row 3, lower bound (Thms 2.3/2.4). *)

val t1_eager_lb : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 row 4, lower bound (Thm 2.4): exactly 4/3, every even d. *)

val t1_bal_lb : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 row 5, lower bound (Thm 2.5): trend toward
    [(5d+2)/(4d+1)] as the group count grows. *)

val t1_any_lb : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 row 6 (Thm 2.6): the adaptive adversary versus every global
    strategy; measured ratio at least the finite-d bound. *)

val t1_upper_bounds : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 upper bounds (Thms 3.3-3.6): worst measured ratio of each
    strategy across the full adversarial + random battery stays within
    its bound; plus the structural audits (no augmenting path of order 1
    for the maximal strategies, none of order <= 2 for
    A_eager/A_balance). *)

val table1_summary : ctx:Jobs.ctx -> quick:bool -> t
(** Table 1 at canonical parameters, one row per bound — the golden
    snapshot family.  Its job keys coincide with the corresponding
    per-family keys, so a cached full battery answers it entirely from
    the cache; the rendered [--quick] form is pinned byte-for-byte by
    [test/golden_table1_quick.txt]. *)

val edf_baselines : ctx:Jobs.ctx -> quick:bool -> t
(** Observations 3.1/3.2: EDF exactly 1-competitive with one
    alternative; exactly c-competitive on the tight c-alternative
    example; at most 2 on random two-choice workloads. *)

val local_strategies : ctx:Jobs.ctx -> quick:bool -> t
(** Theorems 3.7/3.8: A_local_fix exactly 2-competitive in 2
    communication rounds on its adversary; A_local_eager within 5/3 and
    9 communication rounds across the battery. *)

val series_ratio_vs_d : ctx:Jobs.ctx -> quick:bool -> t
(** Derived figure: worst measured ratio per strategy as d grows —
    the "shape" of Table 1. *)

val series_average_case : ctx:Jobs.ctx -> quick:bool -> t
(** Derived figure: average-case ratios under uniform / Zipf / bursty
    arrivals across loads — the paper's "worst case may be
    unrealistically pessimistic" remark, quantified. *)

val ablation_bias : ctx:Jobs.ctx -> quick:bool -> t
(** Ablation: each lower-bound adversary replayed with its adversarial
    tie-break, a neutral tie-break and a randomised one — the
    existential nature of the lower bounds made visible (randomisation
    defeats the deterministic constructions, cf. the RANKING discussion
    in the paper's related work). *)

val ablation_keep : ctx:Jobs.ctx -> quick:bool -> t
(** Ablation: [A_eager] versus [A_remax] (the same strategy without the
    "previously scheduled requests remain scheduled" rule) across the
    battery — what rule (2) of the eager/balance definitions buys. *)

val power_of_choices : ctx:Jobs.ctx -> quick:bool -> t
(** Extension: the same traffic restricted to its first [c] alternatives
    for [c = 1..4] — the balls-into-bins "power of two choices" story
    that motivates the model, measured on the scheduling problem. *)

val greedy_baselines : ctx:Jobs.ctx -> quick:bool -> t
(** Extension: the balls-into-bins greedy heuristics (least-loaded of
    two choices, random choice, first fit) against the matching-based
    strategies — loss and mean service latency under load.  Quantifies
    what the paper's matching machinery buys over the O(1) folklore. *)

val loss_robustness : ctx:Jobs.ctx -> quick:bool -> t
(** Ablation/failure injection: the local protocols under message loss.
    Drops are treated as mailbox bounces, so the protocols stay
    consistent at any loss rate and degrade gracefully; the experiment
    charts accepted requests against the drop probability. *)

val placement_policies : ctx:Jobs.ctx -> quick:bool -> t
(** Extension: the application layer the paper's introduction sketches —
    a replicated catalogue under continuous-media session traffic
    ([MBLR97]-style), with random ([Kor97]), chained and striped replica
    placements compared through the same scheduler.  Random duplicated
    assignment decorrelates hot items' alternatives, which is exactly
    why the two-choice model has freedom to balance. *)

val mixed_deadlines : ctx:Jobs.ctx -> quick:bool -> t
(** Extension the paper notes after Observations 3.1/3.2: per-request
    deadlines.  EDF stays exactly 1-competitive with one alternative,
    and all strategies handle heterogeneous windows. *)

val catalog : (string * (ctx:Jobs.ctx -> quick:bool -> t)) list
(** Experiment ids with their (unevaluated) runners, in report order. *)

val all : ctx:Jobs.ctx -> quick:bool -> t list

val render : t -> string
(** Table plus a PASS/FAIL line per check. *)
