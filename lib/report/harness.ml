type run = {
  outcome : Sched.Outcome.t;
  opt : int;
  ratio : float;
}

let ratio_of ~opt ~served =
  if served = 0 then if opt = 0 then 1.0 else infinity
  else float_of_int opt /. float_of_int served

let run_instance ?metrics inst factory =
  let metrics = Obs.Metrics.resolve metrics in
  let outcome = Sched.Engine.run ?metrics inst factory in
  (* with metrics on, compute the optimum via the streaming tracker so
     the run also profiles the augmenting-path machinery; the two
     optima are pinned equal by the differential test-suite *)
  let opt =
    match metrics with
    | Some m -> Offline.Opt_stream.value ~metrics:m inst
    | None -> Offline.Opt.value inst
  in
  { outcome; opt; ratio = ratio_of ~opt ~served:outcome.Sched.Outcome.served }

type anytime = {
  run : run;
  opt_curve : int array;
  alg_curve : int array;
  ratio_curve : float array;
}

let run_instance_anytime ?metrics inst factory =
  let metrics = Obs.Metrics.resolve metrics in
  let outcome = Sched.Engine.run ?metrics inst factory in
  let opt_curve = Offline.Opt_stream.prefix_curve ?metrics inst in
  let alg_curve =
    let acc = ref 0 in
    Array.map
      (fun served ->
         acc := !acc + served;
         !acc)
      outcome.Sched.Outcome.per_round_served
  in
  let ratio ~opt ~alg = ratio_of ~opt ~served:alg in
  let horizon = Array.length opt_curve in
  let opt = if horizon = 0 then 0 else opt_curve.(horizon - 1) in
  {
    run =
      {
        outcome;
        opt;
        ratio = ratio ~opt ~alg:outcome.Sched.Outcome.served;
      };
    opt_curve;
    alg_curve;
    ratio_curve =
      Array.mapi (fun r opt -> ratio ~opt ~alg:alg_curve.(r)) opt_curve;
  }

let run_scenario (sc : Adversary.Scenario.t) factory =
  let r = run_instance sc.Adversary.Scenario.instance factory in
  (match sc.Adversary.Scenario.opt_hint with
   | Some hint when hint <> r.opt ->
     failwith
       (Printf.sprintf
          "scenario %s: analytic optimum %d disagrees with computed %d"
          sc.Adversary.Scenario.name hint r.opt)
   | Some _ | None -> ());
  r

let diffs ~make ~factory ~k =
  let sc1 = make k and sc2 = make (2 * k) in
  let r1 = run_scenario sc1 (factory sc1) in
  let r2 = run_scenario sc2 (factory sc2) in
  let dopt = r2.opt - r1.opt
  and dalg =
    r2.outcome.Sched.Outcome.served - r1.outcome.Sched.Outcome.served
  in
  (dopt, dalg)

let asymptotic_ratio ~make ~factory ~k =
  let dopt, dalg = diffs ~make ~factory ~k in
  if dalg = 0 then infinity else float_of_int dopt /. float_of_int dalg

let asymptotic_ratio_exact ~make ~factory ~k =
  let dopt, dalg = diffs ~make ~factory ~k in
  Prelude.Rat.make dopt dalg

let parmap ?metrics ?domains f xs =
  Obs.Instrument.parmap_map ?metrics ?domains f xs

let rat_cell r =
  Printf.sprintf "%s (%.4f)" (Prelude.Rat.to_string r)
    (Prelude.Rat.to_float r)

let float_cell = Prelude.Texttable.cell_ratio
