(** Parallel, cached, fault-isolated experiment job runner.

    Every quantitative claim the report regenerates decomposes into
    independent {e jobs} — one deterministic computation per (family ×
    case parameters × seed) — and every experiment family enumerates its
    jobs through {!map} instead of running them inline.  The runner
    gives three things the inline loops never had:

    - {b parallelism}: batches fan out over OCaml 5 domains via
      {!Prelude.Parmap} (through {!Obs.Instrument}, so per-domain
      utilisation lands in the metrics registry), preserving input
      order, so any domain count produces byte-identical output;
    - {b fault isolation}: a job that raises is recorded as a
      {!failure} (exception text, backtrace, attempt count) and
      optionally retried — it never aborts the rest of the battery;
    - {b caching}: results are written to an on-disk content-addressed
      cache (atomic tmp+rename, format-versioned, corrupt or stale
      entries detected and recomputed) keyed by the job's full
      parameter set, so [--resume] skips everything a previous —
      possibly killed — run already completed.

    Results are {!value} trees with a bit-exact textual serialisation
    (floats round-trip through hexadecimal notation), which is both the
    cache payload and the byte-identity witness of the determinism
    test-suite. *)

(** {2 Result values} *)

type value =
  | Int of int
  | Float of float          (** serialised as [%h]: bit-exact, NaN/inf safe *)
  | Bool of bool
  | Rat of Prelude.Rat.t
  | Str of string
  | List of value list

val value_to_string : value -> string
(** Single-line, bit-exact serialisation (the cache payload). *)

val value_of_string : string -> (value, string) result
(** Inverse of {!value_to_string}; [Error] on any malformed input
    (never raises — a corrupt cache entry must look like a miss). *)

(** {2 Jobs and outcomes} *)

type job
(** A named deterministic computation.  The name and parameter list are
    the job's identity: two jobs with the same family, name and
    parameters are assumed to compute the same value (that assumption
    is what makes the cache content-addressed). *)

val job : name:string -> ?params:(string * string) list ->
  (attempt:int -> value) -> job
(** [job ~name ~params compute] — [compute ~attempt] receives the
    0-based attempt number so fault-injection tests can model faults
    that clear on retry.  [compute] must not depend on ambient mutable
    state: it may run on any domain, in any interleaving, or not at all
    (cache hit). *)

type failure = {
  family : string;
  name : string;
  attempts : int;    (** how many times the job was tried *)
  message : string;  (** [Printexc.to_string] of the last exception *)
  backtrace : string;
}

type outcome = Done of value | Failed of failure

(** Safe accessors: the failure (or wrong-shape) fallbacks are chosen so
    that every downstream check comparing against a bound fails loudly
    rather than raising — a failed job must never abort assembly. *)

val float_value : outcome -> float
(** [nan] on failure. *)

val int_value : outcome -> int
(** [min_int] on failure. *)

val bool_value : outcome -> bool
(** [false] on failure. *)

val rat_value : outcome -> Prelude.Rat.t
(** [0/1] on failure. *)

val list_value : outcome -> value list
(** [[]] on failure. *)

val nth : outcome -> int -> outcome
(** Project element [i] out of a [List] outcome; a failure or shape
    mismatch propagates as [Failed]. *)

val cell : outcome -> (value -> string) -> string
(** Table-cell rendering: [f v] on success, ["FAILED"] otherwise. *)

(** {2 The runner} *)

type ctx
(** Runner configuration plus accumulated statistics and failures,
    shared by every {!map} batch of one battery run. *)

val create :
  ?domains:int ->
  ?cache_dir:string ->
  ?resume:bool ->
  ?retries:int ->
  ?metrics:Obs.Metrics.t ->
  unit -> ctx
(** [domains]: worker domains, [1] = serial (default
    {!Prelude.Parmap.recommended_domains}).  [cache_dir]: enable the
    on-disk cache (directory created on demand); results are always
    written when set.  [resume]: also read cached results before
    computing (default false).  [retries]: extra attempts per failing
    job (default 0).  [metrics]: registry for the [jobs.*] counters and
    gauges (default: the ambient registry, resolved at each batch). *)

val local : unit -> ctx
(** [create ()] — the in-process default used by the test-suite and any
    caller that predates the runner: parallel, uncached, no retries. *)

val map : ctx -> family:string -> ?shared:(string * string) list ->
  job list -> outcome list
(** Run one batch.  [shared] parameters are appended to every job's key
    (battery-wide settings such as [quick]).  Order of outcomes matches
    order of jobs regardless of the domain count.  Never raises on job
    failure; failures accumulate in the ctx ({!failures}). *)

type stats = {
  total : int;        (** jobs submitted *)
  executed : int;     (** jobs actually computed (≥ 1 attempt) *)
  cache_hits : int;   (** jobs answered from the cache *)
  corrupt : int;      (** cache entries rejected (truncated / bad digest / stale version) *)
  failed : int;       (** jobs whose last attempt raised *)
  retried : int;      (** extra attempts consumed *)
}

val stats : ctx -> stats
val failures : ctx -> failure list
(** In submission order. *)

val hit_rate : stats -> float
(** [cache_hits / (cache_hits + executed)]; [0.] when nothing ran. *)

val summary : ctx -> string
(** One line, deterministic (no wall-clock content):
    ["jobs: total=18 executed=0 cache-hits=18 corrupt=0 failed=0 retried=0 hit-rate=100.0%"]. *)

val render_failures : ctx -> string
(** Multi-line failure report with backtraces; [""] when none. *)

val finish : ctx -> unit
(** Flush the run-level gauges ([jobs.cache_hit_rate], [jobs.per_sec],
    [jobs.busy_s]) to the metrics registry.  Counters
    ([jobs.total], [jobs.executed], [jobs.cache_hits], [jobs.corrupt],
    [jobs.failed], [jobs.retried]) are recorded live by {!map}. *)

(** {2 Cache internals exposed for the robustness tests} *)

val cache_format_version : int
val semantic_version : int
(** Bumped when the meaning of a job key changes; part of every key, so
    old cache directories read as misses rather than wrong answers. *)

val key_digest : family:string -> ?shared:(string * string) list ->
  name:string -> params:(string * string) list -> unit -> string
(** Hex digest naming the cache entry: [<digest>.job] under the cache
    directory. *)
