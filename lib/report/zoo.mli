(** The workload-zoo experiment family: every strategy scored on every
    production-shaped workload ({!Workload.Zoo}) with the SLO
    objectives of {!Analysis.Slo} plus the anytime competitive ratio —
    the repo's first non-adversarial evaluation axis.

    One job per (workload family × strategy), run through {!Jobs} like
    every other family, so the zoo shares the domain pool, cache and
    [--resume] with the rest of the battery.  The quick tier is pinned
    byte-for-byte by [test/golden_zoo_quick.txt]. *)

val strategies : string list
(** The strategies the zoo sweeps: the five globals, both EDF variants
    and the two-choice greedy — every deterministic strategy with a
    live-engine implementation (8 of them). *)

val tier : quick:bool -> int * int * int
(** [(n, d, rounds)] of the quick / full tier. *)

val seed : int
(** The canonical zoo seed (shared by every cell; workload draws are
    keyed per round, strategy coins are split — see
    {!Registry.factory_of_name}). *)

val summary : ctx:Jobs.ctx -> quick:bool -> Experiments.t
(** The zoo table: one row per (workload × strategy) with
    served/submitted, violation rate, throughput, ANTT, max delay
    factor, machines-needed, anytime ratio and final ratio; one
    well-formedness check per row (conservation, metric ranges,
    [anytime >= final >= 1]). *)

val catalog : (string * (ctx:Jobs.ctx -> quick:bool -> Experiments.t)) list
(** [[("Z.zoo", summary)]] — appended to {!Experiments.catalog} by the
    CLI and the test-suite. *)
