let flag argv name = Array.exists (( = ) name) argv

let value_flag argv name =
  let n = Array.length argv in
  let rec find i =
    if i >= n then Ok None
    else if argv.(i) = name then
      if i = n - 1 then
        Error (Printf.sprintf "%s requires a value (e.g. %s VALUE)" name name)
      else Ok (Some argv.(i + 1))
    else find (i + 1)
  in
  find 1
