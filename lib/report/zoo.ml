module Texttable = Prelude.Texttable
module Slo = Analysis.Slo

(* every deterministic strategy with a live-engine implementation; the
   randomised greedy and the message-passing locals are excluded so a
   zoo cell is a pure function of its key (the cache contract) *)
let strategies =
  [
    "fix"; "current"; "fix_balance"; "eager"; "balance"; "edf"; "edf_coord";
    "greedy_2choice";
  ]

let tier ~quick = if quick then (6, 4, 40) else (8, 4, 240)
let seed = 7

let pi = string_of_int

(* The job value is the full score record, not one chosen metric, so a
   cached cell answers every --score mode and table column alike. *)
let score_value (r : Slo.streamed) =
  let s = r.scores in
  Jobs.List
    [
      Jobs.Int s.submitted;
      Jobs.Int s.served;
      Jobs.Int s.expired;
      Jobs.Int s.rounds;
      Jobs.Float s.violation_rate;
      Jobs.Float s.throughput;
      Jobs.Float s.antt;
      Jobs.Float s.max_delay_factor;
      Jobs.Int s.machines_needed;
      Jobs.Int r.opt;
      Jobs.Float r.final_ratio;
      Jobs.Float r.anytime_ratio;
    ]

type cell = {
  scores : Slo.scores;
  opt : int;
  final_ratio : float;
  anytime_ratio : float;
}

let cell_of_outcome o =
  match o with
  | Jobs.Failed _ -> None
  | Jobs.Done _ ->
      let iv i = Jobs.int_value (Jobs.nth o i) in
      let fv i = Jobs.float_value (Jobs.nth o i) in
      Some
        {
          scores =
            {
              Slo.submitted = iv 0;
              served = iv 1;
              expired = iv 2;
              rounds = iv 3;
              violation_rate = fv 4;
              throughput = fv 5;
              antt = fv 6;
              max_delay_factor = fv 7;
              machines_needed = iv 8;
            };
          opt = iv 9;
          final_ratio = fv 10;
          anytime_ratio = fv 11;
        }

let zoo_job ~workload ~strategy ~n ~d ~rounds ~load =
  Jobs.job
    ~name:(workload ^ "/" ^ strategy)
    ~params:
      [
        ("workload", workload);
        ("strategy", strategy);
        ("n", pi n);
        ("d", pi d);
        ("rounds", pi rounds);
        ("load", Printf.sprintf "%h" load);
        ("seed", pi seed);
      ]
    (fun ~attempt:_ ->
      let inst =
        match Workload.Zoo.generate ~name:workload ~n ~d ~rounds ~load ~seed with
        | Ok i -> i
        | Error m -> failwith m
      in
      let factory =
        match Registry.factory_of_name ~seed strategy with
        | Ok f -> f
        | Error m -> failwith m
      in
      score_value (Slo.score_stream inst factory))

let eps = 1e-9

let well_formed ~n ~d c =
  let s = c.scores in
  let conserved = s.served + s.expired = s.submitted in
  let viol_ok = s.violation_rate >= 0.0 && s.violation_rate <= 1.0 in
  let thr_ok = s.throughput >= 0.0 && s.throughput <= float_of_int n +. eps in
  let antt_ok =
    if s.served = 0 then Float.is_nan s.antt
    else s.antt >= 1.0 -. eps && s.antt <= float_of_int d +. eps
  in
  (* a request with deadline D contributes at most (D + 1) / D, which
     peaks at 2 for D = 1 (mix tightens deadlines below the nominal d) *)
  let delay_ok =
    if s.submitted = 0 then Float.is_nan s.max_delay_factor
    else s.max_delay_factor > 0.0 && s.max_delay_factor <= 2.0 +. eps
  in
  let machines_ok = s.machines_needed >= if s.submitted > 0 then 1 else 0 in
  let ratio_ok =
    c.opt >= s.served
    && c.final_ratio >= 1.0 -. eps
    && c.anytime_ratio >= c.final_ratio -. eps
  in
  conserved && viol_ok && thr_ok && antt_ok && delay_ok && machines_ok
  && ratio_ok

let summary ~ctx ~quick =
  let n, d, rounds = tier ~quick in
  let cases =
    List.concat_map
      (fun (f : Workload.Zoo.family) ->
        List.map (fun strategy -> (f, strategy)) strategies)
      Workload.Zoo.families
  in
  let outcomes =
    Jobs.map ctx ~family:"Z.zoo"
      ~shared:[ ("quick", if quick then "1" else "0") ]
      (List.map
         (fun ((f : Workload.Zoo.family), strategy) ->
           zoo_job ~workload:f.key ~strategy ~n ~d ~rounds
             ~load:f.default_load)
         cases)
  in
  let table =
    Texttable.create
      ~title:
        (Printf.sprintf
           "Z.zoo  --  SLO scores, %d strategies x %d workloads (n=%d d=%d \
            rounds=%d)"
           (List.length strategies)
           (List.length Workload.Zoo.families)
           n d rounds)
      ~header:
        [
          "workload"; "strategy"; "served/sub"; "viol%"; "thr/round"; "antt";
          "maxDF"; "m>="; "anytime"; "ratio";
        ]
      ()
  in
  let checks =
    List.map2
      (fun ((f : Workload.Zoo.family), strategy) o ->
        let render mk = Jobs.cell o (fun _ -> mk ()) in
        let c = cell_of_outcome o in
        let row =
          match c with
          | None ->
              [ f.key; strategy ] @ List.init 8 (fun _ -> render (fun () -> "?"))
          | Some c ->
              let s = c.scores in
              let m mode = Slo.mode_cell mode ~ratio:c.final_ratio s in
              [
                f.key;
                strategy;
                render (fun () -> Printf.sprintf "%d/%d" s.served s.submitted);
                m Slo.Violation;
                m Slo.Throughput;
                m Slo.Antt;
                m Slo.Delay;
                m Slo.Machines;
                render (fun () -> Printf.sprintf "%.3f" c.anytime_ratio);
                m Slo.Ratio;
              ]
        in
        Texttable.add_row table row;
        let ok = match c with None -> false | Some c -> well_formed ~n ~d c in
        (Printf.sprintf "%s x %s: scores well-formed" f.key strategy, ok))
      cases outcomes
  in
  {
    Experiments.id = "Z.zoo";
    title = "workload zoo: SLO scores for every strategy";
    table;
    checks;
  }

let catalog = [ ("Z.zoo", fun ~ctx ~quick -> summary ~ctx ~quick) ]
