module Texttable = Prelude.Texttable
module Rat = Prelude.Rat
module Rng = Prelude.Rng
module Global = Strategies.Global
module Edf = Strategies.Edf
module Local = Localstrat.Local

type t = {
  id : string;
  title : string;
  table : Prelude.Texttable.t;
  checks : (string * bool) list;
}

let close ?(tol = 0.02) a b = Float.abs (a -. b) <= tol *. Float.abs b

let scenario_factory
    (make :
       ?solver:Global.solver -> ?bias:Sched.Strategy.bias ->
       ?metrics:Obs.Metrics.t -> unit -> Sched.Strategy.factory)
    (sc : Adversary.Scenario.t) =
  make ?bias:(Some sc.Adversary.Scenario.bias) ()

(* ------------------------------------------------------------------ *)
(* job plumbing: every family enumerates its cases as Jobs and lets the
   runner execute them (parallel, cached, fault-isolated); assembly of
   tables and checks stays in the submitting domain.  A failed job
   renders as FAILED and fails its check — it never aborts the rest of
   the battery. *)

let shared_of ~quick = [ ("quick", if quick then "1" else "0") ]

let pi = string_of_int

let rat_cell_of o =
  Jobs.cell o (function Jobs.Rat r -> Harness.rat_cell r | _ -> "?")

let float_cell_of o =
  Jobs.cell o (function Jobs.Float f -> Harness.float_cell f | _ -> "?")

let yes_no ok = if ok then "yes" else "NO"

(* ------------------------------------------------------------------ *)
(* T1.fix.lb - Theorem 2.1 *)

let fix_lb_job ~d ~k =
  Jobs.job
    ~name:(Printf.sprintf "d=%d" d)
    ~params:[ ("d", pi d); ("k", pi k) ]
    (fun ~attempt:_ ->
       Jobs.Rat
         (Harness.asymptotic_ratio_exact
            ~make:(fun phases -> Adversary.Thm21.make ~d ~phases)
            ~factory:(scenario_factory Global.fix) ~k))

let t1_fix_lb ~ctx ~quick =
  let ds = if quick then [ 2; 4; 6 ] else [ 2; 3; 4; 6; 8; 12 ] in
  let k = if quick then 3 else 8 in
  let outcomes =
    Jobs.map ctx ~family:"T1.fix.lb" ~shared:(shared_of ~quick)
      (List.map (fun d -> fix_lb_job ~d ~k) ds)
  in
  let table =
    Texttable.create
      ~title:"T1.fix.lb  --  A_fix vs Thm 2.1 adversary (paper: 2 - 1/d)"
      ~header:[ "d"; "paper bound"; "measured (per phase)"; "exact match" ]
      ()
  in
  let checks =
    List.map2
      (fun d o ->
         let bound = Analysis.Bounds.fix_lb ~d in
         let ok = Rat.equal (Jobs.rat_value o) bound in
         Texttable.add_row table
           [ pi d; Harness.rat_cell bound; rat_cell_of o; yes_no ok ];
         (Printf.sprintf "A_fix d=%d reaches 2-1/d exactly" d, ok))
      ds outcomes
  in
  { id = "T1.fix.lb"; title = "A_fix lower bound (Thm 2.1)"; table; checks }

(* ------------------------------------------------------------------ *)
(* T1.current.lb - Theorem 2.2 *)

let current_lb_job ~ell ~d =
  Jobs.job
    ~name:(Printf.sprintf "ell=%d,d=%d" ell d)
    ~params:[ ("ell", pi ell); ("d", pi d); ("k", "1") ]
    (fun ~attempt:_ ->
       Jobs.Float
         (Harness.asymptotic_ratio
            ~make:(fun phases -> Adversary.Thm22.make ~ell ~d ~phases)
            ~factory:(scenario_factory Global.current) ~k:1))

let t1_current_lb ~ctx ~quick =
  let cases =
    if quick then [ (3, 6); (4, 12) ]
    else [ (3, 6); (4, 12); (5, 60); (6, 60) ]
  in
  let outcomes =
    Jobs.map ctx ~family:"T1.current.lb" ~shared:(shared_of ~quick)
      (List.map (fun (ell, d) -> current_lb_job ~ell ~d) cases)
  in
  let table =
    Texttable.create
      ~title:
        "T1.current.lb  --  A_current vs Thm 2.2 adversary (paper: -> \
         e/(e-1) = 1.5820)"
      ~header:
        [ "ell"; "d"; "proof reference"; "measured (per phase)"; "within 5%" ]
      ()
  in
  let checks =
    List.map2
      (fun (ell, d) o ->
         let reference =
           let alg = Adversary.Thm22.alg_lower_bound_per_phase ~ell ~d in
           float_of_int (ell * d) /. float_of_int alg
         in
         let measured = Jobs.float_value o in
         let ok = close ~tol:0.05 measured reference in
         Texttable.add_row table
           [
             pi ell; pi d;
             Harness.float_cell reference;
             float_cell_of o;
             yes_no ok;
           ];
         (Printf.sprintf "A_current ell=%d tracks the drain argument" ell, ok))
      cases outcomes
  in
  let trend =
    (* the measured ratio must grow with ell toward e/(e-1); the same
       job results feed the rows above, so nothing is computed twice *)
    let measured = List.map Jobs.float_value outcomes in
    let rec increasing = function
      | a :: (b :: _ as rest) -> a <= b +. 0.02 && increasing rest
      | _ -> true
    in
    ( "A_current ratio grows toward e/(e-1)",
      increasing measured
      && List.for_all
           (fun m -> m < Analysis.Bounds.current_lb_float +. 0.02)
           measured )
  in
  {
    id = "T1.current.lb";
    title = "A_current lower bound (Thm 2.2)";
    table;
    checks = checks @ [ trend ];
  }

(* ------------------------------------------------------------------ *)
(* T1.fixbal.lb - Theorems 2.3 / 2.4 *)

let fixbal_lb_job ~d ~k =
  Jobs.job
    ~name:(Printf.sprintf "d=%d" d)
    ~params:[ ("d", pi d); ("k", pi k) ]
    (fun ~attempt:_ ->
       Jobs.Rat
         (Harness.asymptotic_ratio_exact
            ~make:(fun phases -> Adversary.Thm23.make ~d ~phases)
            ~factory:(scenario_factory Global.fix_balance) ~k))

let fixbal_d2_job ~k =
  Jobs.job ~name:"d=2-thm24"
    ~params:[ ("d", "2"); ("k", pi k) ]
    (fun ~attempt:_ ->
       Jobs.Rat
         (Harness.asymptotic_ratio_exact
            ~make:(fun phases -> Adversary.Thm24.make ~d:2 ~phases)
            ~factory:(scenario_factory Global.fix_balance) ~k))

let t1_fixbal_lb ~ctx ~quick =
  let ds = if quick then [ 4; 6 ] else [ 4; 6; 8; 12 ] in
  let k = if quick then 3 else 6 in
  let outcomes =
    Jobs.map ctx ~family:"T1.fixbal.lb" ~shared:(shared_of ~quick)
      (List.map (fun d -> fixbal_lb_job ~d ~k) ds @ [ fixbal_d2_job ~k ])
  in
  let d2_outcome = List.nth outcomes (List.length ds) in
  let table =
    Texttable.create
      ~title:
        "T1.fixbal.lb  --  A_fix_balance vs Thm 2.3 adversary (paper: \
         3d/(2d+2); 4/3 at d=2 via Thm 2.4)"
      ~header:[ "d"; "paper bound"; "measured (per phase)"; "exact match" ]
      ()
  in
  let checks =
    List.map2
      (fun d o ->
         let bound = Analysis.Bounds.fix_balance_lb ~d in
         let ok = Rat.equal (Jobs.rat_value o) bound in
         Texttable.add_row table
           [ pi d; Harness.rat_cell bound; rat_cell_of o; yes_no ok ];
         (Printf.sprintf "A_fix_balance d=%d reaches 3d/(2d+2)" d, ok))
      ds
      (List.filteri (fun i _ -> i < List.length ds) outcomes)
  in
  (* d = 2: Theorem 2.4's adversary applies to A_fix_balance *)
  let d2 =
    let bound = Rat.make 4 3 in
    let ok = Rat.equal (Jobs.rat_value d2_outcome) bound in
    Texttable.add_row table
      [
        "2 (Thm 2.4)";
        Harness.rat_cell bound;
        rat_cell_of d2_outcome;
        yes_no ok;
      ];
    ("A_fix_balance d=2 reaches 4/3 (Thm 2.4)", ok)
  in
  {
    id = "T1.fixbal.lb";
    title = "A_fix_balance lower bound (Thms 2.3/2.4)";
    table;
    checks = checks @ [ d2 ];
  }

(* ------------------------------------------------------------------ *)
(* T1.eager.lb - Theorem 2.4 *)

let eager_lb_job ~d ~k =
  Jobs.job
    ~name:(Printf.sprintf "d=%d" d)
    ~params:[ ("d", pi d); ("k", pi k) ]
    (fun ~attempt:_ ->
       Jobs.Rat
         (Harness.asymptotic_ratio_exact
            ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
            ~factory:(scenario_factory Global.eager) ~k))

let t1_eager_lb ~ctx ~quick =
  let ds = if quick then [ 2; 4 ] else [ 2; 4; 6; 8; 10 ] in
  let k = if quick then 3 else 6 in
  let outcomes =
    Jobs.map ctx ~family:"T1.eager.lb" ~shared:(shared_of ~quick)
      (List.map (fun d -> eager_lb_job ~d ~k) ds)
  in
  let table =
    Texttable.create
      ~title:"T1.eager.lb  --  A_eager vs Thm 2.4 adversary (paper: 4/3)"
      ~header:[ "d"; "paper bound"; "measured (per phase)"; "exact match" ]
      ()
  in
  let bound = Rat.make 4 3 in
  let checks =
    List.map2
      (fun d o ->
         let ok = Rat.equal (Jobs.rat_value o) bound in
         Texttable.add_row table
           [ pi d; Harness.rat_cell bound; rat_cell_of o; yes_no ok ];
         (Printf.sprintf "A_eager d=%d reaches 4/3" d, ok))
      ds outcomes
  in
  { id = "T1.eager.lb"; title = "A_eager lower bound (Thm 2.4)"; table; checks }

(* ------------------------------------------------------------------ *)
(* T1.bal.lb - Theorem 2.5 *)

let bal_lb_job ~d ~groups ~intervals =
  Jobs.job
    ~name:(Printf.sprintf "d=%d,groups=%d" d groups)
    ~params:
      [ ("d", pi d); ("groups", pi groups); ("intervals", pi intervals) ]
    (fun ~attempt:_ ->
       Jobs.Float
         (Harness.asymptotic_ratio
            ~make:(fun k -> Adversary.Thm25.make ~d ~groups ~intervals:k)
            ~factory:(scenario_factory Global.balance) ~k:intervals))

let bal_d2_job ~k =
  Jobs.job ~name:"d=2-thm24"
    ~params:[ ("d", "2"); ("k", pi k) ]
    (fun ~attempt:_ ->
       Jobs.Rat
         (Harness.asymptotic_ratio_exact
            ~make:(fun phases -> Adversary.Thm24.make ~d:2 ~phases)
            ~factory:(scenario_factory Global.balance) ~k))

let t1_bal_lb ~ctx ~quick =
  let ds = if quick then [ 5 ] else [ 5; 8; 11 ] in
  let group_counts = if quick then [ 2; 6 ] else [ 2; 6; 12 ] in
  let intervals = if quick then 4 else 8 in
  let d2_k = if quick then 3 else 6 in
  let cases =
    List.concat_map
      (fun d -> List.map (fun groups -> (d, groups)) group_counts)
      ds
  in
  let outcomes =
    Jobs.map ctx ~family:"T1.bal.lb" ~shared:(shared_of ~quick)
      (List.map (fun (d, groups) -> bal_lb_job ~d ~groups ~intervals) cases
       @ [ bal_d2_job ~k:d2_k ])
  in
  let d2_outcome = List.nth outcomes (List.length cases) in
  let table =
    Texttable.create
      ~title:
        "T1.bal.lb  --  A_balance vs Thm 2.5 adversary (paper: (5d+2)/(4d+1) \
         as n -> inf)"
      ~header:
        [ "d"; "groups"; "paper limit"; "finite-k expectation"; "measured";
          "match" ]
      ()
  in
  let checks =
    List.map2
      (fun (d, groups) o ->
         let x = (d + 1) / 3 in
         let bound = Analysis.Bounds.balance_lb ~d in
         (* per interval and group: ALG 4x-1, OPT 5x-1; shared anchor
            maintenance adds 4x services per interval to both *)
         let expect =
           float_of_int ((groups * ((5 * x) - 1)) + (4 * x))
           /. float_of_int ((groups * ((4 * x) - 1)) + (4 * x))
         in
         let ok = close ~tol:0.02 (Jobs.float_value o) expect in
         Texttable.add_row table
           [
             pi d; pi groups;
             Harness.rat_cell bound;
             Harness.float_cell expect;
             float_cell_of o;
             yes_no ok;
           ];
         (Printf.sprintf "A_balance d=%d groups=%d matches Thm 2.5" d groups,
          ok))
      cases
      (List.filteri (fun i _ -> i < List.length cases) outcomes)
  in
  (* d = 2 via Theorem 2.4 *)
  let d2 =
    let ok = Rat.equal (Jobs.rat_value d2_outcome) (Rat.make 4 3) in
    Texttable.add_row table
      [
        "2 (Thm 2.4)"; "-";
        Harness.rat_cell (Rat.make 4 3);
        "-";
        rat_cell_of d2_outcome;
        yes_no ok;
      ];
    ("A_balance d=2 reaches 4/3 (Thm 2.4)", ok)
  in
  {
    id = "T1.bal.lb";
    title = "A_balance lower bound (Thms 2.4/2.5)";
    table;
    checks = checks @ [ d2 ];
  }

(* ------------------------------------------------------------------ *)
(* T1.any.lb - Theorem 2.6 *)

let any_lb_job ~d ~phases ~name ~mk =
  Jobs.job
    ~name:(Printf.sprintf "d=%d/%s" d name)
    ~params:[ ("d", pi d); ("phases", pi phases); ("strategy", name) ]
    (fun ~attempt:_ ->
       (* doubling difference cancels the additive constant the
          competitive definition allows *)
       let run k =
         let adv = Adversary.Thm26.create ~d ~phases:k in
         let outcome =
           Sched.Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d
             ~last_arrival_round:
               (Adversary.Thm26.last_arrival_round ~d ~phases:k)
             ~adversary:(Adversary.Thm26.adversary adv)
             (mk ?bias:None ())
         in
         ( Offline.Opt.value outcome.Sched.Outcome.instance,
           outcome.Sched.Outcome.served )
       in
       let opt1, alg1 = run phases in
       let opt2, alg2 = run (2 * phases) in
       Jobs.Float (float_of_int (opt2 - opt1) /. float_of_int (alg2 - alg1)))

let t1_any_lb ~ctx ~quick =
  let ds = if quick then [ 3; 6 ] else [ 3; 6; 9; 12 ] in
  let phases = if quick then 4 else 8 in
  let cases =
    List.concat_map
      (fun d -> List.map (fun (name, mk) -> (d, name, mk)) Global.all)
      ds
  in
  let outcomes =
    Jobs.map ctx ~family:"T1.any.lb" ~shared:(shared_of ~quick)
      (List.map (fun (d, name, mk) -> any_lb_job ~d ~phases ~name ~mk) cases)
  in
  let table =
    Texttable.create
      ~title:
        "T1.any.lb  --  adaptive Thm 2.6 adversary vs every strategy \
         (paper: >= 45/41 = 1.0976)"
      ~header:[ "d"; "strategy"; "finite-d bound"; "measured"; ">= bound" ]
      ()
  in
  let checks =
    List.map2
      (fun (d, name, _) o ->
         let bound = Analysis.Bounds.universal_lb_finite ~d in
         let ok = Jobs.float_value o >= Rat.to_float bound -. 1e-9 in
         Texttable.add_row table
           [ pi d; name; Harness.rat_cell bound; float_cell_of o; yes_no ok ];
         (Printf.sprintf "universal bound holds for %s at d=%d" name d, ok))
      cases outcomes
  in
  {
    id = "T1.any.lb";
    title = "Universal lower bound (Thm 2.6)";
    table;
    checks;
  }

(* ------------------------------------------------------------------ *)
(* T1 upper bounds - Theorems 3.3-3.6 *)

(* The battery: every adversarial construction plus random workloads,
   each run with the construction's bias and once neutrally. *)
let battery ~quick ~d =
  let k = if quick then 3 else 5 in
  let scenarios =
    List.concat
      [
        [ Adversary.Thm21.make ~d ~phases:k ];
        (if d mod 2 = 0 then
           [
             Adversary.Thm23.make ~d ~phases:k;
             Adversary.Thm24.make ~d ~phases:k;
           ]
         else []);
        (if (d + 1) mod 3 = 0 then
           [ Adversary.Thm25.make ~d ~groups:2 ~intervals:k ]
         else []);
      ]
  in
  let randoms =
    let rounds = if quick then 60 else 150 in
    List.concat_map
      (fun (seed, load, profile) ->
         let rng = Rng.create ~seed in
         [
           Adversary.Random_workload.make ~rng ~n:6 ~d ~rounds ~load ?profile
             ();
         ])
      [
        (11, 0.9, None);
        (12, 1.3, None);
        (13, 1.0, Some (Adversary.Random_workload.Zipf 1.2));
      ]
  in
  let with_bias =
    List.concat_map
      (fun (sc : Adversary.Scenario.t) ->
         [ (sc.instance, sc.bias); (sc.instance, Sched.Strategy.no_bias) ])
      scenarios
  in
  with_bias @ List.map (fun i -> (i, Sched.Strategy.no_bias)) randoms

let ub_strategies ~d =
  [
    ("A_fix", (fun ?bias () -> Global.fix ?bias ()), Analysis.Bounds.fix_ub ~d, 1);
    ("A_current", (fun ?bias () -> Global.current ?bias ()), Analysis.Bounds.fix_ub ~d, 1);
    ("A_fix_balance", (fun ?bias () -> Global.fix_balance ?bias ()), Analysis.Bounds.fix_balance_ub ~d, 1);
    ("A_eager", (fun ?bias () -> Global.eager ?bias ()), Analysis.Bounds.eager_ub ~d, 2);
    ("A_balance", (fun ?bias () -> Global.balance ?bias ()), Analysis.Bounds.balance_ub ~d, 2);
  ]

let ub_job ~d ~name ~mk ~forbidden_order ~case (inst, bias) =
  Jobs.job
    ~name:(Printf.sprintf "d=%d/%s/case%d" d name case)
    ~params:
      [
        ("d", pi d); ("strategy", name); ("case", pi case);
        ("order", pi forbidden_order);
      ]
    (fun ~attempt:_ ->
       let r = Harness.run_instance inst (mk ?bias:(Some bias) ()) in
       Jobs.List
         [
           Jobs.Float r.Harness.ratio;
           Jobs.Bool
             (Analysis.Audit.has_augmenting_of_order r.Harness.outcome
                ~order:forbidden_order);
         ])

(* one batch per (d, strategy): the shape Harness.parmap used to fan
   out, now cached and fault-isolated per battery element *)
let ub_measure ctx ~quick ~d ~name ~mk ~forbidden_order runs =
  let outcomes =
    Jobs.map ctx ~family:"T1.ub" ~shared:(shared_of ~quick)
      (List.mapi
         (fun case run -> ub_job ~d ~name ~mk ~forbidden_order ~case run)
         runs)
  in
  let worst =
    List.fold_left
      (fun acc o -> Float.max acc (Jobs.float_value (Jobs.nth o 0)))
      0.0 outcomes
  in
  let audit_ok =
    List.for_all
      (fun o ->
         (match o with Jobs.Done _ -> true | Jobs.Failed _ -> false)
         && not (Jobs.bool_value (Jobs.nth o 1)))
      outcomes
  in
  (worst, audit_ok)

let t1_upper_bounds ~ctx ~quick =
  let ds = if quick then [ 2; 4 ] else [ 2; 3; 4; 6; 8 ] in
  let table =
    Texttable.create
      ~title:
        "T1 upper bounds  --  worst measured ratio across the adversarial + \
         random battery (Thms 3.3-3.6)"
      ~header:
        [ "d"; "strategy"; "paper UB"; "worst measured"; "<= UB";
          "path audit" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun d ->
       let runs = battery ~quick ~d in
       List.iter
         (fun (name, mk, ub, forbidden_order) ->
            let worst, audit_ok =
              ub_measure ctx ~quick ~d ~name ~mk ~forbidden_order runs
            in
            let ok = worst <= Rat.to_float ub +. 1e-9 in
            Texttable.add_row table
              [
                pi d;
                name;
                Harness.rat_cell ub;
                Harness.float_cell worst;
                yes_no ok;
                (if audit_ok then
                   Printf.sprintf "no aug path of order <= %d" forbidden_order
                 else "VIOLATED");
              ];
            checks :=
              (Printf.sprintf "%s d=%d within UB" name d, ok)
              :: (Printf.sprintf "%s d=%d path structure" name d, audit_ok)
              :: !checks)
         (ub_strategies ~d))
    ds;
  {
    id = "T1.ub";
    title = "Table 1 upper bounds (Thms 3.3-3.6)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* EDF baselines - Observations 3.1 / 3.2 *)

(* The tight example for c-alternative EDF: every round, c identical
   requests over the same c resources with deadline 1; every resource
   serves the same (earliest-id) request, so EDF serves 1 per round
   while the optimum serves c. *)
let edf_tight_instance ~c ~rounds =
  let protos =
    List.concat
      (List.init rounds (fun round ->
           Adversary.Block.group ~arrival:round
             ~alternatives:(List.init c (fun r -> r))
             ~deadline:1 ~count:c))
  in
  Sched.Instance.build ~n_resources:c ~d:1 protos

let edf_baselines ~ctx ~quick =
  let rounds = if quick then 40 else 200 in
  let single_cases = [ (21, 0.8); (22, 1.2) ] in
  let tight_cases = [ 2; 3; 4 ] in
  let random_cases = [ (23, 1.0); (24, 1.6) ] in
  let jobs =
    List.map
      (fun (seed, load) ->
         Jobs.job
           ~name:(Printf.sprintf "single/seed=%d" seed)
           ~params:
             [ ("seed", pi seed); ("load", string_of_float load);
               ("rounds", pi rounds) ]
           (fun ~attempt:_ ->
              let rng = Rng.create ~seed in
              let inst =
                Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load
                  ~alternatives:1 ()
              in
              let r = Harness.run_instance inst (Edf.independent ()) in
              let edf_oracle = Offline.Opt.single_alternative_edf inst in
              Jobs.List
                [
                  Jobs.Bool
                    (r.Harness.outcome.Sched.Outcome.served = r.Harness.opt
                     && edf_oracle = r.Harness.opt);
                  Jobs.Float r.Harness.ratio;
                ]))
      single_cases
    @ List.map
        (fun c ->
           Jobs.job
             ~name:(Printf.sprintf "tight/c=%d" c)
             ~params:[ ("c", pi c); ("rounds", pi rounds) ]
             (fun ~attempt:_ ->
                let inst = edf_tight_instance ~c ~rounds in
                Jobs.Float
                  (Harness.run_instance inst (Edf.independent ())).Harness.ratio))
        tight_cases
    @ List.map
        (fun (seed, load) ->
           Jobs.job
             ~name:(Printf.sprintf "random/seed=%d" seed)
             ~params:
               [ ("seed", pi seed); ("load", string_of_float load);
                 ("rounds", pi rounds) ]
             (fun ~attempt:_ ->
                let rng = Rng.create ~seed in
                let inst =
                  Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load
                    ()
                in
                Jobs.Float
                  (Harness.run_instance inst (Edf.independent ())).Harness.ratio))
        random_cases
  in
  let outcomes = Jobs.map ctx ~family:"E.edf" ~shared:(shared_of ~quick) jobs in
  let singles = List.filteri (fun i _ -> i < 2) outcomes in
  let tights = List.filteri (fun i _ -> i >= 2 && i < 5) outcomes in
  let randoms = List.filteri (fun i _ -> i >= 5) outcomes in
  let table =
    Texttable.create
      ~title:
        "EDF baselines  --  Observations 3.1/3.2 (1-competitive with one \
         alternative, exactly c-competitive with c)"
      ~header:[ "case"; "paper"; "measured"; "match" ] ()
  in
  let checks = ref [] in
  (* Obs 3.1: single alternative, ratio exactly 1 *)
  List.iter2
    (fun (_, load) o ->
       let ok = Jobs.bool_value (Jobs.nth o 0) in
       Texttable.add_row table
         [
           Printf.sprintf "EDF c=1 load=%.1f" load;
           "1";
           float_cell_of (Jobs.nth o 1);
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "EDF single-alternative optimal (load %.1f)" load, ok)
         :: !checks)
    single_cases singles;
  (* Obs 3.2 tight example: exactly c *)
  List.iter2
    (fun c o ->
       let ok = Float.abs (Jobs.float_value o -. float_of_int c) < 1e-9 in
       Texttable.add_row table
         [
           Printf.sprintf "EDF tight example c=%d" c;
           pi c;
           float_cell_of o;
           yes_no ok;
         ];
       checks := (Printf.sprintf "EDF exactly %d-competitive" c, ok) :: !checks)
    tight_cases tights;
  (* Obs 3.2 upper bound on random two-choice inputs *)
  List.iter2
    (fun (_, load) o ->
       let ok = Jobs.float_value o <= 2.0 +. 1e-9 in
       Texttable.add_row table
         [
           Printf.sprintf "EDF c=2 random load=%.1f" load;
           "<= 2";
           float_cell_of o;
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "EDF random two-choice within 2 (load %.1f)" load, ok)
         :: !checks)
    random_cases randoms;
  {
    id = "E.edf";
    title = "EDF baselines (Obs 3.1/3.2)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Local strategies - Theorems 3.7 / 3.8 *)

let local_strategies ~ctx ~quick =
  let intervals = if quick then 5 else 20 in
  let rounds = if quick then 60 else 200 in
  let fix_ds = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let eager_cases =
    let mk_random seed load =
      ( Printf.sprintf "random load=%.1f" load,
        Printf.sprintf "random/seed=%d" seed,
        fun () ->
          let rng = Rng.create ~seed in
          Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load () )
    in
    [
      ( "Thm 3.7 workload", "thm37",
        fun () ->
          (fst (Adversary.Thm37.make ~d:4 ~intervals))
            .Adversary.Scenario.instance );
      ( "Thm 2.1 workload", "thm21",
        fun () ->
          (Adversary.Thm21.make ~d:4 ~phases:intervals)
            .Adversary.Scenario.instance );
      ( "Thm 2.4 workload", "thm24",
        fun () ->
          (Adversary.Thm24.make ~d:4 ~phases:intervals)
            .Adversary.Scenario.instance );
      mk_random 31 1.0;
      mk_random 32 1.5;
    ]
  in
  let jobs =
    List.map
      (fun d ->
         Jobs.job
           ~name:(Printf.sprintf "fix/d=%d" d)
           ~params:[ ("d", pi d); ("intervals", pi intervals) ]
           (fun ~attempt:_ ->
              let sc, priority = Adversary.Thm37.make ~d ~intervals in
              let factory, stats = Local.fix_with_stats ~priority () in
              let r = Harness.run_scenario sc factory in
              let s = stats () in
              Jobs.List
                [ Jobs.Float r.Harness.ratio; Jobs.Int s.Local.comm_rounds_max ]))
      fix_ds
    @ List.map
        (fun (_, jname, mk_inst) ->
           Jobs.job
             ~name:("eager/" ^ jname)
             ~params:[ ("intervals", pi intervals); ("rounds", pi rounds) ]
             (fun ~attempt:_ ->
                let factory, stats = Local.eager_with_stats () in
                let r = Harness.run_instance (mk_inst ()) factory in
                let s = stats () in
                Jobs.List
                  [
                    Jobs.Float r.Harness.ratio;
                    Jobs.Int s.Local.comm_rounds_max;
                  ]))
        eager_cases
  in
  let outcomes =
    Jobs.map ctx ~family:"E.local" ~shared:(shared_of ~quick) jobs
  in
  let fixes = List.filteri (fun i _ -> i < List.length fix_ds) outcomes in
  let eagers = List.filteri (fun i _ -> i >= List.length fix_ds) outcomes in
  let table =
    Texttable.create
      ~title:
        "Local strategies  --  A_local_fix exactly 2-competitive in 2 comm \
         rounds (Thm 3.7); A_local_eager <= 5/3 in <= 9 (Thm 3.8)"
      ~header:
        [ "case"; "paper"; "measured ratio"; "comm rounds (max)"; "match" ]
      ()
  in
  let checks = ref [] in
  (* Thm 3.7 *)
  List.iter2
    (fun d o ->
       let ratio = Jobs.float_value (Jobs.nth o 0) in
       let comm = Jobs.int_value (Jobs.nth o 1) in
       let ok = Float.abs (ratio -. 2.0) < 1e-9 && comm <= 2 in
       Texttable.add_row table
         [
           Printf.sprintf "A_local_fix, Thm 3.7 adversary, d=%d" d;
           "2, 2 rounds";
           float_cell_of (Jobs.nth o 0);
           Jobs.cell (Jobs.nth o 1)
             (function Jobs.Int i -> pi i | _ -> "?");
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "A_local_fix exactly 2-competitive at d=%d" d, ok)
         :: !checks)
    fix_ds fixes;
  (* Thm 3.8: battery *)
  List.iter2
    (fun (label, _, _) o ->
       let ratio = Jobs.float_value (Jobs.nth o 0) in
       let comm = Jobs.int_value (Jobs.nth o 1) in
       let ok = ratio <= (5.0 /. 3.0) +. 1e-9 && comm <= 9 in
       Texttable.add_row table
         [
           Printf.sprintf "A_local_eager, %s" label;
           "<= 5/3, <= 9 rounds";
           float_cell_of (Jobs.nth o 0);
           Jobs.cell (Jobs.nth o 1)
             (function Jobs.Int i -> pi i | _ -> "?");
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "A_local_eager within 5/3 on %s" label, ok) :: !checks)
    eager_cases eagers;
  {
    id = "E.local";
    title = "Local strategies (Thms 3.7/3.8)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Figure: ratio vs d *)

let ratio_vs_d_jobs ~d ~k =
  let j name f =
    Some
      (Jobs.job
         ~name:(Printf.sprintf "d=%d/%s" d name)
         ~params:[ ("d", pi d); ("k", pi k) ]
         (fun ~attempt:_ -> Jobs.Float (f ())))
  in
  [
    j "fix" (fun () ->
        Harness.asymptotic_ratio
          ~make:(fun phases -> Adversary.Thm21.make ~d ~phases)
          ~factory:(scenario_factory Global.fix) ~k);
    j "fixbal" (fun () ->
        if d = 2 then
          Harness.asymptotic_ratio
            ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
            ~factory:(scenario_factory Global.fix_balance) ~k
        else
          Harness.asymptotic_ratio
            ~make:(fun phases -> Adversary.Thm23.make ~d ~phases)
            ~factory:(scenario_factory Global.fix_balance) ~k);
    j "eager" (fun () ->
        Harness.asymptotic_ratio
          ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
          ~factory:(scenario_factory Global.eager) ~k);
    (if d = 2 then
       j "bal" (fun () ->
           Harness.asymptotic_ratio
             ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
             ~factory:(scenario_factory Global.balance) ~k)
     else if (d + 1) mod 3 = 0 then
       j "bal" (fun () ->
           Harness.asymptotic_ratio
             ~make:(fun i -> Adversary.Thm25.make ~d ~groups:6 ~intervals:i)
             ~factory:(scenario_factory Global.balance) ~k)
     else None);
  ]

let series_ratio_vs_d ~ctx ~quick =
  let ds = if quick then [ 2; 4; 6 ] else [ 2; 4; 6; 8; 10; 12 ] in
  let k = if quick then 3 else 5 in
  let per_d = List.map (fun d -> (d, ratio_vs_d_jobs ~d ~k)) ds in
  let jobs = List.concat_map (fun (_, js) -> List.filter_map Fun.id js) per_d in
  let outcomes =
    ref (Jobs.map ctx ~family:"F.ratio-vs-d" ~shared:(shared_of ~quick) jobs)
  in
  let next = function
    | None -> None
    | Some _ -> (
        match !outcomes with
        | o :: rest ->
          outcomes := rest;
          Some o
        | [] -> assert false)
  in
  let table =
    Texttable.create
      ~title:
        "F.ratio-vs-d  --  measured worst-case ratio per strategy on its own \
         adversary (the shape of Table 1)"
      ~header:
        [ "d"; "A_fix"; "A_fix_balance"; "A_eager"; "A_balance";
          "fix UB"; "eager UB" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun (d, js) ->
       match js with
       | [ jfix; jfixbal; jeager; jbal ] ->
         let fix = next jfix and fixbal = next jfixbal in
         let eager = next jeager and bal = next jbal in
         let fval = function
           | Some o -> Jobs.float_value o
           | None -> nan
         in
         Texttable.add_row table
           [
             pi d;
             (match fix with Some o -> float_cell_of o | None -> "-");
             (match fixbal with Some o -> float_cell_of o | None -> "-");
             (match eager with Some o -> float_cell_of o | None -> "-");
             (match bal with Some o -> float_cell_of o | None -> "-");
             Harness.float_cell (Rat.to_float (Analysis.Bounds.fix_ub ~d));
             Harness.float_cell (Rat.to_float (Analysis.Bounds.eager_ub ~d));
           ];
         checks :=
           ( Printf.sprintf "fix dominates fix_balance at d=%d" d,
             fval fix >= fval fixbal -. 1e-9 )
           :: (Printf.sprintf "fix within UB at d=%d" d,
               fval fix <= Rat.to_float (Analysis.Bounds.fix_ub ~d) +. 1e-9)
           :: !checks
       | _ -> assert false)
    per_d;
  {
    id = "F.ratio-vs-d";
    title = "Figure: measured ratio vs d";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Figure: average case *)

let series_average_case ~ctx ~quick =
  let loads = if quick then [ 0.8; 1.2 ] else [ 0.6; 0.8; 1.0; 1.2; 1.5 ] in
  let profiles =
    if quick then [ ("uniform", None) ]
    else
      [
        ("uniform", None);
        ("zipf1.2", Some (Adversary.Random_workload.Zipf 1.2));
        ( "bursty",
          Some
            (Adversary.Random_workload.Bursty
               { period = 20; duty = 0.3; peak = 2.5 }) );
      ]
  in
  let seeds = if quick then [ 41 ] else [ 41; 42; 43 ] in
  let rounds = if quick then 80 else 250 in
  let strategies =
    [
      ("A_fix", fun () -> Global.fix ());
      ("A_current", fun () -> Global.current ());
      ("A_fix_balance", fun () -> Global.fix_balance ());
      ("A_eager", fun () -> Global.eager ());
      ("A_balance", fun () -> Global.balance ());
      ("EDF", fun () -> Edf.independent ());
      ("EDF_coord", fun () -> Edf.coordinated ());
      ("A_local_fix", fun () -> Local.fix ());
      ("A_local_eager", fun () -> Local.eager ());
    ]
  in
  let table =
    Texttable.create
      ~title:
        "F.avgcase  --  mean competitive ratio under stochastic arrivals \
         (the paper's 'worst case may be unrealistically pessimistic')"
      ~header:("profile" :: "load" :: List.map fst strategies)
      ()
  in
  let checks = ref [] in
  List.iter
    (fun (pname, profile) ->
       List.iter
         (fun load ->
            (* one independent job per (strategy, seed) *)
            let tasks =
              List.concat_map
                (fun (sname, mk) ->
                   List.map (fun seed -> (sname, mk, seed)) seeds)
                strategies
            in
            let outcomes =
              Jobs.map ctx ~family:"F.avgcase" ~shared:(shared_of ~quick)
                (List.map
                   (fun (sname, mk, seed) ->
                      Jobs.job
                        ~name:
                          (Printf.sprintf "%s/load=%.1f/%s/seed=%d" pname
                             load sname seed)
                        ~params:
                          [
                            ("profile", pname);
                            ("load", string_of_float load);
                            ("strategy", sname);
                            ("seed", pi seed);
                            ("rounds", pi rounds);
                          ]
                        (fun ~attempt:_ ->
                           let rng = Rng.create ~seed in
                           let inst =
                             Adversary.Random_workload.make ~rng ~n:8 ~d:4
                               ~rounds ~load ?profile ()
                           in
                           Jobs.Float
                             (Harness.run_instance inst (mk ())).Harness.ratio))
                   tasks)
            in
            let per_seed = List.length seeds in
            let cells =
              List.mapi
                (fun si _ ->
                   let stats = Prelude.Stats.create () in
                   List.iteri
                     (fun i o ->
                        if i / per_seed = si then
                          Prelude.Stats.add stats (Jobs.float_value o))
                     outcomes;
                   Prelude.Stats.mean stats)
                strategies
            in
            Texttable.add_row table
              (pname :: Printf.sprintf "%.1f" load
               :: List.map Harness.float_cell cells);
            List.iteri
              (fun i mean ->
                 let name = fst (List.nth strategies i) in
                 let limit = if name = "EDF" then 2.0 else 5.0 /. 3.0 in
                 checks :=
                   ( Printf.sprintf "%s avg ratio sane (%s load %.1f)" name
                       pname load,
                     mean >= 1.0 -. 1e-9 && mean <= limit +. 1e-9 )
                   :: !checks)
              cells)
         loads)
    profiles;
  {
    id = "F.avgcase";
    title = "Figure: average-case ratios";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Ablation: adversarial vs neutral vs random tie-break *)

let ablation_bias ~ctx ~quick =
  let k = if quick then 4 else 8 in
  let d = 4 in
  let cases =
    [
      ( "Thm 2.1",
        Adversary.Thm21.make ~d ~phases:k,
        fun ?bias () -> Global.fix ?bias () );
      ( "Thm 2.3",
        Adversary.Thm23.make ~d ~phases:k,
        fun ?bias () -> Global.fix_balance ?bias () );
      ( "Thm 2.4",
        Adversary.Thm24.make ~d ~phases:k,
        fun ?bias () -> Global.eager ?bias () );
      ( "Thm 2.5",
        Adversary.Thm25.make ~d:5 ~groups:3 ~intervals:k,
        fun ?bias () -> Global.balance ?bias () );
    ]
  in
  let modes = [ "adversarial"; "neutral"; "random" ] in
  let jobs =
    List.concat_map
      (fun (name, (sc : Adversary.Scenario.t), mk) ->
         List.map
           (fun mode ->
              Jobs.job
                ~name:(Printf.sprintf "%s/%s" name mode)
                ~params:[ ("adversary", name); ("mode", mode); ("k", pi k) ]
                (fun ~attempt:_ ->
                   let bias =
                     match mode with
                     | "adversarial" -> sc.bias
                     | "neutral" -> Sched.Strategy.no_bias
                     | _ ->
                       let rng = Rng.create ~seed:99 in
                       Strategies.Bias.random ~rng ~magnitude:8
                   in
                   Jobs.Float
                     (Harness.run_instance sc.instance (mk ?bias:(Some bias) ()))
                       .Harness.ratio))
           modes)
      cases
  in
  let outcomes =
    ref (Jobs.map ctx ~family:"A.bias" ~shared:(shared_of ~quick) jobs)
  in
  let next3 () =
    match !outcomes with
    | a :: b :: c :: rest ->
      outcomes := rest;
      (a, b, c)
    | _ -> assert false
  in
  let table =
    Texttable.create
      ~title:
        "A.bias  --  the lower bounds are existential: the same adversary \
         instance under adversarial / neutral / random tie-breaks"
      ~header:
        [ "adversary"; "strategy"; "adversarial"; "neutral"; "random";
          "adversarial is worst" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun (name, (_ : Adversary.Scenario.t), mk) ->
       let oa, on, orand = next3 () in
       let adversarial = Jobs.float_value oa in
       let neutral = Jobs.float_value on in
       let random = Jobs.float_value orand in
       (* the adversarial tie-break is tuned against this strategy, so
          it must be at least as damaging as the alternatives *)
       let ok =
         adversarial >= neutral -. 1e-9 && adversarial >= random -. 1e-9
       in
       Texttable.add_row table
         [
           name;
           (mk ?bias:None () ~n:1 ~d:2).Sched.Strategy.name;
           float_cell_of oa;
           float_cell_of on;
           float_cell_of orand;
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "adversarial bias dominates on %s" name, ok)
         :: !checks)
    cases;
  {
    id = "A.bias";
    title = "Ablation: tie-break bias";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Ablation: the keep rule of A_eager *)

let ablation_keep ~ctx ~quick =
  let k = if quick then 4 else 8 in
  let rounds = if quick then 80 else 200 in
  let cases =
    [
      ("Thm 2.1 d=4", "thm21",
       fun () -> (Adversary.Thm21.make ~d:4 ~phases:k).instance);
      ("Thm 2.4 d=4", "thm24",
       fun () -> (Adversary.Thm24.make ~d:4 ~phases:k).instance);
      ( "random load 1.2", "random-55",
        fun () ->
          let rng = Rng.create ~seed:55 in
          Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load:1.2 () );
      ( "zipf load 1.0", "zipf-56",
        fun () ->
          let rng = Rng.create ~seed:56 in
          Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load:1.0
            ~profile:(Adversary.Random_workload.Zipf 1.3) () );
    ]
  in
  let outcomes =
    Jobs.map ctx ~family:"A.keep" ~shared:(shared_of ~quick)
      (List.map
         (fun (_, jname, mk_inst) ->
            Jobs.job ~name:jname
              ~params:[ ("k", pi k); ("rounds", pi rounds) ]
              (fun ~attempt:_ ->
                 let inst = mk_inst () in
                 let eager = Harness.run_instance inst (Global.eager ()) in
                 let remax = Harness.run_instance inst (Global.remax ()) in
                 let order2 =
                   Analysis.Audit.has_augmenting_of_order remax.Harness.outcome
                     ~order:2
                 in
                 (* both are maximal, so neither admits an order-1 path;
                    remax stays consistent; and the keep rule never
                    hurts A_eager here *)
                 let ok =
                   Sched.Outcome.is_consistent remax.Harness.outcome
                   && not
                        (Analysis.Audit.has_augmenting_of_order
                           remax.Harness.outcome ~order:1)
                 in
                 Jobs.List
                   [
                     Jobs.Int eager.Harness.outcome.Sched.Outcome.served;
                     Jobs.Int remax.Harness.outcome.Sched.Outcome.served;
                     Jobs.Bool order2;
                     Jobs.Bool ok;
                   ]))
         cases)
  in
  let table =
    Texttable.create
      ~title:
        "A.keep  --  A_eager vs A_remax (no 'previously scheduled remain \
         scheduled' rule)"
      ~header:
        [ "workload"; "A_eager served"; "A_remax served";
          "remax admits order-2 path" ]
      ()
  in
  let checks = ref [] in
  List.iter2
    (fun (name, _, _) o ->
       let icell i =
         Jobs.cell (Jobs.nth o i) (function Jobs.Int v -> pi v | _ -> "?")
       in
       let ok = Jobs.bool_value (Jobs.nth o 3) in
       Texttable.add_row table
         [
           name;
           icell 0;
           icell 1;
           (if Jobs.bool_value (Jobs.nth o 2) then "yes" else "no");
         ];
       checks :=
         (Printf.sprintf "remax well-behaved on %s" name, ok) :: !checks)
    cases outcomes;
  {
    id = "A.keep";
    title = "Ablation: the keep rule";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: power of c choices *)

let power_of_choices ~ctx ~quick =
  let rounds = if quick then 80 else 300 in
  let seeds = if quick then [ 61 ] else [ 61; 62; 63 ] in
  let cs = [ 1; 2; 3; 4 ] in
  let cases =
    List.concat_map (fun c -> List.map (fun seed -> (c, seed)) seeds) cs
  in
  let outcomes =
    Jobs.map ctx ~family:"F.choices" ~shared:(shared_of ~quick)
      (List.map
         (fun (c, seed) ->
            Jobs.job
              ~name:(Printf.sprintf "c=%d/seed=%d" c seed)
              ~params:
                [ ("c", pi c); ("seed", pi seed); ("rounds", pi rounds) ]
              (fun ~attempt:_ ->
                 let rng = Rng.create ~seed in
                 let base =
                   Adversary.Random_workload.make ~rng ~n:8 ~d:4 ~rounds
                     ~load:1.3 ~alternatives:4 ()
                 in
                 let inst = Sched.Instance.restrict_alternatives base ~max:c in
                 let r = Harness.run_instance inst (Global.balance ()) in
                 let edf =
                   (Sched.Engine.run inst (Edf.independent ()))
                     .Sched.Outcome.served
                 in
                 Jobs.List
                   [
                     Jobs.Int r.Harness.opt;
                     Jobs.Int r.Harness.outcome.Sched.Outcome.served;
                     Jobs.Int edf;
                     Jobs.Float r.Harness.ratio;
                   ]))
         cases)
  in
  let table =
    Texttable.create
      ~title:
        "F.choices  --  identical traffic, alternatives truncated to the \
         first c (n=8, d=4, load 1.3, A_balance)"
      ~header:
        [ "c"; "optimum (mean)"; "A_balance served"; "EDF served";
          "A_balance ratio" ]
      ()
  in
  let means = Array.make 5 (0.0, 0.0, 0.0, 0.0) in
  List.iter
    (fun c ->
       let opt_s = Prelude.Stats.create ()
       and bal_s = Prelude.Stats.create ()
       and edf_s = Prelude.Stats.create ()
       and ratio_s = Prelude.Stats.create () in
       List.iter2
         (fun (c', _) o ->
            if c' = c then begin
              Prelude.Stats.add opt_s
                (float_of_int (Jobs.int_value (Jobs.nth o 0)));
              Prelude.Stats.add bal_s
                (float_of_int (Jobs.int_value (Jobs.nth o 1)));
              Prelude.Stats.add edf_s
                (float_of_int (Jobs.int_value (Jobs.nth o 2)));
              Prelude.Stats.add ratio_s (Jobs.float_value (Jobs.nth o 3))
            end)
         cases outcomes;
       means.(c) <-
         ( Prelude.Stats.mean opt_s,
           Prelude.Stats.mean bal_s,
           Prelude.Stats.mean edf_s,
           Prelude.Stats.mean ratio_s );
       let opt_m, bal_m, edf_m, ratio_m = means.(c) in
       Texttable.add_row table
         [
           pi c;
           Printf.sprintf "%.1f" opt_m;
           Printf.sprintf "%.1f" bal_m;
           Printf.sprintf "%.1f" edf_m;
           Harness.float_cell ratio_m;
         ])
    cs;
  (* the optimum must grow with the choice count; the second choice is
     the big step (the paper's whole premise) *)
  let opt c = (fun (o, _, _, _) -> o) means.(c) in
  let bal c = (fun (_, b, _, _) -> b) means.(c) in
  let checks =
    [
      ("optimum weakly grows with c", opt 1 <= opt 2 +. 1e-9
                                      && opt 2 <= opt 3 +. 1e-9
                                      && opt 3 <= opt 4 +. 1e-9);
      ( "second choice helps the most",
        opt 2 -. opt 1 >= opt 3 -. opt 2 -. 1e-9 );
      ("A_balance benefits from the second choice", bal 2 > bal 1);
    ]
  in
  {
    id = "F.choices";
    title = "Extension: power of c choices";
    table;
    checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: greedy balls-into-bins baselines *)

let greedy_baselines ~ctx ~quick =
  let rounds = if quick then 80 else 300 in
  let loads = if quick then [ 1.0; 1.4 ] else [ 0.8; 1.0; 1.2; 1.4 ] in
  let outcomes =
    Jobs.map ctx ~family:"F.greedy" ~shared:(shared_of ~quick)
      (List.map
         (fun load ->
            Jobs.job
              ~name:(Printf.sprintf "load=%.1f" load)
              ~params:
                [ ("load", string_of_float load); ("rounds", pi rounds) ]
              (fun ~attempt:_ ->
                 let rng = Rng.create ~seed:85 in
                 let inst =
                   Adversary.Random_workload.make ~rng ~n:8 ~d:4 ~rounds ~load
                     ()
                 in
                 let opt = Offline.Opt.value inst in
                 let run factory =
                   let o = Sched.Engine.run inst factory in
                   (o.Sched.Outcome.served, Sched.Outcome.mean_latency o)
                 in
                 let two, two_lat =
                   run (Strategies.Twochoice.least_loaded ())
                 in
                 let rnd, rnd_lat =
                   let rng = Rng.create ~seed:86 in
                   run (Strategies.Twochoice.random_choice ~rng ())
                 in
                 let ff, ff_lat = run (Strategies.Twochoice.first_fit ()) in
                 let fix, _ = run (Global.fix ()) in
                 let bal, _ = run (Global.balance ()) in
                 Jobs.List
                   [
                     Jobs.Int opt;
                     Jobs.Int two; Jobs.Float two_lat;
                     Jobs.Int rnd; Jobs.Float rnd_lat;
                     Jobs.Int ff; Jobs.Float ff_lat;
                     Jobs.Int fix;
                     Jobs.Int bal;
                   ]))
         loads)
  in
  let table =
    Texttable.create
      ~title:
        "F.greedy  --  balls-into-bins greedy heuristics vs the matching \
         strategies (n=8, d=4; 'lat' = mean service latency in rounds)"
      ~header:
        [ "load"; "optimum";
          "2choice"; "lat";
          "random"; "lat";
          "firstfit"; "lat";
          "A_fix"; "A_balance" ]
      ()
  in
  let checks = ref [] in
  List.iter2
    (fun load o ->
       let iv i = Jobs.int_value (Jobs.nth o i) in
       let icell i =
         Jobs.cell (Jobs.nth o i) (function Jobs.Int v -> pi v | _ -> "?")
       in
       let lcell i =
         Jobs.cell (Jobs.nth o i)
           (function
             | Jobs.Float f -> Texttable.cell_float ~decimals:2 f
             | _ -> "?")
       in
       let opt = iv 0 and two = iv 1 and rnd = iv 3 and ff = iv 5 in
       let fix = iv 7 and bal = iv 8 in
       Texttable.add_row table
         [
           Printf.sprintf "%.1f" load;
           icell 0;
           icell 1; lcell 2;
           icell 3; lcell 4;
           icell 5; lcell 6;
           icell 7;
           icell 8;
         ];
       checks :=
         (Printf.sprintf "two-choice beats random choice at load %.1f" load,
          two >= rnd && two > min_int)
         :: (Printf.sprintf "matching beats greedy at load %.1f" load,
             bal >= two && fix >= rnd && bal > min_int)
         :: (Printf.sprintf "optimum dominates everything at load %.1f" load,
             opt >= bal && opt >= two && opt >= ff && opt > min_int)
         :: !checks)
    loads outcomes;
  {
    id = "F.greedy";
    title = "Extension: greedy baselines";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Failure injection: local protocols on a lossy network *)

let loss_robustness ~ctx ~quick =
  let rounds = if quick then 80 else 250 in
  let losses =
    if quick then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
  in
  let mk_inst () =
    let rng = Rng.create ~seed:95 in
    Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load:1.1 ()
  in
  let inst = mk_inst () in
  let jobs =
    Jobs.job ~name:"opt"
      ~params:[ ("rounds", pi rounds) ]
      (fun ~attempt:_ -> Jobs.Int (Offline.Opt.value inst))
    :: List.map
      (fun loss ->
         Jobs.job
           ~name:(Printf.sprintf "loss=%.2f" loss)
           ~params:
             [ ("loss", string_of_float loss); ("rounds", pi rounds) ]
           (fun ~attempt:_ ->
              let fix = Sched.Engine.run inst (Local.fix ~loss ()) in
              let eager = Sched.Engine.run inst (Local.eager ~loss ()) in
              Jobs.List
                [
                  Jobs.Int fix.Sched.Outcome.served;
                  Jobs.Int eager.Sched.Outcome.served;
                  Jobs.Bool
                    (Sched.Outcome.is_consistent fix
                     && Sched.Outcome.is_consistent eager);
                ]))
      losses
  in
  let outcomes = Jobs.map ctx ~family:"A.loss" ~shared:(shared_of ~quick) jobs in
  let opt_o, loss_os =
    match outcomes with o :: rest -> (o, rest) | [] -> assert false
  in
  let table =
    Texttable.create
      ~title:
        "A.loss  --  local protocols under message loss (n=6, d=4, load \
         1.1; drops behave like mailbox bounces)"
      ~header:
        [ "loss"; "A_local_fix served"; "A_local_eager served"; "optimum" ]
      ()
  in
  let checks = ref [] in
  let series =
    List.map2
      (fun loss o ->
         let fix = Jobs.int_value (Jobs.nth o 0) in
         let eager = Jobs.int_value (Jobs.nth o 1) in
         Texttable.add_row table
           [
             Printf.sprintf "%.2f" loss;
             Jobs.cell (Jobs.nth o 0)
               (function Jobs.Int v -> pi v | _ -> "?");
             Jobs.cell (Jobs.nth o 1)
               (function Jobs.Int v -> pi v | _ -> "?");
             Jobs.cell opt_o (function Jobs.Int v -> pi v | _ -> "?");
           ];
         checks :=
           ( Printf.sprintf "outcomes stay consistent at loss %.2f" loss,
             Jobs.bool_value (Jobs.nth o 2) )
           :: !checks;
         (loss, fix, eager))
      losses loss_os
  in
  (match (series, List.rev series) with
   | (_, fix0, eager0) :: _, (_, fix_worst, eager_worst) :: _ ->
     checks :=
       ("loss degrades local_fix", fix0 >= fix_worst)
       :: ("loss degrades local_eager", eager0 >= eager_worst)
       :: ( "eager's redundancy absorbs loss better than fix",
            eager_worst * fix0 >= fix_worst * eager0 * 9 / 10 )
       :: !checks
   | _ -> ());
  {
    id = "A.loss";
    title = "Failure injection: lossy network";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: replica placement under session traffic *)

let placement_policies ~ctx ~quick =
  let rounds = if quick then 120 else 400 in
  let disks = 10 and items = 200 and d = 4 in
  let zipf = 1.2 in
  let popularity i = 1.0 /. Float.pow (float_of_int (i + 1)) zipf in
  let policies =
    [
      ( "random [Kor97]", "random",
        Dataserver.Placement.random
          ~rng:(Rng.create ~seed:91) ~disks ~items ~copies:2 );
      ( "chained (partner)", "chained",
        Dataserver.Placement.partner ~disks ~items ~copies:2 );
      ( "striped mirrors", "striped",
        Dataserver.Placement.striped ~disks ~items ~copies:2 );
    ]
  in
  let outcomes =
    Jobs.map ctx ~family:"F.placement" ~shared:(shared_of ~quick)
      (List.map
         (fun (_, jname, placement) ->
            Jobs.job ~name:jname
              ~params:
                [
                  ("rounds", pi rounds); ("disks", pi disks);
                  ("items", pi items); ("zipf", string_of_float zipf);
                ]
              (fun ~attempt:_ ->
                 let rng = Rng.create ~seed:92 in
                 let inst, _stats =
                   Dataserver.Trace.sessions ~rng ~placement ~rounds
                     ~arrivals_per_round:1.6 ~mean_length:7 ~d ~zipf ()
                 in
                 let r = Harness.run_instance inst (Global.balance ()) in
                 let spread =
                   Dataserver.Placement.load_spread placement ~popularity
                 in
                 let total =
                   Sched.Instance.n_requests
                     r.Harness.outcome.Sched.Outcome.instance
                 in
                 Jobs.List
                   [
                     Jobs.Float spread;
                     Jobs.Int r.Harness.outcome.Sched.Outcome.served;
                     Jobs.Int total;
                     Jobs.Int r.Harness.opt;
                     Jobs.Float r.Harness.ratio;
                   ]))
         policies)
  in
  let table =
    Texttable.create
      ~title:
        (Printf.sprintf
           "F.placement  --  replica placement under continuous-media \
            sessions (disks=%d, items=%d, Zipf %.1f, A_balance)"
           disks items zipf)
      ~header:
        [ "placement"; "load spread"; "accepted"; "optimum"; "ratio";
          "lost %%" ]
      ()
  in
  let checks = ref [] in
  List.iter2
    (fun (name, _, _) o ->
       let served = Jobs.int_value (Jobs.nth o 1) in
       let total = Jobs.int_value (Jobs.nth o 2) in
       Texttable.add_row table
         [
           name;
           Jobs.cell (Jobs.nth o 0)
             (function
               | Jobs.Float f -> Texttable.cell_float ~decimals:3 f
               | _ -> "?");
           Jobs.cell (Jobs.nth o 1)
             (function Jobs.Int v -> pi v | _ -> "?");
           Jobs.cell (Jobs.nth o 3)
             (function Jobs.Int v -> pi v | _ -> "?");
           float_cell_of (Jobs.nth o 4);
           (if total > 0 && served > min_int then
              Printf.sprintf "%.2f"
                (100.0 *. float_of_int (total - served) /. float_of_int total)
            else "?");
         ];
       checks :=
         ( Printf.sprintf "%s placement: scheduler tracks its optimum" name,
           Jobs.float_value (Jobs.nth o 4) <= 1.1 )
         :: !checks)
    policies outcomes;
  (* random duplicated assignment must beat the chained layout, whose
     copies of consecutive (hence similarly hot) items share disks;
     carefully hand-tuned striping can match random on a fixed skew,
     but it has no such guarantee under catalogue churn *)
  (match outcomes with
   | o_random :: o_chained :: _ ->
     let spread_random = Jobs.float_value (Jobs.nth o_random 0) in
     let spread_chained = Jobs.float_value (Jobs.nth o_chained 0) in
     checks :=
       ( "random placement spreads load better than chained",
         spread_random <= spread_chained +. 0.05 )
       :: !checks
   | _ -> ());
  {
    id = "F.placement";
    title = "Extension: replica placement policies";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: per-request deadlines *)

let mixed_deadlines ~ctx ~quick =
  let rounds = if quick then 60 else 200 in
  let single_seeds = [ 71; 72 ] in
  let struct_cases =
    [
      ("A_fix", (fun () -> Global.fix ()), 1);
      ("A_fix_balance", (fun () -> Global.fix_balance ()), 1);
      ("A_eager", (fun () -> Global.eager ()), 2);
      ("A_balance", (fun () -> Global.balance ()), 2);
      ("A_local_fix", (fun () -> Local.fix ()), 1);
    ]
  in
  let jobs =
    List.map
      (fun seed ->
         Jobs.job
           ~name:(Printf.sprintf "edf/seed=%d" seed)
           ~params:[ ("seed", pi seed); ("rounds", pi rounds) ]
           (fun ~attempt:_ ->
              let rng = Rng.create ~seed in
              let inst =
                Adversary.Random_workload.make_mixed_deadlines ~rng ~n:5 ~d:4
                  ~rounds ~load:1.1 ~alternatives:1 ()
              in
              let r = Harness.run_instance inst (Edf.independent ()) in
              Jobs.List
                [
                  Jobs.Bool
                    (r.Harness.outcome.Sched.Outcome.served = r.Harness.opt
                     && Offline.Opt.single_alternative_edf inst = r.Harness.opt);
                  Jobs.Float r.Harness.ratio;
                ]))
      single_seeds
    @ List.map
        (fun (name, mk, forbidden) ->
           Jobs.job ~name:("struct/" ^ name)
             ~params:
               [ ("strategy", name); ("order", pi forbidden);
                 ("rounds", pi rounds) ]
             (fun ~attempt:_ ->
                let rng = Rng.create ~seed:73 in
                let inst =
                  Adversary.Random_workload.make_mixed_deadlines ~rng ~n:5
                    ~d:4 ~rounds ~load:1.2 ()
                in
                let r = Harness.run_instance inst (mk ()) in
                Jobs.List
                  [
                    Jobs.Bool
                      (Sched.Outcome.is_consistent r.Harness.outcome
                       && not
                            (Analysis.Audit.has_augmenting_of_order
                               r.Harness.outcome ~order:forbidden));
                    Jobs.Float r.Harness.ratio;
                  ]))
        struct_cases
  in
  let outcomes =
    Jobs.map ctx ~family:"E.mixed" ~shared:(shared_of ~quick) jobs
  in
  let singles =
    List.filteri (fun i _ -> i < List.length single_seeds) outcomes
  in
  let structs =
    List.filteri (fun i _ -> i >= List.length single_seeds) outcomes
  in
  let table =
    Texttable.create
      ~title:
        "E.mixed  --  heterogeneous deadlines (1..d per request): EDF stays \
         optimal with one alternative; all strategies stay sane with two"
      ~header:[ "case"; "paper"; "measured"; "match" ] ()
  in
  let checks = ref [] in
  List.iter2
    (fun seed o ->
       let ok = Jobs.bool_value (Jobs.nth o 0) in
       Texttable.add_row table
         [
           Printf.sprintf "EDF c=1 mixed deadlines (seed %d)" seed;
           "1";
           float_cell_of (Jobs.nth o 1);
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "EDF optimal with mixed deadlines (seed %d)" seed, ok)
         :: !checks)
    single_seeds singles;
  List.iter2
    (fun (name, _, forbidden) o ->
       let ok = Jobs.bool_value (Jobs.nth o 0) in
       Texttable.add_row table
         [
           Printf.sprintf "%s c=2 mixed deadlines" name;
           Printf.sprintf "no order-%d path" forbidden;
           float_cell_of (Jobs.nth o 1);
           yes_no ok;
         ];
       checks :=
         (Printf.sprintf "%s handles mixed deadlines" name, ok) :: !checks)
    struct_cases structs;
  {
    id = "E.mixed";
    title = "Extension: per-request deadlines";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Table 1 summary - the golden snapshot *)

(* A compact measured-vs-paper-bound recap of Table 1 at canonical
   parameters.  Job keys coincide with the corresponding families', so
   a cached battery answers the summary for free; the rendered quick
   form is pinned byte-for-byte by the golden test, which is how ratio
   regressions fail loudly in `dune runtest`. *)
let table1_summary ~ctx ~quick =
  let shared = shared_of ~quick in
  let lb_k = if quick then 3 else 8 in
  let fb_k = if quick then 3 else 6 in
  let bal_intervals = if quick then 4 else 8 in
  let any_phases = if quick then 4 else 8 in
  let fix_o =
    List.hd
      (Jobs.map ctx ~family:"T1.fix.lb" ~shared [ fix_lb_job ~d:4 ~k:lb_k ])
  in
  let current_o =
    List.hd
      (Jobs.map ctx ~family:"T1.current.lb" ~shared
         [ current_lb_job ~ell:3 ~d:6 ])
  in
  let fixbal_o =
    List.hd
      (Jobs.map ctx ~family:"T1.fixbal.lb" ~shared
         [ fixbal_lb_job ~d:4 ~k:fb_k ])
  in
  let eager_o =
    List.hd
      (Jobs.map ctx ~family:"T1.eager.lb" ~shared
         [ eager_lb_job ~d:4 ~k:fb_k ])
  in
  let bal_o =
    List.hd
      (Jobs.map ctx ~family:"T1.bal.lb" ~shared
         [ bal_lb_job ~d:5 ~groups:2 ~intervals:bal_intervals ])
  in
  let any_os =
    Jobs.map ctx ~family:"T1.any.lb" ~shared
      (List.map
         (fun (name, mk) -> any_lb_job ~d:3 ~phases:any_phases ~name ~mk)
         Global.all)
  in
  let ub_d = 4 in
  let runs = battery ~quick ~d:ub_d in
  let ubs =
    List.map
      (fun (name, mk, ub, forbidden_order) ->
         let worst, audit_ok =
           ub_measure ctx ~quick ~d:ub_d ~name ~mk ~forbidden_order runs
         in
         (name, ub, worst, audit_ok))
      (ub_strategies ~d:ub_d)
  in
  let table =
    Texttable.create
      ~title:
        "T1.summary  --  Table 1 at canonical parameters: measured vs paper \
         bound"
      ~header:[ "row"; "paper bound"; "measured"; "ok" ] ()
  in
  let checks = ref [] in
  let lb_row label bound o =
    let ok = Rat.equal (Jobs.rat_value o) bound in
    Texttable.add_row table
      [ label; Harness.rat_cell bound; rat_cell_of o; yes_no ok ];
    checks := (label ^ " matches", ok) :: !checks
  in
  lb_row "A_fix LB (d=4)" (Analysis.Bounds.fix_lb ~d:4) fix_o;
  (let reference =
     let alg = Adversary.Thm22.alg_lower_bound_per_phase ~ell:3 ~d:6 in
     float_of_int (3 * 6) /. float_of_int alg
   in
   let ok = close ~tol:0.05 (Jobs.float_value current_o) reference in
   Texttable.add_row table
     [
       "A_current LB (ell=3,d=6)";
       Harness.float_cell reference;
       float_cell_of current_o;
       yes_no ok;
     ];
   checks := ("A_current LB (ell=3,d=6) matches", ok) :: !checks);
  lb_row "A_fix_balance LB (d=4)" (Analysis.Bounds.fix_balance_lb ~d:4)
    fixbal_o;
  lb_row "A_eager LB (d=4)" (Rat.make 4 3) eager_o;
  (let x = 2 in
   let expect =
     float_of_int ((2 * ((5 * x) - 1)) + (4 * x))
     /. float_of_int ((2 * ((4 * x) - 1)) + (4 * x))
   in
   let ok = close ~tol:0.02 (Jobs.float_value bal_o) expect in
   Texttable.add_row table
     [
       "A_balance LB (d=5,groups=2)";
       Harness.float_cell expect;
       float_cell_of bal_o;
       yes_no ok;
     ];
   checks := ("A_balance LB (d=5,groups=2) matches", ok) :: !checks);
  (let bound = Analysis.Bounds.universal_lb_finite ~d:3 in
   let worst_strategy =
     List.fold_left
       (fun acc o -> Float.min acc (Jobs.float_value o))
       infinity any_os
   in
   let ok = worst_strategy >= Rat.to_float bound -. 1e-9 in
   Texttable.add_row table
     [
       "universal LB (d=3, min over strategies)";
       Harness.rat_cell bound;
       Harness.float_cell worst_strategy;
       yes_no ok;
     ];
   checks := ("universal LB (d=3) holds", ok) :: !checks);
  List.iter
    (fun (name, ub, worst, audit_ok) ->
       let ok = worst <= Rat.to_float ub +. 1e-9 && audit_ok in
       Texttable.add_row table
         [
           Printf.sprintf "%s UB (d=%d, battery worst)" name ub_d;
           Harness.rat_cell ub;
           Harness.float_cell worst;
           yes_no ok;
         ];
       checks := (Printf.sprintf "%s UB (d=%d) holds" name ub_d, ok) :: !checks)
    ubs;
  {
    id = "T1.summary";
    title = "Table 1 summary (golden snapshot)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)

let catalog =
  [
    ("T1.fix.lb", fun ~ctx ~quick -> t1_fix_lb ~ctx ~quick);
    ("T1.current.lb", fun ~ctx ~quick -> t1_current_lb ~ctx ~quick);
    ("T1.fixbal.lb", fun ~ctx ~quick -> t1_fixbal_lb ~ctx ~quick);
    ("T1.eager.lb", fun ~ctx ~quick -> t1_eager_lb ~ctx ~quick);
    ("T1.bal.lb", fun ~ctx ~quick -> t1_bal_lb ~ctx ~quick);
    ("T1.any.lb", fun ~ctx ~quick -> t1_any_lb ~ctx ~quick);
    ("T1.ub", fun ~ctx ~quick -> t1_upper_bounds ~ctx ~quick);
    ("T1.summary", fun ~ctx ~quick -> table1_summary ~ctx ~quick);
    ("E.edf", fun ~ctx ~quick -> edf_baselines ~ctx ~quick);
    ("E.local", fun ~ctx ~quick -> local_strategies ~ctx ~quick);
    ("F.ratio-vs-d", fun ~ctx ~quick -> series_ratio_vs_d ~ctx ~quick);
    ("F.avgcase", fun ~ctx ~quick -> series_average_case ~ctx ~quick);
    ("A.bias", fun ~ctx ~quick -> ablation_bias ~ctx ~quick);
    ("A.keep", fun ~ctx ~quick -> ablation_keep ~ctx ~quick);
    ("F.choices", fun ~ctx ~quick -> power_of_choices ~ctx ~quick);
    ("F.greedy", fun ~ctx ~quick -> greedy_baselines ~ctx ~quick);
    ("F.placement", fun ~ctx ~quick -> placement_policies ~ctx ~quick);
    ("A.loss", fun ~ctx ~quick -> loss_robustness ~ctx ~quick);
    ("E.mixed", fun ~ctx ~quick -> mixed_deadlines ~ctx ~quick);
  ]

let all ~ctx ~quick = List.map (fun (_, f) -> f ~ctx ~quick) catalog

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Texttable.render t.table);
  List.iter
    (fun (name, ok) ->
       Buffer.add_string buf
         (Printf.sprintf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name))
    t.checks;
  Buffer.add_char buf '\n';
  Buffer.contents buf
