module Texttable = Prelude.Texttable
module Rat = Prelude.Rat
module Rng = Prelude.Rng
module Global = Strategies.Global
module Edf = Strategies.Edf
module Local = Localstrat.Local

type t = {
  id : string;
  title : string;
  table : Prelude.Texttable.t;
  checks : (string * bool) list;
}

let close ?(tol = 0.02) a b = Float.abs (a -. b) <= tol *. Float.abs b

let scenario_factory make (sc : Adversary.Scenario.t) =
  make ?bias:(Some sc.Adversary.Scenario.bias) ()

(* ------------------------------------------------------------------ *)
(* T1.fix.lb - Theorem 2.1 *)

let t1_fix_lb ~quick =
  let ds = if quick then [ 2; 4; 6 ] else [ 2; 3; 4; 6; 8; 12 ] in
  let k = if quick then 3 else 8 in
  let table =
    Texttable.create
      ~title:"T1.fix.lb  --  A_fix vs Thm 2.1 adversary (paper: 2 - 1/d)"
      ~header:[ "d"; "paper bound"; "measured (per phase)"; "exact match" ]
      ()
  in
  let checks =
    List.map
      (fun d ->
         let bound = Analysis.Bounds.fix_lb ~d in
         let measured =
           Harness.asymptotic_ratio_exact
             ~make:(fun phases -> Adversary.Thm21.make ~d ~phases)
             ~factory:(scenario_factory Global.fix) ~k
         in
         let ok = Rat.equal measured bound in
         Texttable.add_row table
           [
             string_of_int d;
             Harness.rat_cell bound;
             Harness.rat_cell measured;
             (if ok then "yes" else "NO");
           ];
         (Printf.sprintf "A_fix d=%d reaches 2-1/d exactly" d, ok))
      ds
  in
  { id = "T1.fix.lb"; title = "A_fix lower bound (Thm 2.1)"; table; checks }

(* ------------------------------------------------------------------ *)
(* T1.current.lb - Theorem 2.2 *)

let t1_current_lb ~quick =
  let cases =
    if quick then [ (3, 6); (4, 12) ]
    else [ (3, 6); (4, 12); (5, 60); (6, 60) ]
  in
  let table =
    Texttable.create
      ~title:
        "T1.current.lb  --  A_current vs Thm 2.2 adversary (paper: -> \
         e/(e-1) = 1.5820)"
      ~header:
        [ "ell"; "d"; "proof reference"; "measured (per phase)"; "within 5%" ]
      ()
  in
  let checks =
    List.map
      (fun (ell, d) ->
         let reference =
           let alg = Adversary.Thm22.alg_lower_bound_per_phase ~ell ~d in
           float_of_int (ell * d) /. float_of_int alg
         in
         let measured =
           Harness.asymptotic_ratio
             ~make:(fun phases -> Adversary.Thm22.make ~ell ~d ~phases)
             ~factory:(scenario_factory Global.current) ~k:1
         in
         let ok = close ~tol:0.05 measured reference in
         Texttable.add_row table
           [
             string_of_int ell;
             string_of_int d;
             Harness.float_cell reference;
             Harness.float_cell measured;
             (if ok then "yes" else "NO");
           ];
         (Printf.sprintf "A_current ell=%d tracks the drain argument" ell, ok))
      cases
  in
  let trend =
    (* the measured ratio must grow with ell toward e/(e-1) *)
    let measured =
      List.map
        (fun (ell, d) ->
           Harness.asymptotic_ratio
             ~make:(fun phases -> Adversary.Thm22.make ~ell ~d ~phases)
             ~factory:(scenario_factory Global.current) ~k:1)
        cases
    in
    let rec increasing = function
      | a :: (b :: _ as rest) -> a <= b +. 0.02 && increasing rest
      | _ -> true
    in
    ( "A_current ratio grows toward e/(e-1)",
      increasing measured
      && List.for_all
           (fun m -> m < Analysis.Bounds.current_lb_float +. 0.02)
           measured )
  in
  {
    id = "T1.current.lb";
    title = "A_current lower bound (Thm 2.2)";
    table;
    checks = checks @ [ trend ];
  }

(* ------------------------------------------------------------------ *)
(* T1.fixbal.lb - Theorems 2.3 / 2.4 *)

let t1_fixbal_lb ~quick =
  let ds = if quick then [ 4; 6 ] else [ 4; 6; 8; 12 ] in
  let k = if quick then 3 else 6 in
  let table =
    Texttable.create
      ~title:
        "T1.fixbal.lb  --  A_fix_balance vs Thm 2.3 adversary (paper: \
         3d/(2d+2); 4/3 at d=2 via Thm 2.4)"
      ~header:[ "d"; "paper bound"; "measured (per phase)"; "exact match" ]
      ()
  in
  let checks =
    List.map
      (fun d ->
         let bound = Analysis.Bounds.fix_balance_lb ~d in
         let measured =
           Harness.asymptotic_ratio_exact
             ~make:(fun phases -> Adversary.Thm23.make ~d ~phases)
             ~factory:(scenario_factory Global.fix_balance) ~k
         in
         let ok = Rat.equal measured bound in
         Texttable.add_row table
           [
             string_of_int d;
             Harness.rat_cell bound;
             Harness.rat_cell measured;
             (if ok then "yes" else "NO");
           ];
         (Printf.sprintf "A_fix_balance d=%d reaches 3d/(2d+2)" d, ok))
      ds
  in
  (* d = 2: Theorem 2.4's adversary applies to A_fix_balance *)
  let d2 =
    let bound = Rat.make 4 3 in
    let measured =
      Harness.asymptotic_ratio_exact
        ~make:(fun phases -> Adversary.Thm24.make ~d:2 ~phases)
        ~factory:(scenario_factory Global.fix_balance) ~k
    in
    let ok = Rat.equal measured bound in
    Texttable.add_row table
      [
        "2 (Thm 2.4)";
        Harness.rat_cell bound;
        Harness.rat_cell measured;
        (if ok then "yes" else "NO");
      ];
    ("A_fix_balance d=2 reaches 4/3 (Thm 2.4)", ok)
  in
  {
    id = "T1.fixbal.lb";
    title = "A_fix_balance lower bound (Thms 2.3/2.4)";
    table;
    checks = checks @ [ d2 ];
  }

(* ------------------------------------------------------------------ *)
(* T1.eager.lb - Theorem 2.4 *)

let t1_eager_lb ~quick =
  let ds = if quick then [ 2; 4 ] else [ 2; 4; 6; 8; 10 ] in
  let k = if quick then 3 else 6 in
  let table =
    Texttable.create
      ~title:"T1.eager.lb  --  A_eager vs Thm 2.4 adversary (paper: 4/3)"
      ~header:[ "d"; "paper bound"; "measured (per phase)"; "exact match" ]
      ()
  in
  let bound = Rat.make 4 3 in
  let checks =
    List.map
      (fun d ->
         let measured =
           Harness.asymptotic_ratio_exact
             ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
             ~factory:(scenario_factory Global.eager) ~k
         in
         let ok = Rat.equal measured bound in
         Texttable.add_row table
           [
             string_of_int d;
             Harness.rat_cell bound;
             Harness.rat_cell measured;
             (if ok then "yes" else "NO");
           ];
         (Printf.sprintf "A_eager d=%d reaches 4/3" d, ok))
      ds
  in
  { id = "T1.eager.lb"; title = "A_eager lower bound (Thm 2.4)"; table; checks }

(* ------------------------------------------------------------------ *)
(* T1.bal.lb - Theorem 2.5 *)

let t1_bal_lb ~quick =
  let ds = if quick then [ 5 ] else [ 5; 8; 11 ] in
  let group_counts = if quick then [ 2; 6 ] else [ 2; 6; 12 ] in
  let intervals = if quick then 4 else 8 in
  let table =
    Texttable.create
      ~title:
        "T1.bal.lb  --  A_balance vs Thm 2.5 adversary (paper: (5d+2)/(4d+1) \
         as n -> inf)"
      ~header:
        [ "d"; "groups"; "paper limit"; "finite-k expectation"; "measured";
          "match" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun d ->
       let x = (d + 1) / 3 in
       let bound = Analysis.Bounds.balance_lb ~d in
       List.iter
         (fun groups ->
            (* per interval and group: ALG 4x-1, OPT 5x-1; shared anchor
               maintenance adds 4x services per interval to both *)
            let expect =
              float_of_int ((groups * ((5 * x) - 1)) + (4 * x))
              /. float_of_int ((groups * ((4 * x) - 1)) + (4 * x))
            in
            let measured =
              Harness.asymptotic_ratio
                ~make:(fun k ->
                    Adversary.Thm25.make ~d ~groups ~intervals:k)
                ~factory:(scenario_factory Global.balance) ~k:intervals
            in
            let ok = close ~tol:0.02 measured expect in
            Texttable.add_row table
              [
                string_of_int d;
                string_of_int groups;
                Harness.rat_cell bound;
                Harness.float_cell expect;
                Harness.float_cell measured;
                (if ok then "yes" else "NO");
              ];
            checks :=
              ( Printf.sprintf "A_balance d=%d groups=%d matches Thm 2.5" d
                  groups,
                ok )
              :: !checks)
         group_counts)
    ds;
  (* d = 2 via Theorem 2.4 *)
  let d2 =
    let measured =
      Harness.asymptotic_ratio_exact
        ~make:(fun phases -> Adversary.Thm24.make ~d:2 ~phases)
        ~factory:(scenario_factory Global.balance)
        ~k:(if quick then 3 else 6)
    in
    let ok = Rat.equal measured (Rat.make 4 3) in
    Texttable.add_row table
      [
        "2 (Thm 2.4)"; "-";
        Harness.rat_cell (Rat.make 4 3);
        "-";
        Harness.rat_cell measured;
        (if ok then "yes" else "NO");
      ];
    ("A_balance d=2 reaches 4/3 (Thm 2.4)", ok)
  in
  {
    id = "T1.bal.lb";
    title = "A_balance lower bound (Thms 2.4/2.5)";
    table;
    checks = List.rev (d2 :: !checks);
  }

(* ------------------------------------------------------------------ *)
(* T1.any.lb - Theorem 2.6 *)

let t1_any_lb ~quick =
  let ds = if quick then [ 3; 6 ] else [ 3; 6; 9; 12 ] in
  let phases = if quick then 4 else 8 in
  let table =
    Texttable.create
      ~title:
        "T1.any.lb  --  adaptive Thm 2.6 adversary vs every strategy \
         (paper: >= 45/41 = 1.0976)"
      ~header:[ "d"; "strategy"; "finite-d bound"; "measured"; ">= bound" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun d ->
       let bound = Analysis.Bounds.universal_lb_finite ~d in
       List.iter
         (fun (name, mk) ->
            (* doubling difference cancels the additive constant the
               competitive definition allows *)
            let run k =
              let adv = Adversary.Thm26.create ~d ~phases:k in
              let outcome =
                Sched.Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d
                  ~last_arrival_round:
                    (Adversary.Thm26.last_arrival_round ~d ~phases:k)
                  ~adversary:(Adversary.Thm26.adversary adv)
                  (mk ?bias:None ())
              in
              ( Offline.Opt.value outcome.Sched.Outcome.instance,
                outcome.Sched.Outcome.served )
            in
            let opt1, alg1 = run phases in
            let opt2, alg2 = run (2 * phases) in
            let measured =
              float_of_int (opt2 - opt1) /. float_of_int (alg2 - alg1)
            in
            let ok = measured >= Rat.to_float bound -. 1e-9 in
            Texttable.add_row table
              [
                string_of_int d;
                name;
                Harness.rat_cell bound;
                Harness.float_cell measured;
                (if ok then "yes" else "NO");
              ];
            checks :=
              (Printf.sprintf "universal bound holds for %s at d=%d" name d, ok)
              :: !checks)
         Global.all)
    ds;
  {
    id = "T1.any.lb";
    title = "Universal lower bound (Thm 2.6)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* T1 upper bounds - Theorems 3.3-3.6 *)

(* The battery: every adversarial construction plus random workloads,
   each run with the construction's bias and once neutrally. *)
let battery ~quick ~d =
  let k = if quick then 3 else 5 in
  let scenarios =
    List.concat
      [
        [ Adversary.Thm21.make ~d ~phases:k ];
        (if d mod 2 = 0 then
           [
             Adversary.Thm23.make ~d ~phases:k;
             Adversary.Thm24.make ~d ~phases:k;
           ]
         else []);
        (if (d + 1) mod 3 = 0 then
           [ Adversary.Thm25.make ~d ~groups:2 ~intervals:k ]
         else []);
      ]
  in
  let randoms =
    let rounds = if quick then 60 else 150 in
    List.concat_map
      (fun (seed, load, profile) ->
         let rng = Rng.create ~seed in
         [
           Adversary.Random_workload.make ~rng ~n:6 ~d ~rounds ~load ?profile
             ();
         ])
      [
        (11, 0.9, None);
        (12, 1.3, None);
        (13, 1.0, Some (Adversary.Random_workload.Zipf 1.2));
      ]
  in
  let with_bias =
    List.concat_map
      (fun (sc : Adversary.Scenario.t) ->
         [ (sc.instance, sc.bias); (sc.instance, Sched.Strategy.no_bias) ])
      scenarios
  in
  with_bias @ List.map (fun i -> (i, Sched.Strategy.no_bias)) randoms

let t1_upper_bounds ~quick =
  let ds = if quick then [ 2; 4 ] else [ 2; 3; 4; 6; 8 ] in
  let table =
    Texttable.create
      ~title:
        "T1 upper bounds  --  worst measured ratio across the adversarial + \
         random battery (Thms 3.3-3.6)"
      ~header:
        [ "d"; "strategy"; "paper UB"; "worst measured"; "<= UB";
          "path audit" ]
      ()
  in
  let checks = ref [] in
  let strategies d =
    [
      ("A_fix", Global.fix, Analysis.Bounds.fix_ub ~d, 1);
      ("A_current", Global.current, Analysis.Bounds.fix_ub ~d, 1);
      ("A_fix_balance", Global.fix_balance, Analysis.Bounds.fix_balance_ub ~d, 1);
      ("A_eager", Global.eager, Analysis.Bounds.eager_ub ~d, 2);
      ("A_balance", Global.balance, Analysis.Bounds.balance_ub ~d, 2);
    ]
  in
  List.iter
    (fun d ->
       let runs = battery ~quick ~d in
       List.iter
         (fun (name, mk, ub, forbidden_order) ->
            let measured =
              Harness.parmap
                (fun (inst, bias) ->
                   let r =
                     Harness.run_instance inst (mk ?bias:(Some bias) ())
                   in
                   ( r.Harness.ratio,
                     Analysis.Audit.has_augmenting_of_order r.Harness.outcome
                       ~order:forbidden_order ))
                runs
            in
            let worst =
              ref (List.fold_left (fun acc (r, _) -> Float.max acc r) 0.0
                     measured)
            in
            let audit_ok =
              ref (List.for_all (fun (_, short) -> not short) measured)
            in
            let ok = !worst <= Rat.to_float ub +. 1e-9 in
            Texttable.add_row table
              [
                string_of_int d;
                name;
                Harness.rat_cell ub;
                Harness.float_cell !worst;
                (if ok then "yes" else "NO");
                (if !audit_ok then
                   Printf.sprintf "no aug path of order <= %d" forbidden_order
                 else "VIOLATED");
              ];
            checks :=
              (Printf.sprintf "%s d=%d within UB" name d, ok)
              :: (Printf.sprintf "%s d=%d path structure" name d, !audit_ok)
              :: !checks)
         (strategies d))
    ds;
  {
    id = "T1.ub";
    title = "Table 1 upper bounds (Thms 3.3-3.6)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* EDF baselines - Observations 3.1 / 3.2 *)

(* The tight example for c-alternative EDF: every round, c identical
   requests over the same c resources with deadline 1; every resource
   serves the same (earliest-id) request, so EDF serves 1 per round
   while the optimum serves c. *)
let edf_tight_instance ~c ~rounds =
  let protos =
    List.concat
      (List.init rounds (fun round ->
           Adversary.Block.group ~arrival:round
             ~alternatives:(List.init c (fun r -> r))
             ~deadline:1 ~count:c))
  in
  Sched.Instance.build ~n_resources:c ~d:1 protos

let edf_baselines ~quick =
  let table =
    Texttable.create
      ~title:
        "EDF baselines  --  Observations 3.1/3.2 (1-competitive with one \
         alternative, exactly c-competitive with c)"
      ~header:[ "case"; "paper"; "measured"; "match" ] ()
  in
  let checks = ref [] in
  let rounds = if quick then 40 else 200 in
  (* Obs 3.1: single alternative, ratio exactly 1 *)
  List.iter
    (fun (seed, load) ->
       let rng = Rng.create ~seed in
       let inst =
         Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load
           ~alternatives:1 ()
       in
       let r = Harness.run_instance inst (Edf.independent ()) in
       let edf_oracle = Offline.Opt.single_alternative_edf inst in
       let ok = r.Harness.outcome.Sched.Outcome.served = r.Harness.opt
                && edf_oracle = r.Harness.opt in
       Texttable.add_row table
         [
           Printf.sprintf "EDF c=1 load=%.1f" load;
           "1";
           Harness.float_cell r.Harness.ratio;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "EDF single-alternative optimal (load %.1f)" load, ok)
         :: !checks)
    [ (21, 0.8); (22, 1.2) ];
  (* Obs 3.2 tight example: exactly c *)
  List.iter
    (fun c ->
       let inst = edf_tight_instance ~c ~rounds in
       let r = Harness.run_instance inst (Edf.independent ()) in
       let ok = Float.abs (r.Harness.ratio -. float_of_int c) < 1e-9 in
       Texttable.add_row table
         [
           Printf.sprintf "EDF tight example c=%d" c;
           string_of_int c;
           Harness.float_cell r.Harness.ratio;
           (if ok then "yes" else "NO");
         ];
       checks := (Printf.sprintf "EDF exactly %d-competitive" c, ok) :: !checks)
    [ 2; 3; 4 ];
  (* Obs 3.2 upper bound on random two-choice inputs *)
  List.iter
    (fun (seed, load) ->
       let rng = Rng.create ~seed in
       let inst =
         Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load ()
       in
       let r = Harness.run_instance inst (Edf.independent ()) in
       let ok = r.Harness.ratio <= 2.0 +. 1e-9 in
       Texttable.add_row table
         [
           Printf.sprintf "EDF c=2 random load=%.1f" load;
           "<= 2";
           Harness.float_cell r.Harness.ratio;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "EDF random two-choice within 2 (load %.1f)" load, ok)
         :: !checks)
    [ (23, 1.0); (24, 1.6) ];
  {
    id = "E.edf";
    title = "EDF baselines (Obs 3.1/3.2)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Local strategies - Theorems 3.7 / 3.8 *)

let local_strategies ~quick =
  let table =
    Texttable.create
      ~title:
        "Local strategies  --  A_local_fix exactly 2-competitive in 2 comm \
         rounds (Thm 3.7); A_local_eager <= 5/3 in <= 9 (Thm 3.8)"
      ~header:
        [ "case"; "paper"; "measured ratio"; "comm rounds (max)"; "match" ]
      ()
  in
  let checks = ref [] in
  let intervals = if quick then 5 else 20 in
  (* Thm 3.7 *)
  List.iter
    (fun d ->
       let sc, priority = Adversary.Thm37.make ~d ~intervals in
       let factory, stats = Local.fix_with_stats ~priority () in
       let r = Harness.run_scenario sc factory in
       let s = stats () in
       let ok =
         Float.abs (r.Harness.ratio -. 2.0) < 1e-9 && s.Local.comm_rounds_max <= 2
       in
       Texttable.add_row table
         [
           Printf.sprintf "A_local_fix, Thm 3.7 adversary, d=%d" d;
           "2, 2 rounds";
           Harness.float_cell r.Harness.ratio;
           string_of_int s.Local.comm_rounds_max;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "A_local_fix exactly 2-competitive at d=%d" d, ok)
         :: !checks)
    (if quick then [ 2; 4 ] else [ 2; 4; 8 ]);
  (* Thm 3.8: battery *)
  let eager_cases =
    let rounds = if quick then 60 else 200 in
    let mk_random seed load =
      let rng = Rng.create ~seed in
      ( Printf.sprintf "random load=%.1f" load,
        Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load () )
    in
    let sc37, _ = Adversary.Thm37.make ~d:4 ~intervals in
    let sc21 = Adversary.Thm21.make ~d:4 ~phases:intervals in
    let sc24 = Adversary.Thm24.make ~d:4 ~phases:intervals in
    [
      ("Thm 3.7 workload", sc37.Adversary.Scenario.instance);
      ("Thm 2.1 workload", sc21.Adversary.Scenario.instance);
      ("Thm 2.4 workload", sc24.Adversary.Scenario.instance);
      mk_random 31 1.0;
      mk_random 32 1.5;
    ]
  in
  List.iter
    (fun (label, inst) ->
       let factory, stats = Local.eager_with_stats () in
       let r = Harness.run_instance inst factory in
       let s = stats () in
       let ok =
         r.Harness.ratio <= (5.0 /. 3.0) +. 1e-9 && s.Local.comm_rounds_max <= 9
       in
       Texttable.add_row table
         [
           Printf.sprintf "A_local_eager, %s" label;
           "<= 5/3, <= 9 rounds";
           Harness.float_cell r.Harness.ratio;
           string_of_int s.Local.comm_rounds_max;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "A_local_eager within 5/3 on %s" label, ok) :: !checks)
    eager_cases;
  {
    id = "E.local";
    title = "Local strategies (Thms 3.7/3.8)";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Figure: ratio vs d *)

let series_ratio_vs_d ~quick =
  let ds = if quick then [ 2; 4; 6 ] else [ 2; 4; 6; 8; 10; 12 ] in
  let k = if quick then 3 else 5 in
  let table =
    Texttable.create
      ~title:
        "F.ratio-vs-d  --  measured worst-case ratio per strategy on its own \
         adversary (the shape of Table 1)"
      ~header:
        [ "d"; "A_fix"; "A_fix_balance"; "A_eager"; "A_balance";
          "fix UB"; "eager UB" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun d ->
       let fix =
         Harness.asymptotic_ratio
           ~make:(fun phases -> Adversary.Thm21.make ~d ~phases)
           ~factory:(scenario_factory Global.fix) ~k
       in
       let fixbal =
         if d = 2 then
           Harness.asymptotic_ratio
             ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
             ~factory:(scenario_factory Global.fix_balance) ~k
         else
           Harness.asymptotic_ratio
             ~make:(fun phases -> Adversary.Thm23.make ~d ~phases)
             ~factory:(scenario_factory Global.fix_balance) ~k
       in
       let eager =
         Harness.asymptotic_ratio
           ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
           ~factory:(scenario_factory Global.eager) ~k
       in
       let bal =
         if d = 2 then
           Some
             (Harness.asymptotic_ratio
                ~make:(fun phases -> Adversary.Thm24.make ~d ~phases)
                ~factory:(scenario_factory Global.balance) ~k)
         else if (d + 1) mod 3 = 0 then
           Some
             (Harness.asymptotic_ratio
                ~make:(fun i -> Adversary.Thm25.make ~d ~groups:6 ~intervals:i)
                ~factory:(scenario_factory Global.balance) ~k)
         else None
       in
       Texttable.add_row table
         [
           string_of_int d;
           Harness.float_cell fix;
           Harness.float_cell fixbal;
           Harness.float_cell eager;
           (match bal with Some b -> Harness.float_cell b | None -> "-");
           Harness.float_cell (Rat.to_float (Analysis.Bounds.fix_ub ~d));
           Harness.float_cell (Rat.to_float (Analysis.Bounds.eager_ub ~d));
         ];
       checks :=
         ( Printf.sprintf "fix dominates fix_balance at d=%d" d,
           fix >= fixbal -. 1e-9 )
         :: (Printf.sprintf "fix within UB at d=%d" d,
             fix <= Rat.to_float (Analysis.Bounds.fix_ub ~d) +. 1e-9)
         :: !checks)
    ds;
  {
    id = "F.ratio-vs-d";
    title = "Figure: measured ratio vs d";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Figure: average case *)

let series_average_case ~quick =
  let loads = if quick then [ 0.8; 1.2 ] else [ 0.6; 0.8; 1.0; 1.2; 1.5 ] in
  let profiles =
    if quick then [ ("uniform", None) ]
    else
      [
        ("uniform", None);
        ("zipf1.2", Some (Adversary.Random_workload.Zipf 1.2));
        ( "bursty",
          Some
            (Adversary.Random_workload.Bursty
               { period = 20; duty = 0.3; peak = 2.5 }) );
      ]
  in
  let seeds = if quick then [ 41 ] else [ 41; 42; 43 ] in
  let rounds = if quick then 80 else 250 in
  let strategies =
    [
      ("A_fix", fun () -> Global.fix ());
      ("A_current", fun () -> Global.current ());
      ("A_fix_balance", fun () -> Global.fix_balance ());
      ("A_eager", fun () -> Global.eager ());
      ("A_balance", fun () -> Global.balance ());
      ("EDF", fun () -> Edf.independent ());
      ("EDF_coord", fun () -> Edf.coordinated ());
      ("A_local_fix", fun () -> Local.fix ());
      ("A_local_eager", fun () -> Local.eager ());
    ]
  in
  let table =
    Texttable.create
      ~title:
        "F.avgcase  --  mean competitive ratio under stochastic arrivals \
         (the paper's 'worst case may be unrealistically pessimistic')"
      ~header:
        ("profile" :: "load" :: List.map fst strategies)
      ()
  in
  let checks = ref [] in
  List.iter
    (fun (pname, profile) ->
       List.iter
         (fun load ->
            (* one independent simulation per (strategy, seed): fan out
               over domains *)
            let tasks =
              List.concat_map
                (fun (_, mk) -> List.map (fun seed -> (mk, seed)) seeds)
                strategies
            in
            let ratios =
              Harness.parmap
                (fun (mk, seed) ->
                   let rng = Rng.create ~seed in
                   let inst =
                     Adversary.Random_workload.make ~rng ~n:8 ~d:4 ~rounds
                       ~load ?profile ()
                   in
                   (Harness.run_instance inst (mk ())).Harness.ratio)
                tasks
            in
            let per_seed = List.length seeds in
            let cells =
              List.mapi
                (fun si _ ->
                   let stats = Prelude.Stats.create () in
                   List.iteri
                     (fun i r ->
                        if i / per_seed = si then Prelude.Stats.add stats r)
                     ratios;
                   Prelude.Stats.mean stats)
                strategies
            in
            Texttable.add_row table
              (pname :: Printf.sprintf "%.1f" load
               :: List.map Harness.float_cell cells);
            List.iteri
              (fun i mean ->
                 let name = fst (List.nth strategies i) in
                 let limit = if name = "EDF" then 2.0 else 5.0 /. 3.0 in
                 checks :=
                   ( Printf.sprintf "%s avg ratio sane (%s load %.1f)" name
                       pname load,
                     mean >= 1.0 -. 1e-9 && mean <= limit +. 1e-9 )
                   :: !checks)
              cells)
         loads)
    profiles;
  {
    id = "F.avgcase";
    title = "Figure: average-case ratios";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Ablation: adversarial vs neutral vs random tie-break *)

let ablation_bias ~quick =
  let k = if quick then 4 else 8 in
  let d = 4 in
  let table =
    Texttable.create
      ~title:
        "A.bias  --  the lower bounds are existential: the same adversary \
         instance under adversarial / neutral / random tie-breaks"
      ~header:
        [ "adversary"; "strategy"; "adversarial"; "neutral"; "random";
          "adversarial is worst" ]
      ()
  in
  let checks = ref [] in
  let cases =
    [
      ( "Thm 2.1",
        Adversary.Thm21.make ~d ~phases:k,
        fun ?bias () -> Global.fix ?bias () );
      ( "Thm 2.3",
        Adversary.Thm23.make ~d ~phases:k,
        fun ?bias () -> Global.fix_balance ?bias () );
      ( "Thm 2.4",
        Adversary.Thm24.make ~d ~phases:k,
        fun ?bias () -> Global.eager ?bias () );
      ( "Thm 2.5",
        Adversary.Thm25.make ~d:5 ~groups:3 ~intervals:k,
        fun ?bias () -> Global.balance ?bias () );
    ]
  in
  List.iter
    (fun (name, (sc : Adversary.Scenario.t), mk) ->
       let ratio bias =
         (Harness.run_instance sc.instance (mk ?bias:(Some bias) ())).Harness.ratio
       in
       let adversarial = ratio sc.bias in
       let neutral = ratio Sched.Strategy.no_bias in
       let rng = Rng.create ~seed:99 in
       let random = ratio (Strategies.Bias.random ~rng ~magnitude:8) in
       (* the adversarial tie-break is tuned against this strategy, so
          it must be at least as damaging as the alternatives *)
       let ok = adversarial >= neutral -. 1e-9
                && adversarial >= random -. 1e-9 in
       Texttable.add_row table
         [
           name;
           (mk ?bias:None () ~n:1 ~d:2).Sched.Strategy.name;
           Harness.float_cell adversarial;
           Harness.float_cell neutral;
           Harness.float_cell random;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "adversarial bias dominates on %s" name, ok)
         :: !checks)
    cases;
  {
    id = "A.bias";
    title = "Ablation: tie-break bias";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Ablation: the keep rule of A_eager *)

let ablation_keep ~quick =
  let k = if quick then 4 else 8 in
  let rounds = if quick then 80 else 200 in
  let table =
    Texttable.create
      ~title:
        "A.keep  --  A_eager vs A_remax (no 'previously scheduled remain \
         scheduled' rule)"
      ~header:
        [ "workload"; "A_eager served"; "A_remax served";
          "remax admits order-2 path" ]
      ()
  in
  let checks = ref [] in
  let cases =
    [
      ("Thm 2.1 d=4", (Adversary.Thm21.make ~d:4 ~phases:k).instance);
      ("Thm 2.4 d=4", (Adversary.Thm24.make ~d:4 ~phases:k).instance);
      ( "random load 1.2",
        let rng = Rng.create ~seed:55 in
        Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load:1.2 () );
      ( "zipf load 1.0",
        let rng = Rng.create ~seed:56 in
        Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load:1.0
          ~profile:(Adversary.Random_workload.Zipf 1.3) () );
    ]
  in
  List.iter
    (fun (name, inst) ->
       let eager = Harness.run_instance inst (Global.eager ()) in
       let remax = Harness.run_instance inst (Global.remax ()) in
       let order2 =
         Analysis.Audit.has_augmenting_of_order remax.Harness.outcome
           ~order:2
       in
       (* both are maximal, so neither admits an order-1 path; remax
          stays consistent; and the keep rule never hurts A_eager here *)
       let ok =
         Sched.Outcome.is_consistent remax.Harness.outcome
         && not
              (Analysis.Audit.has_augmenting_of_order remax.Harness.outcome
                 ~order:1)
       in
       Texttable.add_row table
         [
           name;
           string_of_int eager.Harness.outcome.Sched.Outcome.served;
           string_of_int remax.Harness.outcome.Sched.Outcome.served;
           (if order2 then "yes" else "no");
         ];
       checks :=
         (Printf.sprintf "remax well-behaved on %s" name, ok) :: !checks)
    cases;
  {
    id = "A.keep";
    title = "Ablation: the keep rule";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: power of c choices *)

let power_of_choices ~quick =
  let rounds = if quick then 80 else 300 in
  let seeds = if quick then [ 61 ] else [ 61; 62; 63 ] in
  let table =
    Texttable.create
      ~title:
        "F.choices  --  identical traffic, alternatives truncated to the \
         first c (n=8, d=4, load 1.3, A_balance)"
      ~header:
        [ "c"; "optimum (mean)"; "A_balance served"; "EDF served";
          "A_balance ratio" ]
      ()
  in
  let checks = ref [] in
  let base_instances =
    List.map
      (fun seed ->
         let rng = Rng.create ~seed in
         Adversary.Random_workload.make ~rng ~n:8 ~d:4 ~rounds ~load:1.3
           ~alternatives:4 ())
      seeds
  in
  let means = Array.make 5 (0.0, 0.0, 0.0, 0.0) in
  List.iter
    (fun c ->
       let opt_s = Prelude.Stats.create ()
       and bal_s = Prelude.Stats.create ()
       and edf_s = Prelude.Stats.create ()
       and ratio_s = Prelude.Stats.create () in
       List.iter
         (fun base ->
            let inst = Sched.Instance.restrict_alternatives base ~max:c in
            let r = Harness.run_instance inst (Global.balance ()) in
            let edf =
              (Sched.Engine.run inst (Edf.independent ())).Sched.Outcome.served
            in
            Prelude.Stats.add opt_s (float_of_int r.Harness.opt);
            Prelude.Stats.add bal_s
              (float_of_int r.Harness.outcome.Sched.Outcome.served);
            Prelude.Stats.add edf_s (float_of_int edf);
            Prelude.Stats.add ratio_s r.Harness.ratio)
         base_instances;
       means.(c) <-
         ( Prelude.Stats.mean opt_s,
           Prelude.Stats.mean bal_s,
           Prelude.Stats.mean edf_s,
           Prelude.Stats.mean ratio_s );
       let opt_m, bal_m, edf_m, ratio_m = means.(c) in
       Texttable.add_row table
         [
           string_of_int c;
           Printf.sprintf "%.1f" opt_m;
           Printf.sprintf "%.1f" bal_m;
           Printf.sprintf "%.1f" edf_m;
           Harness.float_cell ratio_m;
         ])
    [ 1; 2; 3; 4 ];
  (* the optimum must grow with the choice count; the second choice is
     the big step (the paper's whole premise) *)
  let opt c = (fun (o, _, _, _) -> o) means.(c) in
  let bal c = (fun (_, b, _, _) -> b) means.(c) in
  checks :=
    [
      ("optimum weakly grows with c", opt 1 <= opt 2 +. 1e-9
                                      && opt 2 <= opt 3 +. 1e-9
                                      && opt 3 <= opt 4 +. 1e-9);
      ( "second choice helps the most",
        opt 2 -. opt 1 >= opt 3 -. opt 2 -. 1e-9 );
      ("A_balance benefits from the second choice", bal 2 > bal 1);
    ];
  {
    id = "F.choices";
    title = "Extension: power of c choices";
    table;
    checks = !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: greedy balls-into-bins baselines *)

let greedy_baselines ~quick =
  let rounds = if quick then 80 else 300 in
  let loads = if quick then [ 1.0; 1.4 ] else [ 0.8; 1.0; 1.2; 1.4 ] in
  let table =
    Texttable.create
      ~title:
        "F.greedy  --  balls-into-bins greedy heuristics vs the matching \
         strategies (n=8, d=4; 'lat' = mean service latency in rounds)"
      ~header:
        [ "load"; "optimum";
          "2choice"; "lat";
          "random"; "lat";
          "firstfit"; "lat";
          "A_fix"; "A_balance" ]
      ()
  in
  let checks = ref [] in
  List.iter
    (fun load ->
       let rng = Rng.create ~seed:85 in
       let inst =
         Adversary.Random_workload.make ~rng ~n:8 ~d:4 ~rounds ~load ()
       in
       let opt = Offline.Opt.value inst in
       let run factory =
         let o = Sched.Engine.run inst factory in
         (o.Sched.Outcome.served, Sched.Outcome.mean_latency o)
       in
       let two, two_lat = run (Strategies.Twochoice.least_loaded ()) in
       let rnd, rnd_lat =
         let rng = Rng.create ~seed:86 in
         run (Strategies.Twochoice.random_choice ~rng ())
       in
       let ff, ff_lat = run (Strategies.Twochoice.first_fit ()) in
       let fix, _ = run (Global.fix ()) in
       let bal, _ = run (Global.balance ()) in
       Texttable.add_row table
         [
           Printf.sprintf "%.1f" load;
           string_of_int opt;
           string_of_int two;
           Texttable.cell_float ~decimals:2 two_lat;
           string_of_int rnd;
           Texttable.cell_float ~decimals:2 rnd_lat;
           string_of_int ff;
           Texttable.cell_float ~decimals:2 ff_lat;
           string_of_int fix;
           string_of_int bal;
         ];
       checks :=
         (Printf.sprintf "two-choice beats random choice at load %.1f" load,
          two >= rnd)
         :: (Printf.sprintf "matching beats greedy at load %.1f" load,
             bal >= two && fix >= rnd)
         :: (Printf.sprintf "optimum dominates everything at load %.1f" load,
             opt >= bal && opt >= two && opt >= ff)
         :: !checks)
    loads;
  {
    id = "F.greedy";
    title = "Extension: greedy baselines";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Failure injection: local protocols on a lossy network *)

let loss_robustness ~quick =
  let rounds = if quick then 80 else 250 in
  let losses =
    if quick then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
  in
  let table =
    Texttable.create
      ~title:
        "A.loss  --  local protocols under message loss (n=6, d=4, load \
         1.1; drops behave like mailbox bounces)"
      ~header:
        [ "loss"; "A_local_fix served"; "A_local_eager served"; "optimum" ]
      ()
  in
  let rng = Rng.create ~seed:95 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:6 ~d:4 ~rounds ~load:1.1 ()
  in
  let opt = Offline.Opt.value inst in
  let checks = ref [] in
  let series =
    List.map
      (fun loss ->
         let fix = Sched.Engine.run inst (Local.fix ~loss ()) in
         let eager = Sched.Engine.run inst (Local.eager ~loss ()) in
         Texttable.add_row table
           [
             Printf.sprintf "%.2f" loss;
             string_of_int fix.Sched.Outcome.served;
             string_of_int eager.Sched.Outcome.served;
             string_of_int opt;
           ];
         checks :=
           ( Printf.sprintf "outcomes stay consistent at loss %.2f" loss,
             Sched.Outcome.is_consistent fix
             && Sched.Outcome.is_consistent eager )
           :: !checks;
         (loss, fix.Sched.Outcome.served, eager.Sched.Outcome.served))
      losses
  in
  (match (series, List.rev series) with
   | (_, fix0, eager0) :: _, (_, fix_worst, eager_worst) :: _ ->
     checks :=
       ("loss degrades local_fix", fix0 >= fix_worst)
       :: ("loss degrades local_eager", eager0 >= eager_worst)
       :: ( "eager's redundancy absorbs loss better than fix",
            eager_worst * fix0 >= fix_worst * eager0 * 9 / 10 )
       :: !checks
   | _ -> ());
  {
    id = "A.loss";
    title = "Failure injection: lossy network";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: replica placement under session traffic *)

let placement_policies ~quick =
  let rounds = if quick then 120 else 400 in
  let disks = 10 and items = 200 and d = 4 in
  let zipf = 1.2 in
  let table =
    Texttable.create
      ~title:
        (Printf.sprintf
           "F.placement  --  replica placement under continuous-media \
            sessions (disks=%d, items=%d, Zipf %.1f, A_balance)"
           disks items zipf)
      ~header:
        [ "placement"; "load spread"; "accepted"; "optimum"; "ratio";
          "lost %%" ]
      ()
  in
  let popularity i = 1.0 /. Float.pow (float_of_int (i + 1)) zipf in
  let policies =
    [
      ( "random [Kor97]",
        Dataserver.Placement.random
          ~rng:(Rng.create ~seed:91) ~disks ~items ~copies:2 );
      ("chained (partner)", Dataserver.Placement.partner ~disks ~items ~copies:2);
      ("striped mirrors", Dataserver.Placement.striped ~disks ~items ~copies:2);
    ]
  in
  let checks = ref [] in
  let results =
    Harness.parmap
      (fun (_name, placement) ->
         let rng = Rng.create ~seed:92 in
         let inst, _stats =
           Dataserver.Trace.sessions ~rng ~placement ~rounds
             ~arrivals_per_round:1.6 ~mean_length:7 ~d ~zipf ()
         in
         let r = Harness.run_instance inst (Global.balance ()) in
         let spread = Dataserver.Placement.load_spread placement ~popularity in
         (spread, r))
      policies
  in
  List.iter2
    (fun (name, _) (spread, r) ->
       let total =
         Sched.Instance.n_requests r.Harness.outcome.Sched.Outcome.instance
       in
       let served = r.Harness.outcome.Sched.Outcome.served in
       Texttable.add_row table
         [
           name;
           Texttable.cell_float ~decimals:3 spread;
           string_of_int served;
           string_of_int r.Harness.opt;
           Harness.float_cell r.Harness.ratio;
           Printf.sprintf "%.2f"
             (100.0 *. float_of_int (total - served) /. float_of_int total);
         ];
       checks :=
         ( Printf.sprintf "%s placement: scheduler tracks its optimum" name,
           r.Harness.ratio <= 1.1 )
         :: !checks)
    policies results;
  (* random duplicated assignment must beat the chained layout, whose
     copies of consecutive (hence similarly hot) items share disks;
     carefully hand-tuned striping can match random on a fixed skew,
     but it has no such guarantee under catalogue churn *)
  (match results with
   | (spread_random, _) :: (spread_chained, _) :: _ ->
     checks :=
       ( "random placement spreads load better than chained",
         spread_random <= spread_chained +. 0.05 )
       :: !checks
   | _ -> ());
  {
    id = "F.placement";
    title = "Extension: replica placement policies";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)
(* Extension: per-request deadlines *)

let mixed_deadlines ~quick =
  let rounds = if quick then 60 else 200 in
  let table =
    Texttable.create
      ~title:
        "E.mixed  --  heterogeneous deadlines (1..d per request): EDF stays \
         optimal with one alternative; all strategies stay sane with two"
      ~header:[ "case"; "paper"; "measured"; "match" ] ()
  in
  let checks = ref [] in
  (* Obs 3.1 extension: single alternative, mixed deadlines *)
  List.iter
    (fun seed ->
       let rng = Rng.create ~seed in
       let inst =
         Adversary.Random_workload.make_mixed_deadlines ~rng ~n:5 ~d:4
           ~rounds ~load:1.1 ~alternatives:1 ()
       in
       let r = Harness.run_instance inst (Edf.independent ()) in
       let ok =
         r.Harness.outcome.Sched.Outcome.served = r.Harness.opt
         && Offline.Opt.single_alternative_edf inst = r.Harness.opt
       in
       Texttable.add_row table
         [
           Printf.sprintf "EDF c=1 mixed deadlines (seed %d)" seed;
           "1";
           Harness.float_cell r.Harness.ratio;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "EDF optimal with mixed deadlines (seed %d)" seed, ok)
         :: !checks)
    [ 71; 72 ];
  (* two alternatives, mixed deadlines: structural facts still hold *)
  List.iter
    (fun (name, mk, forbidden) ->
       let rng = Rng.create ~seed:73 in
       let inst =
         Adversary.Random_workload.make_mixed_deadlines ~rng ~n:5 ~d:4
           ~rounds ~load:1.2 ()
       in
       let r = Harness.run_instance inst (mk ()) in
       let ok =
         Sched.Outcome.is_consistent r.Harness.outcome
         && not
              (Analysis.Audit.has_augmenting_of_order r.Harness.outcome
                 ~order:forbidden)
       in
       Texttable.add_row table
         [
           Printf.sprintf "%s c=2 mixed deadlines" name;
           Printf.sprintf "no order-%d path" forbidden;
           Harness.float_cell r.Harness.ratio;
           (if ok then "yes" else "NO");
         ];
       checks :=
         (Printf.sprintf "%s handles mixed deadlines" name, ok) :: !checks)
    [
      ("A_fix", (fun () -> Global.fix ()), 1);
      ("A_fix_balance", (fun () -> Global.fix_balance ()), 1);
      ("A_eager", (fun () -> Global.eager ()), 2);
      ("A_balance", (fun () -> Global.balance ()), 2);
      ("A_local_fix", (fun () -> Local.fix ()), 1);
    ];
  {
    id = "E.mixed";
    title = "Extension: per-request deadlines";
    table;
    checks = List.rev !checks;
  }

(* ------------------------------------------------------------------ *)

let catalog =
  [
    ("T1.fix.lb", fun ~quick -> t1_fix_lb ~quick);
    ("T1.current.lb", fun ~quick -> t1_current_lb ~quick);
    ("T1.fixbal.lb", fun ~quick -> t1_fixbal_lb ~quick);
    ("T1.eager.lb", fun ~quick -> t1_eager_lb ~quick);
    ("T1.bal.lb", fun ~quick -> t1_bal_lb ~quick);
    ("T1.any.lb", fun ~quick -> t1_any_lb ~quick);
    ("T1.ub", fun ~quick -> t1_upper_bounds ~quick);
    ("E.edf", fun ~quick -> edf_baselines ~quick);
    ("E.local", fun ~quick -> local_strategies ~quick);
    ("F.ratio-vs-d", fun ~quick -> series_ratio_vs_d ~quick);
    ("F.avgcase", fun ~quick -> series_average_case ~quick);
    ("A.bias", fun ~quick -> ablation_bias ~quick);
    ("A.keep", fun ~quick -> ablation_keep ~quick);
    ("F.choices", fun ~quick -> power_of_choices ~quick);
    ("F.greedy", fun ~quick -> greedy_baselines ~quick);
    ("F.placement", fun ~quick -> placement_policies ~quick);
    ("A.loss", fun ~quick -> loss_robustness ~quick);
    ("E.mixed", fun ~quick -> mixed_deadlines ~quick);
  ]

let all ~quick = List.map (fun (_, f) -> f ~quick) catalog

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Texttable.render t.table);
  List.iter
    (fun (name, ok) ->
       Buffer.add_string buf
         (Printf.sprintf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name))
    t.checks;
  Buffer.add_char buf '\n';
  Buffer.contents buf
