(** Minimal argv parsing for the bench harness (which deliberately does
    not pull in cmdliner). *)

val flag : string array -> string -> bool
(** [flag argv name]: does [name] appear in [argv]? *)

val value_flag : string array -> string -> (string option, string) result
(** [value_flag argv name] is [Ok (Some v)] when [name] is followed by a
    token [v], [Ok None] when [name] does not appear, and [Error usage]
    when [name] is the final token — a missing value is an error, not a
    silent default.  Search starts at index 1 ([argv.(0)] is the
    executable). *)
