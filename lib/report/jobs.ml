module Rat = Prelude.Rat

(* ------------------------------------------------------------------ *)
(* values and their bit-exact line serialisation *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Rat of Rat.t
  | Str of string
  | List of value list

(* floats print in hexadecimal notation: every bit pattern (including
   -0., subnormals, nan and the infinities) survives the round trip,
   which is what lets the determinism suite compare runs byte-wise *)
let rec add_value buf = function
  | Int i ->
    Buffer.add_string buf "i ";
    Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "f %h" f)
  | Bool b -> Buffer.add_string buf (if b then "b 1" else "b 0")
  | Rat r ->
    Buffer.add_string buf (Printf.sprintf "r %d %d" (Rat.num r) (Rat.den r))
  | Str s ->
    let e = String.escaped s in
    Buffer.add_string buf (Printf.sprintf "s %d:%s" (String.length e) e)
  | List vs ->
    Buffer.add_string buf (Printf.sprintf "l %d" (List.length vs));
    List.iter
      (fun v ->
         Buffer.add_char buf ' ';
         add_value buf v)
      vs

let value_to_string v =
  let buf = Buffer.create 64 in
  add_value buf v;
  Buffer.contents buf

exception Parse of string

let value_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse msg) in
  let space () =
    if !pos < n && s.[!pos] = ' ' then incr pos else fail "expected space"
  in
  let token () =
    let start = !pos in
    while !pos < n && s.[!pos] <> ' ' do incr pos done;
    if !pos = start then fail "empty token";
    String.sub s start (!pos - start)
  in
  let int_token () =
    match int_of_string_opt (token ()) with
    | Some i -> i
    | None -> fail "bad int"
  in
  let rec value () =
    match token () with
    | "i" ->
      space ();
      Int (int_token ())
    | "f" -> (
        space ();
        match float_of_string_opt (token ()) with
        | Some f -> Float f
        | None -> fail "bad float")
    | "b" -> (
        space ();
        match token () with
        | "0" -> Bool false
        | "1" -> Bool true
        | _ -> fail "bad bool")
    | "r" ->
      space ();
      let a = int_token () in
      space ();
      let b = int_token () in
      if b = 0 then fail "zero denominator";
      Rat (Rat.make a b)
    | "s" ->
      space ();
      let start = !pos in
      while !pos < n && s.[!pos] <> ':' do incr pos done;
      if !pos >= n then fail "unterminated string length";
      let len =
        match int_of_string_opt (String.sub s start (!pos - start)) with
        | Some l when l >= 0 -> l
        | Some _ | None -> fail "bad string length"
      in
      incr pos;
      if !pos + len > n then fail "truncated string";
      let e = String.sub s !pos len in
      pos := !pos + len;
      (match Scanf.unescaped e with
       | u -> Str u
       | exception _ -> fail "bad escape")
    | "l" ->
      space ();
      let k = int_token () in
      if k < 0 then fail "bad list length";
      let rec elems i acc =
        if i = k then List.rev acc
        else begin
          space ();
          let v = value () in
          elems (i + 1) (v :: acc)
        end
      in
      List (elems 0 [])
    | t -> fail ("unknown tag " ^ t)
  in
  match
    let v = value () in
    if !pos <> n then fail "trailing bytes";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
  | exception Rat.Overflow -> Error "rational overflow"
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* jobs, failures, outcomes *)

type job = {
  name : string;
  params : (string * string) list;
  compute : attempt:int -> value;
}

let job ~name ?(params = []) compute = { name; params; compute }

type failure = {
  family : string;
  name : string;
  attempts : int;
  message : string;
  backtrace : string;
}

type outcome = Done of value | Failed of failure

let shape family name =
  {
    family;
    name;
    attempts = 0;
    message = "result shape mismatch";
    backtrace = "";
  }

let float_value = function Done (Float f) -> f | _ -> nan
let int_value = function Done (Int i) -> i | _ -> min_int
let bool_value = function Done (Bool b) -> b | _ -> false

let rat_value = function Done (Rat r) -> r | _ -> Rat.make 0 1

let list_value = function Done (List vs) -> vs | _ -> []

let nth o i =
  match o with
  | Failed _ -> o
  | Done (List vs) -> (
      match List.nth_opt vs i with
      | Some v -> Done v
      | None -> Failed (shape "" (Printf.sprintf "nth %d" i)))
  | Done _ -> Failed (shape "" (Printf.sprintf "nth %d" i))

let cell o f = match o with Done v -> f v | Failed _ -> "FAILED"

(* ------------------------------------------------------------------ *)
(* content keys *)

let cache_format_version = 1

(* part of every key: bump when a job with unchanged parameters starts
   meaning a different computation, so stale cache dirs read as misses
   (v2: sweep cells carry the full SLO score record, not one count) *)
let semantic_version = 2

let key_string ~family ~shared ~name ~params =
  Printf.sprintf "v%d %s/%s?%s" semantic_version family name
    (String.concat "&"
       (List.map (fun (k, v) -> k ^ "=" ^ v) (params @ shared)))

let key_digest ~family ?(shared = []) ~name ~params () =
  Digest.to_hex (Digest.string (key_string ~family ~shared ~name ~params))

(* ------------------------------------------------------------------ *)
(* the on-disk cache *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let tmp_counter = Atomic.make 0

(* torn-write safety: each writer builds the whole entry under a name
   unique to (process, domain, sequence) and publishes it with a single
   rename, so readers and concurrent writers of the same key only ever
   see complete entries (last writer wins) *)
let write_cache ~dir ~path ~key v =
  let payload = value_to_string v in
  let contents =
    Printf.sprintf "reqsched-jobcache %d\nkey %s\nmd5 %s\nval %s\n"
      cache_format_version (String.escaped key)
      (Digest.to_hex (Digest.string payload))
      payload
  in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp-%s-%d-%d-%d"
         (Filename.basename path)
         (Unix.getpid ())
         (Domain.self () :> int)
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let oc = open_out_bin tmp in
  (match output_string oc contents with
   | () -> close_out oc
   | exception e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

type cache_read = Hit of value | Miss | Corrupt

let read_cache ~key path =
  if not (Sys.file_exists path) then Miss
  else
    match
      let ic = open_in_bin path in
      let lines =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
             let rec go acc =
               match input_line ic with
               | l -> go (l :: acc)
               | exception End_of_file -> List.rev acc
             in
             go [])
      in
      match lines with
      | version :: key_line :: md5_line :: val_line :: _ ->
        let strip prefix l =
          let pl = String.length prefix in
          if String.length l >= pl && String.sub l 0 pl = prefix then
            Some (String.sub l pl (String.length l - pl))
          else None
        in
        if
          version
          <> Printf.sprintf "reqsched-jobcache %d" cache_format_version
        then Corrupt (* stale or foreign format *)
        else (
          match
            (strip "key " key_line, strip "md5 " md5_line,
             strip "val " val_line)
          with
          | Some k, Some md5, Some payload
            when k = String.escaped key
                 && md5 = Digest.to_hex (Digest.string payload) -> (
              match value_of_string payload with
              | Ok v -> Hit v
              | Error _ -> Corrupt)
          | _ -> Corrupt)
      | _ -> Corrupt (* truncated *)
    with
    | r -> r
    | exception _ -> Corrupt

(* ------------------------------------------------------------------ *)
(* the runner *)

type stats = {
  total : int;
  executed : int;
  cache_hits : int;
  corrupt : int;
  failed : int;
  retried : int;
}

type ctx = {
  domains : int option;
  cache_dir : string option;
  resume : bool;
  retries : int;
  metrics : Obs.Metrics.t option;
  mutable st : stats;
  mutable fails : failure list; (* newest first *)
  mutable busy : float;         (* seconds inside map batches *)
}

let create ?domains ?cache_dir ?(resume = false) ?(retries = 0) ?metrics ()
  =
  (* failure reports without backtraces are not actionable *)
  Printexc.record_backtrace true;
  Option.iter mkdir_p cache_dir;
  {
    domains = Option.map (max 1) domains;
    cache_dir;
    resume;
    retries = max 0 retries;
    metrics;
    st =
      {
        total = 0;
        executed = 0;
        cache_hits = 0;
        corrupt = 0;
        failed = 0;
        retried = 0;
      };
    fails = [];
    busy = 0.0;
  }

let local () = create ()

type exec_result = {
  out : outcome;
  hit : bool;
  was_corrupt : bool;
  attempts_used : int; (* 0 on a cache hit *)
}

let exec ctx ~family ~shared (j : job) =
  let key = key_string ~family ~shared ~name:j.name ~params:j.params in
  let path =
    Option.map
      (fun dir ->
         Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".job"))
      ctx.cache_dir
  in
  let cached =
    match path with
    | Some p when ctx.resume -> read_cache ~key p
    | Some _ | None -> Miss
  in
  match cached with
  | Hit v -> { out = Done v; hit = true; was_corrupt = false; attempts_used = 0 }
  | (Miss | Corrupt) as c ->
    let was_corrupt = c = Corrupt in
    let rec go attempt =
      match j.compute ~attempt with
      | v ->
        (match (ctx.cache_dir, path) with
         | Some dir, Some p ->
           (* the cache is best-effort: a full disk must not fail the job *)
           (try write_cache ~dir ~path:p ~key v with _ -> ())
         | _ -> ());
        { out = Done v; hit = false; was_corrupt; attempts_used = attempt + 1 }
      | exception e ->
        let bt = Printexc.get_backtrace () in
        if attempt < ctx.retries then go (attempt + 1)
        else
          {
            out =
              Failed
                {
                  family;
                  name = j.name;
                  attempts = attempt + 1;
                  message = Printexc.to_string e;
                  backtrace = bt;
                };
            hit = false;
            was_corrupt;
            attempts_used = attempt + 1;
          }
    in
    go 0

let map ctx ~family ?(shared = []) jobs =
  let metrics = Obs.Metrics.resolve ctx.metrics in
  let t0 = Obs.Span.now () in
  let results =
    Obs.Instrument.parmap_map ?metrics ?domains:ctx.domains
      (exec ctx ~family ~shared)
      jobs
  in
  ctx.busy <- ctx.busy +. Float.max 0.0 (Obs.Span.now () -. t0);
  (* fold statistics in the submitting domain, after the join: the
     counters stay deterministic and the workers share nothing mutable *)
  let d =
    List.fold_left
      (fun s r ->
         (match r.out with
          | Failed f -> ctx.fails <- f :: ctx.fails
          | Done _ -> ());
         {
           total = s.total + 1;
           executed = s.executed + (if r.hit then 0 else 1);
           cache_hits = s.cache_hits + (if r.hit then 1 else 0);
           corrupt = s.corrupt + (if r.was_corrupt then 1 else 0);
           failed =
             (s.failed + match r.out with Failed _ -> 1 | Done _ -> 0);
           retried = s.retried + max 0 (r.attempts_used - 1);
         })
      { total = 0; executed = 0; cache_hits = 0; corrupt = 0; failed = 0;
        retried = 0 }
      results
  in
  ctx.st <-
    {
      total = ctx.st.total + d.total;
      executed = ctx.st.executed + d.executed;
      cache_hits = ctx.st.cache_hits + d.cache_hits;
      corrupt = ctx.st.corrupt + d.corrupt;
      failed = ctx.st.failed + d.failed;
      retried = ctx.st.retried + d.retried;
    };
  (match metrics with
   | None -> ()
   | Some m ->
     let incr name by = if by > 0 then Obs.Metrics.incr ~by m name in
     incr "jobs.total" d.total;
     incr "jobs.executed" d.executed;
     incr "jobs.cache_hits" d.cache_hits;
     incr "jobs.corrupt" d.corrupt;
     incr "jobs.failed" d.failed;
     incr "jobs.retried" d.retried);
  List.map (fun r -> r.out) results

let stats ctx = ctx.st
let failures ctx = List.rev ctx.fails

let hit_rate st =
  let looked = st.cache_hits + st.executed in
  if looked = 0 then 0.0
  else float_of_int st.cache_hits /. float_of_int looked

let summary ctx =
  let s = ctx.st in
  Printf.sprintf
    "jobs: total=%d executed=%d cache-hits=%d corrupt=%d failed=%d \
     retried=%d hit-rate=%.1f%%"
    s.total s.executed s.cache_hits s.corrupt s.failed s.retried
    (100.0 *. hit_rate s)

let render_failures ctx =
  match failures ctx with
  | [] -> ""
  | fs ->
    let buf = Buffer.create 256 in
    List.iter
      (fun f ->
         Buffer.add_string buf
           (Printf.sprintf "FAILED %s/%s after %d attempt%s: %s\n" f.family
              f.name f.attempts
              (if f.attempts = 1 then "" else "s")
              f.message);
         if f.backtrace <> "" then begin
           String.split_on_char '\n' f.backtrace
           |> List.iter (fun l ->
               if l <> "" then Buffer.add_string buf ("  | " ^ l ^ "\n"))
         end)
      fs;
    Buffer.contents buf

let finish ctx =
  match Obs.Metrics.resolve ctx.metrics with
  | None -> ()
  | Some m ->
    Obs.Metrics.set m "jobs.cache_hit_rate" (hit_rate ctx.st);
    Obs.Metrics.set m "jobs.busy_s" ctx.busy;
    Obs.Metrics.set m "jobs.per_sec"
      (if ctx.busy > 0.0 then float_of_int ctx.st.total /. ctx.busy else 0.0)
