let now = Unix.gettimeofday

type span = float (* start time, seconds *)

let start () = now ()

(* the wall clock can step backwards (NTP); never report negative time *)
let elapsed t0 = Float.max 0.0 (now () -. t0)

let finish metrics name t0 = Metrics.observe metrics name (elapsed t0)

let record metrics name t0 =
  match (metrics : Metrics.t option) with
  | None -> ()
  | Some m -> finish m name t0

let time metrics name f =
  let t0 = start () in
  Fun.protect ~finally:(fun () -> finish metrics name t0) f
