(** Named metrics: counters, gauges and histograms.

    A registry maps metric names to mutable accumulators; instrumented
    subsystems record into it on their hot paths, and the harness
    exports a {!snapshot} at the end of a run ({!Export}).  Histograms
    are {!Prelude.Stats} accumulators, so per-domain registries merge
    exactly ({!merge} uses [Stats.merge]) — the property the
    observability test-suite pins: recording a workload into [k]
    registries and merging equals recording it into one.

    Every operation takes the registry's mutex, so one registry may be
    shared across domains; for hot parallel loops prefer one registry
    per domain plus a final {!merge} (uncontended locks are cheap, but
    contended ones are not).

    Dotted lower-case names ([subsystem.metric], e.g.
    ["engine.served"]) keep exports greppable; names must not contain
    commas, double quotes or newlines (the CSV/JSON exporters reject
    none of these, they would just corrupt the framing). *)

type t
(** A mutable, mutex-protected metric registry. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Prelude.Stats.t

type snapshot = (string * value) list
(** Immutable copy of a registry's contents, sorted by name.  The
    [Stats.t] payloads are private copies. *)

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1; may be negative) to a counter, creating it at
    [by] if absent.
    @raise Invalid_argument if the name is bound to another kind. *)

val set_counter : t -> string -> int -> unit
(** Overwrite a counter (used by reset shims). *)

val counter : t -> string -> int
(** Current counter value; [0] if absent. *)

val set : t -> string -> float -> unit
(** Set a gauge to the given value, creating it if absent. *)

val gauge : t -> string -> float
(** Current gauge value; [nan] if absent. *)

val observe : t -> string -> float -> unit
(** Fold one observation into a histogram, creating it if absent. *)

val histogram : t -> string -> Prelude.Stats.t option
(** Copy of a histogram's accumulator; [None] if absent. *)

val snapshot : t -> snapshot

val clear : t -> unit
(** Drop every metric. *)

val merge : snapshot -> snapshot -> snapshot
(** Union by name: counters and gauges add, histograms combine via
    {!Prelude.Stats.merge}.
    @raise Invalid_argument when one name is bound to two kinds. *)

val merge_all : snapshot list -> snapshot
(** Left fold of {!merge}; [[]] on the empty list. *)

val merge_into : t -> snapshot -> unit
(** Fold a snapshot into a live registry (same semantics as {!merge}). *)

(** {2 Ambient registry}

    The CLI and bench set one process-wide registry before running;
    instrumented subsystems whose [?metrics] argument is omitted fall
    back to it (and record nothing when it is unset, the default).  Set
    it before spawning domains and leave it alone afterwards. *)

val set_ambient : t option -> unit
val ambient : unit -> t option

val resolve : t option -> t option
(** [resolve metrics] is [metrics] if [Some], else {!ambient}[ ()] — the
    lookup every instrumented module performs once per run or call. *)
