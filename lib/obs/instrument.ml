module Parmap = Prelude.Parmap

let record_parmap m (stats : Parmap.domain_stat list) =
  Metrics.incr m "parmap.maps";
  Metrics.set m "parmap.last_domains" (float_of_int (List.length stats));
  let latest =
    List.fold_left (fun acc s -> Float.max acc s.Parmap.finished_at) 0.0 stats
  in
  List.iter
    (fun (s : Parmap.domain_stat) ->
       Metrics.incr ~by:s.tasks m "parmap.tasks";
       Metrics.observe m "parmap.tasks_per_domain" (float_of_int s.tasks);
       Metrics.observe m "parmap.idle_tail_s" (latest -. s.finished_at))
    stats

let parmap_mapi ?metrics ?domains f xs =
  match Metrics.resolve metrics with
  | None -> Parmap.mapi ?domains f xs
  | Some m ->
    Parmap.mapi ?domains ~clock:Span.now ~observe:(record_parmap m) f xs

let parmap_map ?metrics ?domains f xs =
  parmap_mapi ?metrics ?domains (fun _ x -> f x) xs
