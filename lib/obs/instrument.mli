(** Adapters wiring un-instrumentable layers into {!Metrics}.

    {!Prelude.Parmap} sits below this library in the dependency order,
    so it exposes a neutral [observe] hook instead of recording metrics
    itself; the wrappers here connect that hook to a registry.

    Metrics recorded per map call: counter [parmap.maps], counter
    [parmap.tasks], gauge [parmap.last_domains], histogram
    [parmap.tasks_per_domain], histogram [parmap.idle_tail_s] (how long
    each domain sat idle waiting for the slowest one — the utilisation
    loss of the round-robin partition). *)

val parmap_map :
  ?metrics:Metrics.t -> ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!Prelude.Parmap.map}, recording utilisation into the given registry
    (or the ambient one; plain un-instrumented map when neither is
    set). *)

val parmap_mapi :
  ?metrics:Metrics.t -> ?domains:int -> (int -> 'a -> 'b) -> 'a list ->
  'b list
(** Indexed variant. *)
