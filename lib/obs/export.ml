module Stats = Prelude.Stats
module Texttable = Prelude.Texttable

type format = Text | Csv | Json

let format_of_string = function
  | "text" -> Ok Text
  | "csv" -> Ok Csv
  | "json" -> Ok Json
  | other ->
    Error
      (Printf.sprintf "unknown metrics format %S (expected text, csv or json)"
         other)

let format_name = function Text -> "text" | Csv -> "csv" | Json -> "json"

(* %.17g round-trips every finite float through [float_of_string];
   non-finite values print as nan/inf/-inf, which [float_of_string]
   also reads back. *)
let fstr x = Printf.sprintf "%.17g" x

(* ------------------------------------------------------------------ *)
(* text table *)

let cell x = if Float.is_nan x then "-" else Printf.sprintf "%.6g" x

let table snap =
  let t =
    Texttable.create ~title:"metrics"
      ~header:[ "name"; "kind"; "value"; "count"; "mean"; "min"; "max" ]
      ()
  in
  Texttable.set_align t
    Texttable.[ Left; Left; Right; Right; Right; Right; Right ];
  List.iter
    (fun (name, v) ->
       match (v : Metrics.value) with
       | Counter c ->
         Texttable.add_row t [ name; "counter"; string_of_int c ]
       | Gauge g -> Texttable.add_row t [ name; "gauge"; cell g ]
       | Histogram s ->
         Texttable.add_row t
           [
             name; "histogram"; ""; string_of_int (Stats.count s);
             cell (Stats.mean s); cell (Stats.min s); cell (Stats.max s);
           ])
    snap;
  t

(* ------------------------------------------------------------------ *)
(* CSV *)

let csv_header = "name,kind,value,count,mean,m2,min,max"

let to_csv snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (csv_header ^ "\n");
  List.iter
    (fun (name, v) ->
       let fields =
         match (v : Metrics.value) with
         | Counter c -> [ name; "counter"; string_of_int c; ""; ""; ""; ""; "" ]
         | Gauge g -> [ name; "gauge"; fstr g; ""; ""; ""; ""; "" ]
         | Histogram s ->
           let n = Stats.count s in
           if n = 0 then [ name; "histogram"; ""; "0"; ""; ""; ""; "" ]
           else
             [
               name; "histogram"; ""; string_of_int n; fstr (Stats.mean s);
               fstr (Stats.m2 s); fstr (Stats.min s); fstr (Stats.max s);
             ]
       in
       Buffer.add_string buf (String.concat "," fields ^ "\n"))
    snap;
  Buffer.contents buf

let parse_error fmt = Printf.ksprintf (fun s -> failwith ("Obs.Export: " ^ s)) fmt

let of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> []
  | header :: rows ->
    if String.trim header <> csv_header then
      parse_error "bad CSV header %S" header;
    List.map
      (fun line ->
         match String.split_on_char ',' line with
         | [ name; "counter"; v; _; _; _; _; _ ] ->
           (name, Metrics.Counter (int_of_string v))
         | [ name; "gauge"; v; _; _; _; _; _ ] ->
           (name, Metrics.Gauge (float_of_string v))
         | [ name; "histogram"; _; "0"; _; _; _; _ ] ->
           (name, Metrics.Histogram (Stats.create ()))
         | [ name; "histogram"; _; n; mean; m2; mn; mx ] ->
           ( name,
             Metrics.Histogram
               (Stats.of_moments ~count:(int_of_string n)
                  ~mean:(float_of_string mean) ~m2:(float_of_string m2)
                  ~mn:(float_of_string mn) ~mx:(float_of_string mx)) )
         | _ -> parse_error "bad CSV row %S" line)
      rows

(* ------------------------------------------------------------------ *)
(* line-oriented JSON: one object per metric per line *)

let json_num x =
  if Float.is_finite x then fstr x else Printf.sprintf "%S" (fstr x)

let to_json snap =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
       (match (v : Metrics.value) with
        | Counter c ->
          Printf.bprintf buf {|{"name":%S,"kind":"counter","value":%d}|} name c
        | Gauge g ->
          Printf.bprintf buf {|{"name":%S,"kind":"gauge","value":%s}|} name
            (json_num g)
        | Histogram s ->
          let n = Stats.count s in
          if n = 0 then
            Printf.bprintf buf {|{"name":%S,"kind":"histogram","count":0}|}
              name
          else
            Printf.bprintf buf
              {|{"name":%S,"kind":"histogram","count":%d,"mean":%s,"m2":%s,"min":%s,"max":%s}|}
              name n (json_num (Stats.mean s)) (json_num (Stats.m2 s))
              (json_num (Stats.min s)) (json_num (Stats.max s)));
       Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

(* A scanner for exactly the object shape emitted above: flat, string or
   numeric values, no nesting, no spaces required. *)
let parse_json_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let expect c =
    if peek () <> Some c then parse_error "expected %C in %S" c line;
    Stdlib.incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error "unterminated string in %S" line
      | Some '"' -> Stdlib.incr pos
      | Some '\\' ->
        Stdlib.incr pos;
        (match peek () with
         | Some 'n' -> Buffer.add_char buf '\n'
         | Some 't' -> Buffer.add_char buf '\t'
         | Some c -> Buffer.add_char buf c
         | None -> parse_error "truncated escape in %S" line);
        Stdlib.incr pos;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        Stdlib.incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    match peek () with
    | Some '"' -> parse_string ()
    | _ ->
      let start = !pos in
      while
        match peek () with
        | Some (',' | '}') | None -> false
        | Some _ -> true
      do
        Stdlib.incr pos
      done;
      String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  let rec go () =
    let key = parse_string () in
    expect ':';
    let v = parse_value () in
    fields := (key, v) :: !fields;
    match peek () with
    | Some ',' ->
      Stdlib.incr pos;
      go ()
    | Some '}' -> Stdlib.incr pos
    | _ -> parse_error "expected ',' or '}' in %S" line
  in
  go ();
  !fields

let of_json text =
  let field fields key =
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> parse_error "missing field %S" key
  in
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
      let fields = parse_json_line line in
      let name = field fields "name" in
      match field fields "kind" with
      | "counter" -> (name, Metrics.Counter (int_of_string (field fields "value")))
      | "gauge" -> (name, Metrics.Gauge (float_of_string (field fields "value")))
      | "histogram" ->
        let count = int_of_string (field fields "count") in
        if count = 0 then (name, Metrics.Histogram (Stats.create ()))
        else
          let f key = float_of_string (field fields key) in
          ( name,
            Metrics.Histogram
              (Stats.of_moments ~count ~mean:(f "mean") ~m2:(f "m2")
                 ~mn:(f "min") ~mx:(f "max")) )
      | k -> parse_error "unknown kind %S" k)

(* ------------------------------------------------------------------ *)

let render fmt snap =
  match fmt with
  | Text -> Texttable.render (table snap)
  | Csv -> to_csv snap
  | Json -> to_json snap

let output ?path fmt snap =
  let content = render fmt snap in
  match path with
  | None -> print_string content
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content)
