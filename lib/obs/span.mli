(** Wall-clock span timing feeding {!Metrics} histograms.

    Spans are plain start timestamps — no allocation, safe to take in
    any domain.  The sink is a {!Metrics} registry, whose mutex makes
    concurrent [finish] calls from several domains safe.  The clock is
    [Unix.gettimeofday] with negative intervals clamped to zero, so
    reported durations are monotone even across clock steps. *)

val now : unit -> float
(** Seconds since the epoch.  Exposed so other layers (e.g.
    {!Prelude.Parmap} instrumentation) can share the same clock. *)

type span

val start : unit -> span

val elapsed : span -> float
(** Seconds since [start]; never negative. *)

val finish : Metrics.t -> string -> span -> unit
(** [finish m name span] observes {!elapsed} into histogram [name]. *)

val record : Metrics.t option -> string -> span -> unit
(** {!finish} when a registry is present; no-op otherwise. *)

val time : Metrics.t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, observing its duration (even on exceptions). *)
