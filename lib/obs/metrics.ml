module Stats = Prelude.Stats

type metric =
  | MCounter of { mutable c : int }
  | MGauge of { mutable g : float }
  | MHist of Stats.t

type t = {
  tbl : (string, metric) Hashtbl.t;
  lock : Mutex.t;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Stats.t

type snapshot = (string * value) list

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let kind_name = function
  | MCounter _ -> "counter"
  | MGauge _ -> "gauge"
  | MHist _ -> "histogram"

let wrong_kind name metric want =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name
       (kind_name metric) want)

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> Hashtbl.replace t.tbl name (MCounter { c = by })
      | Some (MCounter r) -> r.c <- r.c + by
      | Some m -> wrong_kind name m "counter")

let set_counter t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> Hashtbl.replace t.tbl name (MCounter { c = v })
      | Some (MCounter r) -> r.c <- v
      | Some m -> wrong_kind name m "counter")

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> 0
      | Some (MCounter r) -> r.c
      | Some m -> wrong_kind name m "counter")

let set t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> Hashtbl.replace t.tbl name (MGauge { g = v })
      | Some (MGauge r) -> r.g <- v
      | Some m -> wrong_kind name m "gauge")

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> nan
      | Some (MGauge r) -> r.g
      | Some m -> wrong_kind name m "gauge")

let observe t name x =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None ->
        let s = Stats.create () in
        Stats.add s x;
        Hashtbl.replace t.tbl name (MHist s)
      | Some (MHist s) -> Stats.add s x
      | Some m -> wrong_kind name m "histogram")

let histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | None -> None
      | Some (MHist s) -> Some (Stats.copy s)
      | Some m -> wrong_kind name m "histogram")

let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name m acc ->
           let v =
             match m with
             | MCounter r -> Counter r.c
             | MGauge r -> Gauge r.g
             | MHist s -> Histogram (Stats.copy s)
           in
           (name, v) :: acc)
        t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_values name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y -> Histogram (Stats.merge x y)
  | _ ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics.merge: %S has mismatched kinds" name)

(* both snapshots are sorted by name, so a linear merge suffices *)
let merge a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (na, va) :: ta, (nb, vb) :: tb ->
      let c = compare na nb in
      if c < 0 then go ta b ((na, va) :: acc)
      else if c > 0 then go a tb ((nb, vb) :: acc)
      else go ta tb ((na, merge_values na va vb) :: acc)
  in
  go a b []

let merge_all = function
  | [] -> []
  | s :: rest -> List.fold_left merge s rest

let merge_into t snap =
  List.iter
    (fun (name, v) ->
       match v with
       | Counter c -> incr ~by:c t name
       | Gauge g ->
         locked t (fun () ->
             match Hashtbl.find_opt t.tbl name with
             | None -> Hashtbl.replace t.tbl name (MGauge { g })
             | Some (MGauge r) -> r.g <- r.g +. g
             | Some m -> wrong_kind name m "gauge")
       | Histogram s ->
         locked t (fun () ->
             match Hashtbl.find_opt t.tbl name with
             | None -> Hashtbl.replace t.tbl name (MHist (Stats.copy s))
             | Some (MHist old) ->
               Hashtbl.replace t.tbl name (MHist (Stats.merge old s))
             | Some m -> wrong_kind name m "histogram"))
    snap

(* ------------------------------------------------------------------ *)
(* ambient registry *)

(* The ambient registry lets the CLI and bench harness switch on
   recording across every instrumented subsystem without threading a
   [?metrics] argument through each experiment.  It is written once at
   startup (before any domain is spawned) and only read afterwards, so a
   plain ref is safe; the registry itself is mutex-protected. *)
let ambient_ref : t option ref = ref None
let set_ambient o = ambient_ref := o
let ambient () = !ambient_ref

let resolve = function Some m -> Some m | None -> !ambient_ref
