(** Metric snapshot exporters: text table, CSV, line-oriented JSON.

    The CSV and JSON forms are lossless for counters, gauges and
    histogram moments (floats print as [%.17g]); {!of_csv} and
    {!of_json} invert them exactly, which the test-suite pins with
    round-trip properties.  Non-finite floats appear as [nan]/[inf]
    tokens (quoted in JSON).  Histograms export their Welford moments
    (count, mean, m2, min, max), not raw observations. *)

type format = Text | Csv | Json

val format_of_string : string -> (format, string) result
(** Parses ["text"], ["csv"], ["json"]. *)

val format_name : format -> string

val table : Metrics.snapshot -> Prelude.Texttable.t
(** Human-readable table: one row per metric. *)

val to_csv : Metrics.snapshot -> string
(** Header row [name,kind,value,count,mean,m2,min,max], one row per
    metric. *)

val of_csv : string -> Metrics.snapshot
(** Inverse of {!to_csv}.  @raise Failure on malformed input. *)

val to_json : Metrics.snapshot -> string
(** One flat JSON object per line, e.g.
    [{"name":"engine.served","kind":"counter","value":412}]. *)

val of_json : string -> Metrics.snapshot
(** Inverse of {!to_json}.  @raise Failure on malformed input. *)

val render : format -> Metrics.snapshot -> string

val output : ?path:string -> format -> Metrics.snapshot -> unit
(** {!render} to stdout, or to [path] when given. *)
