(** A resource-side slot table: one occupant per (resource, round).

    Carries the maximal acceptance rule the paper's local strategies
    use (a resource accepts a request into the {e earliest} free slot
    inside the request's window).  One implementation serves both the
    simulator-driven protocol state ({!Local}) and the live cluster's
    router mirror and per-node replicas, so simulation and live serving
    cannot disagree on the accept rule. *)

type 'a t

val create : unit -> 'a t
val find : 'a t -> res:int -> round:int -> 'a option
val mem : 'a t -> res:int -> round:int -> bool
val set : 'a t -> res:int -> round:int -> 'a -> unit
val free : 'a t -> res:int -> round:int -> unit

val take : 'a t -> res:int -> round:int -> 'a option
(** Remove and return the occupant, if any. *)

val try_accept :
  'a t -> round:int -> res:int -> arrival:int -> last:int -> 'a -> int option
(** Accept [v] into the earliest free slot of [res] within
    [max round arrival .. last]; returns the slot round, or [None] when
    every slot of the window is taken. *)

val fold : 'a t -> (res:int -> round:int -> 'a -> 'b -> 'b) -> 'b -> 'b
val clear : 'a t -> unit
