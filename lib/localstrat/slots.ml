(* The slot table a resource keeps under the local protocols: one
   occupant per (resource, round), with the maximal acceptance rule of
   Sec. 3.2 — a request is accepted into the earliest free slot of its
   window.  Shared between the simulator-driven protocol state
   (Local.state) and the live cluster's router mirror / node replicas,
   so both paths schedule with the same rule. *)

type 'a t = (int * int, 'a) Hashtbl.t

let create () = Hashtbl.create 128
let find t ~res ~round = Hashtbl.find_opt t (res, round)
let mem t ~res ~round = Hashtbl.mem t (res, round)
let set t ~res ~round v = Hashtbl.replace t (res, round) v
let free t ~res ~round = Hashtbl.remove t (res, round)

let take t ~res ~round =
  match Hashtbl.find_opt t (res, round) with
  | None -> None
  | Some v ->
    Hashtbl.remove t (res, round);
    Some v

let try_accept t ~round ~res ~arrival ~last v =
  let lo = max round arrival in
  let rec find r =
    if r > last then None
    else if Hashtbl.mem t (res, r) then find (r + 1)
    else Some r
  in
  match find lo with
  | None -> None
  | Some r ->
    Hashtbl.replace t (res, r) v;
    Some r

let fold t f acc = Hashtbl.fold (fun (res, round) v acc -> f ~res ~round v acc) t acc
let clear = Hashtbl.reset
