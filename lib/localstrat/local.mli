(** The paper's local (distributed) strategies (Sec. 3.2).

    Both run over {!Distnet.Net}: every request-to-resource exchange is a
    metered communication round with mailbox capacity [d] and LDF
    overflow, exactly the model the paper charges.  Decisions are taken
    only from information a resource or request legitimately holds.

    - {!fix} ([A_local_fix], Theorem 3.7, 2 communication rounds,
      competitive ratio exactly 2): new requests try their first
      alternative; each resource accepts a maximal set into its free
      slots; failures retry their second alternative once.  Assignments
      are final.

    - {!eager} ([A_local_eager], Theorem 3.8, at most 9 communication
      rounds, competitive ratio at most 5/3): phase 1 re-runs the fix
      protocol over {e all} unscheduled live requests; phase 2 lets
      requests scheduled in the future move onto a free current slot at
      their other resource; phase 3 lets a still-unscheduled request
      [q] rescue itself by re-homing the request [r] occupying its
      alternative's current slot onto [r]'s other resource and taking the
      freed slot, protected by a high-priority tag — tried at [q]'s first
      and then second alternative, with the retry overlapping the first
      attempt's final round. *)

type stats = {
  scheduling_rounds : int;   (** engine rounds stepped *)
  comm_rounds_total : int;
  comm_rounds_max : int;     (** max communication rounds in one engine round *)
  messages : int;
  bounced : int;
}

val fix : ?loss:float -> ?priority:(sender:int -> dst:int -> int) ->
  ?metrics:Obs.Metrics.t -> unit -> Sched.Strategy.factory
(** [priority] breaks the network's LDF ties (the adversarial knob of
    Theorem 3.7's lower bound).  [loss] (default 0) injects message
    loss into the network (see {!Distnet.Net.create}); the protocol
    treats drops as bounces and stays consistent, it just serves
    less.  [metrics] is handed to the underlying {!Distnet.Net}, so
    the network's [net.*] counters land in the caller's registry (the
    ambient one when omitted). *)

val eager : ?compact:bool -> ?loss:float ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?metrics:Obs.Metrics.t -> unit -> Sched.Strategy.factory
(** [compact] (default false) applies the paper's remark after the
    protocol description: raising the mailbox capacity to [2d - 2] lets
    phase 2's cancellation round travel together with phase 3's first
    rival round, saving one communication round (at most 8 per
    scheduling round instead of 9). *)

val fix_with_stats : ?loss:float ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?metrics:Obs.Metrics.t -> unit ->
  Sched.Strategy.factory * (unit -> stats)
(** As {!fix}, plus a live accessor for the traffic meters of the last
    created strategy instance. *)

val eager_with_stats : ?compact:bool -> ?loss:float ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?metrics:Obs.Metrics.t -> unit ->
  Sched.Strategy.factory * (unit -> stats)
