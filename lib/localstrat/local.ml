module Request = Sched.Request
module Strategy = Sched.Strategy
module Net = Distnet.Net

type stats = {
  scheduling_rounds : int;
  comm_rounds_total : int;
  comm_rounds_max : int;
  messages : int;
  bounced : int;
}

type state = {
  n : int;
  d : int;
  net : Net.t;
  slots : int Slots.t; (* (resource, round) -> request id *)
  assigned : (int, int * int) Hashtbl.t; (* id -> (resource, round) *)
  active : (int, Request.t) Hashtbl.t;
  mutable sched_rounds : int;
  mutable max_cr : int;
}

let make_state ~n ~d ~capacity ~loss ~priority ~metrics =
  {
    n;
    d;
    net =
      Net.create ~n ~capacity ?priority ~loss
        ~loss_rng:(Prelude.Rng.create ~seed:1) ?metrics ();
    slots = Slots.create ();
    assigned = Hashtbl.create 128;
    active = Hashtbl.create 128;
    sched_rounds = 0;
    max_cr = 0;
  }

let stats_of st =
  {
    scheduling_rounds = st.sched_rounds;
    comm_rounds_total = Net.comm_rounds st.net;
    comm_rounds_max = st.max_cr;
    messages = Net.messages_sent st.net;
    bounced = Net.messages_bounced st.net;
  }

(* A resource accepts a request into its earliest free slot inside the
   request's window (a maximal acceptance rule, Slots.try_accept).
   Returns the slot. *)
let try_accept st ~round res (r : Request.t) =
  match
    Slots.try_accept st.slots ~round ~res ~arrival:r.Request.arrival
      ~last:(Request.last_round r) r.Request.id
  with
  | None -> None
  | Some t ->
    Hashtbl.replace st.assigned r.Request.id (res, t);
    Some t

(* Run one fix-style communication round: [senders] try alternative
   index [alt]; returns the requests that remain unscheduled (bounced by
   the network or rejected by a full resource). *)
let offer_round st ~round ~alt senders =
  let msgs =
    List.filter_map
      (fun (r : Request.t) ->
         if alt >= Array.length r.Request.alternatives then None
         else
           Some
             {
               Net.sender = r.Request.id;
               dst = r.Request.alternatives.(alt);
               deadline_key = Request.last_round r;
               tagged = false;
               payload = r;
             })
      senders
  in
  let results = Net.exchange st.net msgs in
  (* requests with no message for this alternative stay failed *)
  let skipped =
    List.filter
      (fun (r : Request.t) -> alt >= Array.length r.Request.alternatives)
      senders
  in
  (* each resource processes its delivered requests in EDF order *)
  let delivered =
    List.filter_map (fun (m, ok) -> if ok then Some m else None) results
  in
  let by_deadline =
    List.sort
      (fun a b ->
         if a.Net.deadline_key <> b.Net.deadline_key then
           compare a.Net.deadline_key b.Net.deadline_key
         else compare a.Net.sender b.Net.sender)
      delivered
  in
  let rejected =
    List.filter_map
      (fun m ->
         match try_accept st ~round m.Net.dst m.Net.payload with
         | Some _ -> None
         | None -> Some m.Net.payload)
      by_deadline
  in
  let bounced =
    List.filter_map (fun (m, ok) -> if ok then None else Some m.Net.payload)
      results
  in
  skipped @ bounced @ rejected

let expire st ~round =
  let dead =
    Hashtbl.fold
      (fun id r acc -> if Request.last_round r < round then id :: acc else acc)
      st.active []
  in
  List.iter
    (fun id ->
       Hashtbl.remove st.active id;
       (match Hashtbl.find_opt st.assigned id with
        | Some (res, t) -> Slots.free st.slots ~res ~round:t
        | None -> ());
       Hashtbl.remove st.assigned id)
    dead

let collect_serves st ~round =
  let serves = ref [] in
  for res = 0 to st.n - 1 do
    match Slots.take st.slots ~res ~round with
    | None -> ()
    | Some id ->
      Hashtbl.remove st.assigned id;
      Hashtbl.remove st.active id;
      serves := { Strategy.request = id; resource = res } :: !serves
  done;
  List.rev !serves

(* ------------------------------------------------------------------ *)
(* A_local_fix *)

let fix_step st ~round ~arrivals =
  st.sched_rounds <- st.sched_rounds + 1;
  let cr0 = Net.comm_rounds st.net in
  expire st ~round;
  Array.iter
    (fun (r : Request.t) -> Hashtbl.replace st.active r.Request.id r)
    arrivals;
  let newcomers = Array.to_list arrivals in
  let failed = offer_round st ~round ~alt:0 newcomers in
  let _still_failed = offer_round st ~round ~alt:1 failed in
  st.max_cr <- max st.max_cr (Net.comm_rounds st.net - cr0);
  collect_serves st ~round

(* ------------------------------------------------------------------ *)
(* A_local_eager *)

(* Phase 2, selection round: requests scheduled in the future ask
   their other resource for its free current slot; each such resource
   acknowledges one mover.  Returns the accepted moves; the
   cancellation round that releases the old slots is built by the
   caller (so the compact variant can merge it with phase 3). *)
let eager_phase2_select st ~round =
  let movers =
    Hashtbl.fold
      (fun id (res, t) acc ->
         if t > round then
           match Hashtbl.find_opt st.active id with
           | Some r when Array.length r.Request.alternatives >= 2 ->
             let other =
               if r.Request.alternatives.(0) = res then
                 r.Request.alternatives.(1)
               else r.Request.alternatives.(0)
             in
             (r, res, t, other) :: acc
           | Some _ | None -> acc
         else acc)
      st.assigned []
  in
  let msgs =
    List.map
      (fun ((r : Request.t), _res, _t, other) ->
         {
           Net.sender = r.Request.id;
           dst = other;
           deadline_key = Request.last_round r;
           tagged = false;
           payload = ();
         })
      movers
  in
  let results = Net.exchange st.net msgs in
  (* each resource with a free current slot acknowledges one mover *)
  let chosen = Hashtbl.create 16 in
  List.iter
    (fun (m, ok) ->
       if ok && not (Slots.mem st.slots ~res:m.Net.dst ~round) then
         match Hashtbl.find_opt chosen m.Net.dst with
         | Some prev when prev <= m.Net.sender -> ()
         | Some _ | None -> Hashtbl.replace chosen m.Net.dst m.Net.sender)
    results;
  List.filter
    (fun ((r : Request.t), _res, _t, other) ->
       Hashtbl.find_opt chosen other = Some r.Request.id)
    movers

type move = Request.t * int * int * int (* r, old res, old t, new res *)

let apply_move st ~round ((r : Request.t), res, t, other) =
  Slots.free st.slots ~res ~round:t;
  Slots.set st.slots ~res:other ~round r.Request.id;
  Hashtbl.replace st.assigned r.Request.id (other, round)

(* Phase 3 plumbing.  A successful swap hands the current slot of
   [sw_res] from its occupant [sw_r] (already re-homed) to the rescuing
   request [sw_q]; the tagged notification travels one communication
   round after the rehome acknowledgment. *)
type swap = {
  sw_q : Request.t;
  sw_res : int; (* the resource whose current slot changes hands *)
  sw_r : int; (* previous occupant, already re-homed *)
}

type p3_payload =
  | Rival of Request.t
  | Swap of swap
  | Cancel of move

let swap_msgs swaps =
  List.map
    (fun s ->
       {
         Net.sender = s.sw_q.Request.id;
         dst = s.sw_res;
         deadline_key = Request.last_round s.sw_q;
         tagged = true;
         payload = Swap s;
       })
    swaps

(* cancellations release an already-acknowledged move: give them the
   highest LDF rank so the capacity cut can never break protocol state
   (at most d-1 target one resource, below every capacity we use) *)
let cancel_msgs moves =
  List.map
    (fun (((r : Request.t), res, _t, _other) as mv) ->
       {
         Net.sender = r.Request.id;
         dst = res;
         deadline_key = max_int;
         tagged = false;
         payload = Cancel mv;
       })
    moves

let rival_msgs ~alt pending =
  List.filter_map
    (fun (q : Request.t) ->
       if alt >= Array.length q.Request.alternatives then None
       else
         Some
           {
             Net.sender = q.Request.id;
             dst = q.Request.alternatives.(alt);
             deadline_key = Request.last_round q;
             tagged = false;
             payload = Rival q;
           })
    pending

let apply_swap st ~round ~swapped s =
  Slots.set st.slots ~res:s.sw_res ~round s.sw_q.Request.id;
  Hashtbl.replace st.assigned s.sw_q.Request.id (s.sw_res, round);
  swapped.(s.sw_res) <- true

(* One communication round carrying tagged swap notifications (from the
   previous attempt) together with this attempt's rival requests.
   Returns the grants: resource -> (q, r, S_r). *)
let rival_round st ~round ~swapped ~prev_swaps ~extra ~alt pending =
  let msgs = swap_msgs prev_swaps @ extra @ rival_msgs ~alt pending in
  let results = Net.exchange st.net msgs in
  (* tagged messages are always delivered, and cancellations outrank
     everything in the LDF order; apply both before computing grants so
     the check sees the final slot occupancy *)
  List.iter
    (fun (m, ok) ->
       match m.Net.payload with
       | Swap s ->
         assert ok;
         apply_swap st ~round ~swapped s
       | Cancel mv ->
         (* a dropped cancellation simply aborts the move: the mover
            keeps its old slot and the acknowledging resource idles *)
         if ok then apply_move st ~round mv
       | Rival _ -> ())
    results;
  let grants = Hashtbl.create 16 in
  List.iter
    (fun (m, ok) ->
       match m.Net.payload with
       | Swap _ | Cancel _ -> ()
       | Rival q ->
         let res = m.Net.dst in
         if ok && (not swapped.(res)) && not (Hashtbl.mem grants res) then
           match Slots.find st.slots ~res ~round with
           | None -> ()
           | Some r_id ->
             (match Hashtbl.find_opt st.active r_id with
              | None -> ()
              | Some r when Array.length r.Request.alternatives < 2 -> ()
              | Some r ->
                let s_r =
                  if r.Request.alternatives.(0) = res then
                    r.Request.alternatives.(1)
                  else r.Request.alternatives.(0)
                in
                Hashtbl.replace grants res (q, r, s_r)))
    results;
  grants

(* The rehome communication round: each granted rival forwards the slot
   occupant to its other resource, which accepts into a free slot of the
   occupant's window.  Returns the successful swaps. *)
let rehome_round st ~round grants =
  let msgs =
    Hashtbl.fold
      (fun res ((q : Request.t), (r : Request.t), s_r) acc ->
         {
           Net.sender = q.Request.id;
           dst = s_r;
           deadline_key = Request.last_round r;
           tagged = false;
           payload = (q, r, res);
         }
         :: acc)
      grants []
  in
  let results = Net.exchange st.net msgs in
  let ordered =
    List.sort
      (fun (a, _) (b, _) ->
         if a.Net.deadline_key <> b.Net.deadline_key then
           compare a.Net.deadline_key b.Net.deadline_key
         else compare a.Net.sender b.Net.sender)
      results
  in
  List.filter_map
    (fun (m, ok) ->
       if not ok then None
       else begin
         let q, (r : Request.t), res = m.Net.payload in
         if Slots.find st.slots ~res ~round <> Some r.Request.id then
           None
         else
           match try_accept st ~round m.Net.dst r with
           | Some _ ->
             (* r re-homed; its old slot is freed pending the tagged
                swap notification *)
             Slots.free st.slots ~res ~round;
             Some { sw_q = q; sw_res = res; sw_r = r.Request.id }
           | None -> None
       end)
    ordered

let eager_step st ~compact ~round ~arrivals =
  st.sched_rounds <- st.sched_rounds + 1;
  let cr0 = Net.comm_rounds st.net in
  expire st ~round;
  Array.iter
    (fun (r : Request.t) -> Hashtbl.replace st.active r.Request.id r)
    arrivals;
  let unscheduled () =
    Hashtbl.fold
      (fun id r acc ->
         if Hashtbl.mem st.assigned id then acc else r :: acc)
      st.active []
    |> List.sort (fun (a : Request.t) b -> compare a.Request.id b.Request.id)
  in
  (* phase 1 (2 comm rounds): the fix protocol over all unscheduled
     live requests *)
  let failed = offer_round st ~round ~alt:0 (unscheduled ()) in
  let _ = offer_round st ~round ~alt:1 failed in
  (* phase 2: pull future-scheduled requests into free current slots at
     their other resource.  One communication round selects the movers;
     the cancellation round is either dedicated (paper default, 9 comm
     rounds total) or -- in the compact variant with capacity 2d-2 --
     merged into phase 3's first round (8 total) *)
  let moves = eager_phase2_select st ~round in
  let pending_cancels =
    if compact then cancel_msgs moves
    else begin
      let results = Net.exchange st.net (cancel_msgs moves) in
      List.iter
        (fun ((m : p3_payload Net.message), ok) ->
           match m.Net.payload with
           | Cancel mv -> if ok then apply_move st ~round mv
           | Rival _ | Swap _ -> ())
        results;
      []
    end
  in
  (* phase 3 (5 comm rounds): two swap attempts; attempt 1's tagged
     notifications share a round with attempt 2's rival requests *)
  let swapped = Array.make st.n false in
  let grants1 =
    rival_round st ~round ~swapped ~prev_swaps:[] ~extra:pending_cancels
      ~alt:0 (unscheduled ())
  in
  let swaps1 = rehome_round st ~round grants1 in
  let won1 = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace won1 s.sw_q.Request.id ()) swaps1;
  let pending2 =
    List.filter
      (fun (q : Request.t) -> not (Hashtbl.mem won1 q.Request.id))
      (unscheduled ())
  in
  let grants2 =
    rival_round st ~round ~swapped ~prev_swaps:swaps1 ~extra:[] ~alt:1
      pending2
  in
  let swaps2 = rehome_round st ~round grants2 in
  (* final communication round: attempt 2's tagged notifications *)
  let results = Net.exchange st.net (swap_msgs swaps2) in
  List.iter
    (fun (m, _) ->
       match m.Net.payload with
       | Swap s -> apply_swap st ~round ~swapped s
       | Rival _ | Cancel _ -> ())
    results;
  st.max_cr <- max st.max_cr (Net.comm_rounds st.net - cr0);
  collect_serves st ~round

(* ------------------------------------------------------------------ *)
(* factories *)

let make_factory ~name ~capacity_of ~step_of ?(loss = 0.0) ?priority
    ?metrics () =
  let latest = ref None in
  let factory : Strategy.factory =
   fun ~n ~d ->
    let st =
      make_state ~n ~d ~capacity:(capacity_of d) ~loss ~priority ~metrics
    in
    latest := Some st;
    { Strategy.name; step = step_of st }
  in
  (factory, latest)

let stats_fn latest name () =
  match !latest with
  | Some st -> stats_of st
  | None -> invalid_arg (name ^ ": no run yet")

let fix_with_stats ?loss ?priority ?metrics () =
  let factory, latest =
    make_factory ~name:"A_local_fix" ~capacity_of:(fun d -> d)
      ~step_of:(fun st ~round ~arrivals -> fix_step st ~round ~arrivals)
      ?loss ?priority ?metrics ()
  in
  (factory, stats_fn latest "Local.fix_with_stats")

let eager_with_stats ?(compact = false) ?loss ?priority ?metrics () =
  let name = if compact then "A_local_eager_compact" else "A_local_eager" in
  let capacity_of d = if compact then max 1 ((2 * d) - 2) else d in
  let factory, latest =
    make_factory ~name ~capacity_of
      ~step_of:(fun st ~round ~arrivals ->
          eager_step st ~compact ~round ~arrivals)
      ?loss ?priority ?metrics ()
  in
  (factory, stats_fn latest "Local.eager_with_stats")

let fix ?loss ?priority ?metrics () =
  fst (fix_with_stats ?loss ?priority ?metrics ())

let eager ?compact ?loss ?priority ?metrics () =
  fst (eager_with_stats ?compact ?loss ?priority ?metrics ())
