(* The message-budget accounting shared by the synchronous simulator
   (Net.exchange) and the live cluster transport
   (Cluster.Transport.exchange): one implementation of the paper's
   per-resource mailbox rule, so the two paths cannot drift apart.  The
   drop-set parity test in test_cluster pins the agreement. *)

type envelope = {
  b_sender : int;
  b_dst : int;
  b_deadline : int;
  b_tagged : bool;
}

let deliver ~n ~capacity ~priority indexed =
  let delivered = Hashtbl.create 64 in
  (* bucket by destination, preserving nothing about order: ties inside
     a bucket fall back to the global message index, so bucket
     construction order is immaterial *)
  let buckets = Array.make n [] in
  List.iter
    (fun ((_, e) as ie) ->
       if e.b_dst < 0 || e.b_dst >= n then
         invalid_arg "Budget.deliver: destination out of range";
       buckets.(e.b_dst) <- ie :: buckets.(e.b_dst))
    indexed;
  Array.iteri
    (fun dst inbox ->
       let tagged, untagged =
         List.partition (fun (_, e) -> e.b_tagged) inbox
       in
       List.iter (fun (i, _) -> Hashtbl.replace delivered i ()) tagged;
       (* LDF: keep the [capacity] messages with the latest deadlines;
          ties by higher priority, then lower sender id, then arrival
          order *)
       let ranked =
         List.sort
           (fun (ia, a) (ib, b) ->
              if a.b_deadline <> b.b_deadline then
                compare b.b_deadline a.b_deadline
              else begin
                let pa = priority ~sender:a.b_sender ~dst
                and pb = priority ~sender:b.b_sender ~dst in
                if pa <> pb then compare pb pa
                else if a.b_sender <> b.b_sender then
                  compare a.b_sender b.b_sender
                else compare ia ib
              end)
           untagged
       in
       List.iteri
         (fun rank (i, _) ->
            if rank < capacity then Hashtbl.replace delivered i ())
         ranked)
    buckets;
  delivered
