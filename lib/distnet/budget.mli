(** The per-resource mailbox budget of Sec. 1.3, factored out so the
    synchronous simulator ({!Net.exchange}) and the live cluster
    transport ([Cluster.Transport]) apply {e the same} drop rule — the
    agreement the live-path parity test pins.

    Rule, per destination and per communication round: tagged messages
    are always delivered; the untagged ones compete for [capacity]
    slots, kept latest-deadline-first (LDF) with ties broken by higher
    priority, then lower sender id, then arrival order (the message's
    index). *)

type envelope = {
  b_sender : int;
  b_dst : int;
  b_deadline : int;  (** absolute deadline key used by the LDF rule *)
  b_tagged : bool;   (** bypasses the capacity cut *)
}

val deliver :
  n:int ->
  capacity:int ->
  priority:(sender:int -> dst:int -> int) ->
  (int * envelope) list ->
  (int, unit) Hashtbl.t
(** [deliver ~n ~capacity ~priority indexed] returns the set of indices
    (first components) kept by the mailbox rule.  Indices identify
    messages — the same (sender, dst) pair may appear several times and
    each copy wins or loses on its own.
    @raise Invalid_argument on a destination outside [0 .. n-1]. *)
