type 'a message = {
  sender : int;
  dst : int;
  deadline_key : int;
  tagged : bool;
  payload : 'a;
}

(* Per-instance meters are plain refs: a network belongs to one protocol
   run, and its budget accounting (comm_rounds deltas in localstrat) must
   not see traffic from other networks.  The metrics registry only
   receives copies for telemetry — it may be the ambient one, shared by
   every network in the process (and, under the job runner, by every
   domain), so reading budgets back from it would race. *)
type meters = {
  mutable rounds : int;
  mutable sent : int;
  mutable delivered : int;
  mutable bounced : int;
  mutable dropped : int;
}

type t = {
  n : int;
  capacity : int;
  priority : sender:int -> dst:int -> int;
  loss : float;
  loss_rng : Prelude.Rng.t;
  metrics : Obs.Metrics.t;
  meters : meters;
}

let k_rounds = "net.comm_rounds"
let k_sent = "net.sent"
let k_delivered = "net.delivered"
let k_bounced = "net.bounced"
let k_dropped = "net.dropped"

let create ~n ~capacity ?(priority = fun ~sender:_ ~dst:_ -> 0)
    ?(loss = 0.0) ?loss_rng ?metrics () =
  if n < 1 then invalid_arg "Net.create: n must be >= 1";
  if capacity < 1 then invalid_arg "Net.create: capacity must be >= 1";
  if not (loss >= 0.0 && loss <= 1.0) then
    invalid_arg "Net.create: loss out of [0, 1]";
  let loss_rng =
    match loss_rng with
    | Some rng -> rng
    | None -> Prelude.Rng.create ~seed:0
  in
  let metrics =
    match Obs.Metrics.resolve metrics with
    | Some m -> m
    | None -> Obs.Metrics.create ()
  in
  let meters =
    { rounds = 0; sent = 0; delivered = 0; bounced = 0; dropped = 0 }
  in
  { n; capacity; priority; loss; loss_rng; metrics; meters }

let exchange t msgs =
  match msgs with
  | [] -> []
  | _ :: _ ->
    t.meters.rounds <- t.meters.rounds + 1;
    t.meters.sent <- t.meters.sent + List.length msgs;
    Obs.Metrics.incr t.metrics k_rounds;
    Obs.Metrics.incr ~by:(List.length msgs) t.metrics k_sent;
    (* failure injection: drop untagged messages before the mailbox;
       tagged messages keep their delivery guarantee *)
    let dropped = ref 0 in
    let survives m =
      m.tagged || t.loss = 0.0
      || Prelude.Rng.float t.loss_rng 1.0 >= t.loss
      || begin
        incr dropped;
        false
      end
    in
    (* messages are identified by their position in the input list: the
       same (sender, dst) pair may legally appear several times in one
       exchange, and each copy is delivered or bounced on its own *)
    let indexed = List.mapi (fun i m -> (i, m)) msgs in
    (* bucket by destination *)
    let buckets = Array.make t.n [] in
    List.iter
      (fun ((_, m) as im) ->
         if m.dst < 0 || m.dst >= t.n then
           invalid_arg "Net.exchange: destination out of range";
         if survives m then buckets.(m.dst) <- im :: buckets.(m.dst))
      indexed;
    let delivered = Hashtbl.create 64 in
    Array.iteri
      (fun dst inbox ->
         let tagged, untagged =
           List.partition (fun (_, m) -> m.tagged) inbox
         in
         List.iter (fun (i, _) -> Hashtbl.replace delivered i ()) tagged;
         (* LDF: keep the [capacity] messages with the latest deadlines;
            ties by higher priority, then lower sender id, then arrival
            order *)
         let ranked =
           List.sort
             (fun (ia, a) (ib, b) ->
                if a.deadline_key <> b.deadline_key then
                  compare b.deadline_key a.deadline_key
                else begin
                  let pa = t.priority ~sender:a.sender ~dst
                  and pb = t.priority ~sender:b.sender ~dst in
                  if pa <> pb then compare pb pa
                  else if a.sender <> b.sender then compare a.sender b.sender
                  else compare ia ib
                end)
             untagged
         in
         List.iteri
           (fun rank (i, _) ->
              if rank < t.capacity then Hashtbl.replace delivered i ())
           ranked)
      buckets;
    let bounced = ref 0 in
    let results =
      List.map
        (fun (i, m) ->
           let ok = Hashtbl.mem delivered i in
           if not ok then incr bounced;
           (m, ok))
        indexed
    in
    t.meters.delivered <- t.meters.delivered + (List.length msgs - !bounced);
    t.meters.bounced <- t.meters.bounced + !bounced;
    t.meters.dropped <- t.meters.dropped + !dropped;
    Obs.Metrics.incr ~by:(List.length msgs - !bounced) t.metrics k_delivered;
    Obs.Metrics.incr ~by:!bounced t.metrics k_bounced;
    Obs.Metrics.incr ~by:!dropped t.metrics k_dropped;
    results

let tick t =
  t.meters.rounds <- t.meters.rounds + 1;
  Obs.Metrics.incr t.metrics k_rounds

let comm_rounds t = t.meters.rounds
let messages_sent t = t.meters.sent
let messages_bounced t = t.meters.bounced
let messages_dropped t = t.meters.dropped
let metrics t = t.metrics

let reset_counters t =
  t.meters.rounds <- 0;
  t.meters.sent <- 0;
  t.meters.delivered <- 0;
  t.meters.bounced <- 0;
  t.meters.dropped <- 0
