type 'a message = {
  sender : int;
  dst : int;
  deadline_key : int;
  tagged : bool;
  payload : 'a;
}

(* Per-instance meters are plain refs: a network belongs to one protocol
   run, and its budget accounting (comm_rounds deltas in localstrat) must
   not see traffic from other networks.  The metrics registry only
   receives copies for telemetry — it may be the ambient one, shared by
   every network in the process (and, under the job runner, by every
   domain), so reading budgets back from it would race. *)
type meters = {
  mutable rounds : int;
  mutable sent : int;
  mutable delivered : int;
  mutable bounced : int;
  mutable dropped : int;
}

type t = {
  n : int;
  capacity : int;
  priority : sender:int -> dst:int -> int;
  loss : float;
  loss_rng : Prelude.Rng.t;
  metrics : Obs.Metrics.t;
  meters : meters;
}

let k_rounds = "net.comm_rounds"
let k_sent = "net.sent"
let k_delivered = "net.delivered"
let k_bounced = "net.bounced"
let k_dropped = "net.dropped"

let create ~n ~capacity ?(priority = fun ~sender:_ ~dst:_ -> 0)
    ?(loss = 0.0) ?loss_rng ?metrics () =
  if n < 1 then invalid_arg "Net.create: n must be >= 1";
  if capacity < 1 then invalid_arg "Net.create: capacity must be >= 1";
  if not (loss >= 0.0 && loss <= 1.0) then
    invalid_arg "Net.create: loss out of [0, 1]";
  let loss_rng =
    match loss_rng with
    | Some rng -> rng
    | None -> Prelude.Rng.create ~seed:0
  in
  let metrics =
    match Obs.Metrics.resolve metrics with
    | Some m -> m
    | None -> Obs.Metrics.create ()
  in
  let meters =
    { rounds = 0; sent = 0; delivered = 0; bounced = 0; dropped = 0 }
  in
  { n; capacity; priority; loss; loss_rng; metrics; meters }

let exchange t msgs =
  match msgs with
  | [] -> []
  | _ :: _ ->
    t.meters.rounds <- t.meters.rounds + 1;
    t.meters.sent <- t.meters.sent + List.length msgs;
    Obs.Metrics.incr t.metrics k_rounds;
    Obs.Metrics.incr ~by:(List.length msgs) t.metrics k_sent;
    (* failure injection: drop untagged messages before the mailbox;
       tagged messages keep their delivery guarantee *)
    let dropped = ref 0 in
    let survives m =
      m.tagged || t.loss = 0.0
      || Prelude.Rng.float t.loss_rng 1.0 >= t.loss
      || begin
        incr dropped;
        false
      end
    in
    (* messages are identified by their position in the input list: the
       same (sender, dst) pair may legally appear several times in one
       exchange, and each copy is delivered or bounced on its own.  The
       mailbox rule itself lives in Budget.deliver, shared with the live
       cluster transport. *)
    let indexed = List.mapi (fun i m -> (i, m)) msgs in
    let envelopes =
      List.filter_map
        (fun (i, m) ->
           if m.dst < 0 || m.dst >= t.n then
             invalid_arg "Net.exchange: destination out of range";
           if survives m then
             Some
               ( i,
                 {
                   Budget.b_sender = m.sender;
                   b_dst = m.dst;
                   b_deadline = m.deadline_key;
                   b_tagged = m.tagged;
                 } )
           else None)
        indexed
    in
    let delivered =
      Budget.deliver ~n:t.n ~capacity:t.capacity ~priority:t.priority
        envelopes
    in
    let bounced = ref 0 in
    let results =
      List.map
        (fun (i, m) ->
           let ok = Hashtbl.mem delivered i in
           if not ok then incr bounced;
           (m, ok))
        indexed
    in
    t.meters.delivered <- t.meters.delivered + (List.length msgs - !bounced);
    t.meters.bounced <- t.meters.bounced + !bounced;
    t.meters.dropped <- t.meters.dropped + !dropped;
    Obs.Metrics.incr ~by:(List.length msgs - !bounced) t.metrics k_delivered;
    Obs.Metrics.incr ~by:!bounced t.metrics k_bounced;
    Obs.Metrics.incr ~by:!dropped t.metrics k_dropped;
    results

let tick t =
  t.meters.rounds <- t.meters.rounds + 1;
  Obs.Metrics.incr t.metrics k_rounds

let comm_rounds t = t.meters.rounds
let messages_sent t = t.meters.sent
let messages_bounced t = t.meters.bounced
let messages_dropped t = t.meters.dropped
let metrics t = t.metrics

let reset_counters t =
  t.meters.rounds <- 0;
  t.meters.sent <- 0;
  t.meters.delivered <- 0;
  t.meters.bounced <- 0;
  t.meters.dropped <- 0
