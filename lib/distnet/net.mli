(** The paper's communication model for local strategies (Sec. 1.3).

    Requests and resources exchange fixed-size messages in synchronous
    {e communication rounds}.  Per communication round, at most
    [capacity] ([= d] in the paper) messages reach each resource; when
    more are addressed to it, the resource receives those with the
    latest deadlines (LDF) — ties resolved by a caller-supplied priority,
    higher first, then lower sender id — and the others {e bounce}: their
    senders are notified of the failure.  A message carrying the
    high-priority [tagged] flag is always delivered first
    ([A_local_eager]'s swap tag; the paper argues a resource receives at
    most one such message per round).

    Responses (resource to request) are not capacity-limited, matching
    the paper's asymmetric accounting, and are not modelled explicitly:
    protocol code simply reads the delivery outcome.

    The module also meters traffic: communication rounds and message
    counts, so tests can check the protocols' budgets (2 rounds for
    [A_local_fix], at most 9 for [A_local_eager]) as measurements rather
    than assumptions.  Each network carries its own private meters (the
    accessors below), and additionally mirrors every increment into an
    {!Obs.Metrics} registry (counters [net.comm_rounds], [net.sent],
    [net.delivered], [net.bounced], [net.dropped]) for telemetry.  The
    accessors never read the registry: the registry may be the ambient
    one, shared by every network in the process — including networks
    running concurrently in other domains under the job runner — so
    budget accounting must come from the per-instance meters. *)

type 'a message = {
  sender : int;      (** request id (or any sender key for priorities) *)
  dst : int;         (** resource index *)
  deadline_key : int;
      (** absolute deadline (last servable round) used by the LDF rule *)
  tagged : bool;     (** high-priority tag: bypasses the capacity cut *)
  payload : 'a;
}

type t

val create : n:int -> capacity:int ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?loss:float -> ?loss_rng:Prelude.Rng.t ->
  ?metrics:Obs.Metrics.t -> unit -> t
(** A network over [n] resources.  [priority] breaks LDF ties (higher
    kept); it defaults to constant 0 (so ties fall to lower sender id).

    [loss] (default 0.0) drops each untagged message independently with
    the given probability {e before} the capacity rule — failure
    injection for robustness studies.  The local protocols treat a
    dropped message exactly like a capacity bounce, so they stay
    consistent at any loss rate (they just serve less).  Tagged
    messages are never dropped, matching their delivery guarantee in
    the paper.  [loss_rng] seeds the drop coin (fresh seed 0 if
    omitted).

    [metrics] is the registry the traffic counters are mirrored into;
    when omitted the ambient registry ({!Obs.Metrics.set_ambient}) is
    used if set, else a fresh private one.  Networks sharing a registry
    aggregate their counters there; each network's own meters (the
    accessors below) stay private to it.
    @raise Invalid_argument if [n < 1], [capacity < 1] or
    [loss] is outside [\[0, 1\]]. *)

val exchange : t -> 'a message list -> ('a message * bool) list
(** Execute one communication round: returns each message paired with
    [true] (delivered) or [false] (bounced by the capacity rule).
    Tagged messages are delivered before untagged ones and do not count
    against the capacity (per the paper's note that at most one arrives
    per resource); untagged messages then compete for [capacity] slots.
    Each message is delivered or bounced individually, keyed by its
    position in the list — several messages with the same sender and
    destination in one exchange are distinct (LDF ties among them break
    by list order).  Counts one communication round if the list is
    non-empty, zero otherwise. *)

val tick : t -> unit
(** Count a communication round that carries no request-to-resource
    traffic (a pure response round a protocol still spends). *)

val comm_rounds : t -> int
(** Communication rounds so far. *)

val messages_sent : t -> int
val messages_bounced : t -> int
(** Bounced = not delivered, whether by the capacity cut or by loss
    injection. *)

val messages_dropped : t -> int
(** The loss-injected subset of the bounces. *)

val metrics : t -> Obs.Metrics.t
(** The registry this network's counters are mirrored into. *)

val reset_counters : t -> unit
(** Zero this network's private meters.  The metrics registry is
    untouched: it is cumulative telemetry, possibly shared. *)
