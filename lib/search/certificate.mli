(** Committable worst-case certificates.

    A certificate packages everything needed to independently re-verify
    a ratio the search claims: the strategy, the claimed OPT and ALG,
    the per-request bias tags, and the instance itself in the
    {!Sched.Codec} rsp/1 format (so the embedded block replays through
    every tool that speaks rsp/1, including [reqsched load]).

    Format (one record per line; [tag] lines only for non-neutral
    tags):
    {v
    search-cert rsp/1 strategy=A_fix opt=3 alg=2 ratio=3/2
    tag 0 late
    instance rsp/1 n=2 d=2 requests=3
    req 0 0,1 2
    ...
    end
    v}

    {!check} is the trust anchor of the whole search layer: it rebuilds
    the bias from the tags, replays the instance through
    {!Sched.Engine.run} under {e both} solvers, recomputes OPT with
    {!Offline.Opt_stream}, and accepts only if every claim matches and
    the solvers agree.  Search results are only ever reported after
    their certificate checks, so transposition pruning and attacker
    heuristics can never make a {e wrong} claim — only miss a deeper
    one. *)

type t = {
  strategy : string;           (** paper name *)
  opt : int;
  alg : int;
  tags : Move.tag array;       (** id-indexed, length = request count *)
  instance : Sched.Instance.t;
}

val ratio : t -> Prelude.Rat.t
(** [opt/alg] exactly. @raise Division_by_zero when [alg = 0]. *)

val v :
  strategy:string -> opt:int -> alg:int -> tags:Move.tag array ->
  Sched.Instance.t -> t
(** @raise Invalid_argument if [tags] length differs from the request
    count. *)

val of_prefix :
  strategy:Game.strategy -> n:int -> d:int -> opt:int -> alg:int ->
  Game.prefix -> t
(** Certificate for a search state ({!Game.realise} underneath). *)

val render : t -> string
val parse : string -> (t, string) result
(** Inverse of {!render}; also rejects a header ratio inconsistent with
    the claimed [opt]/[alg]. *)

val check : ?metrics:Obs.Metrics.t -> t -> (unit, string) result
(** Replay and re-verify every claim (see above).  [Error] explains the
    first mismatch.  Records [search.certificates] on success. *)

val save : path:string -> t -> unit
(** {!render} to a file. @raise Sys_error on I/O failure. *)

val load : path:string -> (t, string) result
