module Global = Strategies.Global

type strategy = {
  name : string;
  key : string;
  build :
    solver:Global.solver -> bias:Sched.Strategy.bias -> Sched.Strategy.factory;
}

let strategies =
  [
    { name = "A_fix"; key = "fix";
      build = (fun ~solver ~bias -> Global.fix ~solver ~bias ()) };
    { name = "A_current"; key = "current";
      build = (fun ~solver ~bias -> Global.current ~solver ~bias ()) };
    { name = "A_fix_balance"; key = "fix_balance";
      build = (fun ~solver ~bias -> Global.fix_balance ~solver ~bias ()) };
    { name = "A_eager"; key = "eager";
      build = (fun ~solver ~bias -> Global.eager ~solver ~bias ()) };
    { name = "A_balance"; key = "balance";
      build = (fun ~solver ~bias -> Global.balance ~solver ~bias ()) };
  ]

let strategy_of_name s =
  match
    List.find_opt (fun st -> String.equal st.key s || String.equal st.name s)
      strategies
  with
  | Some st -> Ok st
  | None ->
    Error
      (Printf.sprintf "unknown strategy %S (expected one of %s)" s
         (String.concat ", " (List.map (fun st -> st.key) strategies)))

type prefix = Move.rtype list list

let size prefix =
  List.fold_left (fun acc row -> acc + List.length row) 0 prefix

let drain_round prefix =
  let drain = ref 0 in
  List.iteri
    (fun t row ->
       List.iter
         (fun (rt : Move.rtype) -> drain := max !drain (t + rt.Move.deadline))
         row)
    prefix;
  !drain

let realise ~n ~d prefix =
  let protos = ref [] and tags = ref [] in
  List.iteri
    (fun t row ->
       List.iter
         (fun (rt : Move.rtype) ->
            protos :=
              Sched.Request.make ~arrival:t
                ~alternatives:(Array.to_list rt.Move.alts)
                ~deadline:rt.Move.deadline
              :: !protos;
            tags := rt.Move.tag :: !tags)
         row)
    prefix;
  let inst = Sched.Instance.build ~n_resources:n ~d (List.rev !protos) in
  (inst, Array.of_list (List.rev !tags))

type eval = {
  opt : int;
  alg : int;
  ratio : Prelude.Rat.t;
  agree : bool;
}

let same_schedule (a : Sched.Outcome.t) (b : Sched.Outcome.t) =
  let n = Array.length a.Sched.Outcome.served_at in
  n = Array.length b.Sched.Outcome.served_at
  &&
  (let ok = ref true in
   for i = 0 to n - 1 do
     (match a.Sched.Outcome.served_at.(i), b.Sched.Outcome.served_at.(i) with
      | None, None -> ()
      | Some (r1, t1), Some (r2, t2) when r1 = r2 && t1 = t2 -> ()
      | _ -> ok := false)
   done;
   !ok)

let evaluate_instance ?metrics strat inst tags =
  let m = Obs.Metrics.resolve metrics in
  let t0 = Obs.Span.start () in
  let bias = Move.bias_of_tags tags in
  let kernel =
    Sched.Engine.run inst (strat.build ~solver:Global.Kernel ~bias)
  in
  let rebuild =
    Sched.Engine.run inst (strat.build ~solver:Global.Rebuild ~bias)
  in
  let agree = same_schedule kernel rebuild in
  let opt = Offline.Opt_stream.value inst in
  let alg = kernel.Sched.Outcome.served in
  let ratio =
    if alg > 0 then Prelude.Rat.make opt alg else Prelude.Rat.make 0 1
  in
  (match m with
   | None -> ()
   | Some m ->
     Obs.Metrics.incr m "search.evals";
     Obs.Metrics.observe m "search.eval_us" (Obs.Span.elapsed t0 *. 1e6);
     if not agree then Obs.Metrics.incr m "search.disagreements");
  { opt; alg; ratio; agree }

let evaluate ?metrics strat ~n ~d prefix =
  let inst, tags = realise ~n ~d prefix in
  evaluate_instance ?metrics strat inst tags

(* All permutations of [0..n-1], deterministic order. *)
let permutations n =
  let rec insert_all x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_all x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_all x) (perms rest)
  in
  perms (List.init n (fun i -> i)) |> List.map Array.of_list

let encode_with perm prefix =
  prefix
  |> List.map (fun row ->
    row
    |> List.map (Move.relabel ~perm)
    |> List.sort Move.compare_rtype
    |> List.map Move.encode
    |> String.concat ";")
  |> String.concat "|"

let canonical_key ~n prefix =
  if n < 1 then invalid_arg "Game.canonical_key: n < 1";
  if n > 6 then encode_with (Array.init n (fun i -> i)) prefix
  else
    List.fold_left
      (fun best perm ->
         let s = encode_with perm prefix in
         match best with
         | None -> Some s
         | Some b -> Some (if String.compare s b < 0 then s else b))
      None (permutations n)
    |> Option.get
