module Rat = Prelude.Rat

type t = {
  strategy : string;
  opt : int;
  alg : int;
  tags : Move.tag array;
  instance : Sched.Instance.t;
}

let ratio t = Rat.make t.opt t.alg

let v ~strategy ~opt ~alg ~tags instance =
  if alg < 1 then invalid_arg "Certificate.v: alg < 1";
  if opt < 0 then invalid_arg "Certificate.v: opt < 0";
  if Array.length tags <> Sched.Instance.n_requests instance then
    invalid_arg "Certificate.v: tags length <> request count";
  { strategy; opt; alg; tags; instance }

let of_prefix ~strategy ~n ~d ~opt ~alg prefix =
  let instance, tags = Game.realise ~n ~d prefix in
  v ~strategy:strategy.Game.name ~opt ~alg ~tags instance

let header = "search-cert"

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %s strategy=%s opt=%d alg=%d ratio=%s\n" header
       Sched.Codec.version t.strategy t.opt t.alg
       (Rat.to_string (ratio t)));
  Array.iteri
    (fun id tag ->
       match tag with
       | Move.Neutral -> ()
       | _ ->
         Buffer.add_string buf
           (Printf.sprintf "tag %d %s\n" id (Move.tag_to_string tag)))
    t.tags;
  Buffer.add_string buf (Sched.Codec.to_string t.instance);
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_kv ~what s =
  match String.index_opt s '=' with
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> Error (Printf.sprintf "%s: expected key=value, got %S" what s)

let parse_int ~what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected integer, got %S" what s)

let parse_header line =
  match String.split_on_char ' ' line with
  | h :: ver :: fields when String.equal h header ->
    if not (String.equal ver Sched.Codec.version) then
      Error (Printf.sprintf "unsupported certificate version %S" ver)
    else
      let rec go strategy opt alg ratio = function
        | [] ->
          (match strategy, opt, alg with
           | Some s, Some o, Some a -> Ok (s, o, a, ratio)
           | _ -> Error "certificate header: missing strategy/opt/alg")
        | f :: rest ->
          let* k, v = parse_kv ~what:"certificate header" f in
          (match k with
           | "strategy" -> go (Some v) opt alg ratio rest
           | "opt" ->
             let* o = parse_int ~what:"opt" v in
             go strategy (Some o) alg ratio rest
           | "alg" ->
             let* a = parse_int ~what:"alg" v in
             go strategy opt (Some a) ratio rest
           | "ratio" -> go strategy opt alg (Some v) rest
           | _ ->
             Error (Printf.sprintf "certificate header: unknown field %S" k))
      in
      go None None None None fields
  | _ -> Error (Printf.sprintf "not a %s line: %S" header line)

let parse_tag_line line =
  match String.split_on_char ' ' line with
  | [ "tag"; id; tag ] ->
    let* id = parse_int ~what:"tag id" id in
    let* tag = Move.tag_of_string tag in
    Ok (id, tag)
  | _ -> Error (Printf.sprintf "bad tag line %S" line)

let parse s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty certificate"
  | hd :: rest ->
    let* strategy, opt, alg, ratio_field = parse_header hd in
    let rec tags acc = function
      | line :: rest when String.length line >= 4
                       && String.sub line 0 4 = "tag " ->
        let* t = parse_tag_line line in
        tags (t :: acc) rest
      | rest -> Ok (List.rev acc, rest)
    in
    let* tag_list, body = tags [] rest in
    let* instance = Sched.Codec.of_string (String.concat "\n" body) in
    let n_requests = Sched.Instance.n_requests instance in
    let tags = Array.make n_requests Move.Neutral in
    let* () =
      List.fold_left
        (fun acc (id, tag) ->
           let* () = acc in
           if id < 0 || id >= n_requests then
             Error (Printf.sprintf "tag id %d out of range (%d requests)" id
                      n_requests)
           else begin
             tags.(id) <- tag;
             Ok ()
           end)
        (Ok ()) tag_list
    in
    if alg < 1 then Error "certificate claims alg < 1"
    else
      let t = { strategy; opt; alg; tags; instance } in
      (match ratio_field with
       | Some r when not (String.equal r (Rat.to_string (ratio t))) ->
         Error
           (Printf.sprintf "ratio field %s inconsistent with opt/alg %s" r
              (Rat.to_string (ratio t)))
       | _ -> Ok t)

let check ?metrics t =
  let* strat =
    match Game.strategy_of_name t.strategy with
    | Ok s -> Ok s
    | Error e -> Error e
  in
  let e = Game.evaluate_instance ?metrics strat t.instance t.tags in
  if not e.Game.agree then
    Error
      (Printf.sprintf
         "kernel and rebuild solvers disagree on the certified instance \
          (%s)" t.strategy)
  else if e.Game.alg <> t.alg then
    Error
      (Printf.sprintf "claimed alg=%d but %s served %d" t.alg t.strategy
         e.Game.alg)
  else if e.Game.opt <> t.opt then
    Error (Printf.sprintf "claimed opt=%d but OPT is %d" t.opt e.Game.opt)
  else begin
    (match Obs.Metrics.resolve metrics with
     | Some m -> Obs.Metrics.incr m "search.certificates"
     | None -> ());
    Ok ()
  end

let save ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
    output_string oc (render t))

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> parse s
  | exception Sys_error e -> Error e
