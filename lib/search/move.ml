type tag =
  | Neutral
  | Late
  | Early
  | Prefer of int

let tag_to_string = function
  | Neutral -> "neutral"
  | Late -> "late"
  | Early -> "early"
  | Prefer r -> Printf.sprintf "prefer:%d" r

let tag_of_string s =
  match s with
  | "neutral" -> Ok Neutral
  | "late" -> Ok Late
  | "early" -> Ok Early
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "prefer" ->
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       (match int_of_string_opt rest with
        | Some r when r >= 0 -> Ok (Prefer r)
        | _ -> Error (Printf.sprintf "bad prefer resource %S" rest))
     | _ -> Error (Printf.sprintf "unknown tag %S" s))

let relabel_tag ~perm = function
  | Prefer r when r >= 0 && r < Array.length perm -> Prefer perm.(r)
  | t -> t

let bias_of_tags tags : Sched.Strategy.bias =
  fun ~request ~resource ~round ->
    let id = request.Sched.Request.id in
    if id < 0 || id >= Array.length tags then 0
    else
      match tags.(id) with
      | Neutral -> 0
      | Prefer r -> if resource = r then 1 else 0
      | Late -> round
      | Early -> -round

type rtype = {
  alts : int array;
  deadline : int;
  tag : tag;
}

let rtype ~alts ~deadline ~tag =
  if deadline < 1 then invalid_arg "Move.rtype: deadline < 1";
  let alts = List.sort_uniq Int.compare alts in
  (match alts with
   | [] -> invalid_arg "Move.rtype: empty alternatives"
   | a :: _ when a < 0 -> invalid_arg "Move.rtype: negative resource"
   | _ -> ());
  { alts = Array.of_list alts; deadline; tag }

(* Total order on tags: resource-free tags first, then Prefer by
   resource.  Only used for canonical sorting, the numbers are
   arbitrary but fixed. *)
let tag_rank = function
  | Neutral -> (0, 0)
  | Late -> (1, 0)
  | Early -> (2, 0)
  | Prefer r -> (3, r)

let compare_tag a b =
  let ka, ra = tag_rank a and kb, rb = tag_rank b in
  if ka <> kb then Int.compare ka kb else Int.compare ra rb

let compare_rtype a b =
  let c = Int.compare (Array.length a.alts) (Array.length b.alts) in
  if c <> 0 then c
  else begin
    let c = ref 0 in
    (try
       Array.iteri
         (fun i x ->
            let d = Int.compare x b.alts.(i) in
            if d <> 0 then begin c := d; raise Exit end)
         a.alts
     with Exit -> ());
    if !c <> 0 then !c
    else
      let c = Int.compare a.deadline b.deadline in
      if c <> 0 then c else compare_tag a.tag b.tag
  end

let relabel ~perm rt =
  let alts =
    Array.map
      (fun r -> if r >= 0 && r < Array.length perm then perm.(r) else r)
      rt.alts
  in
  Array.sort Int.compare alts;
  { rt with alts; tag = relabel_tag ~perm rt.tag }

let encode rt =
  let alts =
    Array.to_list rt.alts |> List.map string_of_int |> String.concat ","
  in
  let tag =
    match rt.tag with
    | Neutral -> "n"
    | Late -> "l"
    | Early -> "e"
    | Prefer r -> Printf.sprintf "p%d" r
  in
  Printf.sprintf "%s:%d:%s" alts rt.deadline tag

let alt_sets ~n ~k =
  if n < 1 then invalid_arg "Move.alt_sets: n < 1";
  if k < 1 then invalid_arg "Move.alt_sets: k < 1";
  (* size-major, lexicographic within a size *)
  let rec combs lo size =
    if size = 0 then [ [] ]
    else
      List.concat_map
        (fun r -> List.map (fun rest -> r :: rest) (combs (r + 1) (size - 1)))
        (List.init (n - lo) (fun i -> lo + i))
  in
  List.concat_map (fun size -> combs 0 size)
    (List.init (min k n) (fun i -> i + 1))

let types ~n ~k ~deadlines ~tags =
  if deadlines = [] then invalid_arg "Move.types: no deadlines";
  if tags = [] then invalid_arg "Move.types: no tags";
  List.concat_map
    (fun alts ->
       List.concat_map
         (fun deadline ->
            List.map (fun tag -> rtype ~alts ~deadline ~tag) tags)
         deadlines)
    (alt_sets ~n ~k)

let multisets ts ~max =
  if max < 1 then invalid_arg "Move.multisets: max < 1";
  let ts = Array.of_list (List.sort_uniq compare_rtype ts) in
  let m = Array.length ts in
  (* multisets of exactly [size], as non-decreasing index sequences *)
  let rec of_size lo size =
    if size = 0 then [ [] ]
    else
      List.concat_map
        (fun i ->
           List.map (fun rest -> ts.(i) :: rest) (of_size i (size - 1)))
        (List.init (m - lo) (fun j -> lo + j))
  in
  List.concat_map (fun size -> of_size 0 size)
    (List.init max (fun i -> i + 1))
