module Rat = Prelude.Rat

type config = {
  n : int;
  d : int;
  budget : int;
  per_round : int;
  k : int;
  deadlines : int list;
  tags : Move.tag list;
}

let config ?(budget = 4) ?(per_round = 4) ?k ?deadlines ?tags ~n ~d () =
  let k = match k with Some k -> k | None -> min 2 n in
  let deadlines = match deadlines with Some ds -> ds | None -> [ d ] in
  let tags =
    match tags with
    | Some ts -> ts
    | None ->
      [ Move.Neutral; Move.Late; Move.Early ]
      @ List.init n (fun r -> Move.Prefer r)
  in
  { n; d; budget; per_round; k; deadlines; tags }

let validate cfg =
  let fail fmt = Printf.ksprintf invalid_arg ("Exhaustive.run: " ^^ fmt) in
  if cfg.n < 1 || cfg.n > 4 then fail "n must be in 1..4 (got %d)" cfg.n;
  if cfg.d < 1 || cfg.d > 3 then fail "d must be in 1..3 (got %d)" cfg.d;
  if cfg.budget < 1 || cfg.budget > 6 then
    fail "budget must be in 1..6 (got %d); use the guided tier beyond" cfg.budget;
  if cfg.per_round < 1 then fail "per_round must be >= 1";
  if cfg.k < 1 || cfg.k > 2 then fail "k must be in 1..2 (got %d)" cfg.k;
  if cfg.deadlines = [] then fail "empty deadline palette";
  List.iter
    (fun dl ->
       if dl < 1 || dl > cfg.d then
         fail "palette deadline %d outside 1..%d" dl cfg.d)
    cfg.deadlines;
  if cfg.tags = [] then fail "empty tag palette";
  List.iter
    (function
      | Move.Prefer r when r < 0 || r >= cfg.n ->
        fail "Prefer %d names a resource >= n" r
      | _ -> ())
    cfg.tags

type found = {
  ratio : Rat.t;
  opt : int;
  alg : int;
  prefix : Game.prefix;
}

type result = {
  strategy : Game.strategy;
  cfg : config;
  best : found option;
  nodes : int;
  transpositions : int;
  disagreements : Game.prefix list;
}

let extend prefix t ms =
  let len = List.length prefix in
  prefix @ List.init (t - len) (fun _ -> []) @ [ ms ]

let run ?metrics ~strategy cfg =
  validate cfg;
  let m = Obs.Metrics.resolve metrics in
  let types =
    Move.types ~n:cfg.n ~k:cfg.k ~deadlines:cfg.deadlines ~tags:cfg.tags
  in
  let max_room = min cfg.per_round cfg.budget in
  (* moves.(room) = injectable multisets given [room] remaining budget;
     prefix-stable in [room] (Move.multisets), so growing the budget
     only appends children — the monotonicity the tests pin. *)
  let moves =
    Array.init (max_room + 1) (fun s ->
      if s = 0 then [] else Move.multisets types ~max:s)
  in
  let seen = Hashtbl.create 4096 in
  let nodes = ref 0 and transpositions = ref 0 in
  let best = ref None and disagreements = ref [] in
  let consider prefix (e : Game.eval) =
    if e.Game.alg > 0 then begin
      let better =
        match !best with
        | None -> true
        | Some b -> Rat.compare e.Game.ratio b.ratio > 0
      in
      if better then
        best :=
          Some
            { ratio = e.Game.ratio; opt = e.Game.opt; alg = e.Game.alg;
              prefix }
    end;
    if not e.Game.agree then disagreements := prefix :: !disagreements
  in
  let rec explore prefix used last =
    let room = min cfg.per_round (cfg.budget - used) in
    if room > 0 then begin
      (* Injections strictly before the drain stay inside this phase;
         at or after it they would start an independent one. *)
      let starts =
        if used = 0 then [ 0 ]
        else begin
          let drain = Game.drain_round prefix in
          List.init (max 0 (drain - last - 1)) (fun i -> last + 1 + i)
        end
      in
      List.iter
        (fun t ->
           List.iter
             (fun ms ->
                let child = extend prefix t ms in
                let key = Game.canonical_key ~n:cfg.n child in
                if Hashtbl.mem seen key then incr transpositions
                else begin
                  Hashtbl.add seen key ();
                  incr nodes;
                  let e = Game.evaluate ?metrics strategy ~n:cfg.n ~d:cfg.d
                            child in
                  consider child e;
                  explore child (used + List.length ms) t
                end)
             moves.(room))
        starts
    end
  in
  explore [] 0 (-1);
  (match m with
   | None -> ()
   | Some m ->
     Obs.Metrics.incr ~by:!nodes m "search.nodes";
     Obs.Metrics.incr ~by:!transpositions m "search.transpositions");
  { strategy; cfg; best = !best; nodes = !nodes;
    transpositions = !transpositions;
    disagreements = List.rev !disagreements }

let certificate r =
  Option.map
    (fun f ->
       Certificate.of_prefix ~strategy:r.strategy ~n:r.cfg.n ~d:r.cfg.d
         ~opt:f.opt ~alg:f.alg f.prefix)
    r.best

let table1_row ~d name =
  if d < 2 then (None, None)
  else
    Analysis.Bounds.table1 ~d
    |> List.find_map (fun (row, lb, ub) ->
      if String.equal row name then Some (lb, ub) else None)
    |> Option.value ~default:(None, None)

let table1_lb ~d name = fst (table1_row ~d name)

let one = Rat.make 1 1

let above_ub ~ub ratio =
  match ub with Some ub -> Rat.compare ratio ub > 0 | None -> false

let verdict ~d ~strategy_name ratio =
  let lb, ub = table1_row ~d strategy_name in
  let ub_s =
    match ub with Some u -> Rat.to_string u | None -> "-"
  in
  if above_ub ~ub ratio then
    (* a ratio beyond the proven upper bound is impossible; since the
       certificate replay already confirmed it, the transcription of
       either the strategy or the bound must be wrong *)
    Printf.sprintf
      "EXCEEDS Table-1 upper bound %s -- impossible, investigate" ub_s
  else
    match lb with
    | Some lb ->
      let c = Rat.compare ratio lb in
      if c = 0 then
        Printf.sprintf "rediscovered Table-1 lower bound exactly (lb %s)"
          (Rat.to_string lb)
      else if c < 0 then
        Printf.sprintf
          "below Table-1 bound %s (search horizon too small at this budget)"
          (Rat.to_string lb)
      else
        Printf.sprintf
          "improves on the published Table-1 lower bound at this \
           configuration (lb %s, ub %s)"
          (Rat.to_string lb) ub_s
    | None ->
      if d = 1 then
        if Rat.compare ratio one = 0 then
          "matches the trivial d=1 bound (every strategy is per-round optimal)"
        else "unexpected ratio at d=1 (expected exactly 1)"
      else
        Printf.sprintf "no Table-1 lower bound at d=%d (found %s, ub %s)" d
          (Rat.to_string ratio) ub_s

let verdict_cell ~d ~strategy_name ratio =
  let lb, ub = table1_row ~d strategy_name in
  if above_ub ~ub ratio then "> UB !"
  else
    match lb with
    | Some lb ->
      let c = Rat.compare ratio lb in
      if c = 0 then "= lb" else if c < 0 then "< lb" else "> lb"
    | None ->
      if d = 1 then
        if Rat.compare ratio one = 0 then "= 1 (trivial)" else "<> 1 !"
      else "no lb"

let golden_table ?budget ~n ~ds () =
  let table =
    Prelude.Texttable.create
      ~title:(Printf.sprintf "exhaustive worst-case search (n=%d)" n)
      ~header:
        [ "strategy"; "d"; "found"; "opt/alg"; "lb"; "nodes"; "transp";
          "disagree"; "status" ]
      ()
  in
  Prelude.Texttable.set_align table
    [ Prelude.Texttable.Left; Prelude.Texttable.Right;
      Prelude.Texttable.Right; Prelude.Texttable.Right;
      Prelude.Texttable.Right; Prelude.Texttable.Right;
      Prelude.Texttable.Right; Prelude.Texttable.Right ];
  List.iteri
    (fun i d ->
       if i > 0 then Prelude.Texttable.add_rule table;
       List.iter
         (fun strat ->
            let cfg = config ?budget ~n ~d () in
            let r = run ~strategy:strat cfg in
            let found, witness, status =
              match r.best with
              | None -> ("-", "-", "empty tree")
              | Some f ->
                ( Rat.to_string f.ratio,
                  Printf.sprintf "%d/%d" f.opt f.alg,
                  verdict_cell ~d ~strategy_name:strat.Game.name f.ratio )
            in
            let lb =
              match table1_lb ~d strat.Game.name with
              | Some lb -> Rat.to_string lb
              | None -> if d = 1 then "1" else "-"
            in
            Prelude.Texttable.add_row table
              [ strat.Game.name; string_of_int d; found; witness; lb;
                string_of_int r.nodes; string_of_int r.transpositions;
                string_of_int (List.length r.disagreements); status ])
         Game.strategies)
    ds;
  Prelude.Texttable.render table
