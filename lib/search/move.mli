(** The adversary's move vocabulary for the worst-case search.

    A move injects a multiset of {e request types} into one round.  A
    request type fixes the alternative set, the relative deadline and a
    {!tag} — the tag is the adversary's handle on the strategy's
    tie-breaking freedom.  Every paper lower bound is phrased "the
    strategy {e can be implemented such that} …"; in this library that
    freedom is exactly the bias tier of {!Graph.Tiered} (the lowest
    tier, so it only ever chooses {e among} matchings already optimal in
    every strategy tier above it).  Any pure bias is therefore a legal
    implementation of the strategy, and letting the search pick per-
    request tags realises the existential quantifier in the proofs. *)

type tag =
  | Neutral        (** bias 0 everywhere *)
  | Late           (** bias = slot round: push this request's service late *)
  | Early          (** bias = −slot round: pull its service early *)
  | Prefer of int  (** bias 1 on one resource: steer it onto that resource *)

val tag_to_string : tag -> string
(** ["neutral"], ["late"], ["early"], ["prefer:<r>"] — the certificate
    grammar. *)

val tag_of_string : string -> (tag, string) result

val relabel_tag : perm:int array -> tag -> tag
(** Rename resources through [perm] ([Prefer r] becomes
    [Prefer perm.(r)]; the other tags are resource-free). *)

val bias_of_tags : tag array -> Sched.Strategy.bias
(** The bias realising an id-indexed tag assignment.  Requests whose id
    falls outside the array are [Neutral].  Pure, so the kernel and
    rebuild solvers remain interchangeable ({!Strategies.Global}). *)

type rtype = private {
  alts : int array;  (** distinct resources, sorted ascending *)
  deadline : int;
  tag : tag;
}
(** A request type: the unit the adversary injects. *)

val rtype : alts:int list -> deadline:int -> tag:tag -> rtype
(** Normalises (sorts, dedups) the alternative list.
    @raise Invalid_argument on an empty list, a negative resource or
    [deadline < 1]. *)

val compare_rtype : rtype -> rtype -> int
(** Total order (alternatives, then deadline, then tag); rounds of a
    canonicalised state are sorted by it. *)

val relabel : perm:int array -> rtype -> rtype
(** Rename resources through [perm] and re-sort the alternatives. *)

val encode : rtype -> string
(** Compact stable encoding, e.g. ["0,1:2:l"]; building block of
    {!Game.canonical_key}. *)

val alt_sets : n:int -> k:int -> int list list
(** Every non-empty sorted subset of [0..n-1] with at most [k]
    elements, in a fixed (size-major, then lexicographic) order. *)

val types : n:int -> k:int -> deadlines:int list -> tags:tag list -> rtype list
(** The full request-type palette: the cross product of {!alt_sets}
    with the given deadlines and tags, in a fixed order. *)

val multisets : rtype list -> max:int -> rtype list list
(** Every non-empty multiset of at most [max] palette entries, each
    sorted by {!compare_rtype}, enumerated size-major.  The order is
    {e prefix-stable} in [max]: [multisets ts ~max:(m+1)] is
    [multisets ts ~max:m] with the size-[m+1] multisets appended — the
    property that makes the exhaustive search value monotone in its
    request budget. *)
