(** The worst-case game: adversary states and their exact evaluation.

    The search plays the adversary side of the competitive game: each
    move injects a multiset of request types into a round, ALG's reply
    is the deployed strategy itself (the production kernel solver, bias
    tier included) and the score of a state is the exact rational
    OPT/ALG of the realised instance, with OPT from
    {!Offline.Opt_stream}.

    {b Drain-point decomposition.}  A state is only ever extended up to
    its {e drain round} — the first round by which every injected
    window has closed.  At a drain the strategy state is empty and the
    strategies are time-shift invariant, so play after a drain is an
    independent fresh game, and because the competitive ratio of a
    concatenation is a mediant of the per-phase ratios, repeating or
    chaining phases never beats the single best phase.  The game over
    one drain-to-drain phase therefore carries the full worst case for
    a given request budget, which is what makes exhaustive enumeration
    of phases sound (see DESIGN 4.10).

    Every evaluation runs the instance through {e both} interchangeable
    solvers ({!Strategies.Global} [Kernel] and [Rebuild]) and compares
    the two service schedules slot for slot — the search doubles as a
    differential fuzzer for the incremental kernel. *)

type strategy = {
  name : string;  (** paper name, e.g. ["A_fix"] *)
  key : string;   (** CLI key, e.g. ["fix"] *)
  build :
    solver:Strategies.Global.solver ->
    bias:Sched.Strategy.bias ->
    Sched.Strategy.factory;
}

val strategies : strategy list
(** The five global strategies, in Table-1 order. *)

val strategy_of_name : string -> (strategy, string) result
(** Accepts either the CLI key (["fix"]) or the paper name
    (["A_fix"]). *)

type prefix = Move.rtype list list
(** One adversary state: element [t] is the (possibly empty) multiset
    injected at round [t].  The last element is non-empty. *)

val size : prefix -> int
(** Total requests injected. *)

val drain_round : prefix -> int
(** First round by which every injected window has closed
    ([max (arrival + deadline)]; [0] for the empty state).  Injections
    at or after it start an independent phase and are pruned. *)

val realise : n:int -> d:int -> prefix -> Sched.Instance.t * Move.tag array
(** The instance a state denotes (requests in arrival order, ids
    dense) together with the id-indexed tag assignment.
    @raise Invalid_argument if a type names a resource [>= n] or a
    deadline [> d]. *)

type eval = {
  opt : int;            (** offline optimum of the realised instance *)
  alg : int;            (** requests served by the kernel solver *)
  ratio : Prelude.Rat.t;  (** [opt/alg] exactly ([0] when [alg = 0]) *)
  agree : bool;         (** kernel and rebuild schedules identical? *)
}

val evaluate_instance :
  ?metrics:Obs.Metrics.t ->
  strategy -> Sched.Instance.t -> Move.tag array -> eval
(** Score one instance: run the strategy with the tag bias under both
    solvers, compare the schedules, and take OPT from
    {!Offline.Opt_stream.value}.  Records [search.evals],
    [search.disagreements] and the [search.eval_us] histogram into
    [metrics] (or the ambient registry). *)

val evaluate :
  ?metrics:Obs.Metrics.t -> strategy -> n:int -> d:int -> prefix -> eval
(** [evaluate_instance] of [realise]. *)

val canonical_key : n:int -> prefix -> string
(** Canonical encoding of a state: the lexicographically smallest
    rendering over all [n!] resource relabelings (each round sorted by
    {!Move.compare_rtype}, [Prefer] tags renamed along).  Two states
    equal up to resource names share a key — the transposition-table
    identity.  Intended for the small exhaustive tier; [n > 6] falls
    back to the identity labeling only. *)
