module Rat = Prelude.Rat
module Rng = Prelude.Rng
module Jobs = Report.Jobs

type config = {
  n : int;
  d : int;
  seed : int;
  restarts : int;
  evals : int;
  phases : int;
  max_genes : int;
}

let config ?(seed = 1) ?(restarts = 8) ?(evals = 60) ?(phases = 2)
      ?(max_genes = 6) ~n ~d () =
  { n; d; seed; restarts; evals; phases; max_genes }

let validate cfg =
  let fail fmt = Printf.ksprintf invalid_arg ("Attacker.run: " ^^ fmt) in
  if cfg.n < 1 then fail "n must be >= 1";
  if cfg.d < 1 then fail "d must be >= 1";
  if cfg.restarts < 1 then fail "restarts must be >= 1";
  if cfg.evals < 1 then fail "evals must be >= 1";
  if cfg.phases < 1 then fail "phases must be >= 1";
  if cfg.max_genes < 1 then fail "max_genes must be >= 1"

(* A gene is a block of [count] identical requests at a fixed offset
   inside the (prelude or phase) period -- the thm2x building block. *)
type gene = {
  offset : int;
  alts : int array;
  count : int;
  tag : Move.tag;
}

type genome = {
  period : int;       (* phase length, rounds *)
  prelude : gene list;  (* offsets in [0, d) *)
  phase : gene list;    (* offsets in [0, period) *)
}

let random_alts rng ~n =
  if n >= 2 && Rng.bool rng then begin
    let a = Rng.int rng n in
    let b = (a + 1 + Rng.int rng (n - 1)) mod n in
    [| a; b |]
  end
  else [| Rng.int rng n |]

let random_tag rng ~n =
  match Rng.int rng 4 with
  | 0 -> Move.Neutral
  | 1 -> Move.Late
  | 2 -> Move.Early
  | _ -> Move.Prefer (Rng.int rng n)

let random_gene rng cfg ~span =
  {
    offset = Rng.int rng span;
    alts = random_alts rng ~n:cfg.n;
    count = 1 + Rng.int rng cfg.d;
    tag = random_tag rng ~n:cfg.n;
  }

let random_genome rng cfg =
  let period = Rng.int_in rng 1 (2 * cfg.d) in
  let phase =
    List.init (1 + Rng.int rng (min 3 cfg.max_genes))
      (fun _ -> random_gene rng cfg ~span:period)
  in
  let prelude =
    List.init (Rng.int rng 2) (fun _ -> random_gene rng cfg ~span:cfg.d)
  in
  { period; prelude; phase }

let clamp_offsets span genes =
  List.map (fun g -> { g with offset = g.offset mod span }) genes

let replace_nth l i x = List.mapi (fun j y -> if j = i then x else y) l

let mutate_gene rng cfg ~span g =
  match Rng.int rng 4 with
  | 0 -> { g with offset = Rng.int rng span }
  | 1 -> { g with alts = random_alts rng ~n:cfg.n }
  | 2 -> { g with count = 1 + Rng.int rng cfg.d }
  | _ -> { g with tag = random_tag rng ~n:cfg.n }

let mutate rng cfg g =
  match Rng.int rng 6 with
  | 0 ->
    let period =
      let p = g.period + (if Rng.bool rng then 1 else -1) in
      max 1 (min (2 * cfg.d) p)
    in
    { g with period; phase = clamp_offsets period g.phase }
  | 1 when List.length g.phase < cfg.max_genes ->
    { g with phase = random_gene rng cfg ~span:g.period :: g.phase }
  | 2 when List.length g.phase > 1 ->
    let i = Rng.int rng (List.length g.phase) in
    { g with phase = List.filteri (fun j _ -> j <> i) g.phase }
  | 3 ->
    if g.prelude = [] then
      { g with prelude = [ random_gene rng cfg ~span:cfg.d ] }
    else if Rng.bool rng then { g with prelude = [] }
    else
      let i = Rng.int rng (List.length g.prelude) in
      { g with
        prelude =
          replace_nth g.prelude i
            (mutate_gene rng cfg ~span:cfg.d (List.nth g.prelude i)) }
  | _ ->
    let i = Rng.int rng (List.length g.phase) in
    { g with
      phase =
        replace_nth g.phase i
          (mutate_gene rng cfg ~span:g.period (List.nth g.phase i)) }

let realise cfg g ~phases =
  let items = ref [] in
  let emit round gene =
    let rt =
      Move.rtype ~alts:(Array.to_list gene.alts) ~deadline:cfg.d
        ~tag:gene.tag
    in
    for _ = 1 to gene.count do items := (round, rt) :: !items done
  in
  List.iter (fun ge -> emit ge.offset ge) g.prelude;
  for p = 0 to phases - 1 do
    List.iter (fun ge -> emit (cfg.d + (p * g.period) + ge.offset) ge)
      g.phase
  done;
  let items =
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.rev !items)
  in
  let protos =
    List.map
      (fun (round, (rt : Move.rtype)) ->
         Sched.Request.make ~arrival:round
           ~alternatives:(Array.to_list rt.Move.alts)
           ~deadline:rt.Move.deadline)
      items
  in
  let inst = Sched.Instance.build ~n_resources:cfg.n ~d:cfg.d protos in
  let tags =
    Array.of_list (List.map (fun (_, rt) -> rt.Move.tag) items)
  in
  (inst, tags)

type scored = {
  rate : Rat.t;
  cert : Certificate.t option;
  dis : Certificate.t list;
}

let score cfg (strategy : Game.strategy) g =
  let check ~phases =
    let inst, tags = realise cfg g ~phases in
    let e = Game.evaluate_instance strategy inst tags in
    let dis =
      if e.Game.agree then []
      else
        [ Certificate.v ~strategy:strategy.Game.name ~opt:e.Game.opt
            ~alg:(max e.Game.alg 1) ~tags inst ]
    in
    (e, inst, tags, dis)
  in
  let e1, _, _, dis1 = check ~phases:cfg.phases in
  let e2, i2, t2, dis2 = check ~phases:(2 * cfg.phases) in
  let dopt = e2.Game.opt - e1.Game.opt
  and dalg = e2.Game.alg - e1.Game.alg in
  let rate =
    if dalg > 0 && dopt > 0 then Rat.make dopt dalg
    else if e2.Game.alg > 0 then e2.Game.ratio
    else Rat.make 0 1
  in
  let cert =
    if e2.Game.alg > 0 then
      Some
        (Certificate.v ~strategy:strategy.Game.name ~opt:e2.Game.opt
           ~alg:e2.Game.alg ~tags:t2 i2)
    else None
  in
  { rate; cert; dis = dis1 @ dis2 }

type single = {
  s_rate : Rat.t;
  s_cert : Certificate.t option;
  s_instances : int;
  s_evals : int;
  s_accepts : int;
  s_dis : Certificate.t list;
}

let restart cfg strategy ~seed =
  let rng = Rng.create ~seed in
  let instances = ref 0 and evals = ref 0 and accepts = ref 0 in
  let dis = ref [] in
  let eval g =
    let s = score cfg strategy g in
    instances := !instances + 2;
    incr evals;
    dis := s.dis @ !dis;
    s
  in
  let cur = ref (random_genome rng cfg) in
  let cur_s = ref (eval !cur) in
  let best = ref !cur_s in
  for _ = 2 to cfg.evals do
    let cand = mutate rng cfg !cur in
    let s = eval cand in
    if Rat.compare s.rate !cur_s.rate >= 0 then begin
      cur := cand;
      cur_s := s;
      incr accepts;
      if Rat.compare s.rate !best.rate > 0 then best := s
    end
  done;
  if Rat.compare !cur_s.rate !best.rate > 0 then best := !cur_s;
  {
    s_rate = !best.rate;
    s_cert = !best.cert;
    s_instances = !instances;
    s_evals = !evals;
    s_accepts = !accepts;
    s_dis = List.rev !dis;
  }

type result = {
  strategy : Game.strategy;
  cfg : config;
  best_rate : Rat.t;
  certificate : Certificate.t;
  instances : int;
  evals : int;
  disagreements : Certificate.t list;
}

let soi = string_of_int

let run ?metrics ?ctx ~strategy cfg =
  validate cfg;
  let ctx = match ctx with Some c -> c | None -> Jobs.local () in
  let jobs =
    List.init cfg.restarts (fun r ->
      Jobs.job
        ~name:(Printf.sprintf "%s-restart-%d" strategy.Game.key r)
        ~params:
          [ ("strategy", strategy.Game.name); ("n", soi cfg.n);
            ("d", soi cfg.d); ("seed", soi cfg.seed); ("restart", soi r);
            ("evals", soi cfg.evals); ("phases", soi cfg.phases);
            ("max_genes", soi cfg.max_genes) ]
        (fun ~attempt:_ ->
           let s = restart cfg strategy ~seed:(cfg.seed + ((r + 1) * 7919)) in
           Jobs.List
             [
               Jobs.Rat s.s_rate;
               Jobs.Str
                 (match s.s_cert with
                  | Some c -> Certificate.render c
                  | None -> "");
               Jobs.Int s.s_instances;
               Jobs.Int s.s_evals;
               Jobs.Int s.s_accepts;
               Jobs.List
                 (List.map (fun c -> Jobs.Str (Certificate.render c))
                    s.s_dis);
             ]))
  in
  let outcomes = Jobs.map ctx ~family:"search.attacker" jobs in
  let best = ref None in
  let instances = ref 0 and evals = ref 0 and accepts = ref 0 in
  let dis = ref [] in
  List.iter
    (fun o ->
       match o with
       | Jobs.Done
           (Jobs.List
              [ Jobs.Rat rate; Jobs.Str cert; Jobs.Int insts;
                Jobs.Int ev; Jobs.Int acc; Jobs.List ds ]) ->
         instances := !instances + insts;
         evals := !evals + ev;
         accepts := !accepts + acc;
         List.iter
           (function
             | Jobs.Str s ->
               (match Certificate.parse s with
                | Ok c -> dis := c :: !dis
                | Error _ -> ())
             | _ -> ())
           ds;
         if cert <> "" then begin
           match Certificate.parse cert with
           | Ok c ->
             let better =
               match !best with
               | None -> true
               | Some (r, _) -> Rat.compare rate r > 0
             in
             if better then best := Some (rate, c)
           | Error _ -> ()
         end
       | _ -> ())
    outcomes;
  (match Obs.Metrics.resolve metrics with
   | None -> ()
   | Some m ->
     Obs.Metrics.incr ~by:!instances m "search.attacker_instances";
     Obs.Metrics.incr ~by:!accepts m "search.attacker_accepts");
  match !best with
  | None -> failwith "Attacker.run: all restarts failed"
  | Some (rate, cert) ->
    { strategy; cfg; best_rate = rate; certificate = cert;
      instances = !instances; evals = !evals;
      disagreements = List.rev !dis }
