(** Exhaustive game-tree worst-case search over small configurations.

    The adversary DFS explores every drain-to-drain phase (see
    {!Game}): a child extends the state by one injection round strictly
    before the current drain round, so states never straddle a phase
    boundary, and the value of the game is the maximum {!Game.eval}
    ratio over all explored states.  Transposition pruning identifies
    states equal up to resource relabeling via {!Game.canonical_key};
    because the key encodes the full request multiset, two states with
    one key always have the same spent budget, so the memo is exact as
    a visited-filter.  Its only theoretical slack is that the
    strategies' tie-breaking need not be relabeling-equivariant — a
    pruned sibling could in principle score differently — which can
    only {e hide} a maximum, never fabricate one: every reported value
    is re-verified by {!Certificate.check} before it is trusted.

    Child moves are enumerated in a fixed order that is prefix-stable
    in the remaining budget ({!Move.multisets}), which makes the search
    value monotone in [budget] — the property the qcheck suite pins. *)

type config = {
  n : int;                  (** resources, [1..4] *)
  d : int;                  (** nominal deadline, [1..3] *)
  budget : int;             (** total requests per phase, [1..6] *)
  per_round : int;          (** max requests injected per round *)
  k : int;                  (** max alternatives per request, [1..2] *)
  deadlines : int list;     (** deadline palette (default [[d]]) *)
  tags : Move.tag list;     (** tag palette *)
}

val config :
  ?budget:int -> ?per_round:int -> ?k:int -> ?deadlines:int list ->
  ?tags:Move.tag list -> n:int -> d:int -> unit -> config
(** Defaults: [budget = 4], [per_round = 4], [k = min 2 n],
    [deadlines = [d]], [tags = [Neutral; Late; Early] @ Prefer 0..n-1].
    Uniform deadlines keep the paper's upper bounds applicable to every
    explored state. *)

type found = {
  ratio : Prelude.Rat.t;
  opt : int;
  alg : int;
  prefix : Game.prefix;     (** the witness state *)
}

type result = {
  strategy : Game.strategy;
  cfg : config;
  best : found option;      (** [None] only for a zero-size tree *)
  nodes : int;              (** states evaluated *)
  transpositions : int;     (** states skipped by the memo *)
  disagreements : Game.prefix list;
      (** states where kernel and rebuild schedules differed *)
}

val run : ?metrics:Obs.Metrics.t -> strategy:Game.strategy -> config -> result
(** Search one strategy.  Records [search.nodes] and
    [search.transpositions] (plus the per-eval metrics of
    {!Game.evaluate}).
    @raise Invalid_argument on a configuration outside the bounds
    documented in {!type:config} — larger instances belong to the
    {!Attacker} tier. *)

val certificate : result -> Certificate.t option
(** Certificate of the best found state. *)

(** {2 Table-1 comparison} *)

val table1_lb : d:int -> string -> Prelude.Rat.t option
(** The Table-1 lower bound for a paper strategy name, [None] where the
    paper leaves it undefined (including every strategy at [d = 1],
    where all five are per-round optimal and the true value is 1). *)

val verdict : d:int -> strategy_name:string -> Prelude.Rat.t -> string
(** One human line classifying a found ratio against Table 1:
    rediscovered the lower bound exactly / trivial [d = 1] bound /
    below the bound (horizon too small) / strictly between the bounds
    (a construction better than the published one — legitimate, lower
    bounds are only bounds) / above the {e upper} bound (impossible:
    the transcription of the strategy or of the bound must be wrong;
    the line starts with ["EXCEEDS"] and the CLI turns it into a
    failing exit). *)

val golden_table : ?budget:int -> n:int -> ds:int list -> unit -> string
(** The committed snapshot: one row per (d, strategy) with the found
    ratio, witness accounting, node counts and the Table-1 verdict,
    rendered with {!Prelude.Texttable}.  Regenerate with
    [reqsched search --budget exhaustive --strategy all --golden]. *)
