(** Guided randomized attacker for configurations beyond the exhaustive
    tier — and, at the same time, the kernel/rebuild differential
    fuzzer.

    The attacker hill-climbs over {e phase constructions} shaped like
    the paper's Section-2 adversaries (thm21–thm25): a genome is a
    prelude block plus a periodic phase block of request genes (offset
    within the period, alternative set, multiplicity, bias tag), all
    with the uniform deadline [d].  A genome is scored by realising it
    with [P] and [2P] phases and taking the exact per-phase rate
    [(opt_2P − opt_P) / (alg_2P − alg_P)] — the amortised per-phase
    ratio that survives phase repetition, so a good genome certifies an
    asymptotic construction rather than a one-off end effect.

    Every genome evaluation runs both interchangeable solvers through
    {!Game.evaluate_instance}; with the default budgets a single run
    differentially checks hundreds of instances, which is the
    fuzz-differential tier of the test-suite.  Restarts are independent
    and fan out as {!Report.Jobs} jobs (family ["search.attacker"]), so
    [--jobs]/[--cache-dir]/[--resume] apply. *)

type config = {
  n : int;
  d : int;
  seed : int;
  restarts : int;   (** independent hill-climbs (one job each) *)
  evals : int;      (** genome evaluations per restart *)
  phases : int;     (** P: score compares P against 2P repetitions *)
  max_genes : int;  (** phase-block size cap *)
}

val config :
  ?seed:int -> ?restarts:int -> ?evals:int -> ?phases:int ->
  ?max_genes:int -> n:int -> d:int -> unit -> config
(** Defaults: [seed = 1], [restarts = 8], [evals = 60], [phases = 2],
    [max_genes = 6]. *)

type result = {
  strategy : Game.strategy;
  cfg : config;
  best_rate : Prelude.Rat.t;
      (** best per-phase rate over all restarts *)
  certificate : Certificate.t;
      (** the best genome's [2P] instance with its verified overall
          OPT/ALG claims (the committable artefact; its overall ratio
          is diluted by the prelude, [best_rate] is the per-phase
          signal) *)
  instances : int;  (** instances differentially checked *)
  evals : int;      (** genome evaluations actually performed *)
  disagreements : Certificate.t list;
      (** repro certificates for every kernel/rebuild mismatch *)
}

val run :
  ?metrics:Obs.Metrics.t -> ?ctx:Report.Jobs.ctx ->
  strategy:Game.strategy -> config -> result
(** Attack one strategy.  [ctx] defaults to {!Report.Jobs.local};
    outcomes are deterministic for a given config regardless of the
    domain count.  Records [search.attacker_instances] and
    [search.attacker_accepts].
    @raise Failure if every restart job failed (a bug — restarts are
    deterministic). *)
