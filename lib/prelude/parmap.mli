(** Parallel map over OCaml 5 domains.

    The experiment harness runs many independent simulations (seeds ×
    loads × strategies); this module fans them out over domains with a
    round-robin partition — no dependencies between tasks, deterministic
    result order, exceptions re-raised in the caller with their original
    backtrace.

    Tasks must not share mutable state (every simulation in this library
    owns its instance, strategy state and RNG; the one shared cache, the
    Zipf CDF table, is mutex-protected). *)

val recommended_domains : unit -> int
(** [max 1 (cpu count - 1)], capped at 8: leave a core for the runtime
    and avoid oversubscription on big machines. *)

type domain_stat = {
  domain : int;        (** worker index, [0 .. workers-1] *)
  tasks : int;         (** tasks this worker executed *)
  finished_at : float; (** [clock ()] when the worker went idle *)
}
(** Per-domain utilisation sample handed to [observe]; the spread of
    [finished_at] values is the idle tail the last-finishing domain
    imposes on the others.  [Obs.Instrument.parmap] turns these into
    metrics. *)

val map :
  ?domains:int ->
  ?clock:(unit -> float) ->
  ?observe:(domain_stat list -> unit) ->
  ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed on up to [domains]
    domains (default {!recommended_domains}).  Order is preserved.  If
    any task raises, the first exception (in input order) is re-raised
    after all domains have joined, with the backtrace captured at the
    original raise point.  With [domains = 1] or a short input list this
    degrades to plain [List.map] with no domain spawns.

    [observe] (default: none) receives one {!domain_stat} per worker
    after all have joined, stamped with [clock] (default: a constant 0,
    so pass a real clock — e.g. [Obs.Span.now] — when utilisation
    matters).  [clock] runs inside worker domains and must be
    domain-safe. *)

val mapi :
  ?domains:int ->
  ?clock:(unit -> float) ->
  ?observe:(domain_stat list -> unit) ->
  (int -> 'a -> 'b) -> 'a list -> 'b list
(** Indexed variant. *)
