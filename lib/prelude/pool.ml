(* Flat Bigarray-backed pools.

   Motivation: the hot paths (serve shards, the warm-start kernel, the
   live engine) used to thread per-request state through OCaml records,
   lists and hashtables — every request costs a handful of minor-heap
   allocations, and on worker domains the minor GC is a shared tax.
   Everything here lives off the OCaml heap in Bigarrays: ints and
   floats only, indexed by integer slot, zero allocation per operation
   once the arena has grown to its working size.

   Lifetime rules (see DESIGN.md §4.13):
   - [Iarr]/[Farr] are growable flat scratch: no ownership, [ensure]
     then index. Grown storage preserves existing contents; fresh cells
     are uninitialised (use [fill] first if the algorithm reads before
     writing).
   - [Ints] is a slotted arena with free-list recycling: [alloc] hands
     out a slot of [width] ints, [free] recycles it. Freed slots reuse
     field 0 as the free-list link, so field 0 of a freed slot is
     clobbered. Double-free is not detected.
   - [Table] is an open-addressed int-keyed map with [width] ints of
     payload per entry. Keys must be >= 0 (negative keys are reserved
     for the empty/tombstone sentinels). Entry indices returned by
     [find]/[put] are stable only until the next [put] (which may
     rehash). *)

module A1 = Bigarray.Array1

type ints_ba = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t
type floats_ba = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let make_ints n : ints_ba = A1.create Bigarray.int Bigarray.c_layout n
let make_floats n : floats_ba = A1.create Bigarray.float64 Bigarray.c_layout n

(* Growable flat int scratch. *)
module Iarr = struct
  type t = { mutable data : ints_ba; mutable cap : int }

  let create ?(capacity = 16) () =
    let cap = max 1 capacity in
    { data = make_ints cap; cap }

  let capacity t = t.cap

  let ensure t n =
    if n > t.cap then begin
      let cap = ref (max 16 t.cap) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = make_ints !cap in
      A1.blit t.data (A1.sub data 0 t.cap);
      t.data <- data;
      t.cap <- !cap
    end

  let get t i = A1.get t.data i
  let set t i v = A1.set t.data i v
  let uget t i = A1.unsafe_get t.data i
  let uset t i v = A1.unsafe_set t.data i v

  let fill t ~pos ~len v =
    if len > 0 then A1.fill (A1.sub t.data pos len) v
end

(* Growable flat float scratch. *)
module Farr = struct
  type t = { mutable data : floats_ba; mutable cap : int }

  let create ?(capacity = 16) () =
    let cap = max 1 capacity in
    { data = make_floats cap; cap }

  let capacity t = t.cap

  let ensure t n =
    if n > t.cap then begin
      let cap = ref (max 16 t.cap) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = make_floats !cap in
      A1.blit t.data (A1.sub data 0 t.cap);
      t.data <- data;
      t.cap <- !cap
    end

  let get t i = A1.get t.data i
  let set t i v = A1.set t.data i v
  let uget t i = A1.unsafe_get t.data i
  let uset t i v = A1.unsafe_set t.data i v

  let fill t ~pos ~len v =
    if len > 0 then A1.fill (A1.sub t.data pos len) v
end

(* Slotted int arena with free-list recycling. *)
module Ints = struct
  type t = {
    width : int;
    mutable data : ints_ba;
    mutable cap : int; (* in slots *)
    mutable next_fresh : int;
    mutable free_head : int; (* -1 = empty *)
    mutable live : int;
  }

  let create ?(capacity = 16) ~width () =
    if width < 1 then invalid_arg "Pool.Ints.create: width must be >= 1";
    let cap = max 1 capacity in
    {
      width;
      data = make_ints (cap * width);
      cap;
      next_fresh = 0;
      free_head = -1;
      live = 0;
    }

  let width t = t.width
  let live t = t.live
  let capacity t = t.cap

  let grow t =
    let cap = max 16 (t.cap * 2) in
    let data = make_ints (cap * t.width) in
    A1.blit t.data (A1.sub data 0 (t.cap * t.width));
    t.data <- data;
    t.cap <- cap

  let alloc t =
    t.live <- t.live + 1;
    if t.free_head >= 0 then begin
      let s = t.free_head in
      t.free_head <- A1.get t.data (s * t.width);
      s
    end
    else begin
      if t.next_fresh >= t.cap then grow t;
      let s = t.next_fresh in
      t.next_fresh <- s + 1;
      s
    end

  let free t s =
    A1.set t.data (s * t.width) t.free_head;
    t.free_head <- s;
    t.live <- t.live - 1

  let get t s j = A1.get t.data ((s * t.width) + j)
  let set t s j v = A1.set t.data ((s * t.width) + j) v

  let clear t =
    t.next_fresh <- 0;
    t.free_head <- -1;
    t.live <- 0
end

(* Open-addressed int-keyed map, linear probing, tombstones.
   Payload = [width] ints per entry, stored flat. *)
module Table = struct
  let empty_key = min_int
  let tomb_key = min_int + 1

  type t = {
    width : int;
    mutable keys : ints_ba;
    mutable vals : ints_ba;
    mutable cap : int; (* power of two *)
    mutable count : int; (* live entries *)
    mutable tombs : int;
  }

  let hash key =
    (* splitmix-style finalizer (constants truncated to native int),
       folded to non-negative *)
    let h = key * 0x9E3779B97F4A7C1 in
    let h = h lxor (h lsr 29) in
    let h = h * 0xBF58476D1CE4E5B in
    let h = h lxor (h lsr 32) in
    h land max_int

  let round_pow2 n =
    let c = ref 8 in
    while !c < n do
      c := !c * 2
    done;
    !c

  let create ?(capacity = 16) ~width () =
    if width < 1 then invalid_arg "Pool.Table.create: width must be >= 1";
    let cap = round_pow2 (max 8 capacity) in
    let keys = make_ints cap in
    A1.fill keys empty_key;
    { width; keys; vals = make_ints (cap * width); cap; count = 0; tombs = 0 }

  let count t = t.count
  let capacity t = t.cap

  (* Entry index for [key], or -1. *)
  let find t key =
    let mask = t.cap - 1 in
    let i = ref (hash key land mask) in
    let res = ref (-2) in
    while !res = -2 do
      let k = A1.get t.keys !i in
      if k = key then res := !i
      else if k = empty_key then res := -1
      else i := (!i + 1) land mask
    done;
    !res

  let rec rehash t cap =
    let old_keys = t.keys and old_vals = t.vals and old_cap = t.cap in
    t.keys <- make_ints cap;
    A1.fill t.keys empty_key;
    t.vals <- make_ints (cap * t.width);
    t.cap <- cap;
    t.count <- 0;
    t.tombs <- 0;
    for i = 0 to old_cap - 1 do
      let k = A1.get old_keys i in
      if k <> empty_key && k <> tomb_key then begin
        let e = put t k in
        for j = 0 to t.width - 1 do
          A1.set t.vals ((e * t.width) + j) (A1.get old_vals ((i * t.width) + j))
        done
      end
    done

  (* Entry index for [key], inserting if absent (payload uninitialised
     on fresh insert). *)
  and put t key =
    if key < 0 then invalid_arg "Pool.Table: keys must be >= 0";
    if (t.count + t.tombs + 1) * 4 > t.cap * 3 then
      rehash t (if t.count * 4 > t.cap then t.cap * 2 else t.cap);
    let mask = t.cap - 1 in
    let i = ref (hash key land mask) in
    let first_tomb = ref (-1) in
    let res = ref (-2) in
    while !res = -2 do
      let k = A1.get t.keys !i in
      if k = key then res := !i
      else if k = empty_key then begin
        let e = if !first_tomb >= 0 then !first_tomb else !i in
        if !first_tomb >= 0 then t.tombs <- t.tombs - 1;
        A1.set t.keys e key;
        t.count <- t.count + 1;
        res := e
      end
      else begin
        if k = tomb_key && !first_tomb < 0 then first_tomb := !i;
        i := (!i + 1) land mask
      end
    done;
    !res

  let remove t key =
    let e = find t key in
    if e >= 0 then begin
      A1.set t.keys e tomb_key;
      t.count <- t.count - 1;
      t.tombs <- t.tombs + 1;
      true
    end
    else false

  let getv t e j = A1.get t.vals ((e * t.width) + j)
  let setv t e j v = A1.set t.vals ((e * t.width) + j) v

  let clear t =
    A1.fill t.keys empty_key;
    t.count <- 0;
    t.tombs <- 0

  let iter t f =
    for i = 0 to t.cap - 1 do
      let k = A1.get t.keys i in
      if k <> empty_key && k <> tomb_key then f k i
    done
end
