(** Streaming summary statistics.

    Welford's online algorithm for mean/variance plus min/max tracking;
    used by the experiment harness to aggregate per-run ratios, and by the
    benchmarks for timing summaries. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Fold one observation into the accumulator. *)

val copy : t -> t
(** Independent accumulator with the same current state. *)

val of_moments :
  count:int -> mean:float -> m2:float -> mn:float -> mx:float -> t
(** Rebuild an accumulator from its exported moments ({!count}, {!mean},
    {!m2}, {!min}, {!max}) — the inverse of serialising those fields, used
    by the observability layer's import paths.  [count = 0] yields a
    fresh empty accumulator regardless of the other fields.
    @raise Invalid_argument on a negative [count]. *)

val count : t -> int
val mean : t -> float
(** [nan] when empty. *)

val m2 : t -> float
(** Raw sum of squared deviations from the mean (Welford's [M2]); [0.0]
    when empty.  [variance t = m2 t /. (count t - 1)]. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt count]); [nan] with fewer than two
    observations. *)

val merge : t -> t -> t
(** Combine two accumulators as if all observations were added to one. *)

val quantile : float array -> float -> float
(** [quantile data q] is the [q]-quantile ([0 <= q <= 1]) of [data] by
    linear interpolation on the sorted copy.
    @raise Invalid_argument on empty input. *)
