type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; mn = infinity; mx = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let copy t = { t with n = t.n }

let of_moments ~count ~mean ~m2 ~mn ~mx =
  if count < 0 then invalid_arg "Stats.of_moments: negative count";
  if count = 0 then create ()
  else { n = count; mean; m2; mn; mx }

let count t = t.n
let m2 t = t.m2
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = if t.n = 0 then nan else t.mn
let max t = if t.n = 0 then nan else t.mx

let ci95_halfwidth t =
  if t.n < 2 then nan else 1.96 *. stddev t /. sqrt (float_of_int t.n)

(* Chan et al. parallel-merge formula. *)
let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean =
      a.mean +. (delta *. float_of_int b.n /. float_of_int n)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
          /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      mn = Stdlib.min a.mn b.mn;
      mx = Stdlib.max a.mx b.mx;
    }
  end

let quantile data q =
  let len = Array.length data in
  if len = 0 then invalid_arg "Stats.quantile: empty data";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (len - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
