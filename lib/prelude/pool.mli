(** Flat Bigarray-backed pools: off-heap int/float storage for hot
    paths that must not allocate per request.  See DESIGN.md §4.13 for
    the lifetime rules. *)

(** Growable flat int scratch.  [ensure] then index; growth preserves
    contents, fresh cells are uninitialised. *)
module Iarr : sig
  type t

  val create : ?capacity:int -> unit -> t
  val capacity : t -> int
  val ensure : t -> int -> unit
  val get : t -> int -> int
  val set : t -> int -> int -> unit

  val uget : t -> int -> int
  (** Unchecked read — caller guarantees [i < capacity]. *)

  val uset : t -> int -> int -> unit
  (** Unchecked write — caller guarantees [i < capacity]. *)

  val fill : t -> pos:int -> len:int -> int -> unit
end

(** Growable flat float scratch; same contract as {!Iarr}. *)
module Farr : sig
  type t

  val create : ?capacity:int -> unit -> t
  val capacity : t -> int
  val ensure : t -> int -> unit
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val uget : t -> int -> float
  val uset : t -> int -> float -> unit
  val fill : t -> pos:int -> len:int -> float -> unit
end

(** Slotted int arena with free-list recycling.  Each slot is [width]
    ints.  [free] threads the free list through field 0 of the slot, so
    freed slots lose field 0; double-free is undetected. *)
module Ints : sig
  type t

  val create : ?capacity:int -> width:int -> unit -> t
  val width : t -> int
  val live : t -> int
  val capacity : t -> int

  val alloc : t -> int
  (** Slot index; contents are whatever the previous tenant left. *)

  val free : t -> int -> unit
  val get : t -> int -> int -> int
  val set : t -> int -> int -> int -> unit

  val clear : t -> unit
  (** Forget all slots (no per-slot work). *)
end

(** Open-addressed int-keyed map with [width] ints of payload per
    entry.  Keys must be [>= 0].  Entry indices are stable only until
    the next {!Table.put}, which may rehash. *)
module Table : sig
  type t

  val create : ?capacity:int -> width:int -> unit -> t
  val count : t -> int
  val capacity : t -> int

  val find : t -> int -> int
  (** Entry index for the key, or [-1] if absent. *)

  val put : t -> int -> int
  (** Entry index for the key, inserting if absent.  On a fresh insert
      the payload is uninitialised — write it via {!setv}. *)

  val remove : t -> int -> bool
  val getv : t -> int -> int -> int
  val setv : t -> int -> int -> int -> unit
  val clear : t -> unit

  val iter : t -> (int -> int -> unit) -> unit
  (** [iter t f] calls [f key entry] for every live entry, in storage
      order (not insertion order). *)
end
