let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count () - 1))

type domain_stat = {
  domain : int;
  tasks : int;
  finished_at : float;
}

type 'b cell = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let no_clock () = 0.0

let mapi ?domains ?(clock = no_clock) ?observe f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> recommended_domains ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  let report stats =
    match observe with None -> () | Some obs -> obs stats
  in
  if n = 0 then begin
    report [];
    []
  end
  else if domains = 1 || n <= 1 then begin
    let r = List.mapi f xs in
    report [ { domain = 0; tasks = n; finished_at = clock () } ];
    r
  end
  else begin
    let results = Array.make n Pending in
    let workers = min domains n in
    let finished = Array.make workers 0.0 in
    (* round-robin partition: task i goes to domain (i mod workers);
       tasks are independent simulations of comparable cost, so the
       interleaved split balances well without a work queue *)
    let run_worker w () =
      let i = ref w in
      while !i < n do
        (results.(!i) <-
           (match f !i items.(!i) with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        i := !i + workers
      done;
      finished.(w) <- clock ()
    in
    let spawned =
      List.init (workers - 1) (fun w -> Domain.spawn (run_worker (w + 1)))
    in
    run_worker 0 ();
    List.iter Domain.join spawned;
    report
      (List.init workers (fun w ->
           {
             domain = w;
             tasks = (n - w + workers - 1) / workers;
             finished_at = finished.(w);
           }));
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         results)
  end

let map ?domains ?clock ?observe f xs =
  mapi ?domains ?clock ?observe (fun _ x -> f x) xs
