(* Inter-node wire grammar.  Everything is a single space-separated
   line behind a leading keyword; integer fields are non-negative
   (Serve.Protocol.int_field), alternative lists use Sched.Codec's
   comma grammar, and the LDF key renders max_int as "inf" (cancel
   messages outrank everything, and 4611686018427387903 on the wire
   would be noise, not meaning). *)

module Codec = Sched.Codec
module Protocol = Serve.Protocol
module Request = Sched.Request

let version = Codec.version
let max_line = 65536

type reqinfo = {
  rid : int;
  alternatives : int list;
  arrival : int;
  deadline : int;
}

let last_round ri = ri.arrival + ri.deadline - 1

type data =
  | Offer of reqinfo
  | Probe of reqinfo
  | Cancel of { q : int; old_res : int; old_t : int }
  | Rival of reqinfo
  | Swap of { r : int; q : reqinfo }
  | Rehome of { r : reqinfo; res : int }
  | Loadq
  | Assign of reqinfo

type env = {
  sender : int;
  dst : int;
  deadline_key : int;
  tagged : bool;
  data : data;
}

type reply =
  | Accept of { q : int; res : int; slot : int }
  | Full of { q : int; res : int }
  | Ack of { q : int; res : int }
  | Freeat of { q : int; res : int; slot : int }
  | Served of { res : int; round : int; q : int }
  | Pong of { node : int; round : int }

type control =
  | Hello of { node : int }
  | Ping of { round : int }
  | Join of { node : int; round : int }
  | Handoff of { res : int; slots : (int * reqinfo) list }

type t = Data of env | Reply of reply | Control of control

let data_env ~sender ~dst ~deadline_key ?(tagged = false) data =
  Data { sender; dst; deadline_key; tagged; data }

let reqinfo_of_request (r : Request.t) =
  {
    rid = r.Request.id;
    alternatives = Array.to_list r.Request.alternatives;
    arrival = r.Request.arrival;
    deadline = r.Request.deadline;
  }

let request_of_reqinfo ri =
  Request.with_id
    (Request.make ~arrival:ri.arrival ~alternatives:ri.alternatives
       ~deadline:ri.deadline)
    ri.rid

(* ------------------------------------------------------------------ *)
(* rendering *)

let render_reqinfo ri =
  Printf.sprintf "%d %s %d %d" ri.rid
    (Codec.render_alts ri.alternatives)
    ri.arrival ri.deadline

let render_key k = if k = max_int then "inf" else string_of_int k

let render_env_header keyword e =
  Printf.sprintf "%s %d %d %s %c" keyword e.sender e.dst
    (render_key e.deadline_key)
    (if e.tagged then 't' else 'u')

let render_data e =
  match e.data with
  | Offer ri -> render_env_header "offer" e ^ " " ^ render_reqinfo ri
  | Probe ri -> render_env_header "probe" e ^ " " ^ render_reqinfo ri
  | Cancel { q; old_res; old_t } ->
    Printf.sprintf "%s %d %d %d" (render_env_header "cancel" e) q old_res
      old_t
  | Rival ri -> render_env_header "rival" e ^ " " ^ render_reqinfo ri
  | Swap { r; q } ->
    Printf.sprintf "%s %d %s" (render_env_header "swap" e) r
      (render_reqinfo q)
  | Rehome { r; res } ->
    Printf.sprintf "%s %d %s" (render_env_header "rehome" e) res
      (render_reqinfo r)
  | Loadq -> render_env_header "loadq" e
  | Assign ri -> render_env_header "assign" e ^ " " ^ render_reqinfo ri

let render_reply = function
  | Accept { q; res; slot } -> Printf.sprintf "accept %d %d %d" q res slot
  | Full { q; res } -> Printf.sprintf "full %d %d" q res
  | Ack { q; res } -> Printf.sprintf "ack %d %d" q res
  | Freeat { q; res; slot } -> Printf.sprintf "freeat %d %d %d" q res slot
  | Served { res; round; q } -> Printf.sprintf "served %d %d %d" res round q
  | Pong { node; round } -> Printf.sprintf "pong %d %d" node round

let render_control = function
  | Hello { node } -> Printf.sprintf "hello %s %d" version node
  | Ping { round } -> Printf.sprintf "ping %d" round
  | Join { node; round } -> Printf.sprintf "join %s %d %d" version node round
  | Handoff { res; slots = [] } -> Printf.sprintf "handoff %d" res
  | Handoff { res; slots } ->
    Printf.sprintf "handoff %d %s" res
      (String.concat ";"
         (List.map
            (fun (t, ri) -> Printf.sprintf "%d %s" t (render_reqinfo ri))
            slots))

let render = function
  | Data e -> render_data e
  | Reply r -> render_reply r
  | Control c -> render_control c

(* ------------------------------------------------------------------ *)
(* parsing *)

let ( let* ) = Result.bind

let int_field = Protocol.int_field

let parse_reqinfo ~what fields =
  match fields with
  | [ rid_s; alts_s; arrival_s; deadline_s ] ->
    let* rid = int_field ~what:(what ^ " id") rid_s in
    let* alternatives = Codec.parse_alts alts_s in
    let* arrival = int_field ~what:"arrival" arrival_s in
    let* deadline = int_field ~what:"deadline" deadline_s in
    if deadline < 1 then Error (Printf.sprintf "deadline %d < 1" deadline)
    else Ok { rid; alternatives; arrival; deadline }
  | _ -> Error (Printf.sprintf "expected '<%s> <alts> <arrival> <deadline>'" what)

let parse_key s =
  if s = "inf" then Ok max_int else int_field ~what:"deadline key" s

let parse_tag = function
  | "t" -> Ok true
  | "u" -> Ok false
  | s -> Error (Printf.sprintf "malformed tag flag %S (want t or u)" s)

(* "<sender> <dst> <key> <t|u> rest..." *)
let parse_env rest ~payload =
  match String.split_on_char ' ' rest with
  | sender_s :: dst_s :: key_s :: tag_s :: payload_fields ->
    let* sender = int_field ~what:"sender" sender_s in
    let* dst = int_field ~what:"destination" dst_s in
    let* deadline_key = parse_key key_s in
    let* tagged = parse_tag tag_s in
    let* data = payload payload_fields in
    Ok (Data { sender; dst; deadline_key; tagged; data })
  | _ -> Error "truncated envelope"

let reqinfo_payload ~what wrap fields =
  let* ri = parse_reqinfo ~what fields in
  Ok (wrap ri)

let parse_ints ~shape whats fields =
  if List.length whats <> List.length fields then
    Error (Printf.sprintf "expected '%s'" shape)
  else
    List.fold_right2
      (fun what field acc ->
         let* vs = acc in
         let* v = int_field ~what field in
         Ok (v :: vs))
      whats fields (Ok [])

let parse_handoff rest =
  let res_s, entries_s =
    match String.index_opt rest ' ' with
    | None -> (rest, "")
    | Some i ->
      ( String.sub rest 0 i,
        String.sub rest (i + 1) (String.length rest - i - 1) )
  in
  let* res = int_field ~what:"resource" res_s in
  if entries_s = "" then Ok (Control (Handoff { res; slots = [] }))
  else
    let* slots =
      List.fold_right
        (fun entry acc ->
           let* slots = acc in
           match String.split_on_char ' ' entry with
           | t_s :: ri_fields ->
             let* t = int_field ~what:"slot round" t_s in
             let* ri = parse_reqinfo ~what:"request" ri_fields in
             Ok ((t, ri) :: slots)
           | [] -> Error "empty handoff entry")
        (String.split_on_char ';' entries_s)
        (Ok [])
    in
    Ok (Control (Handoff { res; slots }))

let parse_versioned ~keyword ~shape rest k =
  match String.split_on_char ' ' rest with
  | v :: fields when v = version -> k fields
  | v :: _ when v <> version ->
    Error
      (Printf.sprintf "unsupported protocol version %S (want %s)" v version)
  | _ -> Error (Printf.sprintf "expected '%s %s %s'" keyword version shape)

let keyword_table :
  (string * (string -> (t, string) result)) list =
  [
    ( "offer",
      fun rest -> parse_env rest ~payload:(reqinfo_payload ~what:"request"
                                             (fun ri -> Offer ri)) );
    ( "probe",
      fun rest -> parse_env rest ~payload:(reqinfo_payload ~what:"request"
                                             (fun ri -> Probe ri)) );
    ( "cancel",
      fun rest ->
        parse_env rest ~payload:(fun fields ->
            let* vs =
              parse_ints ~shape:"<q> <old res> <old round>"
                [ "request"; "old resource"; "old round" ] fields
            in
            match vs with
            | [ q; old_res; old_t ] -> Ok (Cancel { q; old_res; old_t })
            | _ -> assert false) );
    ( "rival",
      fun rest -> parse_env rest ~payload:(reqinfo_payload ~what:"request"
                                             (fun ri -> Rival ri)) );
    ( "swap",
      fun rest ->
        parse_env rest ~payload:(fun fields ->
            match fields with
            | r_s :: ri_fields ->
              let* r = int_field ~what:"occupant" r_s in
              let* q = parse_reqinfo ~what:"request" ri_fields in
              Ok (Swap { r; q })
            | [] -> Error "truncated swap") );
    ( "rehome",
      fun rest ->
        parse_env rest ~payload:(fun fields ->
            match fields with
            | res_s :: ri_fields ->
              let* res = int_field ~what:"resource" res_s in
              let* r = parse_reqinfo ~what:"request" ri_fields in
              Ok (Rehome { r; res })
            | [] -> Error "truncated rehome") );
    ("loadq", fun rest -> parse_env rest ~payload:(function
         | [] -> Ok Loadq
         | _ -> Error "loadq carries no payload"));
    ( "assign",
      fun rest -> parse_env rest ~payload:(reqinfo_payload ~what:"request"
                                             (fun ri -> Assign ri)) );
    ( "accept",
      fun rest ->
        let* vs =
          parse_ints ~shape:"accept <q> <res> <slot>"
            [ "request"; "resource"; "slot" ]
            (String.split_on_char ' ' rest)
        in
        match vs with
        | [ q; res; slot ] -> Ok (Reply (Accept { q; res; slot }))
        | _ -> assert false );
    ( "full",
      fun rest ->
        let* vs =
          parse_ints ~shape:"full <q> <res>" [ "request"; "resource" ]
            (String.split_on_char ' ' rest)
        in
        match vs with
        | [ q; res ] -> Ok (Reply (Full { q; res }))
        | _ -> assert false );
    ( "ack",
      fun rest ->
        let* vs =
          parse_ints ~shape:"ack <q> <res>" [ "request"; "resource" ]
            (String.split_on_char ' ' rest)
        in
        match vs with
        | [ q; res ] -> Ok (Reply (Ack { q; res }))
        | _ -> assert false );
    ( "freeat",
      fun rest ->
        let* vs =
          parse_ints ~shape:"freeat <q> <res> <slot>"
            [ "request"; "resource"; "slot" ]
            (String.split_on_char ' ' rest)
        in
        match vs with
        | [ q; res; slot ] -> Ok (Reply (Freeat { q; res; slot }))
        | _ -> assert false );
    ( "served",
      fun rest ->
        let* vs =
          parse_ints ~shape:"served <res> <round> <q>"
            [ "resource"; "round"; "request" ]
            (String.split_on_char ' ' rest)
        in
        match vs with
        | [ res; round; q ] -> Ok (Reply (Served { res; round; q }))
        | _ -> assert false );
    ( "pong",
      fun rest ->
        let* vs =
          parse_ints ~shape:"pong <node> <round>" [ "node"; "round" ]
            (String.split_on_char ' ' rest)
        in
        match vs with
        | [ node; round ] -> Ok (Reply (Pong { node; round }))
        | _ -> assert false );
    ( "hello",
      fun rest ->
        parse_versioned ~keyword:"hello" ~shape:"<node>" rest (function
            | [ node_s ] ->
              let* node = int_field ~what:"node" node_s in
              Ok (Control (Hello { node }))
            | _ -> Error "expected 'hello rsp/1 <node>'") );
    ( "ping",
      fun rest ->
        let* round = int_field ~what:"round" rest in
        Ok (Control (Ping { round })) );
    ( "join",
      fun rest ->
        parse_versioned ~keyword:"join" ~shape:"<node> <round>" rest
          (function
            | [ node_s; round_s ] ->
              let* node = int_field ~what:"node" node_s in
              let* round = int_field ~what:"round" round_s in
              Ok (Control (Join { node; round }))
            | _ -> Error "expected 'join rsp/1 <node> <round>'") );
    ("handoff", parse_handoff);
  ]

let parse line =
  let len = String.length line in
  if len > max_line then
    Error (Printf.sprintf "line too long (%d bytes, max %d)" len max_line)
  else
    let rec dispatch = function
      | [] ->
        let keyword =
          match String.index_opt line ' ' with
          | None -> line
          | Some i -> String.sub line 0 i
        in
        Error (Printf.sprintf "unknown message %S" keyword)
      | (keyword, handler) :: rest ->
        (match Protocol.strip_keyword ~keyword line with
         | Some tail -> handler tail
         | None -> dispatch rest)
    in
    dispatch keyword_table
