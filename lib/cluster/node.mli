(** An in-process shard node: the slot replica behind the router tier.

    Each node holds the materialised slot table for the resources the
    ring currently places on it — request payloads ({!Wire.reqinfo}),
    not just ids, because the node is what actually serves: at the end
    of a round it reports its current-round occupants, and on a
    rebalance it is the node's table, not the router's mirror, that is
    exported in {!Wire.Handoff} messages.

    Replicas are written {e only} from delivered wire messages (the
    transport's [Delivered] outcomes), which is what makes node death
    meaningful: {!kill} wipes the table — in-flight state on a dead
    node is gone, exactly like a process crash — and the router's
    recovery path (failover readmission, rejoin handoff) has to
    rebuild it through the protocol.  The router compares each serve
    report against its own mirror ([cluster.serve_conflicts] counts
    disagreements), so a replica bug is detected, never silently
    served. *)

type t

val create : id:int -> t
(** A live, empty node. *)

val id : t -> int
val alive : t -> bool

val kill : t -> unit
(** Process death: drops every slot and marks the node dead.
    Idempotent. *)

val revive : t -> unit
(** Restart, empty (state does not survive a crash); the ring handoff
    repopulates it.  @raise Invalid_argument if already alive. *)

val set_slot : t -> res:int -> round:int -> Wire.reqinfo -> unit
(** @raise Invalid_argument when dead (a delivered message cannot
    target a dead node; the transport bounces those). *)

val free_slot : t -> res:int -> round:int -> unit
val take_slot : t -> res:int -> round:int -> Wire.reqinfo option
(** Remove and return the occupant, for the end-of-round serve. *)

val export : t -> res:int -> from_round:int -> (int * Wire.reqinfo) list
(** Remove and return [res]'s slots at rounds [>= from_round],
    ascending — the content of a {!Wire.Handoff} when [res] moves to
    another node. *)

val import : t -> res:int -> (int * Wire.reqinfo) list -> unit
(** Install handed-off slots.  @raise Invalid_argument when dead or on
    an already-occupied slot (a handoff never overwrites). *)
