(** The cluster's message fabric: the paper's communication model over
    rendered wire bytes.

    Every message physically travels as a {!Wire} line: the transport
    renders it, length-checks it, and parses it back before delivery,
    so a protocol decision can only ever be made from what the grammar
    actually carries — a field the renderer forgets is a field the
    cluster demonstrably does not need.  Structural round-trip drift
    raises: it is a bug in {!Wire}, never a runtime condition.

    Data messages contest per-resource capacity exactly as
    {!Distnet.Net} does — the LDF cut is {!Distnet.Budget.deliver},
    the {e same code} on both the simulated and the live path (the
    parity the test-suite pins).  Two extra outcomes exist here that
    the single-process simulator has no use for: a message to a
    resource currently hosted on a dead node is [Dead] (the sender is
    notified, as with a bounce, but the message never contests
    capacity), and replies/control lines travel uncapped.

    Meters: private counters for protocol budgets (comm rounds,
    messages, bounces, dead drops) plus mirrored [cluster.*] metrics
    ([cluster.comm_rounds], [cluster.msgs], [cluster.bounced],
    [cluster.dropped_dead], [cluster.replies], [cluster.ctrl_msgs])
    for telemetry. *)

type status =
  | Delivered
  | Bounced  (** lost the LDF capacity contest; sender notified *)
  | Dead     (** destination resource hosted on a dead node *)

type t

val create :
  n:int -> capacity:int ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?metrics:Obs.Metrics.t -> unit -> t
(** A fabric over [n] resources delivering at most [capacity] untagged
    data messages per resource per communication round.  [priority]
    breaks LDF ties as in {!Distnet.Net} (higher kept; default
    constant 0).  [metrics] receives the [cluster.*] mirror (ambient
    fallback; silent when neither is set).
    @raise Invalid_argument if [n < 1] or [capacity < 1]. *)

val exchange :
  t -> owner:(int -> int) -> alive:(int -> bool) ->
  Wire.env list -> (Wire.env * status) list
(** One communication round: render, deliver, report.  [owner] maps a
    resource to its hosting node and [alive] tells whether that node is
    up.  Ordering and tie-break semantics match
    {!Distnet.Net.exchange}: positions in the input list are the final
    LDF tie-break.  Counts one communication round when the list is
    non-empty.
    @raise Invalid_argument on a destination outside [0 .. n-1]. *)

val respond : t -> Wire.reply -> Wire.reply
(** Send an uncapped response line (resource/node to router); returns
    the message as re-parsed from its wire bytes. *)

val control : t -> Wire.control -> Wire.control
(** Send an uncapped control line (membership/liveness traffic); wire
    round-trip as {!respond}. *)

val tick : t -> unit
(** Count a communication round carrying no data traffic. *)

val comm_rounds : t -> int
val messages : t -> int
val bounced : t -> int
val dropped_dead : t -> int
