(** A cluster session: the router tier driving the paper's local
    strategies {e live} across shard nodes.

    Resources are consistent-hashed over [nodes] in-process shard
    nodes ({!Ring}, {!Node}); every protocol message travels as
    rendered {!Wire} bytes through a {!Transport} whose per-resource
    mailbox capacity and LDF drop rule are the paper's communication
    model (Sec. 1.3) — so [A_local_fix] keeps its 2-competitive
    guarantee and 2-round budget (Thm 3.7) and [A_local_eager] its
    9-round budget (Thm 3.8) on the live path, measured, not assumed.

    Decision authority is the router's mirror: the same slot table,
    assignment map and acceptance rule as {!Localstrat.Local}, advanced
    {e only} by delivered messages.  Two consequences the test-suite
    pins: the served set is identical to the single-process simulator
    on any failure-free schedule (decision parity), and identical
    across node layouts (placement only chooses which replica hosts a
    slot, never what the protocol decides) — which is what makes
    [--manual] replay byte-identical across cluster shapes.  Node
    replicas hold the request payloads, report the end-of-round serves
    (disagreements with the mirror are counted, never silently served)
    and carry the state that is genuinely lost on {!kill}.

    Failure handling: the router pings every node each round; after
    [fail_after] consecutive missed pongs the node is declared dead,
    the ring rebalances onto the survivors, and every request assigned
    to one of the dead node's resources is re-admitted with its
    {e original} window (it re-enters the next round's offer phase).
    {!rejoin} re-admits the node through a versioned [join], rebalances
    the ring back, and moves the affected future slots to it with
    explicit handoff messages.  Every admitted request still reaches
    exactly one terminal outcome (served, expired or rejected at
    submission) — the invariant the kill-mid-run test checks. *)

type kind =
  | Local_fix                            (** Thm 3.7: 2 rounds, ratio 2 *)
  | Local_eager of { compact : bool }
      (** Thm 3.8: 9 rounds (8 at capacity [2d-2] when [compact]) *)
  | Proxy_global
      (** non-paper baseline: the router probes both alternatives'
          load and assigns the earliest free slot, 2 rounds per
          attempt; no fixing, so requests left out retry every round *)

val kind_name : kind -> string

type stats = {
  scheduling_rounds : int;
  comm_rounds_total : int;
  comm_rounds_max : int;   (** worst communication rounds in one round *)
  messages : int;          (** capacity-contested data messages *)
  bounced : int;           (** LDF capacity bounces *)
  dropped_dead : int;      (** data messages sent to dead nodes *)
  requests : int;          (** arrivals admitted *)
  straddled : int;         (** arrivals whose alternatives live on
                               different nodes (at arrival time) *)
  served : int;
  expired : int;
  readmitted : int;
  failovers : int;
  handoffs : int;          (** handoff messages sent on rejoins *)
  handoff_slots : int;
  serve_conflicts : int;   (** mirror/replica disagreements; 0 unless a
                               node lost state the router had not yet
                               detected *)
}

type outcome = {
  round : int;
  served : (int * int) list;  (** (request id, resource), resource order *)
  expired : int list;         (** ids expired this round, ascending *)
}

type t

val create :
  ?metrics:Obs.Metrics.t ->
  ?capacity:int ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?fail_after:int ->
  ?vnodes:int ->
  strategy:kind -> nodes:int -> n:int -> d:int -> unit -> t
(** A cluster of [nodes] shard nodes over [n] resources with nominal
    deadline [d].  [capacity] is the per-resource mailbox bound
    (default: the strategy's paper value — [d], or [2d-2] for the
    compact eager variant); it must be at least [d], the bound the
    protocols' cancellation soundness needs.  [priority] breaks LDF
    ties (Thm 3.7's favoured/victim split).  [fail_after] (default 2)
    is the missed-pong threshold of dead-node detection.  [metrics]
    (ambient fallback) receives the [cluster.*] counters.
    @raise Invalid_argument on [nodes < 1], [n < 1], [d < 1],
    [capacity < d] or [fail_after < 1]. *)

val submit :
  ?id:int -> t -> alternatives:int list -> deadline:int ->
  (int, string) result
(** Admit a request arriving at the current round; it enters the next
    {!step}'s offer phase.  [id] overrides the session-assigned dense
    id (the manual-replay path, where the trace's ids are the wire
    sender ids); supplying a duplicate or negative id, malformed
    alternatives or a deadline outside [1 .. d] is an [Error] and
    admits nothing. *)

val step : t -> outcome
(** Execute one scheduling round: ping/failure detection, expiry,
    arrivals (queued submissions and failover readmissions), the
    strategy's communication rounds over the wire, then the serve
    collection against the node replicas. *)

val round : t -> int
val pending : t -> int
(** Admitted requests with no terminal outcome yet. *)

val kill : t -> int -> unit
(** Crash a node: its replica state is lost {e now}; the router keeps
    routing to it (messages bounce as dead) until detection declares
    it dead and rebalances.  @raise Invalid_argument on an unknown or
    already-dead node. *)

val rejoin : t -> int -> unit
(** Restart a crashed node and re-admit it: versioned join, ring
    rebalance, explicit handoff of the future slots of every resource
    that moves back to it.  A node killed but not yet declared dead
    rejoins empty with no rebalance (the router never noticed; its
    lost state surfaces as counted serve conflicts and readmissions).
    @raise Invalid_argument if the node is alive. *)

val node_alive : t -> int -> bool
(** Ground truth (not the router's suspicion state). *)

val owner : t -> int -> int
(** The node currently hosting a resource. *)

val stats : t -> stats

val factory :
  ?metrics:Obs.Metrics.t ->
  ?capacity:int ->
  ?priority:(sender:int -> dst:int -> int) ->
  ?fail_after:int ->
  ?vnodes:int ->
  ?on_create:(t -> unit) ->
  strategy:kind -> nodes:int -> unit -> Sched.Strategy.factory
(** Adapt a cluster session to the engine's strategy interface, so
    {!Sched.Engine.run} (full ledger validation) and the serve shards
    can drive a cluster.  [on_create] receives each fresh session —
    the hook tests and the CLI use to reach {!stats} or schedule
    kills. *)
