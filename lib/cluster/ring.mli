(** Consistent hash ring: resources to shard nodes.

    The router tier places each resource on exactly one node; the
    placement must disturb as little as possible when membership
    changes, because every moved resource costs an explicit slot
    handoff on rejoin (DESIGN.md §4.12).  Classic consistent hashing
    gives that: each node projects [vnodes] points onto a hash circle
    and a resource belongs to the node owning the first point at or
    after the resource's own hash.  Removing a node only reassigns the
    resources it owned; adding it back restores exactly the original
    placement — both properties are pinned by the test-suite, and the
    second is what makes a rejoin handoff the precise inverse of the
    failover that preceded it.

    Values are immutable; membership changes return a new ring.  The
    hash is a fixed splitmix-style mixer, so placements are stable
    across runs, processes and platforms (no [Hashtbl.hash], whose
    values the runtime does not pin). *)

type t

val create : ?vnodes:int -> nodes:int list -> unit -> t
(** A ring over the given member nodes ([vnodes] points each,
    default 64).
    @raise Invalid_argument on an empty or duplicate-containing member
    list, a negative node id, or [vnodes < 1]. *)

val owner : t -> int -> int
(** The node owning the given resource. *)

val members : t -> int list
(** Current members, ascending. *)

val mem : t -> int -> bool

val remove : t -> int -> t
(** Ring without the given node.
    @raise Invalid_argument when removing the last member or a
    non-member. *)

val add : t -> int -> t
(** Ring with the given node (re)admitted.
    @raise Invalid_argument if already a member. *)

val moved : before:t -> after:t -> n:int -> int list
(** Resources in [0 .. n-1] whose owner differs between the two rings,
    ascending — the handoff set of a membership change. *)
