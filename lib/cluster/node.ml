(* The slot replica.  Deliberately passive: every transition is driven
   by the router applying a delivered wire message, so the replica's
   content is always explainable by the message log. *)

module Slots = Localstrat.Slots

type t = {
  node_id : int;
  slots : Wire.reqinfo Slots.t;
  mutable alive : bool;
}

let create ~id = { node_id = id; slots = Slots.create (); alive = true }
let id t = t.node_id
let alive t = t.alive

let kill t =
  Slots.clear t.slots;
  t.alive <- false

let revive t =
  if t.alive then invalid_arg "Node.revive: already alive";
  t.alive <- true

let check_alive t op =
  if not t.alive then invalid_arg ("Node." ^ op ^ ": node is dead")

let set_slot t ~res ~round ri =
  check_alive t "set_slot";
  Slots.set t.slots ~res ~round ri

let free_slot t ~res ~round =
  check_alive t "free_slot";
  Slots.free t.slots ~res ~round

let take_slot t ~res ~round =
  check_alive t "take_slot";
  Slots.take t.slots ~res ~round

let export t ~res ~from_round =
  check_alive t "export";
  let entries =
    Slots.fold t.slots
      (fun ~res:r ~round v acc ->
         if r = res && round >= from_round then (round, v) :: acc else acc)
      []
  in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  List.iter (fun (round, _) -> Slots.free t.slots ~res ~round) entries;
  entries

let import t ~res entries =
  check_alive t "import";
  List.iter
    (fun (round, ri) ->
       if Slots.mem t.slots ~res ~round then
         invalid_arg "Node.import: slot already occupied";
       Slots.set t.slots ~res ~round ri)
    entries
