(* The router tier.  The decision state here is deliberately the same
   state machine as Localstrat.Local — same slot table, same maximal
   acceptance rule, same phase order — but every protocol step is
   driven by what the Transport actually delivered as wire bytes, and
   every accepted decision is materialised on the owning node's
   replica.  That split is the whole design: decisions depend only on
   resources and senders (so they are identical to the simulator and
   invariant under node placement), while the replicas carry the state
   that is genuinely lost when a node dies. *)

module Request = Sched.Request
module Strategy = Sched.Strategy
module Slots = Localstrat.Slots

type kind =
  | Local_fix
  | Local_eager of { compact : bool }
  | Proxy_global

let kind_name = function
  | Local_fix -> "local_fix"
  | Local_eager { compact = false } -> "local_eager"
  | Local_eager { compact = true } -> "local_eager_compact"
  | Proxy_global -> "proxy_global"

type stats = {
  scheduling_rounds : int;
  comm_rounds_total : int;
  comm_rounds_max : int;
  messages : int;
  bounced : int;
  dropped_dead : int;
  requests : int;
  straddled : int;
  served : int;
  expired : int;
  readmitted : int;
  failovers : int;
  handoffs : int;
  handoff_slots : int;
  serve_conflicts : int;
}

type outcome = {
  round : int;
  served : (int * int) list;
  expired : int list;
}

type t = {
  n : int;
  d : int;
  kind : kind;
  fail_after : int;
  metrics : Obs.Metrics.t option;
  transport : Transport.t;
  nodes : Node.t array;
  mutable ring : Ring.t;
  suspected : int array;        (* consecutive missed pongs *)
  confirmed_dead : bool array;  (* the router's view; Node.alive is truth *)
  (* the mirror: Localstrat.Local's decision state *)
  slots : int Slots.t;
  assigned : (int, int * int) Hashtbl.t;
  active : (int, Request.t) Hashtbl.t;
  mutable round : int;
  mutable queue : Request.t list;  (* reversed pending submissions *)
  mutable readmit : int list;      (* failover re-admissions, oldest first *)
  mutable next_id : int;
  ids : (int, unit) Hashtbl.t;
  mutable sched_rounds : int;
  mutable max_cr : int;
  mutable requests_n : int;
  mutable straddled_n : int;
  mutable served_n : int;
  mutable expired_n : int;
  mutable readmitted_n : int;
  mutable failovers_n : int;
  mutable handoffs_n : int;
  mutable handoff_slots_n : int;
  mutable conflicts_n : int;
}

let met ?(by = 1) t key =
  match t.metrics with None -> () | Some m -> Obs.Metrics.incr ~by m key

let create ?metrics ?capacity ?priority ?(fail_after = 2) ?vnodes ~strategy
    ~nodes ~n ~d () =
  if nodes < 1 then invalid_arg "Session.create: nodes < 1";
  if n < 1 then invalid_arg "Session.create: n < 1";
  if d < 1 then invalid_arg "Session.create: d < 1";
  if fail_after < 1 then invalid_arg "Session.create: fail_after < 1";
  let capacity =
    match capacity with
    | Some c ->
      (* the cancellation round is only guaranteed bounce-free at
         capacity >= d (at most d-1 cancels target one resource) *)
      if c < d then invalid_arg "Session.create: capacity < d"
      else c
    | None ->
      (match strategy with
       | Local_eager { compact = true } -> max d ((2 * d) - 2)
       | Local_fix | Local_eager _ | Proxy_global -> d)
  in
  let metrics = Obs.Metrics.resolve metrics in
  let transport = Transport.create ~n ~capacity ?priority ?metrics () in
  let t =
    {
      n;
      d;
      kind = strategy;
      fail_after;
      metrics;
      transport;
      nodes = Array.init nodes (fun id -> Node.create ~id);
      ring = Ring.create ?vnodes ~nodes:(List.init nodes Fun.id) ();
      suspected = Array.make nodes 0;
      confirmed_dead = Array.make nodes false;
      slots = Slots.create ();
      assigned = Hashtbl.create 128;
      active = Hashtbl.create 128;
      round = 0;
      queue = [];
      readmit = [];
      next_id = 0;
      ids = Hashtbl.create 128;
      sched_rounds = 0;
      max_cr = 0;
      requests_n = 0;
      straddled_n = 0;
      served_n = 0;
      expired_n = 0;
      readmitted_n = 0;
      failovers_n = 0;
      handoffs_n = 0;
      handoff_slots_n = 0;
      conflicts_n = 0;
    }
  in
  (match metrics with
   | Some m -> Obs.Metrics.set m "cluster.nodes" (float_of_int nodes)
   | None -> ());
  Array.iter
    (fun node ->
       ignore
         (Transport.control transport (Wire.Hello { node = Node.id node })))
    t.nodes;
  t

let round t = t.round
let node_alive t k = Node.alive t.nodes.(k)
let owner t res = Ring.owner t.ring res
let node_of t res = t.nodes.(Ring.owner t.ring res)
let pending t = Hashtbl.length t.active + List.length t.queue

let exchange t envs =
  Transport.exchange t.transport
    ~owner:(fun res -> Ring.owner t.ring res)
    ~alive:(fun k -> Node.alive t.nodes.(k))
    envs

let respond t reply = ignore (Transport.respond t.transport reply)

(* ------------------------------------------------------------------ *)
(* submission *)

let enqueue t (r : Request.t) =
  Hashtbl.replace t.ids r.Request.id ();
  if r.Request.id >= t.next_id then t.next_id <- r.Request.id + 1;
  t.queue <- r :: t.queue

let submit ?id t ~alternatives ~deadline =
  if deadline < 1 || deadline > t.d then
    Error (Printf.sprintf "deadline %d outside 1 .. %d" deadline t.d)
  else if List.exists (fun res -> res < 0 || res >= t.n) alternatives then
    Error "alternative resource out of range"
  else
    match id with
    | Some i when i < 0 -> Error (Printf.sprintf "negative id %d" i)
    | Some i when Hashtbl.mem t.ids i ->
      Error (Printf.sprintf "duplicate id %d" i)
    | _ ->
      let id = match id with Some i -> i | None -> t.next_id in
      (match Request.make ~arrival:t.round ~alternatives ~deadline with
       | exception Invalid_argument m -> Error m
       | proto ->
         enqueue t (Request.with_id proto id);
         Ok id)

(* ------------------------------------------------------------------ *)
(* mirror primitives (Localstrat.Local's, verbatim semantics) *)

let try_accept t ~round res (r : Request.t) =
  match
    Slots.try_accept t.slots ~round ~res ~arrival:r.Request.arrival
      ~last:(Request.last_round r) r.Request.id
  with
  | None -> None
  | Some slot ->
    Hashtbl.replace t.assigned r.Request.id (res, slot);
    Some slot

let expire t ~round =
  let dead =
    Hashtbl.fold
      (fun id r acc -> if Request.last_round r < round then id :: acc else acc)
      t.active []
  in
  List.iter
    (fun id ->
       Hashtbl.remove t.active id;
       (match Hashtbl.find_opt t.assigned id with
        | Some (res, slot) -> Slots.free t.slots ~res ~round:slot
        | None -> ());
       Hashtbl.remove t.assigned id)
    dead;
  List.sort compare dead

(* ------------------------------------------------------------------ *)
(* liveness: ping sweep, failover, rejoin *)

let declare_dead t k =
  t.confirmed_dead.(k) <- true;
  t.failovers_n <- t.failovers_n + 1;
  met t "cluster.failovers";
  let old_ring = t.ring in
  if List.length (Ring.members t.ring) > 1 && Ring.mem t.ring k then
    t.ring <- Ring.remove t.ring k;
  (* every request assigned to a resource the dead node hosted has lost
     its slot with the node's state: free it in the mirror and push the
     survivors back through the next round's offer phase, windows
     untouched *)
  let victims =
    Hashtbl.fold
      (fun id (res, slot) acc ->
         if Ring.owner old_ring res = k then (id, res, slot) :: acc else acc)
      t.assigned []
    |> List.sort compare
  in
  List.iter
    (fun (id, res, slot) ->
       Slots.free t.slots ~res ~round:slot;
       Hashtbl.remove t.assigned id;
       if Hashtbl.mem t.active id then begin
         t.readmit <- t.readmit @ [ id ];
         t.readmitted_n <- t.readmitted_n + 1;
         met t "cluster.readmitted"
       end)
    victims

let ping_sweep t =
  Array.iteri
    (fun k node ->
       if not t.confirmed_dead.(k) then begin
         ignore (Transport.control t.transport (Wire.Ping { round = t.round }));
         if Node.alive node then begin
           t.suspected.(k) <- 0;
           respond t (Wire.Pong { node = k; round = t.round })
         end
         else begin
           t.suspected.(k) <- t.suspected.(k) + 1;
           if t.suspected.(k) >= t.fail_after then declare_dead t k
         end
       end)
    t.nodes

let kill t k =
  if k < 0 || k >= Array.length t.nodes then
    invalid_arg "Session.kill: unknown node";
  if not (Node.alive t.nodes.(k)) then
    invalid_arg "Session.kill: node already dead";
  Node.kill t.nodes.(k)

let rejoin t k =
  if k < 0 || k >= Array.length t.nodes then
    invalid_arg "Session.rejoin: unknown node";
  if Node.alive t.nodes.(k) then invalid_arg "Session.rejoin: node is alive";
  Node.revive t.nodes.(k);
  t.suspected.(k) <- 0;
  if t.confirmed_dead.(k) then begin
    t.confirmed_dead.(k) <- false;
    ignore
      (Transport.control t.transport (Wire.Join { node = k; round = t.round }));
    let old_ring = t.ring in
    if not (Ring.mem t.ring k) then t.ring <- Ring.add t.ring k;
    (* every resource that moves back to the rejoined node carries its
       future slots over in an explicit handoff from the survivor that
       hosted them *)
    List.iter
      (fun res ->
         let donor = t.nodes.(Ring.owner old_ring res) in
         if Node.alive donor then begin
           match Node.export donor ~res ~from_round:t.round with
           | [] -> ()
           | slots ->
             (match
                Transport.control t.transport (Wire.Handoff { res; slots })
              with
              | Wire.Handoff { res = res'; slots = slots' } ->
                Node.import t.nodes.(k) ~res:res' slots'
              | _ -> assert false);
             t.handoffs_n <- t.handoffs_n + 1;
             met t "cluster.handoffs";
             t.handoff_slots_n <- t.handoff_slots_n + List.length slots;
             met ~by:(List.length slots) t "cluster.handoff_slots"
         end)
      (Ring.moved ~before:old_ring ~after:t.ring ~n:t.n)
  end

(* ------------------------------------------------------------------ *)
(* serve collection: the mirror claims, the replica confirms *)

let collect_serves t ~round =
  let serves = ref [] in
  for res = t.n - 1 downto 0 do
    match Slots.take t.slots ~res ~round with
    | None -> ()
    | Some id ->
      Hashtbl.remove t.assigned id;
      let node = node_of t res in
      let confirmed =
        Node.alive node
        &&
        match Node.take_slot node ~res ~round with
        | Some ri when ri.Wire.rid = id -> true
        | Some _ | None ->
          t.conflicts_n <- t.conflicts_n + 1;
          met t "cluster.serve_conflicts";
          false
      in
      if confirmed then begin
        respond t (Wire.Served { res; round; q = id });
        Hashtbl.remove t.active id;
        serves := (id, res) :: !serves
      end
      else if Hashtbl.mem t.active id then begin
        (* the node lost the slot with its state before the router
           noticed: the serve did not happen.  Re-admit while the
           window still allows; expiry provides the terminal if not. *)
        t.readmit <- t.readmit @ [ id ];
        t.readmitted_n <- t.readmitted_n + 1;
        met t "cluster.readmitted"
      end
  done;
  !serves

(* ------------------------------------------------------------------ *)
(* the fix protocol (and A_local_eager's phase 1) over the wire *)

let offer_round t ~round ~alt senders =
  let envs =
    List.filter_map
      (fun (r : Request.t) ->
         if alt >= Array.length r.Request.alternatives then None
         else
           Some
             {
               Wire.sender = r.Request.id;
               dst = r.Request.alternatives.(alt);
               deadline_key = Request.last_round r;
               tagged = false;
               data = Wire.Offer (Wire.reqinfo_of_request r);
             })
      senders
  in
  let results = exchange t envs in
  let skipped =
    List.filter
      (fun (r : Request.t) -> alt >= Array.length r.Request.alternatives)
      senders
  in
  let delivered =
    List.filter_map
      (fun (e, st) -> if st = Transport.Delivered then Some e else None)
      results
  in
  (* each resource processes its delivered offers in EDF order *)
  let by_deadline =
    List.sort
      (fun (a : Wire.env) b ->
         if a.Wire.deadline_key <> b.Wire.deadline_key then
           compare a.Wire.deadline_key b.Wire.deadline_key
         else compare a.Wire.sender b.Wire.sender)
      delivered
  in
  let rejected =
    List.filter_map
      (fun (e : Wire.env) ->
         let ri =
           match e.Wire.data with Wire.Offer ri -> ri | _ -> assert false
         in
         let r = Wire.request_of_reqinfo ri in
         match try_accept t ~round e.Wire.dst r with
         | Some slot ->
           Node.set_slot (node_of t e.Wire.dst) ~res:e.Wire.dst ~round:slot ri;
           respond t (Wire.Accept { q = ri.Wire.rid; res = e.Wire.dst; slot });
           None
         | None ->
           respond t (Wire.Full { q = ri.Wire.rid; res = e.Wire.dst });
           Some r)
      by_deadline
  in
  let failed =
    List.filter_map
      (fun ((e : Wire.env), st) ->
         if st = Transport.Delivered then None
         else
           match e.Wire.data with
           | Wire.Offer ri -> Some (Wire.request_of_reqinfo ri)
           | _ -> assert false)
      results
  in
  skipped @ failed @ rejected

let fix_tick t ~round newcomers =
  let failed = offer_round t ~round ~alt:0 newcomers in
  ignore (offer_round t ~round ~alt:1 failed)

(* ------------------------------------------------------------------ *)
(* A_local_eager over the wire *)

type move = Request.t * int * int * int (* r, old res, old slot, new res *)

(* The mirror commits a move when its cancellation lands (the same
   point Localstrat.Local applies it); the new owner's replica is
   pre-positioned at acknowledgment time, which is equivalent because a
   cancellation can never lose the capacity contest at capacity >= d
   and replicas are only read at end of round. *)
let apply_move t ~round (((r : Request.t), res, slot, other) : move) =
  Slots.free t.slots ~res ~round:slot;
  Slots.set t.slots ~res:other ~round r.Request.id;
  Hashtbl.replace t.assigned r.Request.id (other, round)

let eager_phase2_select t ~round =
  let movers =
    Hashtbl.fold
      (fun id (res, slot) acc ->
         if slot > round then
           match Hashtbl.find_opt t.active id with
           | Some r when Array.length r.Request.alternatives >= 2 ->
             let other =
               if r.Request.alternatives.(0) = res then
                 r.Request.alternatives.(1)
               else r.Request.alternatives.(0)
             in
             (r, res, slot, other) :: acc
           | Some _ | None -> acc
         else acc)
      t.assigned []
  in
  let envs =
    List.map
      (fun ((r : Request.t), _res, _slot, other) ->
         {
           Wire.sender = r.Request.id;
           dst = other;
           deadline_key = Request.last_round r;
           tagged = false;
           data = Wire.Probe (Wire.reqinfo_of_request r);
         })
      movers
  in
  let results = exchange t envs in
  (* each resource with a free current slot acknowledges one mover *)
  let chosen = Hashtbl.create 16 in
  List.iter
    (fun ((e : Wire.env), st) ->
       if
         st = Transport.Delivered
         && not (Slots.mem t.slots ~res:e.Wire.dst ~round)
       then
         match Hashtbl.find_opt chosen e.Wire.dst with
         | Some prev when prev <= e.Wire.sender -> ()
         | Some _ | None -> Hashtbl.replace chosen e.Wire.dst e.Wire.sender)
    results;
  let moves =
    List.filter
      (fun ((r : Request.t), _res, _slot, other) ->
         Hashtbl.find_opt chosen other = Some r.Request.id)
      movers
  in
  List.iter
    (fun (((r : Request.t), _res, _slot, other) : move) ->
       respond t (Wire.Ack { q = r.Request.id; res = other });
       Node.set_slot (node_of t other) ~res:other ~round
         (Wire.reqinfo_of_request r))
    moves;
  moves

let cancel_envs (moves : move list) =
  List.map
    (fun ((r : Request.t), res, slot, _other) ->
       {
         Wire.sender = r.Request.id;
         dst = res;
         (* highest LDF rank: the capacity cut must never break an
            acknowledged move (at most d-1 cancels target one resource,
            below every capacity we allow) *)
         deadline_key = max_int;
         tagged = false;
         data = Wire.Cancel { q = r.Request.id; old_res = res; old_t = slot };
       })
    moves

(* A cancellation outcome: Delivered frees the old node's replica slot;
   Dead means the old node lost that state anyway.  Either way the
   acknowledged move stands.  Bounced is unreachable at capacity >= d,
   and if it ever happened the move must abort (mirror untouched). *)
let process_cancel t ~round ~moves_tbl (e : Wire.env) st =
  match e.Wire.data with
  | Wire.Cancel { q; old_res; old_t } ->
    if st <> Transport.Bounced then begin
      (match Hashtbl.find_opt moves_tbl q with
       | Some mv ->
         apply_move t ~round mv;
         Hashtbl.remove moves_tbl q
       | None -> ());
      if st = Transport.Delivered then
        Node.free_slot (node_of t old_res) ~res:old_res ~round:old_t
    end
  | _ -> ()

type swap = { sw_q : Request.t; sw_res : int; sw_r : int }

let swap_envs swaps =
  List.map
    (fun s ->
       {
         Wire.sender = s.sw_q.Request.id;
         dst = s.sw_res;
         deadline_key = Request.last_round s.sw_q;
         tagged = true;
         data =
           Wire.Swap { r = s.sw_r; q = Wire.reqinfo_of_request s.sw_q };
       })
    swaps

let rival_envs ~alt pending =
  List.filter_map
    (fun (q : Request.t) ->
       if alt >= Array.length q.Request.alternatives then None
       else
         Some
           {
             Wire.sender = q.Request.id;
             dst = q.Request.alternatives.(alt);
             deadline_key = Request.last_round q;
             tagged = false;
             data = Wire.Rival (Wire.reqinfo_of_request q);
           })
    pending

let apply_swap t ~round ~swapped ~res (q : Wire.reqinfo) ~replica =
  Slots.set t.slots ~res ~round q.Wire.rid;
  Hashtbl.replace t.assigned q.Wire.rid (res, round);
  swapped.(res) <- true;
  if replica then Node.set_slot (node_of t res) ~res ~round q

(* One communication round carrying tagged swap notifications (from the
   previous attempt) together with this attempt's rival requests (and,
   in the compact variant, the pending cancellations).  Returns the
   grants: resource -> (q, current occupant r, r's other resource). *)
let rival_round t ~round ~swapped ~moves_tbl ~prev_swaps ~extra ~alt pending
  =
  let envs = swap_envs prev_swaps @ extra @ rival_envs ~alt pending in
  let results = exchange t envs in
  (* swaps (tagged, never cut) and cancellations settle before the
     grant computation, so the check sees the final slot occupancy *)
  List.iter
    (fun ((e : Wire.env), st) ->
       match e.Wire.data with
       | Wire.Swap { r = _; q } ->
         assert (st <> Transport.Bounced);
         apply_swap t ~round ~swapped ~res:e.Wire.dst q
           ~replica:(st = Transport.Delivered)
       | Wire.Cancel _ -> process_cancel t ~round ~moves_tbl e st
       | _ -> ())
    results;
  let grants = Hashtbl.create 16 in
  List.iter
    (fun ((e : Wire.env), st) ->
       match e.Wire.data with
       | Wire.Rival q_ri ->
         let res = e.Wire.dst in
         if
           st = Transport.Delivered
           && (not swapped.(res))
           && not (Hashtbl.mem grants res)
         then (
           match Slots.find t.slots ~res ~round with
           | None -> ()
           | Some r_id ->
             (match Hashtbl.find_opt t.active r_id with
              | None -> ()
              | Some r when Array.length r.Request.alternatives < 2 -> ()
              | Some r ->
                let s_r =
                  if r.Request.alternatives.(0) = res then
                    r.Request.alternatives.(1)
                  else r.Request.alternatives.(0)
                in
                respond t (Wire.Ack { q = q_ri.Wire.rid; res });
                Hashtbl.replace grants res
                  (Wire.request_of_reqinfo q_ri, r, s_r)))
       | _ -> ())
    results;
  grants

(* The rehome communication round: each granted rival forwards the
   current occupant to its other resource, which accepts into a free
   slot of the occupant's window.  Returns the successful swaps. *)
let rehome_round t ~round grants =
  let envs =
    Hashtbl.fold
      (fun res ((q : Request.t), (r : Request.t), s_r) acc ->
         {
           Wire.sender = q.Request.id;
           dst = s_r;
           deadline_key = Request.last_round r;
           tagged = false;
           data = Wire.Rehome { r = Wire.reqinfo_of_request r; res };
         }
         :: acc)
      grants []
  in
  let results = exchange t envs in
  let ordered =
    List.sort
      (fun ((a : Wire.env), _) (b, _) ->
         if a.Wire.deadline_key <> b.Wire.deadline_key then
           compare a.Wire.deadline_key b.Wire.deadline_key
         else compare a.Wire.sender b.Wire.sender)
      results
  in
  List.filter_map
    (fun ((e : Wire.env), st) ->
       if st <> Transport.Delivered then None
       else
         match e.Wire.data with
         | Wire.Rehome { r = r_ri; res } ->
           if Slots.find t.slots ~res ~round <> Some r_ri.Wire.rid then None
           else begin
             let r = Wire.request_of_reqinfo r_ri in
             match try_accept t ~round e.Wire.dst r with
             | Some slot ->
               Node.set_slot (node_of t e.Wire.dst) ~res:e.Wire.dst
                 ~round:slot r_ri;
               respond t
                 (Wire.Accept { q = r_ri.Wire.rid; res = e.Wire.dst; slot });
               (* r re-homed; the old slot is freed in the mirror now
                  and on the owner's replica when the tagged swap
                  notification overwrites it *)
               Slots.free t.slots ~res ~round;
               let q =
                 match Hashtbl.find_opt grants res with
                 | Some (q, _, _) -> q
                 | None -> assert false
               in
               Some { sw_q = q; sw_res = res; sw_r = r_ri.Wire.rid }
             | None -> None
           end
         | _ -> None)
    ordered

let eager_tick t ~compact ~round =
  let unscheduled () =
    Hashtbl.fold
      (fun id r acc ->
         if Hashtbl.mem t.assigned id then acc else r :: acc)
      t.active []
    |> List.sort (fun (a : Request.t) b ->
        compare a.Request.id b.Request.id)
  in
  (* phase 1 (2 comm rounds): the fix protocol over all unscheduled
     live requests *)
  let failed = offer_round t ~round ~alt:0 (unscheduled ()) in
  ignore (offer_round t ~round ~alt:1 failed);
  (* phase 2: pull future-scheduled requests into free current slots *)
  let moves = eager_phase2_select t ~round in
  let moves_tbl = Hashtbl.create 16 in
  List.iter
    (fun (((r : Request.t), _, _, _) as mv : move) ->
       Hashtbl.replace moves_tbl r.Request.id mv)
    moves;
  let pending_cancels =
    if compact then cancel_envs moves
    else begin
      let results = exchange t (cancel_envs moves) in
      List.iter
        (fun (e, st) -> process_cancel t ~round ~moves_tbl e st)
        results;
      []
    end
  in
  (* phase 3 (5 comm rounds): two swap attempts; attempt 1's tagged
     notifications share a round with attempt 2's rival requests *)
  let swapped = Array.make t.n false in
  let grants1 =
    rival_round t ~round ~swapped ~moves_tbl ~prev_swaps:[]
      ~extra:pending_cancels ~alt:0 (unscheduled ())
  in
  let swaps1 = rehome_round t ~round grants1 in
  let won1 = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace won1 s.sw_q.Request.id ()) swaps1;
  let pending2 =
    List.filter
      (fun (q : Request.t) -> not (Hashtbl.mem won1 q.Request.id))
      (unscheduled ())
  in
  let grants2 =
    rival_round t ~round ~swapped ~moves_tbl ~prev_swaps:swaps1 ~extra:[]
      ~alt:1 pending2
  in
  let swaps2 = rehome_round t ~round grants2 in
  (* final communication round: attempt 2's tagged notifications *)
  let results = exchange t (swap_envs swaps2) in
  List.iter
    (fun ((e : Wire.env), st) ->
       match e.Wire.data with
       | Wire.Swap { r = _; q } ->
         apply_swap t ~round ~swapped ~res:e.Wire.dst q
           ~replica:(st = Transport.Delivered)
       | _ -> ())
    results

(* ------------------------------------------------------------------ *)
(* the proxy-global baseline: probe both loads, assign the earliest *)

let free_slot_in_window t ~round ~res (r : Request.t) =
  let last = Request.last_round r in
  let rec scan slot =
    if slot > last then None
    else if Slots.mem t.slots ~res ~round:slot then scan (slot + 1)
    else Some slot
  in
  scan (max round r.Request.arrival)

let proxy_tick t ~round =
  let unscheduled =
    Hashtbl.fold
      (fun id r acc ->
         if Hashtbl.mem t.assigned id then acc else r :: acc)
      t.active []
    |> List.sort (fun (a : Request.t) b ->
        let la = Request.last_round a and lb = Request.last_round b in
        if la <> lb then compare la lb else compare a.Request.id b.Request.id)
  in
  (* round 1: load probes to every alternative *)
  let probes =
    List.concat_map
      (fun (q : Request.t) ->
         Array.to_list q.Request.alternatives
         |> List.map (fun res ->
             {
               Wire.sender = q.Request.id;
               dst = res;
               deadline_key = Request.last_round q;
               tagged = false;
               data = Wire.Loadq;
             }))
      unscheduled
  in
  let results = exchange t probes in
  let offers = Hashtbl.create 32 in
  (* (request, resource) -> earliest free slot *)
  List.iter
    (fun ((e : Wire.env), st) ->
       if st = Transport.Delivered then
         match Hashtbl.find_opt t.active e.Wire.sender with
         | None -> ()
         | Some q ->
           (match free_slot_in_window t ~round ~res:e.Wire.dst q with
            | Some slot ->
              respond t
                (Wire.Freeat { q = e.Wire.sender; res = e.Wire.dst; slot });
              Hashtbl.replace offers (e.Wire.sender, e.Wire.dst) slot
            | None ->
              respond t (Wire.Full { q = e.Wire.sender; res = e.Wire.dst })))
    results;
  (* round 2: claim the earliest offered slot (first alternative wins
     ties); the resource re-checks, the probe answer may be stale *)
  let assigns =
    List.filter_map
      (fun (q : Request.t) ->
         let best =
           Array.fold_left
             (fun best res ->
                match Hashtbl.find_opt offers (q.Request.id, res) with
                | None -> best
                | Some slot ->
                  (match best with
                   | Some (_, s) when s <= slot -> best
                   | _ -> Some (res, slot)))
             None q.Request.alternatives
         in
         match best with
         | None -> None
         | Some (res, _slot) ->
           Some
             {
               Wire.sender = q.Request.id;
               dst = res;
               deadline_key = Request.last_round q;
               tagged = false;
               data = Wire.Assign (Wire.reqinfo_of_request q);
             })
      unscheduled
  in
  let results = exchange t assigns in
  let ordered =
    List.sort
      (fun ((a : Wire.env), _) (b, _) ->
         if a.Wire.deadline_key <> b.Wire.deadline_key then
           compare a.Wire.deadline_key b.Wire.deadline_key
         else compare a.Wire.sender b.Wire.sender)
      results
  in
  List.iter
    (fun ((e : Wire.env), st) ->
       if st = Transport.Delivered then
         match e.Wire.data with
         | Wire.Assign ri ->
           let r = Wire.request_of_reqinfo ri in
           (match try_accept t ~round e.Wire.dst r with
            | Some slot ->
              Node.set_slot (node_of t e.Wire.dst) ~res:e.Wire.dst
                ~round:slot ri;
              respond t
                (Wire.Accept { q = ri.Wire.rid; res = e.Wire.dst; slot })
            | None ->
              respond t (Wire.Full { q = ri.Wire.rid; res = e.Wire.dst }))
         | _ -> ())
    ordered

(* ------------------------------------------------------------------ *)
(* the scheduling round *)

let step t =
  let round = t.round in
  t.sched_rounds <- t.sched_rounds + 1;
  let cr0 = Transport.comm_rounds t.transport in
  ping_sweep t;
  let expired = expire t ~round in
  let arrivals = List.rev t.queue in
  t.queue <- [];
  List.iter
    (fun (r : Request.t) ->
       Hashtbl.replace t.active r.Request.id r;
       t.requests_n <- t.requests_n + 1;
       met t "cluster.requests";
       if
         Array.length r.Request.alternatives >= 2
         && owner t r.Request.alternatives.(0)
            <> owner t r.Request.alternatives.(1)
       then begin
         t.straddled_n <- t.straddled_n + 1;
         met t "cluster.straddle"
       end)
    arrivals;
  let readmits =
    List.filter_map (fun id -> Hashtbl.find_opt t.active id) t.readmit
  in
  t.readmit <- [];
  (match t.kind with
   | Local_fix -> fix_tick t ~round (readmits @ arrivals)
   | Local_eager { compact } -> eager_tick t ~compact ~round
   | Proxy_global -> proxy_tick t ~round);
  let cr = Transport.comm_rounds t.transport - cr0 in
  if cr > t.max_cr then begin
    t.max_cr <- cr;
    match t.metrics with
    | Some m -> Obs.Metrics.set_counter m "cluster.comm_rounds_max" t.max_cr
    | None -> ()
  end;
  let served = collect_serves t ~round in
  t.served_n <- t.served_n + List.length served;
  met ~by:(List.length served) t "cluster.served";
  t.expired_n <- t.expired_n + List.length expired;
  met ~by:(List.length expired) t "cluster.expired";
  t.round <- round + 1;
  { round; served; expired }

let stats t =
  {
    scheduling_rounds = t.sched_rounds;
    comm_rounds_total = Transport.comm_rounds t.transport;
    comm_rounds_max = t.max_cr;
    messages = Transport.messages t.transport;
    bounced = Transport.bounced t.transport;
    dropped_dead = Transport.dropped_dead t.transport;
    requests = t.requests_n;
    straddled = t.straddled_n;
    served = t.served_n;
    expired = t.expired_n;
    readmitted = t.readmitted_n;
    failovers = t.failovers_n;
    handoffs = t.handoffs_n;
    handoff_slots = t.handoff_slots_n;
    serve_conflicts = t.conflicts_n;
  }

let factory ?metrics ?capacity ?priority ?fail_after ?vnodes ?on_create
    ~strategy ~nodes () : Strategy.factory =
 fun ~n ~d ->
  let t =
    create ?metrics ?capacity ?priority ?fail_after ?vnodes ~strategy ~nodes
      ~n ~d ()
  in
  (match on_create with Some f -> f t | None -> ());
  {
    Strategy.name =
      Printf.sprintf "%s@cluster%d" (kind_name strategy) nodes;
    step =
      (fun ~round ~arrivals ->
         if round <> t.round then
           invalid_arg
             (Printf.sprintf "Session: engine round %d, cluster round %d"
                round t.round);
         Array.iter (fun r -> enqueue t r) arrivals;
         let out = step t in
         List.map
           (fun (id, resource) -> { Strategy.request = id; resource })
           out.served);
  }
