(* The live message fabric.  Each message is rendered to its wire line
   and parsed back on the way through — the transport refuses to pass
   anything the grammar cannot carry — and data messages then contest
   per-resource capacity through the same Distnet.Budget LDF cut the
   simulator uses. *)

module Budget = Distnet.Budget

type status = Delivered | Bounced | Dead

type t = {
  n : int;
  capacity : int;
  priority : sender:int -> dst:int -> int;
  metrics : Obs.Metrics.t option;
  mutable comm_rounds : int;
  mutable messages : int;
  mutable bounced : int;
  mutable dropped_dead : int;
}

let create ~n ~capacity ?priority ?metrics () =
  if n < 1 then invalid_arg "Transport.create: n < 1";
  if capacity < 1 then invalid_arg "Transport.create: capacity < 1";
  {
    n;
    capacity;
    priority =
      (match priority with
       | Some p -> p
       | None -> fun ~sender:_ ~dst:_ -> 0);
    metrics = Obs.Metrics.resolve metrics;
    comm_rounds = 0;
    messages = 0;
    bounced = 0;
    dropped_dead = 0;
  }

let record t key by =
  match t.metrics with
  | None -> ()
  | Some m -> Obs.Metrics.incr ~by m key

(* The wire gate: a message exists only as its rendered line.  Parsing
   it back and comparing catches renderer/parser drift at the moment it
   happens instead of three protocol layers later. *)
let roundtrip msg =
  let line = Wire.render msg in
  if String.length line > Wire.max_line then
    invalid_arg
      (Printf.sprintf "Transport: oversize wire line (%d bytes)"
         (String.length line));
  match Wire.parse line with
  | Ok parsed when parsed = msg -> parsed
  | Ok _ -> invalid_arg ("Transport: wire round-trip drift on: " ^ line)
  | Error e ->
    invalid_arg (Printf.sprintf "Transport: unparsable wire line %S: %s"
                   line e)

let exchange t ~owner ~alive envs =
  if envs <> [] then begin
    t.comm_rounds <- t.comm_rounds + 1;
    record t "cluster.comm_rounds" 1
  end;
  let indexed = List.mapi (fun i e -> (i, e)) envs in
  t.messages <- t.messages + List.length envs;
  record t "cluster.msgs" (List.length envs);
  (* the wire pass: every envelope must survive its own rendering *)
  let indexed =
    List.map
      (fun (i, e) ->
         match roundtrip (Wire.Data e) with
         | Wire.Data e' -> (i, e')
         | _ -> assert false)
      indexed
  in
  let dead = Hashtbl.create 8 in
  let contesting =
    List.filter_map
      (fun (i, (e : Wire.env)) ->
         if e.Wire.dst < 0 || e.Wire.dst >= t.n then
           invalid_arg "Transport.exchange: destination out of range";
         if not (alive (owner e.Wire.dst)) then begin
           Hashtbl.replace dead i ();
           None
         end
         else
           Some
             ( i,
               {
                 Budget.b_sender = e.Wire.sender;
                 b_dst = e.Wire.dst;
                 b_deadline = e.Wire.deadline_key;
                 b_tagged = e.Wire.tagged;
               } ))
      indexed
  in
  let delivered =
    Budget.deliver ~n:t.n ~capacity:t.capacity ~priority:t.priority
      contesting
  in
  List.map
    (fun (i, e) ->
       let status =
         if Hashtbl.mem dead i then Dead
         else if Hashtbl.mem delivered i then Delivered
         else Bounced
       in
       (match status with
        | Delivered -> ()
        | Bounced ->
          t.bounced <- t.bounced + 1;
          record t "cluster.bounced" 1
        | Dead ->
          t.dropped_dead <- t.dropped_dead + 1;
          record t "cluster.dropped_dead" 1);
       (e, status))
    indexed

let respond t reply =
  record t "cluster.replies" 1;
  match roundtrip (Wire.Reply reply) with
  | Wire.Reply r -> r
  | _ -> assert false

let control t ctrl =
  record t "cluster.ctrl_msgs" 1;
  match roundtrip (Wire.Control ctrl) with
  | Wire.Control c -> c
  | _ -> assert false

let tick t =
  t.comm_rounds <- t.comm_rounds + 1;
  record t "cluster.comm_rounds" 1

let comm_rounds t = t.comm_rounds
let messages t = t.messages
let bounced t = t.bounced
let dropped_dead t = t.dropped_dead
