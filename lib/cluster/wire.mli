(** The inter-node wire protocol of the cluster tier (version rsp/1).

    Line-delimited text, one message per line, sharing {!Sched.Codec}'s
    version token and alternative-list grammar and {!Serve.Protocol}'s
    keyword framing — a cluster trace and a serve trace speak the same
    dialect.  Three families:

    - {e Data} ([Data of env]): request-to-resource traffic.  These are
      the messages the paper's communication model meters: per
      communication round at most [capacity] untagged data messages are
      delivered to each resource (LDF keeps the latest deadlines), the
      rest bounce.  The envelope carries the LDF key and the tag bit
      explicitly, so the transport's capacity accounting is computed
      from the wire bytes alone.
    - {e Reply} ([Reply of reply]): resource/node-to-router responses.
      Not capacity-limited, matching the paper's asymmetric accounting.
    - {e Control} ([Control of control]): membership and liveness
      (hello/ping/join/handoff).  Also uncapped; never part of a
      protocol round budget.

    Round-trip law (pinned by qcheck): [parse (render m) = Ok m] for
    every well-formed message.  [parse] rejects lines longer than
    {!max_line} outright — a peer cannot feed the router an unbounded
    allocation — and rejects [hello]/[join] carrying any version token
    other than {!version}. *)

val version : string
(** ["rsp/1"], shared with {!Sched.Codec.version}. *)

val max_line : int
(** Longest accepted line in bytes (65536); [parse] rejects longer
    ones without inspecting them. *)

type reqinfo = {
  rid : int;                (** request id, [>= 0] *)
  alternatives : int list;  (** global resource ids, {!Sched.Codec} rules *)
  arrival : int;            (** arrival round, [>= 0] *)
  deadline : int;           (** relative deadline, [>= 1] *)
}
(** Enough of a request to replicate it: a node receiving a [reqinfo]
    can hold the slot, hand it off, and report the serve. *)

val last_round : reqinfo -> int
(** [arrival + deadline - 1], the LDF key of the request's messages. *)

(** Payloads of capacity-contested data messages, one constructor per
    communication-round kind of the live protocols ([A_local_fix]:
    [Offer]; [A_local_eager] adds [Probe]/[Cancel]/[Rival]/[Swap]/
    [Rehome]; the proxy-global baseline uses [Loadq]/[Assign]). *)
type data =
  | Offer of reqinfo                               (** fix offer *)
  | Probe of reqinfo  (** eager phase 2: mover asks for a current slot *)
  | Cancel of { q : int; old_res : int; old_t : int }
      (** release an acknowledged mover's old slot *)
  | Rival of reqinfo             (** eager phase 3: swap solicitation *)
  | Swap of { r : int; q : reqinfo }
      (** tagged notification: the current slot held by [r] now belongs
          to [q] *)
  | Rehome of { r : reqinfo; res : int }
      (** forward occupant [r] of [res]'s current slot to its other
          resource *)
  | Loadq                          (** proxy: query earliest free slot *)
  | Assign of reqinfo              (** proxy: claim a slot *)

type env = {
  sender : int;       (** request id (LDF tie-break key) *)
  dst : int;          (** global resource id *)
  deadline_key : int; (** LDF key; [max_int] renders as ["inf"] *)
  tagged : bool;      (** bypasses the capacity cut (swap notifications) *)
  data : data;
}

type reply =
  | Accept of { q : int; res : int; slot : int }
  | Full of { q : int; res : int }
  | Ack of { q : int; res : int }          (** probe acknowledged *)
  | Freeat of { q : int; res : int; slot : int }  (** [Loadq] answer *)
  | Served of { res : int; round : int; q : int }
      (** end-of-round serve report, node to router *)
  | Pong of { node : int; round : int }

type control =
  | Hello of { node : int }          (** carries {!version} on the wire *)
  | Ping of { round : int }
  | Join of { node : int; round : int }  (** rejoin; carries {!version} *)
  | Handoff of { res : int; slots : (int * reqinfo) list }
      (** move [res]'s future slots [(round, occupant)] to its new
          owner after a rebalance *)

type t = Data of env | Reply of reply | Control of control

val render : t -> string
(** One line, no newline. *)

val parse : string -> (t, string) result
(** Inverse of {!render}; rejects oversize lines, unknown keywords,
    malformed fields and version mismatches. *)

val data_env :
  sender:int -> dst:int -> deadline_key:int -> ?tagged:bool -> data -> t
(** Envelope helper; [tagged] defaults to [false]. *)

val reqinfo_of_request : Sched.Request.t -> reqinfo
val request_of_reqinfo : reqinfo -> Sched.Request.t
(** Inverses on the replicated fields (id, alternatives, arrival,
    deadline). *)
