(* Consistent hashing over a splitmix-style mixer.  The ring is an
   immutable sorted array of (point, node) pairs; ownership is a binary
   search for the first point at or after the resource's hash, wrapping
   to the smallest point.  Rebuilding the array on membership change is
   O(members * vnodes) — membership changes are rare (failover,
   rejoin), lookups are the common case. *)

type t = {
  vnodes : int;
  points : (int * int) array; (* (point, node), sorted by point *)
  members : int list;         (* ascending *)
}

(* splitmix64 finalizer, truncated to OCaml's 63-bit int.  Fixed
   constants, no per-process salt: placements must be stable across
   runs for byte-identical replay of --manual traces. *)
let mix z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z Int64.max_int)

(* node points mix even pre-images, resource keys odd ones: the two
   streams are disjoint before mixing, so a resource key can never land
   exactly on a vnode point and bias the search toward one node *)
let node_point ~node ~replica = mix (((node * 0x10001) + replica + 1) * 2)
let resource_key resource = mix ((resource * 2) + 1)

let build ~vnodes members =
  let points =
    List.concat_map
      (fun node ->
         List.init vnodes (fun replica -> (node_point ~node ~replica, node)))
      members
    |> Array.of_list
  in
  Array.sort compare points;
  { vnodes; points; members }

let create ?(vnodes = 64) ~nodes () =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  if nodes = [] then invalid_arg "Ring.create: no nodes";
  List.iter
    (fun node -> if node < 0 then invalid_arg "Ring.create: negative node")
    nodes;
  let members = List.sort_uniq compare nodes in
  if List.length members <> List.length nodes then
    invalid_arg "Ring.create: duplicate node";
  build ~vnodes members

let members t = t.members
let mem t node = List.mem node t.members

let owner t resource =
  let key = resource_key resource in
  let pts = t.points in
  let len = Array.length pts in
  (* first index with point >= key, or 0 when key exceeds every point *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let m = (lo + hi) / 2 in
      if fst pts.(m) >= key then search lo m else search (m + 1) hi
  in
  let i = search 0 len in
  snd pts.(if i = len then 0 else i)

let remove t node =
  if not (mem t node) then invalid_arg "Ring.remove: not a member";
  match List.filter (fun m -> m <> node) t.members with
  | [] -> invalid_arg "Ring.remove: last member"
  | members -> build ~vnodes:t.vnodes members

let add t node =
  if node < 0 then invalid_arg "Ring.add: negative node";
  if mem t node then invalid_arg "Ring.add: already a member";
  build ~vnodes:t.vnodes (List.sort compare (node :: t.members))

let moved ~before ~after ~n =
  let out = ref [] in
  for resource = n - 1 downto 0 do
    if owner before resource <> owner after resource then
      out := resource :: !out
  done;
  !out
