module Instance = Sched.Instance
module Request = Sched.Request
module Stream = Sched.Paper_graph.Stream
module Ivec = Prelude.Ivec

type t = {
  stream : Stream.t;
  aug : Graph.Augment.t;
  curve : Ivec.t; (* curve.(r) = OPT of the prefix through round r *)
  metrics : Obs.Metrics.t option;
}

let create ?metrics ~n_resources () =
  let stream = Stream.start ~n_resources in
  {
    stream;
    aug = Graph.Augment.create (Stream.graph stream);
    curve = Ivec.create ();
    metrics = Obs.Metrics.resolve metrics;
  }

let record_feed t ~arrivals ~before ~t0 =
  match t.metrics with
  | None -> ()
  | Some m ->
    let after = Graph.Augment.stats t.aug in
    let d f = f after - f (before : Graph.Augment.search_stats) in
    Obs.Metrics.observe m "opt_stream.feed_us" (Obs.Span.elapsed t0 *. 1e6);
    Obs.Metrics.incr m "opt_stream.rounds";
    Obs.Metrics.incr ~by:(Array.length arrivals) m "opt_stream.arrivals";
    Obs.Metrics.incr ~by:(d (fun s -> s.Graph.Augment.searches))
      m "opt_stream.searches";
    Obs.Metrics.incr ~by:(d (fun s -> s.Graph.Augment.successes))
      m "opt_stream.augmentations";
    Obs.Metrics.incr ~by:(d (fun s -> s.Graph.Augment.warm_hits))
      m "opt_stream.warm_hits";
    Obs.Metrics.incr ~by:(d (fun s -> s.Graph.Augment.visited))
      m "opt_stream.search_visits"

let feed t arrivals =
  let before =
    match t.metrics with
    | None -> None
    | Some _ -> Some (Graph.Augment.stats t.aug, Obs.Span.start ())
  in
  let first = Stream.advance t.stream ~arrivals in
  ignore (Graph.Augment.augment_new_rights t.aug ~first : int);
  (match before with
   | None -> ()
   | Some (stats0, t0) -> record_feed t ~arrivals ~before:stats0 ~t0);
  let v = Graph.Augment.size t.aug in
  Ivec.push t.curve v;
  v

let opt t = Graph.Augment.size t.aug
let rounds t = Stream.round t.stream
let curve t = Ivec.to_array t.curve
let graph t = Stream.graph t.stream
let matching t = Graph.Augment.matching t.aug

let of_instance ?metrics inst =
  let t = create ?metrics ~n_resources:inst.Instance.n_resources () in
  for round = 0 to inst.Instance.horizon - 1 do
    ignore (feed t (Instance.arrivals_at inst round) : int)
  done;
  t

let prefix_curve ?metrics inst = curve (of_instance ?metrics inst)

let value ?metrics inst = opt (of_instance ?metrics inst)

let search_stats t = Graph.Augment.stats t.aug

(* Naive baseline: one full from-scratch solve per prefix.  Kept here so
   the bench and the differential tests share the exact reference the
   streaming path is measured and pinned against. *)
let naive_prefix inst ~upto =
  let n = inst.Instance.n_resources in
  let g =
    Graph.Bipartite.create
      ~n_left:(Instance.n_requests inst)
      ~n_right:((upto + 1) * n)
  in
  Array.iter
    (fun (r : Request.t) ->
       if r.Request.arrival <= upto then
         Array.iter
           (fun res ->
              for round = r.Request.arrival
                  to min (Request.last_round r) upto do
                ignore
                  (Graph.Bipartite.add_edge g ~left:r.Request.id
                     ~right:((round * n) + res))
              done)
           r.Request.alternatives)
    inst.Instance.requests;
  Graph.Matching.size
    (Graph.Hopcroft_karp.solve_from g (Graph.Matching.greedy_maximal g))

let naive_prefix_curve inst =
  Array.init inst.Instance.horizon (fun upto -> naive_prefix inst ~upto)
