(** Offline optimum: the benchmark every competitive ratio divides by.

    The optimum number of servable requests equals the size of a maximum
    matching in the paper's graph [G] ({!Sched.Paper_graph}).  Three
    routes are provided:

    - {!expanded}: Hopcroft–Karp on the one-node-per-request graph.
      Exact, and the reference implementation.
    - {!grouped}: Dinic max-flow after collapsing identical requests
      (same arrival, alternatives and deadline) into capacity-weighted
      group nodes.  Exact and far faster on the adversarial instances,
      whose [block(a,d)] structures contain huge identical groups.
    - {!value}: the default entry point (currently {!grouped}).

    For the per-round OPT {e prefix curve} of a long or streaming
    workload, use {!Opt_stream} — one incremental pass instead of
    [horizon] full recomputes.

    {!single_alternative_edf} solves the restricted one-alternative model
    greedily, giving an independent oracle for Observation 3.1 tests. *)

val expanded : Sched.Instance.t -> int
(** Maximum matching size of [G] by Hopcroft–Karp. *)

val expanded_matching :
  Sched.Instance.t -> Graph.Bipartite.t * Graph.Matching.t
(** The graph [G] and one maximum matching in it (for alternating-path
    analysis against an online outcome). *)

val grouped : Sched.Instance.t -> int
(** Maximum matching size via grouped max-flow. *)

val value : Sched.Instance.t -> int
(** The offline optimum (grouped route). *)

val single_alternative_edf : Sched.Instance.t -> int
(** Greedy earliest-deadline-first optimum for instances in which every
    request has exactly one alternative.
    @raise Invalid_argument if some request has more than one. *)
