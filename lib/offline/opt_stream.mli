(** Streaming offline optimum: the per-round OPT prefix curve in one
    incremental pass.

    {!Opt.value} answers "what could an offline scheduler have served on
    this whole instance?"; every anytime question — "what was the best
    possible {e so far}, after each round?" — would need [horizon] full
    recomputes.  This module instead grows the paper graph round by
    round ({!Sched.Paper_graph.Stream}) and maintains a maximum matching
    incrementally ({!Graph.Augment}): appending round [t] adds the
    round's slot column plus all edges into it, and one augmenting-path
    search per new slot restores maximality.  The whole curve costs
    little more than the final solve alone, instead of [horizon] times
    it.

    Exactness: the prefix value after feeding round [t] is the maximum
    matching of [G] restricted to slots of rounds [0..t] — what an
    offline scheduler could serve {e by the end of round [t]} from the
    requests revealed so far.  After the final round it equals
    {!Opt.expanded} and {!Opt.grouped} exactly; the differential
    property suite pins all three against each other and certifies cut
    rounds with König covers.

    The curve is non-decreasing and each round's increment lies in
    [0 .. n_resources] (a round adds only [n_resources] slots, and every
    new augmenting path ends at one of them). *)

type t
(** A live tracker: a growing prefix graph plus its maximum matching. *)

val create : ?metrics:Obs.Metrics.t -> n_resources:int -> unit -> t
(** An empty tracker (round 0 not yet fed).

    [metrics] (or, when omitted, the ambient registry) receives per-feed
    instrumentation: counters [opt_stream.rounds], [opt_stream.arrivals],
    [opt_stream.searches], [opt_stream.augmentations],
    [opt_stream.warm_hits], [opt_stream.search_visits] (augmenting-path
    effort; see {!Graph.Augment.search_stats} — the mean search length is
    [search_visits / searches] and the warm-start hit rate
    [warm_hits / searches]) and histogram [opt_stream.feed_us].
    @raise Invalid_argument if [n_resources < 1]. *)

val feed : t -> Sched.Request.t array -> int
(** Feed the next round's arrivals (possibly [[||]]), advancing the
    clock by one round, and return the updated prefix optimum.  Arrivals
    must carry [arrival] equal to the current round — exactly what
    {!Sched.Instance.arrivals_at} yields round by round, or what an
    online engine observes.
    @raise Invalid_argument on a mistimed arrival or foreign resource. *)

val opt : t -> int
(** Current prefix optimum (0 before any round is fed). *)

val rounds : t -> int
(** Rounds fed so far. *)

val curve : t -> int array
(** The prefix curve so far: element [r] is the optimum after feeding
    round [r].  Length {!rounds}. *)

val graph : t -> Graph.Bipartite.t
(** The prefix paper graph (shared with the tracker — do not mutate). *)

val matching : t -> Graph.Matching.t
(** Snapshot of the current maximum matching, e.g. for König
    certification at a cut round. *)

val search_stats : t -> Graph.Augment.search_stats
(** Cumulative augmenting-path effort of this tracker, whether or not a
    metrics registry is attached. *)

val of_instance : ?metrics:Obs.Metrics.t -> Sched.Instance.t -> t
(** Feed a whole instance round by round. *)

val prefix_curve : ?metrics:Obs.Metrics.t -> Sched.Instance.t -> int array
(** [curve (of_instance inst)]: the full per-round OPT prefix curve,
    length [horizon], in one pass. *)

val value : ?metrics:Obs.Metrics.t -> Sched.Instance.t -> int
(** [opt (of_instance inst)] — drop-in compatible with {!Opt.value} /
    {!Opt.expanded} / {!Opt.grouped}, via the streaming route. *)

val naive_prefix_curve : Sched.Instance.t -> int array
(** Reference implementation: one full Hopcroft–Karp solve per prefix,
    [horizon] solves total.  The differential tests pin
    {!prefix_curve} to it; the bench measures the speedup against it. *)
