(** SLO-style scoring: how production schedulers are judged.

    The harness measures the paper's objective, the competitive ratio
    OPT/ALG.  A serving system is graded on service-level objectives
    instead; this module computes five of them, streamingly, from
    engine events:

    - {b deadline-violation rate} — expired / submitted;
    - {b sustained throughput} — served / rounds elapsed;
    - {b ANTT} — average normalized turnaround time: mean over served
      requests of [service - arrival + 1] (1.0 = always served on
      arrival; the Dysta scheduler's fairness metric, normalised here
      by the 1-round service time of this model);
    - {b max delay factor} — Chekuri–Moseley's [max (t - a + 1) / D]
      over served requests, adapted to the hard-drop model: an expired
      request contributes [(D + 1) / D], one full window plus the round
      that killed it, so any expiry pushes the factor above 1;
    - {b machines needed} — Kao et al.'s machine-minimization lower
      bound: [max over intervals ceil (N (t1, t2) / (t2 - t1 + 1))]
      where [N (t1, t2)] counts requests whose whole window lies in
      [t1 .. t2] — how many copies of the cluster the workload demands
      even offline.

    Exactness discipline: the accumulator keeps integer sums and exact
    rational maxima and divides only inside {!scores}, so the streaming
    path and a batch recomputation from a full outcome log agree to the
    last bit ({!of_outcome} is that independent recomputation; the
    differential suite pins them equal on hundreds of instances). *)

type scores = {
  submitted : int;
  served : int;
  expired : int;   (** terminal, unserved — [served + expired <= submitted],
                       equal once every window has closed *)
  rounds : int;
  violation_rate : float;  (** expired / submitted; 0 on empty *)
  throughput : float;      (** served / rounds; 0 before any round *)
  antt : float;            (** mean turnaround of served; [nan] if none *)
  max_delay_factor : float;
      (** max over terminal requests; [nan] if none terminal *)
  machines_needed : int;
      (** offline lower bound on parallel machines; counts every
          window {e closed so far}, 0 on empty *)
}

(** {1 Streaming accumulator}

    Feed engine events as they happen: {!on_submit} at admission,
    {!on_serve} / {!on_expire} as {!Sched.Engine.Live.step} reports
    them, {!on_round} after each step.  [scores] may be read at any
    time — every metric is well-defined mid-stream. *)

type t

val create : unit -> t

val on_submit : t -> id:int -> round:int -> deadline:int -> unit
(** Record an admission.  Ids must be fresh; @raise Invalid_argument on
    a duplicate or on [deadline < 1]. *)

val on_serve : t -> id:int -> round:int -> unit
(** Record a first service. @raise Invalid_argument on an unknown id
    (never submitted, or already terminal). *)

val on_expire : t -> id:int -> round:int -> unit
(** Record a window closing unserved. @raise Invalid_argument on an
    unknown id. *)

val on_round : t -> unit
(** The round just executed is complete (all of its serve/expire events
    delivered).  Advances the clock and folds newly-closed windows into
    the machines-needed bound. *)

val scores : t -> scores

(** {1 Batch oracle} *)

val of_outcome : Sched.Outcome.t -> scores
(** The same five objectives recomputed {e independently} from a full
    outcome log: direct loops over [served_at] and the instance, no
    shared accumulator code.  Equals the streaming scores exactly when
    the stream saw the same run ([rounds = horizon]). *)

(** {1 One-pass scored run} *)

type streamed = {
  scores : scores;
  opt : int;            (** offline optimum of the full instance *)
  final_ratio : float;  (** OPT / served, guarded as {!ratio_of} *)
  anytime_ratio : float;
      (** worst prefix ratio over all rounds — the anytime guarantee *)
}

val ratio_of : opt:int -> served:int -> float
(** [1.0] when both are 0 (nothing to lose), [infinity] when the
    algorithm served nothing but OPT could, OPT/ALG otherwise — the
    same guard the report harness uses. *)

val score_stream :
  ?metrics:Obs.Metrics.t ->
  Sched.Instance.t -> Sched.Strategy.factory -> streamed
(** Drive a live engine and a streaming-OPT tracker over the instance
    in one pass, feeding this accumulator from the engine's own event
    stream — SLO scores and anytime ratio together, without a recorded
    outcome. *)

(** {1 Export through lib/obs} *)

val record : ?prefix:string -> Obs.Metrics.t -> scores -> unit
(** Publish the scores as gauges [<prefix>.violation_rate],
    [.throughput], [.antt], [.max_delay_factor], [.machines_needed]
    and counters [.submitted], [.served], [.expired], [.rounds].
    [prefix] defaults to ["slo"].  NaN-valued metrics are skipped. *)

(** {1 Score modes (CLI)} *)

type mode = Ratio | Violation | Throughput | Antt | Delay | Machines

type selector = All | One of mode
(** What [--score] asks for: one objective, or the full SLO block. *)

val selector_names : string list
(** Accepted [--score] arguments, ["ratio"] … ["slo"]. *)

val selector_of_name : string -> (selector, string) result
val selector_to_name : selector -> string

val mode_label : mode -> string
(** Short column header, e.g. ["viol%"]. *)

val mode_cell : mode -> ratio:float -> scores -> string
(** Render one objective as a table cell ("-" for NaN). *)

val pp_scores : Format.formatter -> scores -> unit
(** Multi-line human-readable block, one metric per line. *)
