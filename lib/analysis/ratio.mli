(** Competitive-ratio accounting: compare an online outcome with the
    exact offline optimum of the same instance. *)

type t = {
  opt : int;            (** offline optimum (maximum matching in [G]) *)
  alg : int;            (** requests the online strategy served *)
  total : int;          (** requests in the instance *)
  ratio : float;        (** [opt / alg] ([nan] when both are zero) *)
}

val of_outcome : Sched.Outcome.t -> t
(** Computes the optimum via {!Offline.Opt.value} (grouped max-flow). *)

val of_outcome_with_opt : Sched.Outcome.t -> opt:int -> t
(** When the optimum is already known (e.g. an adversary's analytic
    value, or a shared computation across strategies). *)

val anytime_curve : Sched.Outcome.t -> t array
(** Per-round competitive accounting over the whole run, one element per
    round of the instance's horizon: element [r] compares the streaming
    OPT prefix through round [r] ({!Offline.Opt_stream.prefix_curve} —
    what an offline scheduler could have served by then) with the
    requests the strategy had served by round [r].  [total] counts the
    requests revealed so far.  Computed in one incremental pass, not
    [horizon] optimum solves. *)

val exact : t -> Prelude.Rat.t
(** [opt / alg] as an exact rational.
    @raise Division_by_zero when [alg = 0]. *)

val pp : Format.formatter -> t -> unit
