(* SLO scoring.  Everything here is exact until the final division:
   turnaround is an integer sum, the delay-factor maximum is an exact
   fraction compared by cross-multiplication, machines-needed is pure
   integer arithmetic.  That is what lets the differential suite pin
   streaming == batch to the last bit without tolerance fudge. *)

type scores = {
  submitted : int;
  served : int;
  expired : int;
  rounds : int;
  violation_rate : float;
  throughput : float;
  antt : float;
  max_delay_factor : float;
  machines_needed : int;
}

(* -- exact fraction maximum ------------------------------------------ *)

(* (0, 0) = empty; dens are always > 0 afterwards *)
type frac_max = { mutable num : int; mutable den : int }

let frac_empty () = { num = 0; den = 0 }

let frac_update f ~num ~den =
  if f.den = 0 || num * f.den > f.num * den then begin
    f.num <- num;
    f.den <- den
  end

let frac_value f = if f.den = 0 then Float.nan else float_of_int f.num /. float_of_int f.den

(* -- machines-needed interval bound ----------------------------------
   Kao et al.'s lower bound: max over [t1, t2] of
   ceil (N(t1,t2) / (t2 - t1 + 1)) with N counting requests whose whole
   window [arrival .. last_round] fits inside the interval.  Streamed:
   when round r completes, every window with last_round = r has just
   closed; only intervals ending at r gained members, so one backward
   scan accumulating closed windows by arrival updates the maximum.
   O(horizon^2) total, O(horizon) state. *)

type machines = {
  mutable by_arrival : int array;  (* arrival -> closed windows, grown 2x *)
  mutable hi_arrival : int;        (* 1 + largest arrival recorded *)
  close_at : (int, int list ref) Hashtbl.t;  (* last_round -> arrivals *)
  mutable best : int;
}

let machines_create () =
  { by_arrival = Array.make 16 0; hi_arrival = 0;
    close_at = Hashtbl.create 64; best = 0 }

let machines_add m ~arrival ~last_round =
  (match Hashtbl.find_opt m.close_at last_round with
   | Some l -> l := arrival :: !l
   | None -> Hashtbl.add m.close_at last_round (ref [ arrival ]))

let machines_round_done m ~round =
  (match Hashtbl.find_opt m.close_at round with
   | None -> ()
   | Some l ->
       Hashtbl.remove m.close_at round;
       List.iter
         (fun arrival ->
           if arrival >= Array.length m.by_arrival then begin
             let grown =
               Array.make (max (2 * Array.length m.by_arrival) (arrival + 1)) 0
             in
             Array.blit m.by_arrival 0 grown 0 (Array.length m.by_arrival);
             m.by_arrival <- grown
           end;
           m.by_arrival.(arrival) <- m.by_arrival.(arrival) + 1;
           if arrival >= m.hi_arrival then m.hi_arrival <- arrival + 1)
         !l);
  (* intervals ending at [round]: walk t1 downward, accumulate *)
  let acc = ref 0 in
  for t1 = min round (m.hi_arrival - 1) downto 0 do
    acc := !acc + m.by_arrival.(t1);
    let len = round - t1 + 1 in
    let need = (!acc + len - 1) / len in
    if need > m.best then m.best <- need
  done

(* -- streaming accumulator ------------------------------------------- *)

type pending = { arrival : int; deadline : int }

type t = {
  live : (int, pending) Hashtbl.t;  (* admitted, no terminal outcome *)
  seen : (int, unit) Hashtbl.t;     (* every id ever admitted *)
  mutable submitted : int;
  mutable served : int;
  mutable expired : int;
  mutable rounds : int;
  mutable turnaround_sum : int;     (* served requests only *)
  delay : frac_max;
  machines : machines;
}

let create () =
  {
    live = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    submitted = 0;
    served = 0;
    expired = 0;
    rounds = 0;
    turnaround_sum = 0;
    delay = frac_empty ();
    machines = machines_create ();
  }

let on_submit t ~id ~round ~deadline =
  if deadline < 1 then invalid_arg "Slo.on_submit: deadline < 1";
  if Hashtbl.mem t.seen id then invalid_arg "Slo.on_submit: duplicate id";
  Hashtbl.add t.seen id ();
  Hashtbl.add t.live id { arrival = round; deadline };
  t.submitted <- t.submitted + 1;
  machines_add t.machines ~arrival:round ~last_round:(round + deadline - 1)

let take_pending t ~id ~what =
  match Hashtbl.find_opt t.live id with
  | Some p ->
      Hashtbl.remove t.live id;
      p
  | None -> invalid_arg ("Slo." ^ what ^ ": unknown or terminal id")

let on_serve t ~id ~round =
  let p = take_pending t ~id ~what:"on_serve" in
  t.served <- t.served + 1;
  let turnaround = round - p.arrival + 1 in
  t.turnaround_sum <- t.turnaround_sum + turnaround;
  frac_update t.delay ~num:turnaround ~den:p.deadline

let on_expire t ~id ~round:_ =
  let p = take_pending t ~id ~what:"on_expire" in
  t.expired <- t.expired + 1;
  (* hard-drop adaptation of the delay factor: one full window elapsed
     and the request still died, so charge (D + 1) / D > 1 *)
  frac_update t.delay ~num:(p.deadline + 1) ~den:p.deadline

let on_round t =
  machines_round_done t.machines ~round:t.rounds;
  t.rounds <- t.rounds + 1

let scores_of ~submitted ~served ~expired ~rounds ~turnaround_sum ~delay
    ~machines_needed =
  {
    submitted;
    served;
    expired;
    rounds;
    violation_rate =
      (if submitted = 0 then 0.0
       else float_of_int expired /. float_of_int submitted);
    throughput =
      (if rounds = 0 then 0.0 else float_of_int served /. float_of_int rounds);
    antt =
      (if served = 0 then Float.nan
       else float_of_int turnaround_sum /. float_of_int served);
    max_delay_factor = frac_value delay;
    machines_needed;
  }

let scores t =
  scores_of ~submitted:t.submitted ~served:t.served ~expired:t.expired
    ~rounds:t.rounds ~turnaround_sum:t.turnaround_sum ~delay:t.delay
    ~machines_needed:t.machines.best

(* -- batch oracle ------------------------------------------------------
   Recomputed with direct loops over the outcome log — deliberately no
   shared code with the accumulator above, so the differential test is
   a real cross-check. *)

let machines_of_instance (inst : Sched.Instance.t) =
  let h = inst.horizon in
  if h = 0 then 0
  else begin
    let closing = Array.make h [] in
    Array.iter
      (fun (r : Sched.Request.t) ->
        let last = Sched.Request.last_round r in
        closing.(last) <- r.arrival :: closing.(last))
      inst.requests;
    let by_arrival = Array.make h 0 in
    let best = ref 0 in
    for t2 = 0 to h - 1 do
      List.iter
        (fun a -> by_arrival.(a) <- by_arrival.(a) + 1)
        closing.(t2);
      let acc = ref 0 in
      for t1 = t2 downto 0 do
        acc := !acc + by_arrival.(t1);
        let len = t2 - t1 + 1 in
        let need = (!acc + len - 1) / len in
        if need > !best then best := need
      done
    done;
    !best
  end

let of_outcome (o : Sched.Outcome.t) =
  let inst = o.instance in
  let submitted = Sched.Instance.n_requests inst in
  let served = ref 0 and expired = ref 0 in
  let turnaround_sum = ref 0 in
  let delay = frac_empty () in
  Array.iteri
    (fun id slot ->
      let r = inst.requests.(id) in
      match slot with
      | Some (_resource, round) ->
          incr served;
          let turnaround = round - r.arrival + 1 in
          turnaround_sum := !turnaround_sum + turnaround;
          frac_update delay ~num:turnaround ~den:r.deadline
      | None ->
          incr expired;
          frac_update delay ~num:(r.deadline + 1) ~den:r.deadline)
    o.served_at;
  scores_of ~submitted ~served:!served ~expired:!expired ~rounds:inst.horizon
    ~turnaround_sum:!turnaround_sum ~delay
    ~machines_needed:(machines_of_instance inst)

(* -- one-pass scored run ---------------------------------------------- *)

type streamed = {
  scores : scores;
  opt : int;
  final_ratio : float;
  anytime_ratio : float;
}

(* same guard as Report.Harness.ratio_of; duplicated (not referenced)
   because report depends on analysis, not the other way around *)
let ratio_of ~opt ~served =
  if served > 0 then float_of_int opt /. float_of_int served
  else if opt = 0 then 1.0
  else Float.infinity

let score_stream ?metrics (inst : Sched.Instance.t) factory =
  let engine =
    Sched.Engine.Live.create ?metrics ~n:inst.n_resources ~d:inst.d factory
  in
  let tracker =
    Offline.Opt_stream.create ?metrics ~n_resources:inst.n_resources ()
  in
  let acc = create () in
  let worst = ref 1.0 in
  let served_so_far = ref 0 in
  for round = 0 to inst.horizon - 1 do
    let arrivals = Sched.Instance.arrivals_at inst round in
    Array.iter
      (fun (r : Sched.Request.t) ->
        match
          Sched.Engine.Live.submit engine
            ~alternatives:(Array.to_list r.alternatives) ~deadline:r.deadline
        with
        | Ok id -> on_submit acc ~id ~round ~deadline:r.deadline
        | Error m -> invalid_arg ("Slo.score_stream: rejected submit: " ^ m))
      arrivals;
    let opt_prefix = Offline.Opt_stream.feed tracker arrivals in
    let out = Sched.Engine.Live.step engine in
    List.iter (fun (id, _resource) -> on_serve acc ~id ~round) out.served;
    List.iter (fun id -> on_expire acc ~id ~round) out.expired;
    on_round acc;
    served_so_far := !served_so_far + List.length out.served;
    let prefix_ratio = ratio_of ~opt:opt_prefix ~served:!served_so_far in
    if prefix_ratio > !worst then worst := prefix_ratio
  done;
  let s = scores acc in
  let opt = Offline.Opt_stream.opt tracker in
  {
    scores = s;
    opt;
    final_ratio = ratio_of ~opt ~served:s.served;
    anytime_ratio = !worst;
  }

(* -- export through lib/obs ------------------------------------------- *)

let record ?(prefix = "slo") m (s : scores) =
  let counter name v = Obs.Metrics.incr ~by:v m (prefix ^ "." ^ name) in
  let gauge name v =
    if not (Float.is_nan v) then Obs.Metrics.set m (prefix ^ "." ^ name) v
  in
  counter "submitted" s.submitted;
  counter "served" s.served;
  counter "expired" s.expired;
  counter "rounds" s.rounds;
  gauge "violation_rate" s.violation_rate;
  gauge "throughput" s.throughput;
  gauge "antt" s.antt;
  gauge "max_delay_factor" s.max_delay_factor;
  gauge "machines_needed" (float_of_int s.machines_needed)

(* -- score modes (CLI) ------------------------------------------------ *)

type mode = Ratio | Violation | Throughput | Antt | Delay | Machines

type selector = All | One of mode

let selectors =
  [
    ("ratio", One Ratio);
    ("violation", One Violation);
    ("throughput", One Throughput);
    ("antt", One Antt);
    ("delay", One Delay);
    ("machines", One Machines);
    ("slo", All);
  ]

let selector_names = List.map fst selectors

let selector_of_name name =
  match List.assoc_opt name selectors with
  | Some s -> Ok s
  | None ->
      Error
        (Printf.sprintf "unknown score mode %S (expected one of: %s)" name
           (String.concat ", " selector_names))

let selector_to_name s =
  fst (List.find (fun (_, s') -> s' = s) selectors)

let mode_label = function
  | Ratio -> "ratio"
  | Violation -> "viol%"
  | Throughput -> "thr/round"
  | Antt -> "antt"
  | Delay -> "maxDF"
  | Machines -> "machines"

let float_cell fmt v = if Float.is_nan v then "-" else Printf.sprintf fmt v

let mode_cell mode ~ratio (s : scores) =
  match mode with
  | Ratio -> float_cell "%.3f" ratio
  | Violation -> float_cell "%.1f%%" (100.0 *. s.violation_rate)
  | Throughput -> float_cell "%.2f" s.throughput
  | Antt -> float_cell "%.3f" s.antt
  | Delay -> float_cell "%.3f" s.max_delay_factor
  | Machines -> string_of_int s.machines_needed

let pp_scores ppf (s : scores) =
  Format.fprintf ppf
    "@[<v>submitted        %d@,served           %d@,expired          %d@,\
     rounds           %d@,violation rate   %s@,throughput       %s@,\
     antt             %s@,max delay factor %s@,machines needed  %d@]"
    s.submitted s.served s.expired s.rounds
    (float_cell "%.4f" s.violation_rate)
    (float_cell "%.4f" s.throughput)
    (float_cell "%.4f" s.antt)
    (float_cell "%.4f" s.max_delay_factor)
    s.machines_needed
