type t = { opt : int; alg : int; total : int; ratio : float }

let of_outcome_with_opt (o : Sched.Outcome.t) ~opt =
  let alg = o.Sched.Outcome.served in
  {
    opt;
    alg;
    total = Sched.Instance.n_requests o.Sched.Outcome.instance;
    ratio =
      (if opt = 0 && alg = 0 then nan
       else float_of_int opt /. float_of_int alg);
  }

let of_outcome o =
  of_outcome_with_opt o ~opt:(Offline.Opt.value o.Sched.Outcome.instance)

let anytime_curve (o : Sched.Outcome.t) =
  let inst = o.Sched.Outcome.instance in
  let opt_curve = Offline.Opt_stream.prefix_curve inst in
  let arrived = ref 0 and alg = ref 0 in
  Array.mapi
    (fun round opt ->
       arrived := !arrived + Array.length (Sched.Instance.arrivals_at inst round);
       alg := !alg + o.Sched.Outcome.per_round_served.(round);
       {
         opt;
         alg = !alg;
         total = !arrived;
         ratio =
           (if opt = 0 && !alg = 0 then nan
            else float_of_int opt /. float_of_int !alg);
       })
    opt_curve

let exact t = Prelude.Rat.make t.opt t.alg

let pp fmt t =
  Format.fprintf fmt "opt=%d alg=%d total=%d ratio=%.4f" t.opt t.alg t.total
    t.ratio
