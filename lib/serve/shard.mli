(** A scheduling shard: one slice of the resource space.

    The server partitions resources [0 .. n-1] into contiguous slices;
    each shard owns a slice, a bounded inbox (the admission-control
    queue) and a {!Sched.Engine.Live} engine.  A {!Worker} domain owns
    a contiguous run of shards and steps each once per round tick —
    the shard itself is passive.  Requests are routed by their first
    alternative; alternatives that fall outside the owning shard's
    slice are dropped and counted ([serve.truncated_alternatives]) — a
    deliberate trade of choice richness for shared-nothing parallelism
    (see DESIGN.md §4.8).

    Replies go to the shard's own outbox ring, drained by the I/O
    domain.  A full outbox makes the shard stall and retry with
    backpressure (counted as [serve.outbox_stalls]) — a terminal
    response is never dropped, upholding the exactly-one-terminal
    contract.

    Metrics live in a shard-private registry ([serve.served],
    [serve.expired], [serve.rejected.invalid], [serve.outbox_stalls],
    [serve.queue_depth] and [serve.tick_us] histograms, a
    [serve.shard<i>.queue_depth] gauge, plus the engine's own
    [engine.*]); the server merges all shard snapshots after the
    workers exit, which is exact by the registry merge law. *)

type task = {
  conn : int;               (** connection id, for reply routing *)
  tag : int;                (** client's tag, echoed in responses *)
  alternatives : int list;  (** global resource ids; the first one must
                                lie in this shard's slice *)
  deadline : int;
}

type t

val create :
  ?metrics:Obs.Metrics.t ->
  index:int -> lo:int -> hi:int -> d:int -> queue_capacity:int ->
  strategy:Sched.Strategy.factory ->
  outbox:(int * Protocol.server_msg) Chan.t -> unit -> t
(** A shard owning global resources [lo .. hi-1].  [metrics] is the
    shard-private registry (fresh when omitted); the server hands the
    same registry to the strategy factory, so strategy-level counters
    (a cluster session's [cluster.*], a local protocol's [net.*]) are
    merged into the final snapshot with the [serve.*] ones.  The inbox
    is an SPSC ring (I/O domain produces, owning worker consumes)
    unless [queue_capacity] exceeds the eager-allocation bound, in
    which case the growable mutex ring is used.
    @raise Invalid_argument if the range is empty. *)

val index : t -> int
val owns : t -> int -> bool

val try_admit : t -> task -> bool
(** Push onto the inbox; [false] when the queue is at capacity (the
    caller sends the explicit overload reject).  Producer side of the
    SPSC ring — I/O domain only. *)

val try_admit_many : t -> task array -> off:int -> len:int -> int
(** Push [tasks.(off .. off+len-1)] onto the inbox in order; returns
    how many were accepted (the prefix that fit — the caller sends
    overload rejects for the suffix).  Producer side — I/O domain
    only. *)

val step_once : t -> unit
(** One round: drain the inbox, submit admissions, step the engine,
    push replies.  Owning worker only.  May raise whatever the
    strategy raises — the worker catches, calls {!note_crash} and
    retires the shard. *)

val drained : t -> draining:bool Atomic.t -> bool
(** True once [draining] is set {e and} the inbox is empty {e and}
    every admitted request has reached a terminal outcome. *)

val stepped : t -> int
(** Rounds completed so far (readable from any domain). *)

val has_exited : t -> bool

val mark_exited : t -> unit
(** Owning worker only, exactly once, after the final {!step_once}. *)

val note_crash : t -> exn -> unit
(** Count ([serve.shard_crashes]) and log a strategy crash. *)

val queue_depth : t -> int

val metrics_snapshot : t -> Obs.Metrics.snapshot
(** Stable once {!has_exited}. *)
