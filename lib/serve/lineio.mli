(** Line framing over byte streams. *)

val extract_lines : Buffer.t -> string list
(** Remove every complete ['\n']-terminated line from the buffer and
    return them oldest first (empty lines skipped); bytes after the
    last newline stay buffered as the next partial line. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string (blocking descriptors).
    @raise Unix.Unix_error as [Unix.write]. *)
