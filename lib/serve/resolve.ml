(* One hostname resolver for both sides of the wire (Server's listener
   and Client.connect grew identical copies of the same clean-error
   handling in PR 7; this is the shared version).

   gethostbyname raises Not_found on an unknown name, and a resolvable
   name can still come back with an empty address list — both must
   surface as a clean error, not an escaping exception. *)

let lookup host =
  match Unix.inet_addr_of_string host with
  | a -> Ok a
  | exception Failure _ ->
    (match Unix.gethostbyname host with
     | { Unix.h_addr_list = [||]; _ } ->
       Error (Printf.sprintf "host %S resolved to no addresses" host)
     | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
     | exception Not_found ->
       Error (Printf.sprintf "cannot resolve host %S" host))

(* The two sides read an empty host differently: a listener binds every
   interface, a client dials loopback.  "0.0.0.0" is likewise the
   wildcard when listening but an ordinary dotted quad when dialing. *)
let host ~listen h =
  if h = "localhost" then Ok Unix.inet_addr_loopback
  else if h = "" then
    Ok (if listen then Unix.inet_addr_any else Unix.inet_addr_loopback)
  else if listen && h = "0.0.0.0" then Ok Unix.inet_addr_any
  else lookup h
