(** The reqsched wire protocol (version rsp/1).

    Line-delimited text, one message per line; renderers never emit
    newlines (the framing layer appends ['\n']).  The request-line
    grammar is {!Sched.Codec}'s, so a saved trace and the wire speak
    the same bytes — the basis of byte-identical replay.

    Conversation shape: the client opens with [Hello] and the server
    answers [Welcome]; each submitted request — one per [Submit] line,
    many per [Batch] line — eventually earns {e exactly one} terminal
    response carrying its tag: [Scheduled], [Rejected] or [Expired].  [Tick] (manual-tick servers only) advances one
    scheduling round and is acknowledged with [Round] after every shard
    has stepped.  [Error] reports a protocol violation; the server
    closes the connection after sending it.

    Round-trip law (pinned by qcheck): [parse_client (render_client m)
    = Ok m] and [parse_server (render_server m) = Ok m] for every
    well-formed message (names are space-free tokens; reject/error
    details are newline-free rest-of-line text). *)

val version : string

type request = {
  tag : int;                (** client-chosen, [>= 0]; echoed verbatim *)
  alternatives : int list;  (** global resource ids *)
  deadline : int;           (** relative deadline, [1 .. d] *)
}

type reject_reason =
  | Overload           (** the target shard's inbox was at capacity *)
  | Draining           (** server shutting down; no new admissions *)
  | Invalid of string  (** malformed request; detail says why *)

type client_msg =
  | Hello of { client : string }
  | Submit of request
  | Batch of request list
      (** many submissions in one line ([batch r;r;…], entries separated
          by [';']) — one parse and one grouped inbox push server-side.
          Never empty: rendering an empty batch is the caller's bug and
          [parse_client] rejects it.  Each entry earns its own terminal
          response, exactly as if submitted via [Submit]. *)
  | Tick
  | Bye

type server_msg =
  | Welcome of { server : string }
  | Scheduled of { tag : int; round : int; resource : int }
  | Rejected of { tag : int; reason : reject_reason }
  | Expired of { tag : int }
  | Round of { round : int }
  | Error of { message : string }

val render_client : client_msg -> string
val parse_client : string -> (client_msg, string) result

val render_server : server_msg -> string
val parse_server : string -> (server_msg, string) result

val render_reject_reason : reject_reason -> string

val is_terminal : server_msg -> bool
(** [Scheduled], [Rejected] or [Expired]. *)

val terminal_tag : server_msg -> int option
(** The tag of a terminal response; [None] otherwise. *)

(** {2 Grammar helpers}

    Shared with [Cluster.Wire] so the inter-node grammar stays
    byte-compatible with this one (same keyword framing, same integer
    field rules) instead of drifting behind a private copy. *)

val strip_keyword : keyword:string -> string -> string option
(** [Some rest] when [line] is [keyword] alone (rest = [""]) or
    [keyword ^ " " ^ rest]; [None] otherwise. *)

val int_field : what:string -> string -> (int, string) result
(** Non-negative integer field; errors name [what]. *)
