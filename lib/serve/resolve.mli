(** Shared hostname resolution for {!Server} (listen side) and
    {!Client} (connect side).

    Resolution failures are returned, never raised: an unknown name and
    a name resolving to an empty address list both come back as
    [Error]. *)

val host : listen:bool -> string -> (Unix.inet_addr, string) result
(** ["localhost"] is loopback on both sides.  The empty host means
    "every interface" when [listen] and loopback otherwise; ["0.0.0.0"]
    is the listen-side wildcard (when dialing it parses as an ordinary
    dotted quad).  Anything else is parsed as a numeric address, then
    resolved via DNS. *)

val lookup : string -> (Unix.inet_addr, string) result
(** The raw numeric-then-DNS step without the special cases. *)
