(* Line framing over byte streams, shared by the server's nonblocking
   connection handling and the client's blocking reader. *)

let extract_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    let complete = String.sub s 0 last in
    Buffer.clear buf;
    Buffer.add_substring buf s (last + 1) (String.length s - last - 1);
    List.filter (fun l -> l <> "") (String.split_on_char '\n' complete)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done
