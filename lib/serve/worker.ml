(* A worker domain driving a slice of shards.

   PR 4 gave every shard its own domain; that couples parallelism to
   the sharding factor and oversubscribes small boxes.  Here the server
   spawns [--domains N] workers, each owning a contiguous slice of the
   shard array, so domain count and shard count vary independently.
   The shards themselves stay shared-nothing — a worker is just a loop
   that steps the engines it owns; the inbox/outbox channels remain the
   only synchronisation points with the I/O domain.

   Ticking:
   - [Every dt]: one drift-free clock per worker (tick k fires at
     start + k*dt), stepping every live owned shard per tick.  Pacing
     bails out early once draining lets a shard retire, like the
     per-shard loop used to.
   - [Manual target]: each owned shard independently catches up to the
     shared target (the I/O domain bumps it per wire [tick]).  No
     explicit barrier is needed for replay determinism: the I/O domain
     pushes a round's admissions into the inboxes before bumping the
     target (Atomic publication orders the plain pushes before the
     bump), and the client's round ack — sent only when the slowest
     shard reaches the target — is the fan-in barrier that keeps
     admission rounds identical at any domain count.  While draining,
     shards self-tick so in-flight requests still reach their
     deadlines after the ticking client is gone.

   A crashing strategy retires its shard (counted and logged by
   {!Shard.note_crash}) and the worker keeps driving its other shards;
   the whole-worker protect marks any shards it owns as exited even if
   the loop itself dies, so the server never waits forever. *)

type tick_source =
  | Every of float          (* seconds between rounds *)
  | Manual of int Atomic.t  (* step while [stepped < target] *)

let nap () =
  try Unix.sleepf 0.00005 with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run ~shards ~tick ~draining =
  let nsh = Array.length shards in
  let dead = Array.make nsh false in
  let retire i =
    dead.(i) <- true;
    Shard.mark_exited shards.(i)
  in
  let all_dead () = Array.for_all Fun.id dead in
  (* a shard ready to retire, i.e. drained but not yet marked *)
  let any_drained () =
    let found = ref false in
    for i = 0 to nsh - 1 do
      if (not dead.(i)) && Shard.drained shards.(i) ~draining then
        found := true
    done;
    !found
  in
  let step i =
    if not dead.(i) then begin
      if Shard.drained shards.(i) ~draining then retire i
      else
        try Shard.step_once shards.(i)
        with exn ->
          Shard.note_crash shards.(i) exn;
          retire i
    end
  in
  let finally () =
    (* never leave the server waiting on a shard this worker owns *)
    for i = 0 to nsh - 1 do
      if not dead.(i) then retire i
    done
  in
  Fun.protect ~finally (fun () ->
      match tick with
      | Every dt ->
        let start = Unix.gettimeofday () in
        let ticks = ref 0 in
        while not (all_dead ()) do
          let next = start +. (float_of_int (!ticks + 1) *. dt) in
          let rec pace () =
            let remaining = next -. Unix.gettimeofday () in
            if remaining > 0.0 && not (any_drained ()) then begin
              (try Unix.sleepf (Float.min remaining 0.01)
               with Unix.Unix_error (Unix.EINTR, _, _) -> ());
              pace ()
            end
          in
          pace ();
          for i = 0 to nsh - 1 do
            step i
          done;
          incr ticks
        done
      | Manual target ->
        while not (all_dead ()) do
          let progressed = ref false in
          for i = 0 to nsh - 1 do
            if not dead.(i) then begin
              if Shard.drained shards.(i) ~draining then retire i
              else if
                Atomic.get target > Shard.stepped shards.(i)
                || Atomic.get draining
              then begin
                step i;
                progressed := true
              end
            end
          done;
          (* the wait-for-tick nap bounds round latency in manual mode:
             keep it well under the I/O loop's busy poll *)
          if (not !progressed) && not (all_dead ()) then nap ()
        done)
