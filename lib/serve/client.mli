(** Protocol client and load generator for the reqsched server.

    The connection type is a plain blocking socket with buffered line
    reads; the load generators drive it single-threaded, draining
    responses opportunistically between sends.  Ratio of use: the CLI's
    [reqsched load] wraps {!open_loop} / {!closed_loop}; the end-to-end
    tests use {!connect} / {!send} / {!recv} directly. *)

type t
(** A connected, greeted session ([hello]/[welcome] already done). *)

val connect : Server.addr -> client:string -> (t, string) result
(** Dial, send [Hello {client}] and wait (10s) for [Welcome]. *)

val send : t -> Protocol.client_msg -> (unit, string) result

val recv : ?timeout:float -> t -> (Protocol.server_msg, string) result
(** Next server message; [Error] on timeout (default 10s), parse
    failure, or connection loss. *)

val recv_opt :
  ?timeout:float -> t -> (Protocol.server_msg option, string) result
(** Like {!recv} but a lapsed timeout is [Ok None] — for polling. *)

val close : t -> unit
(** Idempotent. *)

(** {1 Load generation} *)

type outcome =
  | Got_scheduled of { round : int; resource : int }
  | Got_rejected of Protocol.reject_reason
  | Got_expired

type report = {
  submitted : int;
  scheduled : int;
  rejected : int;
  expired : int;
  duration : float;           (** wall-clock seconds for the whole run *)
  submit_s : float;           (** seconds spent rendering and writing
                                  submissions — the wire path batching
                                  accelerates, measured apart from
                                  round-trip and response waits *)
  rtt : Prelude.Stats.t;      (** submit-to-terminal latency summary *)
  rtt_samples : float array;  (** raw latencies, submission order — feed
                                  to {!Prelude.Stats.quantile} *)
  decisions : (int * outcome) array;  (** sorted by tag *)
}

val open_loop :
  addr:Server.addr ->
  inst:Sched.Instance.t ->
  tick:[ `Manual | `Every of float ] ->
  ?batch:int ->
  ?client:string ->
  unit ->
  (report, string) result
(** Replay the instance's arrival schedule against the server.
    [`Manual] runs in lock-step — submit round [r]'s arrivals, send
    [tick], wait for the [round] ack — which against a manual-tick
    server makes scheduling decisions a deterministic function of the
    instance (byte-identical {!render_decisions} across runs).
    [`Every dt] paces rounds on the wall clock for interval-tick
    servers.  [batch] (default 1) chunks each round's arrivals into
    [batch]-long wire batches, preserving submission order — in manual
    mode decisions are byte-identical for every batch size.  Succeeds
    only once {e every} submitted tag has exactly one terminal
    response. *)

val closed_loop :
  addr:Server.addr ->
  inst:Sched.Instance.t ->
  users:int ->
  total:int ->
  ?batch:int ->
  ?client:string ->
  unit ->
  (report, string) result
(** [users] outstanding requests are kept in flight (each terminal
    response triggers the next submission) until [total] have been
    submitted and resolved, cycling through the instance's requests
    for alternatives/deadlines.  Tags are submission indices.
    [batch] (default 1) groups refills: buffered terminals are
    absorbed together and the freed slots resubmitted as one wire
    batch of at most [batch] requests. *)

val render_decisions : report -> string
(** One line per tag, sorted: ["t<tag> sched@<round> S<res>" | "t<tag>
    rej <reason>" | "t<tag> exp"].  Byte-comparable across replays. *)
