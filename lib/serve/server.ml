(* The reqsched scheduling server.

   One I/O domain owns the listener and every client socket (nonblocking,
   select-driven): it frames lines, parses messages, applies admission
   control and routes accepted requests to shard inboxes; shard domains
   (Shard.run) own the engines and push responses into the shared outbox,
   which the I/O domain writes back to clients.  Client failures (EPIPE,
   ECONNRESET, abrupt EOF with requests in flight) are strictly an I/O
   domain affair: the connection is closed and counted, the shards never
   notice.

   Shutdown: [drain] (wired to SIGINT/SIGTERM by the CLI) closes the
   listener, makes every new submission an explicit 'draining' reject,
   and lets the shards serve what is already admitted to its deadline;
   when the last shard exits the I/O domain flushes remaining responses,
   merges all metric registries and publishes the final snapshot. *)

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port
  | Unix_sock path -> "unix:" ^ path

let addr_of_string s =
  let err () =
    Error (Printf.sprintf "malformed address %S (want tcp:HOST:PORT or unix:PATH)" s)
  in
  match String.index_opt s ':' with
  | None -> err ()
  | Some i ->
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match scheme with
     | "unix" when rest <> "" -> Ok (Unix_sock rest)
     | "tcp" ->
       (match String.rindex_opt rest ':' with
        | Some j when j < String.length rest - 1 ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          (match int_of_string_opt port with
           | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
           | _ -> err ())
        | _ -> err ())
     | _ -> err ())

type config = {
  addr : addr;
  n_resources : int;
  d : int;
  shards : int;
  strategy : shard:int -> Sched.Strategy.factory;
  tick : [ `Every of float | `Manual ];
  queue_capacity : int;
  read_timeout : float; (* seconds; <= 0 disables *)
  name : string;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  shards : Shard.t array;
  stride : int;
  outbox : (int * Protocol.server_msg) Chan.t;
  draining : bool Atomic.t;
  tick_target : int Atomic.t;
  metrics : Obs.Metrics.t option;
  io_m : Obs.Metrics.t;
  finished : bool Atomic.t;
  final : Obs.Metrics.snapshot option Atomic.t;
  mutable domains : unit Domain.t list;
  mutable joined : bool;
}

(* ------------------------------------------------------------------ *)
(* sockets *)

let resolve_host host =
  if host = "" || host = "0.0.0.0" then Unix.inet_addr_any
  else if host = "localhost" then Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ ->
      (Unix.gethostbyname host).Unix.h_addr_list.(0)

let open_listener addr =
  match addr with
  | Unix_sock path ->
    if Sys.file_exists path then (try Unix.unlink path with _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd

(* ------------------------------------------------------------------ *)
(* the I/O domain *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inq : Buffer.t;
  outq : Buffer.t;
  mutable greeted : bool;
  mutable inflight : int; (* admitted, terminal response still pending *)
  mutable last_read : float;
  mutable closing : bool; (* close once outq is flushed *)
  mutable closed : bool;
}

let max_line = 65536

let io_loop t =
  let m = t.io_m in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 32 in
  let next_cid = ref 0 in
  let listener_open = ref true in
  let pending_acks = ref [] in (* (cid, target round count) *)
  let scratch = Bytes.create 4096 in
  let queue_msg conn msg =
    Buffer.add_string conn.outq (Protocol.render_server msg);
    Buffer.add_char conn.outq '\n';
    Obs.Metrics.incr m "serve.responses_out"
  in
  let close_conn ?(error = false) conn =
    if not conn.closed then begin
      conn.closed <- true;
      Hashtbl.remove conns conn.cid;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      if error || conn.inflight > 0 then
        Obs.Metrics.incr m "serve.client_errors"
    end
  in
  let shard_of_resource r = t.shards.(r / t.stride) in
  let reject conn ~tag reason counter =
    Obs.Metrics.incr m counter;
    queue_msg conn (Protocol.Rejected { tag; reason })
  in
  let admit conn ({ Protocol.tag; alternatives; deadline } : Protocol.request)
      =
    Obs.Metrics.incr m "serve.requests";
    if Atomic.get t.draining then
      reject conn ~tag Protocol.Draining "serve.rejected.draining"
    else
      let invalid detail =
        reject conn ~tag (Protocol.Invalid detail) "serve.rejected.invalid"
      in
      match alternatives with
      | [] -> invalid "empty alternative list"
      | first :: _ ->
        (match
           List.find_opt
             (fun a -> a < 0 || a >= t.cfg.n_resources)
             alternatives
         with
         | Some a ->
           invalid
             (Printf.sprintf "resource %d out of range (n=%d)" a
                t.cfg.n_resources)
         | None ->
           if deadline < 1 || deadline > t.cfg.d then
             invalid
               (Printf.sprintf "deadline %d outside 1..%d" deadline t.cfg.d)
           else begin
             let shard = shard_of_resource first in
             if
               Shard.try_admit shard
                 { Shard.conn = conn.cid; tag; alternatives; deadline }
             then begin
               conn.inflight <- conn.inflight + 1;
               Obs.Metrics.incr m "serve.admitted"
             end
             else reject conn ~tag Protocol.Overload "serve.rejected.overload"
           end)
  in
  let protocol_error conn detail =
    Obs.Metrics.incr m "serve.protocol_errors";
    queue_msg conn (Protocol.Error { message = detail });
    conn.closing <- true
  in
  let handle_line conn line =
    Obs.Metrics.incr m "serve.lines_in";
    match Protocol.parse_client line with
    | Error detail -> protocol_error conn detail
    | Ok (Protocol.Hello _) ->
      if conn.greeted then protocol_error conn "duplicate hello"
      else begin
        conn.greeted <- true;
        queue_msg conn (Protocol.Welcome { server = t.cfg.name })
      end
    | Ok _ when not conn.greeted -> protocol_error conn "expected hello first"
    | Ok (Protocol.Submit req) -> admit conn req
    | Ok Protocol.Tick ->
      (match t.cfg.tick with
       | `Manual ->
         let target = 1 + Atomic.fetch_and_add t.tick_target 1 in
         pending_acks := !pending_acks @ [ (conn.cid, target) ]
       | `Every _ ->
         queue_msg conn
           (Protocol.Error
              { message = "server ticks on its own clock; tick ignored" }))
    | Ok Protocol.Bye -> conn.closing <- true
  in
  let handle_readable conn =
    if not conn.closed then
      match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
      | 0 -> close_conn conn (* EOF; error iff requests stranded *)
      | n ->
        conn.last_read <- Unix.gettimeofday ();
        Buffer.add_subbytes conn.inq scratch 0 n;
        if
          Buffer.length conn.inq > max_line
          && not (String.contains (Buffer.contents conn.inq) '\n')
        then protocol_error conn "line too long"
        else List.iter (handle_line conn) (Lineio.extract_lines conn.inq)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn ~error:true conn
  in
  let handle_writable conn =
    if (not conn.closed) && Buffer.length conn.outq > 0 then begin
      let s = Buffer.contents conn.outq in
      match Unix.write_substring conn.fd s 0 (String.length s) with
      | n ->
        Buffer.clear conn.outq;
        if n < String.length s then
          Buffer.add_substring conn.outq s n (String.length s - n)
        else if conn.closing then close_conn conn
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn ~error:true conn
    end
    else if conn.closing && Buffer.length conn.outq = 0 then close_conn conn
  in
  let route_responses () =
    List.iter
      (fun (cid, msg) ->
         match Hashtbl.find_opt conns cid with
         | Some conn when not conn.closed ->
           if Protocol.is_terminal msg then
             conn.inflight <- max 0 (conn.inflight - 1);
           queue_msg conn msg
         | Some _ | None -> Obs.Metrics.incr m "serve.responses_dropped")
      (Chan.drain t.outbox)
  in
  let send_ready_acks () =
    match !pending_acks with
    | [] -> ()
    | acks ->
      let min_stepped =
        Array.fold_left
          (fun acc s -> min acc (Shard.stepped s))
          max_int t.shards
      in
      let ready, waiting =
        List.partition (fun (_, target) -> min_stepped >= target) acks
      in
      pending_acks := waiting;
      List.iter
        (fun (cid, target) ->
           match Hashtbl.find_opt conns cid with
           | Some conn when not conn.closed ->
             queue_msg conn (Protocol.Round { round = target - 1 })
           | Some _ | None -> ())
        ready
  in
  let scan_timeouts now =
    if t.cfg.read_timeout > 0.0 then
      Hashtbl.iter
        (fun _ conn ->
           if
             (not conn.closing)
             && now -. conn.last_read > t.cfg.read_timeout
           then begin
             Obs.Metrics.incr m "serve.read_timeouts";
             close_conn ~error:(conn.inflight > 0) conn
           end)
        (Hashtbl.copy conns)
  in
  let all_shards_exited () = Array.for_all Shard.has_exited t.shards in
  (* main loop: run until every shard has drained and exited *)
  while not (all_shards_exited () && Chan.length t.outbox = 0) do
    if Atomic.get t.draining && !listener_open then begin
      listener_open := false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
    end;
    let conn_fds =
      Hashtbl.fold (fun _ c acc -> if c.closed then acc else c.fd :: acc)
        conns []
    in
    let reads = if !listener_open then t.listen_fd :: conn_fds else conn_fds in
    let writes =
      Hashtbl.fold
        (fun _ c acc ->
           if (not c.closed) && Buffer.length c.outq > 0 then c.fd :: acc
           else acc)
        conns []
    in
    let rds, wrs =
      match Unix.select reads writes [] 0.005 with
      | rds, wrs, _ -> (rds, wrs)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [])
    in
    if !listener_open && List.memq t.listen_fd rds then begin
      let accepting = ref true in
      while !accepting do
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          Unix.set_nonblock fd;
          incr next_cid;
          let conn =
            {
              cid = !next_cid;
              fd;
              inq = Buffer.create 256;
              outq = Buffer.create 256;
              greeted = false;
              inflight = 0;
              last_read = Unix.gettimeofday ();
              closing = false;
              closed = false;
            }
          in
          Hashtbl.replace conns conn.cid conn;
          Obs.Metrics.incr m "serve.connections"
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          accepting := false
        | exception Unix.Unix_error _ -> accepting := false
      done
    end;
    let conn_of_fd fd =
      Hashtbl.fold
        (fun _ c acc -> if (not c.closed) && c.fd == fd then Some c else acc)
        conns None
    in
    List.iter
      (fun fd ->
         if fd != t.listen_fd then
           Option.iter handle_readable (conn_of_fd fd))
      rds;
    route_responses ();
    send_ready_acks ();
    List.iter (fun fd -> Option.iter handle_writable (conn_of_fd fd)) wrs;
    (* flush conns that became writable-with-data outside the select *)
    Hashtbl.iter
      (fun _ c ->
         if (not c.closed) && (Buffer.length c.outq > 0 || c.closing) then
           handle_writable c)
      (Hashtbl.copy conns);
    scan_timeouts (Unix.gettimeofday ())
  done;
  (* shards are gone: deliver what is left, then tear down *)
  route_responses ();
  send_ready_acks ();
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec flush () =
    let pending =
      Hashtbl.fold
        (fun _ c acc ->
           if (not c.closed) && Buffer.length c.outq > 0 then c :: acc
           else acc)
        conns []
    in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.05
       with
       | _, wrs, _ ->
         List.iter
           (fun c -> if List.memq c.fd wrs then handle_writable c)
           pending
       | exception Unix.Unix_error _ -> ());
      flush ()
    end
  in
  flush ();
  Hashtbl.iter (fun _ c -> close_conn c) (Hashtbl.copy conns);
  if !listener_open then
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
   | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | Tcp _ -> ());
  let final =
    Obs.Metrics.merge_all
      (Obs.Metrics.snapshot m
       :: Array.to_list (Array.map Shard.metrics_snapshot t.shards))
  in
  Atomic.set t.final (Some final);
  (match t.metrics with
   | Some main -> Obs.Metrics.merge_into main final
   | None -> ());
  Atomic.set t.finished true

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let start ?metrics cfg =
  if cfg.n_resources < 1 then Error "n_resources must be >= 1"
  else if cfg.d < 1 then Error "d must be >= 1"
  else if cfg.queue_capacity < 1 then Error "queue_capacity must be >= 1"
  else begin
    let metrics = Obs.Metrics.resolve metrics in
    let shards_n = max 1 (min cfg.shards cfg.n_resources) in
    let stride = (cfg.n_resources + shards_n - 1) / shards_n in
    (* the last slice may be short; recompute the real shard count *)
    let shards_n = (cfg.n_resources + stride - 1) / stride in
    match open_listener cfg.addr with
    | exception Unix.Unix_error (e, _, arg) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s (%s)"
           (addr_to_string cfg.addr) (Unix.error_message e) arg)
    | listen_fd ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let outbox = Chan.create ~capacity:max_int in
      let shards =
        Array.init shards_n (fun i ->
            Shard.create ~index:i ~lo:(i * stride)
              ~hi:(min cfg.n_resources ((i + 1) * stride))
              ~d:cfg.d ~queue_capacity:cfg.queue_capacity
              ~strategy:(cfg.strategy ~shard:i) ~outbox)
      in
      let t =
        {
          cfg;
          listen_fd;
          shards;
          stride;
          outbox;
          draining = Atomic.make false;
          tick_target = Atomic.make 0;
          metrics;
          io_m = Obs.Metrics.create ();
          finished = Atomic.make false;
          final = Atomic.make None;
          domains = [];
          joined = false;
        }
      in
      Obs.Metrics.set t.io_m "serve.shards" (float_of_int shards_n);
      let tick_source =
        match cfg.tick with
        | `Every dt -> Shard.Every dt
        | `Manual -> Shard.Manual t.tick_target
      in
      let shard_domains =
        Array.to_list
          (Array.map
             (fun s ->
                Domain.spawn (fun () ->
                    Shard.run s ~tick:tick_source ~draining:t.draining))
             shards)
      in
      let io_domain = Domain.spawn (fun () -> io_loop t) in
      t.domains <- io_domain :: shard_domains;
      Ok t
  end

let drain t = Atomic.set t.draining true
let finished t = Atomic.get t.finished
let n_shards t = Array.length t.shards

let wait t =
  if not t.joined then begin
    t.joined <- true;
    List.iter Domain.join t.domains
  end;
  match Atomic.get t.final with
  | Some snap -> snap
  | None -> [] (* unreachable: the I/O domain publishes before exiting *)
