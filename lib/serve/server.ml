(* The reqsched scheduling server.

   One I/O domain owns the listener and every client socket (nonblocking,
   select-driven): it frames lines, parses messages, applies admission
   control and routes accepted requests to shard inboxes — a batch line
   becomes one grouped push per target shard.  Worker domains
   (Worker.run) each drive a contiguous slice of shards, stepping the
   engines and pushing responses into per-shard outbox rings; the
   I/O domain merges and flushes all of them on every loop iteration, so
   shards never contend with each other on the reply path.  Client
   failures (EPIPE,
   ECONNRESET, abrupt EOF with requests in flight) are strictly an I/O
   domain affair: the connection is closed and counted, the shards never
   notice.

   Shutdown: [drain] (wired to SIGINT/SIGTERM by the CLI) closes the
   listener, makes every new submission an explicit 'draining' reject,
   and lets the shards serve what is already admitted to its deadline;
   when the last shard exits the I/O domain flushes remaining responses,
   merges all metric registries and publishes the final snapshot. *)

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port
  | Unix_sock path -> "unix:" ^ path

let addr_of_string s =
  let err () =
    Error (Printf.sprintf "malformed address %S (want tcp:HOST:PORT or unix:PATH)" s)
  in
  match String.index_opt s ':' with
  | None -> err ()
  | Some i ->
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match scheme with
     | "unix" when rest <> "" -> Ok (Unix_sock rest)
     | "tcp" ->
       (match String.rindex_opt rest ':' with
        | Some j when j < String.length rest - 1 ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          (match int_of_string_opt port with
           | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
           | _ -> err ())
        | _ -> err ())
     | _ -> err ())

type config = {
  addr : addr;
  n_resources : int;
  d : int;
  shards : int;
  domains : int;        (* worker domains; <= 0 means one per shard *)
  strategy : shard:int -> metrics:Obs.Metrics.t -> Sched.Strategy.factory;
  tick : [ `Every of float | `Manual ];
  queue_capacity : int;
  max_batch : int;      (* longest batch line accepted *)
  outbox_capacity : int; (* per-shard reply ring size *)
  read_timeout : float; (* seconds; <= 0 disables *)
  name : string;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  shards : Shard.t array;
  stride : int;
  outboxes : (int * Protocol.server_msg) Chan.t array; (* one per shard *)
  draining : bool Atomic.t;
  tick_target : int Atomic.t;
  metrics : Obs.Metrics.t option;
  io_m : Obs.Metrics.t;
  finished : bool Atomic.t;
  final : Obs.Metrics.snapshot option Atomic.t;
  mutable domains : unit Domain.t list;
  mutable joined : bool;
}

(* ------------------------------------------------------------------ *)
(* sockets *)

let resolve_host host = Resolve.host ~listen:true host

(* Reclaim a unix-socket path only when the existing file really is a
   socket (a stale leftover from a previous run); anything else at that
   path is someone else's data and replacing it would destroy it. *)
let reclaim_socket_path path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (try
       Unix.unlink path;
       Ok ()
     with Unix.Unix_error (e, _, _) ->
       Error
         (Printf.sprintf "cannot remove stale socket %s: %s" path
            (Unix.error_message e)))
  | { Unix.st_kind = _; _ } ->
    Error
      (Printf.sprintf "refusing to replace %s: existing file is not a socket"
         path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message e))

let open_listener addr =
  let ( let* ) = Result.bind in
  let listen_on fd sockaddr =
    match
      Unix.bind fd sockaddr;
      Unix.listen fd 64;
      Unix.set_nonblock fd
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, arg) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s (%s)" (Unix.error_message e) arg)
  in
  let res =
    match addr with
    | Unix_sock path ->
      let* () = reclaim_socket_path path in
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      listen_on fd (Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let* ip = resolve_host host in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      listen_on fd (Unix.ADDR_INET (ip, port))
  in
  Result.map_error
    (fun e ->
       Printf.sprintf "cannot listen on %s: %s" (addr_to_string addr) e)
    res

(* ------------------------------------------------------------------ *)
(* the I/O domain *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inq : Buffer.t;
  outq : Buffer.t;
  mutable greeted : bool;
  mutable inflight : int; (* admitted, terminal response still pending *)
  mutable last_read : float;
  mutable closing : bool; (* close once outq is flushed *)
  mutable closed : bool;
}

let max_line = 65536

let io_loop t =
  let m = t.io_m in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 32 in
  let next_cid = ref 0 in
  let listener_open = ref true in
  let pending_acks = ref [] in (* (cid, target round count) *)
  let scratch = Bytes.create 4096 in
  let queue_msg conn msg =
    Buffer.add_string conn.outq (Protocol.render_server msg);
    Buffer.add_char conn.outq '\n';
    Obs.Metrics.incr m "serve.responses_out"
  in
  let close_conn ?(error = false) conn =
    if not conn.closed then begin
      conn.closed <- true;
      Hashtbl.remove conns conn.cid;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      if error || conn.inflight > 0 then
        Obs.Metrics.incr m "serve.client_errors"
    end
  in
  let shard_index_of_resource r = r / t.stride in
  let reject conn ~tag reason counter =
    Obs.Metrics.incr m counter;
    queue_msg conn (Protocol.Rejected { tag; reason })
  in
  (* [None] when well-formed; [Some detail] says what is wrong *)
  let check_valid ({ Protocol.alternatives; deadline; _ } : Protocol.request)
      =
    match alternatives with
    | [] -> Some "empty alternative list"
    | _ ->
      (match
         List.find_opt
           (fun a -> a < 0 || a >= t.cfg.n_resources)
           alternatives
       with
       | Some a ->
         Some
           (Printf.sprintf "resource %d out of range (n=%d)" a
              t.cfg.n_resources)
       | None ->
         if deadline < 1 || deadline > t.cfg.d then
           Some
             (Printf.sprintf "deadline %d outside 1..%d" deadline t.cfg.d)
         else None)
  in
  let admit conn ({ Protocol.tag; alternatives; deadline } as req :
                    Protocol.request) =
    Obs.Metrics.incr m "serve.requests";
    if Atomic.get t.draining then
      reject conn ~tag Protocol.Draining "serve.rejected.draining"
    else
      match check_valid req with
      | Some detail ->
        reject conn ~tag (Protocol.Invalid detail) "serve.rejected.invalid"
      | None ->
        let shard = t.shards.(shard_index_of_resource (List.hd alternatives)) in
        if
          Shard.try_admit shard
            { Shard.conn = conn.cid; tag; alternatives; deadline }
        then begin
          conn.inflight <- conn.inflight + 1;
          Obs.Metrics.incr m "serve.admitted"
        end
        else reject conn ~tag Protocol.Overload "serve.rejected.overload"
  in
  (* A batch line: validate every entry, then push each shard's share
     with one grouped [try_admit_many] — one lock acquisition per shard
     touched instead of one per request.  Submission order is preserved
     within each shard, so a batched run makes the same decisions as the
     same requests submitted line by line. *)
  let admit_batch conn reqs =
    let nreqs = List.length reqs in
    Obs.Metrics.incr ~by:nreqs m "serve.requests";
    Obs.Metrics.incr m "serve.batches_in";
    if Atomic.get t.draining then
      List.iter
        (fun (r : Protocol.request) ->
           reject conn ~tag:r.tag Protocol.Draining "serve.rejected.draining")
        reqs
    else if nreqs > t.cfg.max_batch then
      let detail =
        Printf.sprintf "batch of %d exceeds server limit %d" nreqs
          t.cfg.max_batch
      in
      List.iter
        (fun (r : Protocol.request) ->
           reject conn ~tag:r.tag (Protocol.Invalid detail)
             "serve.rejected.invalid")
        reqs
    else begin
      let groups = Array.make (Array.length t.shards) [] in
      List.iter
        (fun ({ Protocol.tag; alternatives; deadline } as req :
                Protocol.request) ->
           match check_valid req with
           | Some detail ->
             reject conn ~tag (Protocol.Invalid detail)
               "serve.rejected.invalid"
           | None ->
             let i = shard_index_of_resource (List.hd alternatives) in
             groups.(i) <-
               { Shard.conn = conn.cid; tag; alternatives; deadline }
               :: groups.(i))
        reqs;
      Array.iteri
        (fun i group ->
           match group with
           | [] -> ()
           | _ ->
             let tasks = Array.of_list (List.rev group) in
             let len = Array.length tasks in
             let accepted =
               Shard.try_admit_many t.shards.(i) tasks ~off:0 ~len
             in
             conn.inflight <- conn.inflight + accepted;
             Obs.Metrics.incr ~by:accepted m "serve.admitted";
             for k = accepted to len - 1 do
               reject conn ~tag:tasks.(k).Shard.tag Protocol.Overload
                 "serve.rejected.overload"
             done)
        groups
    end
  in
  let protocol_error conn detail =
    Obs.Metrics.incr m "serve.protocol_errors";
    queue_msg conn (Protocol.Error { message = detail });
    conn.closing <- true
  in
  let handle_line conn line =
    Obs.Metrics.incr m "serve.lines_in";
    match Protocol.parse_client line with
    | Error detail -> protocol_error conn detail
    | Ok (Protocol.Hello _) ->
      if conn.greeted then protocol_error conn "duplicate hello"
      else begin
        conn.greeted <- true;
        queue_msg conn (Protocol.Welcome { server = t.cfg.name })
      end
    | Ok _ when not conn.greeted -> protocol_error conn "expected hello first"
    | Ok (Protocol.Submit req) -> admit conn req
    | Ok (Protocol.Batch reqs) -> admit_batch conn reqs
    | Ok Protocol.Tick ->
      (match t.cfg.tick with
       | `Manual ->
         let target = 1 + Atomic.fetch_and_add t.tick_target 1 in
         pending_acks := !pending_acks @ [ (conn.cid, target) ]
       | `Every _ ->
         queue_msg conn
           (Protocol.Error
              { message = "server ticks on its own clock; tick ignored" }))
    | Ok Protocol.Bye -> conn.closing <- true
  in
  let handle_readable conn =
    if not conn.closed then
      match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
      | 0 -> close_conn conn (* EOF; error iff requests stranded *)
      | n ->
        conn.last_read <- Unix.gettimeofday ();
        Buffer.add_subbytes conn.inq scratch 0 n;
        if
          Buffer.length conn.inq > max_line
          && not (String.contains (Buffer.contents conn.inq) '\n')
        then protocol_error conn "line too long"
        else List.iter (handle_line conn) (Lineio.extract_lines conn.inq)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn ~error:true conn
  in
  let handle_writable conn =
    if (not conn.closed) && Buffer.length conn.outq > 0 then begin
      let s = Buffer.contents conn.outq in
      match Unix.write_substring conn.fd s 0 (String.length s) with
      | n ->
        Buffer.clear conn.outq;
        if n < String.length s then
          Buffer.add_substring conn.outq s n (String.length s - n)
        else if conn.closing then close_conn conn
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn ~error:true conn
    end
    else if conn.closing && Buffer.length conn.outq = 0 then close_conn conn
  in
  (* Merge-flush every shard's outbox into the connection buffers; the
     reusable drain target means steady-state routing allocates only the
     rendered lines. *)
  let resp_buf : (int * Protocol.server_msg) array ref = ref [||] in
  let route_responses () =
    Array.iter
      (fun outbox ->
         let count = Chan.drain_into outbox resp_buf in
         for i = 0 to count - 1 do
           let cid, msg = !resp_buf.(i) in
           match Hashtbl.find_opt conns cid with
           | Some conn when not conn.closed ->
             if Protocol.is_terminal msg then
               conn.inflight <- max 0 (conn.inflight - 1);
             queue_msg conn msg
           | Some _ | None -> Obs.Metrics.incr m "serve.responses_dropped"
         done)
      t.outboxes
  in
  let send_ready_acks () =
    match !pending_acks with
    | [] -> ()
    | acks ->
      let min_stepped =
        Array.fold_left
          (fun acc s -> min acc (Shard.stepped s))
          max_int t.shards
      in
      let ready, waiting =
        List.partition (fun (_, target) -> min_stepped >= target) acks
      in
      pending_acks := waiting;
      List.iter
        (fun (cid, target) ->
           match Hashtbl.find_opt conns cid with
           | Some conn when not conn.closed ->
             queue_msg conn (Protocol.Round { round = target - 1 })
           | Some _ | None -> ())
        ready
  in
  let scan_timeouts now =
    if t.cfg.read_timeout > 0.0 then
      Hashtbl.iter
        (fun _ conn ->
           if
             (not conn.closing)
             && now -. conn.last_read > t.cfg.read_timeout
           then begin
             Obs.Metrics.incr m "serve.read_timeouts";
             close_conn ~error:(conn.inflight > 0) conn
           end)
        (Hashtbl.copy conns)
  in
  let all_shards_exited () = Array.for_all Shard.has_exited t.shards in
  let outboxes_empty () =
    Array.for_all (fun o -> Chan.length o = 0) t.outboxes
  in
  (* main loop: run until every shard has drained and exited *)
  while not (all_shards_exited () && outboxes_empty ()) do
    if Atomic.get t.draining && !listener_open then begin
      listener_open := false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
    end;
    let conn_fds =
      Hashtbl.fold (fun _ c acc -> if c.closed then acc else c.fd :: acc)
        conns []
    in
    let reads = if !listener_open then t.listen_fd :: conn_fds else conn_fds in
    let writes =
      Hashtbl.fold
        (fun _ c acc ->
           if (not c.closed) && Buffer.length c.outq > 0 then c.fd :: acc
           else acc)
        conns []
    in
    (* Adaptive pacing: while a tick ack is owed or replies are sitting
       in an outbox, the next wake-up depends on shard progress — which
       select cannot see — so poll tightly.  A non-empty inbox alone is
       NOT a reason to poll: in manual mode the workers won't touch it
       until the next wire tick, and spinning on it just steals cycles
       from the submitting client.  Otherwise sleep: half a tick in
       interval mode (clamped to the poll floor and the 5 ms ceiling)
       so replies lag a round by at most half a round, a flat 5 ms in
       manual mode, and let readable fds wake us early. *)
    let timeout =
      if !pending_acks <> [] || not (outboxes_empty ()) then 0.00005
      else
        match t.cfg.tick with
        | `Every dt -> Float.max 0.00005 (Float.min 0.005 (dt /. 2.0))
        | `Manual -> 0.005
    in
    let rds, wrs =
      match Unix.select reads writes [] timeout with
      | rds, wrs, _ -> (rds, wrs)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [])
    in
    if !listener_open && List.memq t.listen_fd rds then begin
      let accepting = ref true in
      while !accepting do
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          Unix.set_nonblock fd;
          incr next_cid;
          let conn =
            {
              cid = !next_cid;
              fd;
              inq = Buffer.create 256;
              outq = Buffer.create 256;
              greeted = false;
              inflight = 0;
              last_read = Unix.gettimeofday ();
              closing = false;
              closed = false;
            }
          in
          Hashtbl.replace conns conn.cid conn;
          Obs.Metrics.incr m "serve.connections"
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          accepting := false
        | exception Unix.Unix_error _ -> accepting := false
      done
    end;
    let conn_of_fd fd =
      Hashtbl.fold
        (fun _ c acc -> if (not c.closed) && c.fd == fd then Some c else acc)
        conns None
    in
    List.iter
      (fun fd ->
         if fd != t.listen_fd then
           Option.iter handle_readable (conn_of_fd fd))
      rds;
    route_responses ();
    send_ready_acks ();
    List.iter (fun fd -> Option.iter handle_writable (conn_of_fd fd)) wrs;
    (* flush conns that became writable-with-data outside the select *)
    Hashtbl.iter
      (fun _ c ->
         if (not c.closed) && (Buffer.length c.outq > 0 || c.closing) then
           handle_writable c)
      (Hashtbl.copy conns);
    scan_timeouts (Unix.gettimeofday ())
  done;
  (* shards are gone: deliver what is left, then tear down *)
  route_responses ();
  send_ready_acks ();
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec flush () =
    let pending =
      Hashtbl.fold
        (fun _ c acc ->
           if (not c.closed) && Buffer.length c.outq > 0 then c :: acc
           else acc)
        conns []
    in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.05
       with
       | _, wrs, _ ->
         List.iter
           (fun c -> if List.memq c.fd wrs then handle_writable c)
           pending
       | exception Unix.Unix_error _ -> ());
      flush ()
    end
  in
  flush ();
  Hashtbl.iter (fun _ c -> close_conn c) (Hashtbl.copy conns);
  if !listener_open then
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
   | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | Tcp _ -> ());
  let final =
    Obs.Metrics.merge_all
      (Obs.Metrics.snapshot m
       :: Array.to_list (Array.map Shard.metrics_snapshot t.shards))
  in
  Atomic.set t.final (Some final);
  (match t.metrics with
   | Some main -> Obs.Metrics.merge_into main final
   | None -> ());
  Atomic.set t.finished true

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let start ?metrics cfg =
  if cfg.n_resources < 1 then Error "n_resources must be >= 1"
  else if cfg.d < 1 then Error "d must be >= 1"
  else if cfg.queue_capacity < 1 then Error "queue_capacity must be >= 1"
  else if cfg.max_batch < 1 then Error "max_batch must be >= 1"
  else if cfg.outbox_capacity < 1 then Error "outbox_capacity must be >= 1"
  else begin
    let metrics = Obs.Metrics.resolve metrics in
    let shards_n = max 1 (min cfg.shards cfg.n_resources) in
    let stride = (cfg.n_resources + shards_n - 1) / shards_n in
    (* the last slice may be short; recompute the real shard count *)
    let shards_n = (cfg.n_resources + stride - 1) / stride in
    match open_listener cfg.addr with
    | Error _ as e -> e
    | Ok listen_fd ->
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (* each outbox has exactly one producer (the owning worker) and
         one consumer (the I/O domain): SPSC unless the capacity makes
         eager allocation unreasonable *)
      let dummy_reply = (-1, Protocol.Error { message = "" }) in
      let outboxes =
        Array.init shards_n (fun _ ->
            if cfg.outbox_capacity <= 65536 then
              Chan.create_spsc ~capacity:cfg.outbox_capacity
                ~dummy:dummy_reply
            else Chan.create ~capacity:cfg.outbox_capacity)
      in
      let shards =
        Array.init shards_n (fun i ->
            (* the shard's private registry is also handed to the
               strategy factory: strategy-level counters ride the same
               merge as the serve ones *)
            let metrics = Obs.Metrics.create () in
            Shard.create ~metrics ~index:i ~lo:(i * stride)
              ~hi:(min cfg.n_resources ((i + 1) * stride))
              ~d:cfg.d ~queue_capacity:cfg.queue_capacity
              ~strategy:(cfg.strategy ~shard:i ~metrics)
              ~outbox:outboxes.(i) ())
      in
      let t =
        {
          cfg;
          listen_fd;
          shards;
          stride;
          outboxes;
          draining = Atomic.make false;
          tick_target = Atomic.make 0;
          metrics;
          io_m = Obs.Metrics.create ();
          finished = Atomic.make false;
          final = Atomic.make None;
          domains = [];
          joined = false;
        }
      in
      (* worker domains: contiguous shard slices, so a worker's shards
         cover a contiguous resource range too.  domains <= 0 keeps the
         old one-domain-per-shard behaviour. *)
      let workers_n =
        if cfg.domains <= 0 then shards_n
        else max 1 (min cfg.domains shards_n)
      in
      let wstride = (shards_n + workers_n - 1) / workers_n in
      let workers_n = (shards_n + wstride - 1) / wstride in
      Obs.Metrics.set t.io_m "serve.shards" (float_of_int shards_n);
      Obs.Metrics.set t.io_m "serve.domains" (float_of_int workers_n);
      let tick_source =
        match cfg.tick with
        | `Every dt -> Worker.Every dt
        | `Manual -> Worker.Manual t.tick_target
      in
      let worker_domains =
        List.init workers_n (fun w ->
            let lo = w * wstride in
            let hi = min shards_n (lo + wstride) in
            let slice = Array.sub shards lo (hi - lo) in
            Domain.spawn (fun () ->
                Worker.run ~shards:slice ~tick:tick_source
                  ~draining:t.draining))
      in
      let io_domain = Domain.spawn (fun () -> io_loop t) in
      t.domains <- io_domain :: worker_domains;
      Ok t
  end

let drain t = Atomic.set t.draining true
let finished t = Atomic.get t.finished
let n_shards t = Array.length t.shards
let n_domains t = max 0 (List.length t.domains - 1) (* minus the I/O domain *)

let wait t =
  if not t.joined then begin
    t.joined <- true;
    List.iter Domain.join t.domains
  end;
  match Atomic.get t.final with
  | Some snap -> snap
  | None -> [] (* unreachable: the I/O domain publishes before exiting *)
