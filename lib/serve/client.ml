(* Protocol client and load generator.

   The connection layer is deliberately simple: one blocking socket,
   buffered line reads with a select-based timeout.  The generators
   drive it single-threaded — responses are drained opportunistically
   between sends, so no reader thread is needed. *)

module Stats = Prelude.Stats

let ( let* ) = Result.bind

type t = {
  fd : Unix.file_descr;
  inq : Buffer.t;
  mutable lines : string list; (* parsed-out, not yet consumed *)
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t msg =
  match Lineio.write_all t.fd (Protocol.render_client msg ^ "\n") with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

(* Next server message.  [timeout] bounds the whole wait; [Ok None]
   means it elapsed (not an error — pacing loops poll). *)
let recv_opt ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let scratch = Bytes.create 4096 in
  let rec next () =
    match t.lines with
    | line :: rest ->
      t.lines <- rest;
      (match Protocol.parse_server line with
       | Ok msg -> Ok (Some msg)
       | Error m -> Error (Printf.sprintf "bad server message: %s" m))
    | [] ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then Ok None
      else begin
        match Unix.select [ t.fd ] [] [] (Float.min remaining 0.25) with
        | [], _, _ -> next ()
        | _ ->
          (match Unix.read t.fd scratch 0 (Bytes.length scratch) with
           | 0 -> Error "connection closed by server"
           | n ->
             Buffer.add_subbytes t.inq scratch 0 n;
             t.lines <- t.lines @ Lineio.extract_lines t.inq;
             next ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
           | exception Unix.Unix_error (e, _, _) ->
             Error (Printf.sprintf "recv failed: %s" (Unix.error_message e)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
      end
  in
  next ()

let recv ?(timeout = 10.0) t =
  match recv_opt ~timeout t with
  | Ok (Some msg) -> Ok msg
  | Ok None -> Error (Printf.sprintf "timed out after %.1fs" timeout)
  | Error _ as e -> e

let resolve_host host = Resolve.host ~listen:false host

let connect addr ~client =
  let sock () =
    match (addr : Server.addr) with
    | Server.Unix_sock path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Ok fd
    | Server.Tcp (host, port) ->
      (match resolve_host host with
       | Error _ as e -> e
       | Ok ip ->
         let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
         Unix.connect fd (Unix.ADDR_INET (ip, port));
         Ok fd)
  in
  match sock () with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot connect to %s: %s"
         (Server.addr_to_string addr) (Unix.error_message e))
  | Error m ->
    Error
      (Printf.sprintf "cannot connect to %s: %s"
         (Server.addr_to_string addr) m)
  | Ok fd ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let t = { fd; inq = Buffer.create 256; lines = []; closed = false } in
    (match send t (Protocol.Hello { client }) with
     | Error m ->
       close t;
       Error m
     | Ok () ->
       (match recv ~timeout:10.0 t with
        | Ok (Protocol.Welcome _) -> Ok t
        | Ok other ->
          close t;
          Error
            (Printf.sprintf "expected welcome, got %S"
               (Protocol.render_server other))
        | Error m ->
          close t;
          Error m))

(* ------------------------------------------------------------------ *)
(* load generation *)

type outcome =
  | Got_scheduled of { round : int; resource : int }
  | Got_rejected of Protocol.reject_reason
  | Got_expired

type report = {
  submitted : int;
  scheduled : int;
  rejected : int;
  expired : int;
  duration : float;
  submit_s : float;
  rtt : Stats.t;
  rtt_samples : float array;
  decisions : (int * outcome) array;
}

(* Mutable run state shared by the generators. *)
type tracker = {
  outcomes : (int, outcome) Hashtbl.t;
  sent_at : (int, float) Hashtbl.t;
  rtt_acc : Stats.t;
  mutable samples : float list;
  mutable terminals : int;
}

let tracker () =
  {
    outcomes = Hashtbl.create 1024;
    sent_at = Hashtbl.create 1024;
    rtt_acc = Stats.create ();
    samples = [];
    terminals = 0;
  }

(* Returns [true] when the message was a fresh terminal response.
   Duplicate terminals (a protocol violation) are ignored rather than
   double-counted, so "terminals = submitted" stays a sound exit test. *)
let note tr msg =
  match (Protocol.terminal_tag msg : int option) with
  | None -> false
  | Some tag when Hashtbl.mem tr.outcomes tag -> false
  | Some tag ->
    let outcome =
      match msg with
      | Protocol.Scheduled { round; resource; _ } ->
        Got_scheduled { round; resource }
      | Protocol.Rejected { reason; _ } -> Got_rejected reason
      | Protocol.Expired _ -> Got_expired
      | _ -> assert false
    in
    Hashtbl.replace tr.outcomes tag outcome;
    (match Hashtbl.find_opt tr.sent_at tag with
     | Some t0 ->
       let rtt = Unix.gettimeofday () -. t0 in
       Stats.add tr.rtt_acc rtt;
       tr.samples <- rtt :: tr.samples
     | None -> ());
    tr.terminals <- tr.terminals + 1;
    true

let report_of tr ~submitted ~duration ~submit_s =
  let scheduled = ref 0 and rejected = ref 0 and expired = ref 0 in
  Hashtbl.iter
    (fun _ -> function
       | Got_scheduled _ -> incr scheduled
       | Got_rejected _ -> incr rejected
       | Got_expired -> incr expired)
    tr.outcomes;
  let decisions =
    Hashtbl.fold (fun tag o acc -> (tag, o) :: acc) tr.outcomes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  {
    submitted;
    scheduled = !scheduled;
    rejected = !rejected;
    expired = !expired;
    duration;
    submit_s;
    rtt = Stats.copy tr.rtt_acc;
    rtt_samples = Array.of_list (List.rev tr.samples);
    decisions;
  }

let submit_request conn tr ~tag ~alternatives ~deadline =
  Hashtbl.replace tr.sent_at tag (Unix.gettimeofday ());
  send conn (Protocol.Submit { tag; alternatives; deadline })

(* A singleton goes out as a plain [req] line (byte-compatible with an
   unbatched client); anything longer becomes one [batch] line. *)
let submit_group conn tr reqs =
  match reqs with
  | [] -> Ok ()
  | [ (r : Protocol.request) ] ->
    submit_request conn tr ~tag:r.tag ~alternatives:r.alternatives
      ~deadline:r.deadline
  | _ ->
    let now = Unix.gettimeofday () in
    List.iter
      (fun (r : Protocol.request) -> Hashtbl.replace tr.sent_at r.tag now)
      reqs;
    send conn (Protocol.Batch reqs)

(* Drain responses until [stop] says we are done (or [budget] seconds
   pass, which is an error described by [what]). *)
let drain_until conn tr ~budget ~what ~stop =
  let deadline = Unix.gettimeofday () +. budget in
  let rec go () =
    if stop () then Ok ()
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then
        Error (Printf.sprintf "timed out waiting for %s" (what ()))
      else
        match recv_opt ~timeout:(Float.min remaining 0.5) conn with
        | Error m -> Error m
        | Ok None -> go ()
        | Ok (Some (Protocol.Error { message })) ->
          Error ("server error: " ^ message)
        | Ok (Some msg) ->
          ignore (note tr msg);
          go ()
  in
  go ()

let request_fields (r : Sched.Request.t) =
  (Array.to_list r.Sched.Request.alternatives, r.Sched.Request.deadline)

let open_loop ~addr ~(inst : Sched.Instance.t) ~tick ?(batch = 1)
    ?(client = "load") () =
  if batch < 1 then Error "open_loop: batch must be >= 1"
  else
  match connect addr ~client with
  | Error _ as e -> e
  | Ok conn ->
    let tr = tracker () in
    let total = Sched.Instance.n_requests inst in
    let horizon = inst.Sched.Instance.horizon in
    let t0 = Unix.gettimeofday () in
    (* wall time spent rendering and writing submissions — the wire
       path batching accelerates, reported apart from round-trip waits *)
    let submit_clock = ref 0.0 in
    let submit_round round =
      (* a round's arrivals go out in submission order, chunked into
         groups of at most [batch] *)
      let arrivals = Sched.Instance.arrivals_at inst round in
      let n = Array.length arrivals in
      let rec go i =
        if i >= n then Ok ()
        else
          let len = min batch (n - i) in
          let reqs =
            List.init len (fun k ->
                let r = arrivals.(i + k) in
                let alternatives, deadline = request_fields r in
                { Protocol.tag = r.Sched.Request.id; alternatives; deadline })
          in
          match submit_group conn tr reqs with
          | Error _ as e -> e
          | Ok () -> go (i + len)
      in
      let c0 = Unix.gettimeofday () in
      let r = go 0 in
      submit_clock := !submit_clock +. (Unix.gettimeofday () -. c0);
      r
    in
    let result =
      let* () =
        match tick with
        | `Manual ->
          (* Lock-step: submit a round's arrivals, tick, wait for the
             round ack (absorbing any terminals that arrive first). *)
          let rec rounds r =
            if r >= horizon then Ok ()
            else
              let* () = submit_round r in
              let* () = send conn Protocol.Tick in
              let rec await () =
                match recv ~timeout:30.0 conn with
                | Error m -> Error m
                | Ok (Protocol.Round { round }) when round >= r -> Ok ()
                | Ok (Protocol.Error { message }) ->
                  Error ("server error: " ^ message)
                | Ok msg ->
                  ignore (note tr msg);
                  await ()
              in
              let* () = await () in
              rounds (r + 1)
          in
          rounds 0
        | `Every dt ->
          (* Paced against the wall clock so client rounds track the
             server ticker; responses are drained while waiting. *)
          let start = Unix.gettimeofday () in
          let rec rounds r =
            if r >= horizon then Ok ()
            else begin
              let at = start +. (float_of_int r *. dt) in
              let rec pace () =
                let remaining = at -. Unix.gettimeofday () in
                if remaining <= 0.0 then Ok ()
                else
                  match recv_opt ~timeout:(Float.min remaining 0.05) conn with
                  | Error m -> Error m
                  | Ok (Some (Protocol.Error { message })) ->
                    Error ("server error: " ^ message)
                  | Ok (Some msg) ->
                    ignore (note tr msg);
                    pace ()
                  | Ok None -> pace ()
              in
              let* () = pace () in
              let* () = submit_round r in
              rounds (r + 1)
            end
          in
          rounds 0
      in
      (* All arrivals are in; every admitted request resolves within d
         more rounds, so just collect until each tag has its terminal. *)
      let* () =
        drain_until conn tr ~budget:30.0
          ~what:(fun () ->
            Printf.sprintf "%d terminal responses (got %d)" total
              tr.terminals)
          ~stop:(fun () -> tr.terminals >= total)
      in
      let* () = send conn Protocol.Bye in
      Ok ()
    in
    let duration = Unix.gettimeofday () -. t0 in
    close conn;
    (match result with
     | Error m -> Error m
     | Ok () ->
       Ok (report_of tr ~submitted:total ~duration ~submit_s:!submit_clock))

let closed_loop ~addr ~(inst : Sched.Instance.t) ~users ~total
    ?(batch = 1) ?(client = "load") () =
  if users < 1 then Error "closed_loop: users must be >= 1"
  else if total < 0 then Error "closed_loop: total must be >= 0"
  else if batch < 1 then Error "closed_loop: batch must be >= 1"
  else if Sched.Instance.n_requests inst = 0 && total > 0 then
    Error "closed_loop: the workload instance has no requests"
  else
    match connect addr ~client with
    | Error _ as e -> e
    | Ok conn ->
      let tr = tracker () in
      let n_req = Sched.Instance.n_requests inst in
      let t0 = Unix.gettimeofday () in
      let next = ref 0 in
      let submit_clock = ref 0.0 in
      (* Submit up to [k] more requests, chunked into groups of at most
         [batch]; stops early when [total] is reached. *)
      let submit_up_to k =
        let rec go k =
          let len = min (min k batch) (total - !next) in
          if len <= 0 then Ok ()
          else
            let reqs =
              List.init len (fun _ ->
                  let r = inst.Sched.Instance.requests.(!next mod n_req) in
                  let alternatives, deadline = request_fields r in
                  let tag = !next in
                  incr next;
                  { Protocol.tag; alternatives; deadline })
            in
            let* () = submit_group conn tr reqs in
            go (k - len)
        in
        let c0 = Unix.gettimeofday () in
        let r = go k in
        submit_clock := !submit_clock +. (Unix.gettimeofday () -. c0);
        r
      in
      let result =
        let* () = submit_up_to (min users total) in
        (* Each terminal frees a "user" slot.  Freed slots are refilled
           together: after the blocking read, already-buffered responses
           are absorbed first ([recv_opt ~timeout:0.] never touches the
           socket), so a burst of terminals becomes one batched refill
           instead of one send per response. *)
        let rec serve () =
          if tr.terminals >= total then Ok ()
          else
            match recv ~timeout:30.0 conn with
            | Error m -> Error m
            | Ok (Protocol.Error { message }) ->
              Error ("server error: " ^ message)
            | Ok msg ->
              let fresh = ref (if note tr msg then 1 else 0) in
              let rec absorb () =
                if batch > 1 then
                  match recv_opt ~timeout:0.0 conn with
                  | Ok (Some (Protocol.Error { message })) ->
                    Error ("server error: " ^ message)
                  | Ok (Some msg) ->
                    if note tr msg then incr fresh;
                    absorb ()
                  | Ok None -> Ok ()
                  | Error _ as e -> e
                else Ok ()
              in
              let* () = absorb () in
              let* () = submit_up_to !fresh in
              serve ()
        in
        let* () = serve () in
        let* () = send conn Protocol.Bye in
        Ok ()
      in
      let duration = Unix.gettimeofday () -. t0 in
      close conn;
      (match result with
       | Error m -> Error m
       | Ok () ->
         Ok
           (report_of tr ~submitted:!next ~duration
              ~submit_s:!submit_clock))

let render_decisions report =
  let b = Buffer.create (32 * Array.length report.decisions) in
  Array.iter
    (fun (tag, outcome) ->
       (match outcome with
        | Got_scheduled { round; resource } ->
          Buffer.add_string b
            (Printf.sprintf "t%d sched@%d S%d" tag round resource)
        | Got_rejected reason ->
          Buffer.add_string b
            (Printf.sprintf "t%d rej %s" tag
               (Protocol.render_reject_reason reason))
        | Got_expired -> Buffer.add_string b (Printf.sprintf "t%d exp" tag));
       Buffer.add_char b '\n')
    report.decisions;
  Buffer.contents b
