(** The reqsched scheduling server: sharded live engines behind a
    line-protocol socket.

    Architecture (DESIGN.md §4.8, §4.13): one I/O domain owns the
    listener and every client socket (nonblocking, [select]-driven)
    and applies admission control; [domains] worker domains each drive
    a contiguous slice of the [shards] shards, each of which owns a
    contiguous slice of the resource space and a {!Sched.Engine.Live}
    engine stepped on a round ticker.  Requests are routed to the shard
    owning
    their first alternative through a bounded inbox — a full inbox is an
    immediate, explicit [overload] reject, never a silent drop.  A
    [batch] wire line is admitted with one grouped inbox push per shard
    touched, and replies flow back through per-shard outbox rings the
    I/O domain merge-flushes every iteration; the reply path therefore
    costs one lock acquisition per shard per direction per loop, not
    one per message.

    Failure isolation: client-side failures (EPIPE, ECONNRESET, abrupt
    EOF with requests in flight, read timeouts) close that connection
    and bump [serve.client_errors] / [serve.read_timeouts]; shard
    domains never observe them.  Responses to vanished clients are
    counted in [serve.responses_dropped].

    Shutdown: {!drain} (the CLI wires SIGINT/SIGTERM to it) closes the
    listener, rejects new submissions as [draining], serves everything
    already admitted to its deadline, then flushes and publishes the
    final merged metrics snapshot. *)

type addr = Tcp of string * int | Unix_sock of string

val addr_of_string : string -> (addr, string) result
(** ["tcp:HOST:PORT"] or ["unix:PATH"]. *)

val addr_to_string : addr -> string

type config = {
  addr : addr;
  n_resources : int;
  d : int;                 (** nominal deadline; per-request deadlines
                               above it are rejected as invalid *)
  shards : int;            (** clamped to [1 .. n_resources] *)
  domains : int;           (** worker domains stepping the shards,
                               clamped to [1 .. shards]; [<= 0] means
                               one domain per shard (the pre-[--domains]
                               behaviour).  Manual-tick decisions are
                               byte-identical at any domain count. *)
  strategy : shard:int -> metrics:Obs.Metrics.t -> Sched.Strategy.factory;
      (** per-shard factory, so randomised strategies can be seeded per
          shard instead of sharing state across domains.  [metrics] is
          the shard's private registry (merged into the final snapshot
          when the server finishes) — the hook strategy-level
          instrumentation rides on: a cluster session records its
          [cluster.*] counters there, a local protocol its [net.*]. *)
  tick : [ `Every of float | `Manual ];
      (** [`Every dt]: a round every [dt] seconds (real time).
          [`Manual]: rounds advance on wire [tick] messages (logical
          time — what deterministic replay uses). *)
  queue_capacity : int;    (** per-shard inbox bound (admission control) *)
  max_batch : int;         (** longest [batch] line accepted; longer
                               batches are rejected as invalid *)
  outbox_capacity : int;   (** per-shard reply ring bound; a full ring
                               stalls the shard with backpressure
                               ([serve.outbox_stalls]) — replies are
                               never dropped *)
  read_timeout : float;    (** idle-connection cutoff in seconds;
                               [<= 0.] disables *)
  name : string;           (** server token in the [welcome] line *)
}

type t

val start : ?metrics:Obs.Metrics.t -> config -> (t, string) result
(** Bind, listen and spawn the shard and I/O domains; the listening
    socket is ready when this returns.  [metrics] (or the ambient
    registry) receives the final merged snapshot when the server
    finishes.  Errors are returned, not raised: an unresolvable host,
    a config bound out of range, or a unix-socket path occupied by a
    non-socket file (pre-existing sockets are reclaimed; anything else
    is refused so it cannot be destroyed). *)

val drain : t -> unit
(** Begin graceful shutdown; idempotent, callable from a signal
    handler (it only flips an atomic). *)

val finished : t -> bool
(** Whether every domain has completed and the final snapshot is
    published.  Poll this from a signal-receiving main thread instead
    of blocking in {!wait}. *)

val wait : t -> Obs.Metrics.snapshot
(** Join all domains (first call; later calls are no-ops) and return
    the final merged metrics snapshot. *)

val n_shards : t -> int
(** Actual shard count after clamping. *)

val n_domains : t -> int
(** Actual worker-domain count after clamping (the I/O domain is not
    counted). *)
