(** A worker domain driving a contiguous slice of shards.

    The server spawns [--domains N] workers; each owns a disjoint run
    of the shard array and is the only domain that calls
    {!Shard.step_once} on them, so domain count and shard count vary
    independently (PR 4 hard-wired one domain per shard).

    Interval mode gives each worker one drift-free clock — tick [k]
    fires at [start + k*dt] — stepping every live owned shard per
    tick.  Manual mode has each shard catch up to the shared target
    independently; replay stays byte-identical at any domain count
    because the I/O domain publishes a round's admissions before
    bumping the target and acks the client only when the {e slowest}
    shard reaches it (the fan-in barrier).  While draining, shards
    self-tick so in-flight requests still reach their deadlines.

    A crashing strategy retires only its shard (via
    {!Shard.note_crash}); the worker keeps driving the rest and marks
    everything it owns as exited on the way out, so the server never
    waits on a dead worker. *)

type tick_source =
  | Every of float
      (** real time: one round every so many seconds, drift-free *)
  | Manual of int Atomic.t
      (** logical time: step while [stepped < target]; the I/O domain
          bumps the target on each wire [tick] *)

val run :
  shards:Shard.t array -> tick:tick_source -> draining:bool Atomic.t -> unit
(** The domain body.  Returns once every owned shard has exited. *)
