(* Bounded FIFO queues for the serve data plane, in two flavours.

   [Locked] — a mutex-protected flat ring.  Multi-producer (the I/O
   domain pushes, shards push replies, and tests push from several
   domains), single-consumer (the owner drains).  Overflow is the
   producer's signal to apply backpressure explicitly — nothing is ever
   dropped silently.  Consumers poll ([drain_into] is non-blocking); the
   serve loops tick on their own clocks, so no condition variable is
   needed.  The ring grows geometrically up to [capacity] but never
   shrinks, so a steady-state producer/consumer pair allocates nothing:
   pushes write into the ring in place and [drain_into] copies out with
   at most two [Array.blit]s into the caller's reusable buffer.
   [capacity] may be huge (e.g. [max_int]); only the high-water mark is
   ever allocated.

   [Spsc] — a lock-free single-producer/single-consumer ring for the
   case the server actually has: each inbox is written only by the I/O
   domain and drained only by the owning worker domain, and each outbox
   is written only by the owning worker and drained only by the I/O
   domain.  Head and tail are monotonic [Atomic] counters (length =
   tail - head, cell index = counter mod capacity); the producer owns
   tail, the consumer owns head.  Under the OCaml 5 memory model the
   [Atomic.set] of tail after the plain cell writes publishes them to
   the consumer (and symmetrically head publishes consumption back to
   the producer), so no cell is ever read and written concurrently.
   The ring is allocated eagerly at full capacity — there is no safe
   lock-free grow — which is why construction needs a [dummy] witness
   and why [capacity] must be modest.  The mutex flavour remains the
   oracle: a qcheck differential in test_serve.ml drives both through
   identical operation sequences. *)

type 'a locked = {
  mutex : Mutex.t;
  capacity : int;
  mutable buf : 'a array; (* ring storage; [||] until the first push *)
  mutable head : int;     (* index of the oldest element *)
  mutable length : int;
}

type 'a spsc = {
  cap : int;
  ring : 'a array;
  shead : int Atomic.t; (* consumed count; owned by the consumer *)
  stail : int Atomic.t; (* produced count; owned by the producer *)
}

type 'a t = Locked of 'a locked | Spsc of 'a spsc

let create ~capacity =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
  Locked
    { mutex = Mutex.create (); capacity; buf = [||]; head = 0; length = 0 }

let create_spsc ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Chan.create_spsc: capacity must be >= 1";
  Spsc
    {
      cap = capacity;
      ring = Array.make capacity dummy;
      shead = Atomic.make 0;
      stail = Atomic.make 0;
    }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Make room for [extra] more elements (never beyond capacity; the
   caller has already clamped).  [witness] seeds fresh cells — 'a array
   cells must hold a value of the right type.  Linearizes the ring. *)
let grow t ~extra ~witness =
  let size = Array.length t.buf in
  if t.length + extra > size then begin
    let want = t.length + extra in
    let size' = min t.capacity (max want (max 16 (2 * size))) in
    let buf' = Array.make size' witness in
    let tail = min t.length (size - t.head) in
    if tail > 0 then Array.blit t.buf t.head buf' 0 tail;
    if t.length > tail then Array.blit t.buf 0 buf' tail (t.length - tail);
    t.buf <- buf';
    t.head <- 0
  end

let unlocked_push t x =
  grow t ~extra:1 ~witness:x;
  let size = Array.length t.buf in
  t.buf.((t.head + t.length) mod size) <- x;
  t.length <- t.length + 1

let try_push t x =
  match t with
  | Locked t ->
    with_lock t (fun () ->
        if t.length >= t.capacity then false
        else begin
          unlocked_push t x;
          true
        end)
  | Spsc c ->
    let tl = Atomic.get c.stail in
    if tl - Atomic.get c.shead >= c.cap then false
    else begin
      c.ring.(tl mod c.cap) <- x;
      Atomic.set c.stail (tl + 1);
      true
    end

let push_slice t src ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length src then
    invalid_arg "Chan.push_slice: bad slice";
  if len = 0 then 0
  else
    match t with
    | Locked t ->
      with_lock t (fun () ->
          let accept = min len (t.capacity - t.length) in
          if accept > 0 then begin
            grow t ~extra:accept ~witness:src.(off);
            let size = Array.length t.buf in
            let at = (t.head + t.length) mod size in
            let first = min accept (size - at) in
            Array.blit src off t.buf at first;
            if accept > first then
              Array.blit src (off + first) t.buf 0 (accept - first);
            t.length <- t.length + accept
          end;
          accept)
    | Spsc c ->
      let tl = Atomic.get c.stail in
      let accept = min len (c.cap - (tl - Atomic.get c.shead)) in
      if accept > 0 then begin
        let at = tl mod c.cap in
        let first = min accept (c.cap - at) in
        Array.blit src off c.ring at first;
        if accept > first then
          Array.blit src (off + first) c.ring 0 (accept - first);
        Atomic.set c.stail (tl + accept)
      end;
      accept

(* Stale ring cells keep references to drained elements until they are
   overwritten — bounded by the ring's high-water mark, and the serve
   queues carry small messages, so no clearing pass is done here. *)
let unlocked_drain_into t dst =
  let count = t.length in
  if count > 0 then begin
    let size = Array.length t.buf in
    if Array.length !dst < count then
      dst := Array.make (max count (2 * Array.length !dst)) t.buf.(t.head);
    let first = min count (size - t.head) in
    Array.blit t.buf t.head !dst 0 first;
    if count > first then Array.blit t.buf 0 !dst first (count - first);
    t.head <- 0;
    t.length <- 0
  end;
  count

let drain_into t dst =
  match t with
  | Locked t -> with_lock t (fun () -> unlocked_drain_into t dst)
  | Spsc c ->
    (* Read tail first: anything the producer published before that read
       is fully visible.  New pushes racing in after the read are simply
       left for the next poll. *)
    let tl = Atomic.get c.stail in
    let h = Atomic.get c.shead in
    let count = tl - h in
    if count > 0 then begin
      let at = h mod c.cap in
      if Array.length !dst < count then
        dst := Array.make (max count (2 * Array.length !dst)) c.ring.(at);
      let first = min count (c.cap - at) in
      Array.blit c.ring at !dst 0 first;
      if count > first then Array.blit c.ring 0 !dst first (count - first);
      Atomic.set c.shead tl
    end;
    count

let drain t =
  match t with
  | Locked t ->
    with_lock t (fun () ->
        let size = Array.length t.buf in
        let out = ref [] in
        for i = t.length - 1 downto 0 do
          out := t.buf.((t.head + i) mod size) :: !out
        done;
        t.head <- 0;
        t.length <- 0;
        !out)
  | Spsc c ->
    let tl = Atomic.get c.stail in
    let h = Atomic.get c.shead in
    let out = ref [] in
    for i = tl - h - 1 downto 0 do
      out := c.ring.((h + i) mod c.cap) :: !out
    done;
    if tl > h then Atomic.set c.shead tl;
    !out

let length t =
  match t with
  | Locked t -> with_lock t (fun () -> t.length)
  | Spsc c ->
    (* Racy but monotone-safe: the producer sees free space at most
       understated, the consumer sees pending items at most
       understated.  Exact for the owning side. *)
    max 0 (Atomic.get c.stail - Atomic.get c.shead)
