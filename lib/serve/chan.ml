(* A small mutex-protected FIFO queue with a hard capacity.

   Multi-producer (the I/O domain pushes, and tests push from several
   domains), single-consumer (the owning shard drains).  Overflow is
   the producer's signal to reject explicitly — nothing is ever dropped
   silently.  Consumers poll ([drain] is non-blocking); the serve loops
   tick on their own clocks, so no condition variable is needed. *)

type 'a t = {
  mutex : Mutex.t;
  capacity : int;
  mutable items : 'a list; (* reversed: newest first *)
  mutable length : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
  { mutex = Mutex.create (); capacity; items = []; length = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.length >= t.capacity then false
      else begin
        t.items <- x :: t.items;
        t.length <- t.length + 1;
        true
      end)

let drain t =
  with_lock t (fun () ->
      let xs = t.items in
      t.items <- [];
      t.length <- 0;
      List.rev xs)

let length t = with_lock t (fun () -> t.length)
