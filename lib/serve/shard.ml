(* One scheduling shard: a slice [lo, hi) of the resource space, a
   bounded inbox, and a live engine stepped by a worker domain.

   The owning worker is the only consumer of the inbox and the only
   writer of the engine, and the I/O domain is the only producer of the
   inbox and the only consumer of the outbox, so both channels run on
   the SPSC fast path and everything else here is single-threaded.
   Shard-local metrics live in a private registry (uncontended) that
   the server merges after the workers exit. *)

module Live = Sched.Engine.Live
module Pool = Prelude.Pool

type task = {
  conn : int;               (* connection id, for reply routing *)
  tag : int;                (* client's tag, echoed in responses *)
  alternatives : int list;  (* global resource ids; alternatives.(0)
                               is in [lo, hi) by routing *)
  deadline : int;
}

let dummy_task = { conn = -1; tag = -1; alternatives = []; deadline = 0 }

(* SPSC rings allocate their full capacity eagerly; past this bound the
   mutex flavour (which grows on demand) is the better trade. *)
let spsc_capacity_limit = 1 lsl 16

type t = {
  index : int;
  lo : int;
  hi : int;
  inbox : task Chan.t;
  outbox : (int * Protocol.server_msg) Chan.t; (* this shard's own ring *)
  metrics : Obs.Metrics.t;
  live : Live.t;
  tags : Pool.Table.t; (* engine id -> (conn, tag), flat payload *)
  drain_buf : task array ref;        (* reusable inbox drain target *)
  stepped : int Atomic.t;
  exited : bool Atomic.t;
}

let create ?metrics ~index ~lo ~hi ~d ~queue_capacity ~strategy ~outbox () =
  if hi <= lo then invalid_arg "Shard.create: empty resource range";
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let inbox =
    if queue_capacity <= spsc_capacity_limit then
      Chan.create_spsc ~capacity:queue_capacity ~dummy:dummy_task
    else Chan.create ~capacity:queue_capacity
  in
  {
    index;
    lo;
    hi;
    inbox;
    outbox;
    metrics;
    live = Live.create ~metrics ~n:(hi - lo) ~d strategy;
    tags = Pool.Table.create ~capacity:256 ~width:2 ();
    drain_buf = ref [||];
    stepped = Atomic.make 0;
    exited = Atomic.make false;
  }

let index t = t.index
let owns t resource = resource >= t.lo && resource < t.hi
let try_admit t task = Chan.try_push t.inbox task
let try_admit_many t tasks ~off ~len = Chan.push_slice t.inbox tasks ~off ~len
let stepped t = Atomic.get t.stepped
let has_exited t = Atomic.get t.exited
let mark_exited t = Atomic.set t.exited true
let queue_depth t = Chan.length t.inbox

(* Snapshot of the shard-private registry; meaningful to merge once the
   shard has exited (counters stop moving). *)
let metrics_snapshot t = Obs.Metrics.snapshot t.metrics

let note_crash t exn =
  (* a crashing strategy must not take the server down: record, report,
     and let the worker keep driving its other shards *)
  Obs.Metrics.incr t.metrics "serve.shard_crashes";
  Printf.eprintf "reqsched serve: shard %d crashed: %s\n%!" t.index
    (Printexc.to_string exn)

(* A full outbox stalls the shard (counted) until the I/O domain drains
   it — a reply is never dropped, because a lost terminal would strand
   its client forever (the exactly-one-terminal contract).  The I/O
   domain drains every outbox on each loop iteration, so the stall is
   bounded by one select timeout. *)
let push_reply t conn msg =
  if not (Chan.try_push t.outbox (conn, msg)) then begin
    let rec retry delay =
      Obs.Metrics.incr t.metrics "serve.outbox_stalls";
      (try Unix.sleepf delay with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not (Chan.try_push t.outbox (conn, msg)) then
        retry (Float.min (delay *. 2.0) 0.002)
    in
    retry 0.00005
  end

(* Split a task's global alternatives into shard-local ids in one pass:
   alternatives outside this shard's slice cannot be honoured, so they
   are dropped (counted — never silent) and the request is scheduled on
   the rest. *)
let rec localize t acc dropped = function
  | [] -> (List.rev acc, dropped)
  | a :: rest ->
    if owns t a then localize t ((a - t.lo) :: acc) dropped rest
    else localize t acc (dropped + 1) rest

let step_once t =
  let depth = Chan.drain_into t.inbox t.drain_buf in
  let tasks = !(t.drain_buf) in
  let t0 = Obs.Span.start () in
  Obs.Metrics.set t.metrics
    (Printf.sprintf "serve.shard%d.queue_depth" t.index)
    (float_of_int depth);
  Obs.Metrics.observe t.metrics "serve.queue_depth" (float_of_int depth);
  for i = 0 to depth - 1 do
    let task = tasks.(i) in
    let local, dropped = localize t [] 0 task.alternatives in
    if dropped > 0 then
      Obs.Metrics.incr ~by:dropped t.metrics "serve.truncated_alternatives";
    match Live.submit t.live ~alternatives:local ~deadline:task.deadline with
    | Ok id ->
      let e = Pool.Table.put t.tags id in
      Pool.Table.setv t.tags e 0 task.conn;
      Pool.Table.setv t.tags e 1 task.tag
    | Error m ->
      Obs.Metrics.incr t.metrics "serve.rejected.invalid";
      push_reply t task.conn
        (Protocol.Rejected { tag = task.tag; reason = Protocol.Invalid m })
  done;
  let outcome = Live.step t.live in
  let reply id msg =
    let e = Pool.Table.find t.tags id in
    if e >= 0 then begin
      let conn = Pool.Table.getv t.tags e 0 in
      let tag = Pool.Table.getv t.tags e 1 in
      ignore (Pool.Table.remove t.tags id);
      push_reply t conn (msg ~tag)
    end
    (* e < 0 unreachable: every admitted id has a tag entry *)
  in
  List.iter
    (fun (id, resource) ->
       reply id (fun ~tag ->
           Protocol.Scheduled
             { tag; round = outcome.Live.round; resource = resource + t.lo }))
    outcome.Live.served;
  List.iter
    (fun id -> reply id (fun ~tag -> Protocol.Expired { tag }))
    outcome.Live.expired;
  Obs.Metrics.incr ~by:(List.length outcome.Live.served) t.metrics
    "serve.served";
  Obs.Metrics.incr ~by:(List.length outcome.Live.expired) t.metrics
    "serve.expired";
  Obs.Metrics.observe t.metrics "serve.tick_us" (Obs.Span.elapsed t0 *. 1e6);
  Atomic.incr t.stepped

let drained t ~draining =
  Atomic.get draining && Chan.length t.inbox = 0 && Live.pending t.live = 0
