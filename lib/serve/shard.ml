(* One scheduling shard: a slice [lo, hi) of the resource space, a
   bounded inbox, and a live engine stepped by a round ticker.

   The shard is the only consumer of its inbox and the only writer of
   its engine, so everything here is single-threaded; the inbox and the
   shared outbox are the only synchronisation points.  Shard-local
   metrics live in a private registry (uncontended) that the server
   merges after the domain exits. *)

module Live = Sched.Engine.Live

type task = {
  conn : int;               (* connection id, for reply routing *)
  tag : int;                (* client's tag, echoed in responses *)
  alternatives : int list;  (* global resource ids; alternatives.(0)
                               is in [lo, hi) by routing *)
  deadline : int;
}

type tick_source =
  | Every of float          (* seconds between rounds *)
  | Manual of int Atomic.t  (* step while [stepped < target] *)

type t = {
  index : int;
  lo : int;
  hi : int;
  inbox : task Chan.t;
  outbox : (int * Protocol.server_msg) Chan.t; (* this shard's own ring *)
  metrics : Obs.Metrics.t;
  live : Live.t;
  tags : (int, int * int) Hashtbl.t; (* engine id -> (conn, tag) *)
  drain_buf : task array ref;        (* reusable inbox drain target *)
  stepped : int Atomic.t;
  exited : bool Atomic.t;
}

let create ?metrics ~index ~lo ~hi ~d ~queue_capacity ~strategy ~outbox () =
  if hi <= lo then invalid_arg "Shard.create: empty resource range";
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  {
    index;
    lo;
    hi;
    inbox = Chan.create ~capacity:queue_capacity;
    outbox;
    metrics;
    live = Live.create ~metrics ~n:(hi - lo) ~d strategy;
    tags = Hashtbl.create 256;
    drain_buf = ref [||];
    stepped = Atomic.make 0;
    exited = Atomic.make false;
  }

let index t = t.index
let owns t resource = resource >= t.lo && resource < t.hi
let try_admit t task = Chan.try_push t.inbox task
let try_admit_many t tasks ~off ~len = Chan.push_slice t.inbox tasks ~off ~len
let stepped t = Atomic.get t.stepped
let has_exited t = Atomic.get t.exited
let queue_depth t = Chan.length t.inbox

(* Snapshot of the shard-private registry; meaningful to merge once the
   shard has exited (counters stop moving). *)
let metrics_snapshot t = Obs.Metrics.snapshot t.metrics

(* A full outbox stalls the shard (counted) until the I/O domain drains
   it — a reply is never dropped, because a lost terminal would strand
   its client forever (the exactly-one-terminal contract).  The I/O
   domain drains every outbox on each loop iteration, so the stall is
   bounded by one select timeout. *)
let push_reply t conn msg =
  if not (Chan.try_push t.outbox (conn, msg)) then begin
    let rec retry delay =
      Obs.Metrics.incr t.metrics "serve.outbox_stalls";
      (try Unix.sleepf delay with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not (Chan.try_push t.outbox (conn, msg)) then
        retry (Float.min (delay *. 2.0) 0.002)
    in
    retry 0.00005
  end

(* Split a task's global alternatives into shard-local ids in one pass:
   alternatives outside this shard's slice cannot be honoured, so they
   are dropped (counted — never silent) and the request is scheduled on
   the rest. *)
let rec localize t acc dropped = function
  | [] -> (List.rev acc, dropped)
  | a :: rest ->
    if owns t a then localize t ((a - t.lo) :: acc) dropped rest
    else localize t acc (dropped + 1) rest

let do_step t =
  let depth = Chan.drain_into t.inbox t.drain_buf in
  let tasks = !(t.drain_buf) in
  let t0 = Obs.Span.start () in
  Obs.Metrics.set t.metrics
    (Printf.sprintf "serve.shard%d.queue_depth" t.index)
    (float_of_int depth);
  Obs.Metrics.observe t.metrics "serve.queue_depth" (float_of_int depth);
  for i = 0 to depth - 1 do
    let task = tasks.(i) in
    let local, dropped = localize t [] 0 task.alternatives in
    if dropped > 0 then
      Obs.Metrics.incr ~by:dropped t.metrics "serve.truncated_alternatives";
    match Live.submit t.live ~alternatives:local ~deadline:task.deadline with
    | Ok id -> Hashtbl.replace t.tags id (task.conn, task.tag)
    | Error m ->
      Obs.Metrics.incr t.metrics "serve.rejected.invalid";
      push_reply t task.conn
        (Protocol.Rejected { tag = task.tag; reason = Protocol.Invalid m })
  done;
  let outcome = Live.step t.live in
  let reply id msg =
    match Hashtbl.find_opt t.tags id with
    | Some (conn, tag) ->
      Hashtbl.remove t.tags id;
      push_reply t conn (msg ~tag)
    | None -> () (* unreachable: every admitted id has a tag entry *)
  in
  List.iter
    (fun (id, resource) ->
       reply id (fun ~tag ->
           Protocol.Scheduled
             { tag; round = outcome.Live.round; resource = resource + t.lo }))
    outcome.Live.served;
  List.iter
    (fun id -> reply id (fun ~tag -> Protocol.Expired { tag }))
    outcome.Live.expired;
  Obs.Metrics.incr ~by:(List.length outcome.Live.served) t.metrics
    "serve.served";
  Obs.Metrics.incr ~by:(List.length outcome.Live.expired) t.metrics
    "serve.expired";
  Obs.Metrics.observe t.metrics "serve.tick_us" (Obs.Span.elapsed t0 *. 1e6);
  Atomic.incr t.stepped

let drained t ~draining =
  Atomic.get draining && Chan.length t.inbox = 0 && Live.pending t.live = 0

(* The domain body.  Interval mode ticks on a drift-free schedule;
   manual mode follows the shared target, except while draining, when
   the shard self-ticks so in-flight requests still reach their
   deadlines after the ticking client is gone. *)
let run t ~tick ~draining =
  let finally () = Atomic.set t.exited true in
  Fun.protect ~finally (fun () ->
      try
        (match tick with
         | Every dt ->
           let start = Unix.gettimeofday () in
           let rec loop () =
             if not (drained t ~draining) then begin
               let next =
                 start +. (float_of_int (Atomic.get t.stepped + 1) *. dt)
               in
               let rec pace () =
                 let remaining = next -. Unix.gettimeofday () in
                 if remaining > 0.0 && not (drained t ~draining) then begin
                   (try Unix.sleepf (Float.min remaining 0.01)
                    with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                   pace ()
                 end
               in
               pace ();
               if not (drained t ~draining) then begin
                 do_step t;
                 loop ()
               end
             end
           in
           loop ()
         | Manual target ->
           let rec loop () =
             if not (drained t ~draining) then
               if
                 Atomic.get target > Atomic.get t.stepped
                 || Atomic.get draining
               then begin
                 do_step t;
                 loop ()
               end
               else begin
                 (* the wait-for-tick nap bounds round latency in manual
                    mode: keep it well under the I/O loop's busy poll *)
                 (try Unix.sleepf 0.00005
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                 loop ()
               end
           in
           loop ())
      with exn ->
        (* a crashing strategy must not take the server down: record,
           report, and let the other shards keep serving *)
        Obs.Metrics.incr t.metrics "serve.shard_crashes";
        Printf.eprintf "reqsched serve: shard %d crashed: %s\n%!" t.index
          (Printexc.to_string exn))
