(** Bounded multi-producer FIFO queues for the serve data plane, backed
    by a flat ring buffer.

    The I/O domain pushes admitted requests into a shard's inbox and
    each shard pushes responses into its own outbox.  Capacity is a hard
    admission-control bound: {!try_push} / {!push_slice} refuse instead
    of blocking or dropping, so the caller can send an explicit reject
    or retry with backpressure.  The ring grows geometrically up to the
    capacity and is then reused in place — steady-state traffic through
    a channel allocates nothing ({!drain_into} copies into a caller-
    owned reusable buffer with at most two blits). *)

type 'a t

val create : capacity:int -> 'a t
(** Mutex-protected flavour: safe for any number of producer domains.
    @raise Invalid_argument if [capacity < 1].  [capacity] may be
    [max_int] for an effectively unbounded queue; storage only ever
    grows to the high-water mark actually reached. *)

val create_spsc : capacity:int -> dummy:'a -> 'a t
(** Lock-free single-producer/single-consumer flavour: exactly one
    domain may ever push and exactly one (possibly different) domain may
    ever drain — the server's inboxes (I/O domain → worker) and outboxes
    (worker → I/O domain) qualify.  Same API and FIFO/backpressure
    semantics as {!create}; the mutex flavour is the oracle in the
    differential tests.  The ring is allocated eagerly at full
    [capacity] (no lock-free grow), seeded with [dummy], so keep the
    capacity modest.  @raise Invalid_argument if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Append; [false] iff the queue is at capacity. *)

val push_slice : 'a t -> 'a array -> off:int -> len:int -> int
(** Append [src.(off .. off+len-1)] in order under one lock
    acquisition; returns how many were accepted (the prefix that fit
    under the capacity — the caller handles the rejected suffix).
    @raise Invalid_argument on a bad slice. *)

val drain_into : 'a t -> 'a array ref -> int
(** Remove everything, oldest first, into [!dst] (grown geometrically
    when too small, reused otherwise) and return the count.  Cells of
    [!dst] beyond the count are unspecified.  Non-blocking. *)

val drain : 'a t -> 'a list
(** Remove and return everything, oldest first.  Non-blocking.
    Allocates; the hot paths use {!drain_into}. *)

val length : 'a t -> int
(** O(1) under the lock. *)
