(** Bounded multi-producer FIFO queues for the serve data plane.

    The I/O domain pushes admitted requests into a shard's inbox and
    shards push responses into the shared outbox.  Capacity is a hard
    admission-control bound: {!try_push} refuses instead of blocking or
    dropping, so the caller can send an explicit reject. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1].  Use [max_int] for an
    effectively unbounded queue (the response path, where backpressure
    is applied upstream by the arrival bound). *)

val try_push : 'a t -> 'a -> bool
(** Append; [false] iff the queue is at capacity. *)

val drain : 'a t -> 'a list
(** Remove and return everything, oldest first.  Non-blocking. *)

val length : 'a t -> int
