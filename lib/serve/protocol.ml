(* The reqsched wire protocol: one message per line, version rsp/1.

   The request-line grammar (tag, comma-separated alternatives,
   deadline) is Sched.Codec's — the same bytes describe a request in a
   saved trace (where the first field is the arrival round) and on the
   wire (where it is the client's tag), which is what makes recorded
   traces replayable through the server.

   Free-text fields: a client/server name is a single token (no spaces);
   reject and error details are rest-of-line (spaces allowed, newlines
   never).  Renderers never emit '\n'; the framing layer adds it. *)

let version = Sched.Codec.version

type request = { tag : int; alternatives : int list; deadline : int }

type reject_reason =
  | Overload          (* a shard inbox was at capacity *)
  | Draining          (* server is shutting down; not admitting *)
  | Invalid of string (* malformed request; detail says why *)

type client_msg =
  | Hello of { client : string }
  | Submit of request
  | Batch of request list (* non-empty; one line, one parse, any count *)
  | Tick
  | Bye

type server_msg =
  | Welcome of { server : string }
  | Scheduled of { tag : int; round : int; resource : int }
  | Rejected of { tag : int; reason : reject_reason }
  | Expired of { tag : int }
  | Round of { round : int }
  | Error of { message : string }

(* ------------------------------------------------------------------ *)
(* rendering *)

let render_reject_reason = function
  | Overload -> "overload"
  | Draining -> "draining"
  | Invalid "" -> "invalid"
  | Invalid detail -> "invalid " ^ detail

let render_req { tag; alternatives; deadline } =
  Sched.Codec.render_req_fields ~first:tag ~alternatives ~deadline

let render_client = function
  | Hello { client } -> Printf.sprintf "hello %s %s" version client
  | Submit r -> "req " ^ render_req r
  | Batch rs -> "batch " ^ String.concat ";" (List.map render_req rs)
  | Tick -> "tick"
  | Bye -> "bye"

let render_server = function
  | Welcome { server } -> Printf.sprintf "welcome %s %s" version server
  | Scheduled { tag; round; resource } ->
    Printf.sprintf "sched %d %d %d" tag round resource
  | Rejected { tag; reason } ->
    Printf.sprintf "rej %d %s" tag (render_reject_reason reason)
  | Expired { tag } -> Printf.sprintf "exp %d" tag
  | Round { round } -> Printf.sprintf "round %d" round
  | Error { message = "" } -> "error"
  | Error { message } -> "error " ^ message

(* ------------------------------------------------------------------ *)
(* parsing *)

let strip_keyword ~keyword line =
  let kl = String.length keyword in
  let ll = String.length line in
  if ll = kl && line = keyword then Some ""
  else if ll > kl && String.sub line 0 kl = keyword && line.[kl] = ' ' then
    Some (String.sub line (kl + 1) (ll - kl - 1))
  else None

let int_field ~what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | Some v -> Error (Printf.sprintf "negative %s %d" what v)
  | None -> Error (Printf.sprintf "malformed %s %S" what s)

let parse_hello ~keyword rest =
  match String.split_on_char ' ' rest with
  | [ v; name ] when v = version && name <> "" -> Ok name
  | v :: _ when v <> version ->
    Error
      (Printf.sprintf "unsupported protocol version %S (want %s)" v version)
  | _ -> Error (Printf.sprintf "expected '%s %s <name>'" keyword version)

let parse_req rest =
  match Sched.Codec.parse_req_fields ~what:"tag" rest with
  | Ok (tag, alternatives, deadline) when tag >= 0 ->
    Ok { tag; alternatives; deadline }
  | Ok (tag, _, _) -> Error (Printf.sprintf "negative tag %d" tag)
  | Error _ as e -> e

let parse_client line =
  match line with
  | "tick" -> Ok Tick
  | "bye" -> Ok Bye
  | _ ->
    (match strip_keyword ~keyword:"hello" line with
     | Some rest ->
       Result.map (fun client -> Hello { client })
         (parse_hello ~keyword:"hello" rest)
     | None ->
       (match strip_keyword ~keyword:"req" line with
        | Some rest -> Result.map (fun r -> Submit r) (parse_req rest)
        | None ->
          (match strip_keyword ~keyword:"batch" line with
           | Some "" -> Error "empty batch"
           | Some rest ->
             let rec go acc = function
               | [] -> Ok (Batch (List.rev acc))
               | part :: parts ->
                 (match parse_req part with
                  | Ok r -> go (r :: acc) parts
                  | Error m ->
                    Error
                      (Printf.sprintf "batch entry %d: %s"
                         (List.length acc) m))
             in
             go [] (String.split_on_char ';' rest)
           | None ->
             Error (Printf.sprintf "unknown client message %S" line))))

let parse_reject_reason s =
  match s with
  | "overload" -> Ok Overload
  | "draining" -> Ok Draining
  | _ ->
    (match strip_keyword ~keyword:"invalid" s with
     | Some detail -> Ok (Invalid detail)
     | None -> Error (Printf.sprintf "unknown reject reason %S" s))

let parse_server line =
  match strip_keyword ~keyword:"welcome" line with
  | Some rest ->
    Result.map (fun server -> Welcome { server })
      (parse_hello ~keyword:"welcome" rest)
  | None ->
    (match strip_keyword ~keyword:"sched" line with
     | Some rest ->
       (match String.split_on_char ' ' rest with
        | [ t; r; s ] ->
          let ( let* ) = Result.bind in
          let* tag = int_field ~what:"tag" t in
          let* round = int_field ~what:"round" r in
          let* resource = int_field ~what:"resource" s in
          Ok (Scheduled { tag; round; resource })
        | _ -> Error "expected 'sched <tag> <round> <resource>'")
     | None ->
       (match strip_keyword ~keyword:"rej" line with
        | Some rest ->
          let tag_s, reason_s =
            match String.index_opt rest ' ' with
            | Some i ->
              ( String.sub rest 0 i,
                String.sub rest (i + 1) (String.length rest - i - 1) )
            | None -> (rest, "")
          in
          let ( let* ) = Result.bind in
          let* tag = int_field ~what:"tag" tag_s in
          let* reason = parse_reject_reason reason_s in
          Ok (Rejected { tag; reason })
        | None ->
          (match strip_keyword ~keyword:"exp" line with
           | Some rest ->
             Result.map (fun tag -> Expired { tag })
               (int_field ~what:"tag" rest)
           | None ->
             (match strip_keyword ~keyword:"round" line with
              | Some rest ->
                Result.map (fun round -> Round { round })
                  (int_field ~what:"round" rest)
              | None ->
                (match strip_keyword ~keyword:"error" line with
                 | Some message -> Ok (Error { message })
                 | None ->
                   Stdlib.Error
                     (Printf.sprintf "unknown server message %S" line))))))

let is_terminal = function
  | Scheduled _ | Rejected _ | Expired _ -> true
  | Welcome _ | Round _ | Error _ -> false

let terminal_tag = function
  | Scheduled { tag; _ } | Rejected { tag; _ } | Expired { tag } -> Some tag
  | Welcome _ | Round _ | Error _ -> None
