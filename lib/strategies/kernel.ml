module Request = Sched.Request
module Strategy = Sched.Strategy
module Warm = Graph.Warm
module Pool = Prelude.Pool

(* The warm-start incremental round kernel behind Global's strategies.

   Outcome-identical to the from-scratch solver in global.ml (the
   [Rebuild] oracle) but structured around what actually changes when
   the round advances:

   - Fix family (A_fix, A_fix_balance): assignments are frozen, so the
     matching is carried across rounds in a stamped slot-occupancy ring
     and each round solves only {e new arrivals} (plus the rare
     longer-than-d carryovers) against the still-free slots.  This is
     exact, not heuristic: every fix-family edge weight is
     lexicographically positive, so after a Tiered solve no edge can
     join an unmatched request to a free slot (it would be a one-edge
     positive augmenting path).  Occupied slots never free up before
     they serve, hence a request left unmatched at round [t] can only
     regain an edge when a fresh column enters its window — i.e. while
     [last_round >= round + d - 1].  Requests past that bound are
     dormant forever; in the rebuild solver they are isolated left
     vertices, which SPFA visits as no-ops, so dropping them (and
     keeping the surviving lefts in the same ascending-id order and the
     slots in the same [(slot_round - round) * n + resource] indexing)
     provably preserves the solver's output.

   - Full family (A_eager, A_balance, A_remax) and A_current: the
     semantics {e are} the from-empty augmentation sequence each round,
     so the subproblem cannot shrink; instead the Hashtbl scans, the
     polymorphic sort and the per-edge allocations go away.  Requests
     live in an id-ordered struct-of-arrays pool, expiry and
     served-compaction fold into the single build pass (O(expiring)
     amortised — each entry is appended once and dropped once), and the
     solve runs on the allocation-free {!Graph.Warm} arena.

   Engine contract assumed (all engines in this repo satisfy it):
   rounds advance by one and request ids ascend in arrival order.
   Request windows may exceed [d] when [step] is driven by hand; the
   carryover pool handles that exactly (see the differential suite). *)

type kind = Fix | Current | Fix_balance | Eager | Balance | Remax

let kind_name = function
  | Fix -> "A_fix"
  | Current -> "A_current"
  | Fix_balance -> "A_fix_balance"
  | Eager -> "A_eager"
  | Balance -> "A_balance"
  | Remax -> "A_remax"

type t = {
  kind : kind;
  n : int;
  d : int;
  bias : Strategy.bias;
  metrics : Obs.Metrics.t option;
  warm : Warm.t;
  (* fix family: frozen assignments in an off-heap Bigarray arena,
     cell = (slot_round mod d)*n + res, field 0 = round stamp, field 1 =
     request id; a cell is live iff field 0 stamps the exact slot round
     and field 1 >= 0 *)
  occ : Pool.Ints.t;
  (* fix family: unmatched requests that can still meet a future column
     (window longer than d); empty under the engines' deadline <= d *)
  mutable via : Request.t array;
  mutable via_len : int;
  (* full family / current: live requests in ascending id order;
     state -1 = unassigned, -2 = dead (served), t >= 0 = slot round —
     off-heap flat scratch, compacted in the build pass *)
  mutable pool : Request.t array;
  pool_state : Pool.Iarr.t;
  mutable pool_len : int;
  (* scratch: the fix-family left side of the current round *)
  mutable lefts : Request.t array;
}

let dummy_req = Request.make ~arrival:0 ~alternatives:[ 0 ] ~deadline:1

let ensure_req a len =
  if Array.length a >= len then a
  else begin
    let a' = Array.make (max len ((2 * Array.length a) + 8)) dummy_req in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let serve_compare (a : Strategy.serve) (b : Strategy.serve) =
  if a.request <> b.request then Int.compare a.request b.request
  else Int.compare a.resource b.resource

(* ---------------- fix family ---------------- *)

let step_fix st ~round ~(arrivals : Request.t array) =
  let n = st.n and d = st.d in
  let k = match st.kind with Fix -> 3 | _ -> d + 1 in
  (* keep only carryovers whose window still reaches the newest column *)
  let keep = ref 0 in
  for i = 0 to st.via_len - 1 do
    let r = st.via.(i) in
    if Request.last_round r >= round + d - 1 then begin
      st.via.(!keep) <- r;
      incr keep
    end
  done;
  st.via_len <- !keep;
  let nl = st.via_len + Array.length arrivals in
  st.lefts <- ensure_req st.lefts nl;
  Array.blit st.via 0 st.lefts 0 st.via_len;
  Array.blit arrivals 0 st.lefts st.via_len (Array.length arrivals);
  Warm.begin_round st.warm ~n_right:(n * d) ~k;
  for li = 0 to nl - 1 do
    let r = st.lefts.(li) in
    ignore (Warm.add_left st.warm);
    let lo = max round r.Request.arrival
    and hi = min (Request.last_round r) (round + d - 1) in
    Array.iter
      (fun resource ->
         for slot_round = lo to hi do
           let cell = ((slot_round mod d) * n) + resource in
           if
             not
               (Pool.Ints.get st.occ cell 0 = slot_round
                && Pool.Ints.get st.occ cell 1 >= 0)
           then begin
             let e =
               Warm.add_edge st.warm
                 ~right:(((slot_round - round) * n) + resource)
             in
             match st.kind with
             | Fix ->
               if r.Request.arrival = round then Warm.set_weight st.warm e 0 1;
               Warm.set_weight st.warm e 1 1;
               Warm.set_weight st.warm e 2
                 (st.bias ~request:r ~resource ~round:slot_round)
             | _ ->
               Warm.set_weight st.warm e (slot_round - round) 1;
               Warm.set_weight st.warm e d
                 (st.bias ~request:r ~resource ~round:slot_round)
           end
         done)
      r.Request.alternatives
  done;
  Warm.solve st.warm;
  (* freeze the new matches into the ring; refill the carryover pool
     with unmatched requests that can still meet the next column *)
  let keep = ref 0 in
  for li = 0 to nl - 1 do
    let r = st.lefts.(li) in
    let v = Warm.left_to st.warm li in
    if v >= 0 then begin
      let resource = v mod n and slot_round = round + (v / n) in
      let cell = ((slot_round mod d) * n) + resource in
      Pool.Ints.set st.occ cell 0 slot_round;
      Pool.Ints.set st.occ cell 1 r.Request.id
    end
    else if Request.last_round r >= round + d then begin
      st.via <- ensure_req st.via (!keep + 1);
      st.via.(!keep) <- r;
      incr keep
    end
  done;
  st.via_len <- !keep;
  (* serve the current column *)
  let base = (round mod d) * n in
  let serves = ref [] in
  for resource = n - 1 downto 0 do
    let cell = base + resource in
    if Pool.Ints.get st.occ cell 0 = round && Pool.Ints.get st.occ cell 1 >= 0
    then begin
      serves :=
        { Strategy.request = Pool.Ints.get st.occ cell 1; resource }
        :: !serves;
      Pool.Ints.set st.occ cell 1 (-1)
    end
  done;
  List.sort serve_compare !serves

(* ---------------- pooled families ---------------- *)

let pool_append st (arrivals : Request.t array) =
  let a = Array.length arrivals in
  st.pool <- ensure_req st.pool (st.pool_len + a);
  Pool.Iarr.ensure st.pool_state (st.pool_len + a);
  Array.iter
    (fun r ->
       st.pool.(st.pool_len) <- r;
       Pool.Iarr.set st.pool_state st.pool_len (-1);
       st.pool_len <- st.pool_len + 1)
    arrivals

let step_current st ~round ~arrivals =
  pool_append st arrivals;
  Warm.begin_round st.warm ~n_right:st.n ~k:2;
  let w = ref 0 in
  for i = 0 to st.pool_len - 1 do
    let r = st.pool.(i) in
    if Pool.Iarr.get st.pool_state i <> -2 && Request.last_round r >= round
    then begin
      st.pool.(!w) <- r;
      Pool.Iarr.set st.pool_state !w (-1);
      incr w;
      ignore (Warm.add_left st.warm);
      Array.iter
        (fun resource ->
           let e = Warm.add_edge st.warm ~right:resource in
           Warm.set_weight st.warm e 0 1;
           Warm.set_weight st.warm e 1
             (st.bias ~request:r ~resource ~round))
        r.Request.alternatives
    end
  done;
  st.pool_len <- !w;
  Warm.solve st.warm;
  let serves = ref [] in
  for li = st.pool_len - 1 downto 0 do
    let v = Warm.left_to st.warm li in
    if v >= 0 then begin
      Pool.Iarr.set st.pool_state li (-2);
      serves :=
        { Strategy.request = st.pool.(li).Request.id; resource = v }
        :: !serves
    end
  done;
  !serves

let step_full st ~round ~arrivals =
  pool_append st arrivals;
  let n = st.n and d = st.d in
  let k = match st.kind with Eager -> 4 | Remax -> 3 | _ -> d + 3 in
  Warm.begin_round st.warm ~n_right:(n * d) ~k;
  let w = ref 0 in
  for i = 0 to st.pool_len - 1 do
    let r = st.pool.(i) in
    if Pool.Iarr.get st.pool_state i <> -2 && Request.last_round r >= round
    then begin
      let kept = Pool.Iarr.get st.pool_state i >= 0 in
      st.pool.(!w) <- r;
      Pool.Iarr.set st.pool_state !w (-1);
      incr w;
      ignore (Warm.add_left st.warm);
      let lo = max round r.Request.arrival
      and hi = min (Request.last_round r) (round + d - 1) in
      Array.iter
        (fun resource ->
           for slot_round = lo to hi do
             let e =
               Warm.add_edge st.warm
                 ~right:(((slot_round - round) * n) + resource)
             in
             let b = st.bias ~request:r ~resource ~round:slot_round in
             match st.kind with
             | Eager ->
               if kept then Warm.set_weight st.warm e 0 1;
               Warm.set_weight st.warm e 1 1;
               if slot_round = round then Warm.set_weight st.warm e 2 1;
               Warm.set_weight st.warm e 3 b
             | Remax ->
               Warm.set_weight st.warm e 0 1;
               if slot_round = round then Warm.set_weight st.warm e 1 1;
               Warm.set_weight st.warm e 2 b
             | _ ->
               if kept then Warm.set_weight st.warm e 0 1;
               Warm.set_weight st.warm e 1 1;
               Warm.set_weight st.warm e (2 + (slot_round - round)) 1;
               Warm.set_weight st.warm e (d + 2) b
           done)
        r.Request.alternatives
    end
  done;
  st.pool_len <- !w;
  Warm.solve st.warm;
  let serves = ref [] in
  for li = st.pool_len - 1 downto 0 do
    let v = Warm.left_to st.warm li in
    if v >= 0 then begin
      let resource = v mod n and slot_round = round + (v / n) in
      if slot_round = round then begin
        Pool.Iarr.set st.pool_state li (-2);
        serves :=
          { Strategy.request = st.pool.(li).Request.id; resource }
          :: !serves
      end
      else Pool.Iarr.set st.pool_state li slot_round
    end
    else Pool.Iarr.set st.pool_state li (-1)
  done;
  !serves

let step_core st ~round ~arrivals =
  match st.kind with
  | Fix | Fix_balance -> step_fix st ~round ~arrivals
  | Current -> step_current st ~round ~arrivals
  | Eager | Balance | Remax -> step_full st ~round ~arrivals

let make ?(variant = Warm.Bucketed) ~kind ~n ~d ~bias ~metrics () :
  Strategy.t =
  let occ = Pool.Ints.create ~capacity:(n * d) ~width:2 () in
  (* a fresh arena hands out slots 0, 1, 2, ... — slot index = cell *)
  for _ = 1 to n * d do
    let s = Pool.Ints.alloc occ in
    Pool.Ints.set occ s 0 min_int;
    Pool.Ints.set occ s 1 (-1)
  done;
  let st =
    {
      kind;
      n;
      d;
      bias;
      metrics;
      warm = Warm.create ~variant ();
      occ;
      via = [||];
      via_len = 0;
      pool = [||];
      pool_state = Pool.Iarr.create ();
      pool_len = 0;
      lefts = [||];
    }
  in
  let step =
    match st.metrics with
    | None -> fun ~round ~arrivals -> step_core st ~round ~arrivals
    | Some m ->
      fun ~round ~arrivals ->
        let s0 = Warm.stats st.warm in
        let t0 = Obs.Span.start () in
        let serves = step_core st ~round ~arrivals in
        Obs.Metrics.observe m "strategy.kernel_us"
          (Obs.Span.elapsed t0 *. 1e6);
        let s1 = Warm.stats st.warm in
        Obs.Metrics.incr ~by:(s1.Warm.sweeps - s0.Warm.sweeps) m
          "strategy.augment_searches";
        Obs.Metrics.incr ~by:(s1.Warm.warm_hits - s0.Warm.warm_hits) m
          "strategy.warm_hits";
        serves
  in
  { Strategy.name = kind_name kind; step }
