(** Warm-start incremental round kernel for {!Global}'s strategies.

    Produces the same services, round for round, as the from-scratch
    solver kept in [global.ml] behind [~solver:Rebuild] (the
    differential suite pins the equality on random instances, the
    theorem adversaries, adaptive runs and the live engine), while
    doing per-round work proportional to what changed:

    - fix family — the carried matching lives in a stamped slot ring;
      each round solves only the new arrivals (plus longer-than-[d]
      carryovers) against the still-free slots.  Dropping dormant
      requests is exact because every fix-family weight vector is
      lexicographically positive: an unmatched request adjacent to a
      free slot would be a one-edge positive augmenting path, so after
      a solve none exists, and frozen slots never free up early.
    - full family / current — same subproblem as the rebuild (the
      from-empty re-solve {e is} the strategy), but over an id-ordered
      struct-of-arrays pool with expiry folded into the build pass and
      the allocation-free {!Graph.Warm} arena instead of
      Bipartite + Lexvec.

    Equality with the rebuild solver assumes a pure [bias] (both paths
    call it once per edge, in different orders).

    The kernel assumes the engine contract (rounds advance by one,
    request ids ascend in arrival order), which every engine in this
    repo satisfies; windows longer than [d] from hand-driven [step]
    calls are handled exactly via the carryover pool. *)

type kind = Fix | Current | Fix_balance | Eager | Balance | Remax

val kind_name : kind -> string
(** Paper names: ["A_fix"], ["A_current"], ["A_fix_balance"],
    ["A_eager"], ["A_balance"]; the ablation is ["A_remax"]. *)

val make :
  ?variant:Graph.Warm.variant ->
  kind:kind ->
  n:int ->
  d:int ->
  bias:Sched.Strategy.bias ->
  metrics:Obs.Metrics.t option ->
  unit ->
  Sched.Strategy.t
(** One kernel instance (strategy state is per-instance).  [variant]
    selects the {!Graph.Warm} target-selection structure and defaults
    to [Bucketed] — outcome-identical to [Ring] but without the
    O(n_right) scan per augmenting search that made fix-family rounds
    quadratic (B.scale carries the ring rows for comparison via
    [~solver:Kernel_ring]).  When [metrics] is present, each step
    records [strategy.kernel_us] (histogram, µs per round) and counts
    [strategy.augment_searches] (SPFA sweeps) and [strategy.warm_hits]
    (single-edge augmentations). *)
