(** The paper's five global (centralised) strategies (Sec. 1.3).

    All five are "choose a matching on the known subgraph [G_t] optimising
    a ranked objective list"; each is realised by instantiating the
    tiered-weight matching engine ({!Graph.Tiered}) with the tiers below
    (major to minor; [bias] is the caller-supplied tie-break of
    {!Sched.Strategy.bias}, 0 by default):

    - [fix]:         freeze old assignments; over the rest
                     [new-request count; cardinality; bias].
                     No rescheduling, maximum number of round-[t] arrivals
                     scheduled, otherwise any maximal matching.
    - [current]:     requests × current-round slots only;
                     [cardinality; bias].
    - [fix_balance]: freeze old assignments; over the rest
                     [X_t; X_t+1; …; X_t+d-1; bias] — the paper's
                     balancing function [F = Σ X_t+j (n+1)^(d-j)] is
                     exactly lexicographic maximisation of the per-round
                     matched-slot counts, because each weight
                     [(n+1)^(d-j)] dominates everything after it.
    - [eager]:       full re-solve; [kept; cardinality; X_t; bias] —
                     maximum matching, previously scheduled requests stay
                     scheduled (movable), current-round service count
                     maximised.
    - [balance]:     full re-solve; [kept; cardinality; X_t; …; X_t+d-1;
                     bias].

    Every factory returned here is deterministic given the bias.

    Three interchangeable solvers realise each strategy.  [Kernel] (the
    default) is the warm-start incremental round kernel ({!Kernel}):
    fix-family matchings are carried across rounds and only arrivals
    are solved; the full-reschedule family re-solves on the
    allocation-free {!Graph.Warm} arena, with the bucketed
    target-selection queue ({!Graph.Warm.variant} [Bucketed]).
    [Kernel_ring] is the same kernel on the historical ring scan —
    outcome-identical, kept so B.scale can measure the bucketed win and
    the differential suite can pin the equality.  [Rebuild] is the
    original from-scratch solver, kept as the differential-testing
    oracle.  For any pure bias all three produce identical services
    round for round (pinned by the differential suite); the non-default
    solvers exist to keep that claim checkable forever, not for
    production use.

    When a [metrics] registry is supplied (or ambient at factory-call
    time), the kernel records [strategy.kernel_us],
    [strategy.augment_searches] and [strategy.warm_hits] per step. *)

type solver = Kernel | Kernel_ring | Rebuild

val fix :
  ?solver:solver -> ?bias:Sched.Strategy.bias -> ?metrics:Obs.Metrics.t ->
  unit -> Sched.Strategy.factory
val current :
  ?solver:solver -> ?bias:Sched.Strategy.bias -> ?metrics:Obs.Metrics.t ->
  unit -> Sched.Strategy.factory
val fix_balance :
  ?solver:solver -> ?bias:Sched.Strategy.bias -> ?metrics:Obs.Metrics.t ->
  unit -> Sched.Strategy.factory
val eager :
  ?solver:solver -> ?bias:Sched.Strategy.bias -> ?metrics:Obs.Metrics.t ->
  unit -> Sched.Strategy.factory
val balance :
  ?solver:solver -> ?bias:Sched.Strategy.bias -> ?metrics:Obs.Metrics.t ->
  unit -> Sched.Strategy.factory

val remax :
  ?solver:solver -> ?bias:Sched.Strategy.bias -> ?metrics:Obs.Metrics.t ->
  unit -> Sched.Strategy.factory
(** Ablation, not in the paper: [A_eager] {e without} rule (2) — a fresh
    maximum matching every round with the current-round count maximised,
    free to silently unschedule previously planned requests.  The
    ablation bench uses it to quantify what the "previously scheduled
    requests remain scheduled" rule buys. *)

val all : (string * (?bias:Sched.Strategy.bias -> unit -> Sched.Strategy.factory)) list
(** The five strategies with their paper names
    (["A_fix"; "A_current"; "A_fix_balance"; "A_eager"; "A_balance"]);
    the {!remax} ablation is not included. *)
