module Request = Sched.Request
module Strategy = Sched.Strategy

(* Slot plan as a stamped ring over the next [cap] rounds: the cell for
   (res, t) is ((t mod cap) * n) + res, live iff occ_round stamps
   exactly [t] with a request id present.  Serving a column frees its
   cells for the column [cap] rounds later, so nothing is ever scanned
   or rehashed — the greedy family's bookkeeping is O(window) per
   request and O(n) per round, with no per-slot allocation.  The ring
   deepens (rare: only for hand-driven windows longer than [d]) by
   restamping the live cells into a wider ring. *)
type state = {
  n : int;
  mutable cap : int;
  mutable occ_round : int array;
  mutable occ_id : int array;
}

let ensure_depth st ~round ~hi =
  let needed = hi - round + 1 in
  if needed > st.cap then begin
    let cap' = max needed (2 * st.cap) in
    let occ_round' = Array.make (cap' * st.n) min_int in
    let occ_id' = Array.make (cap' * st.n) (-1) in
    Array.iteri
      (fun cell t ->
         if t >= round && st.occ_id.(cell) >= 0 then begin
           let res = cell mod st.n in
           let cell' = ((t mod cap') * st.n) + res in
           occ_round'.(cell') <- t;
           occ_id'.(cell') <- st.occ_id.(cell)
         end)
      st.occ_round;
    st.cap <- cap';
    st.occ_round <- occ_round';
    st.occ_id <- occ_id'
  end

let occupied st res t =
  let cell = ((t mod st.cap) * st.n) + res in
  st.occ_round.(cell) = t && st.occ_id.(cell) >= 0

(* free slots of [res] within [r]'s window at [round] *)
let free_slots st ~round res (r : Request.t) =
  let lo = max round r.Request.arrival and hi = Request.last_round r in
  ensure_depth st ~round ~hi;
  let count = ref 0 in
  for t = lo to hi do
    if not (occupied st res t) then incr count
  done;
  !count

let earliest_free st ~round res (r : Request.t) =
  let lo = max round r.Request.arrival and hi = Request.last_round r in
  ensure_depth st ~round ~hi;
  let rec find t =
    if t > hi then None
    else if occupied st res t then find (t + 1)
    else Some t
  in
  find lo

let assign st ~round (r : Request.t) res t =
  ensure_depth st ~round ~hi:t;
  let cell = ((t mod st.cap) * st.n) + res in
  st.occ_round.(cell) <- t;
  st.occ_id.(cell) <- r.Request.id

let collect_serves st ~round =
  let base = (round mod st.cap) * st.n in
  let serves = ref [] in
  for res = st.n - 1 downto 0 do
    let cell = base + res in
    if st.occ_round.(cell) = round && st.occ_id.(cell) >= 0 then begin
      serves := { Strategy.request = st.occ_id.(cell); resource = res }
                :: !serves;
      st.occ_id.(cell) <- -1
    end
  done;
  !serves

let make ~name ~choose : Strategy.factory =
 fun ~n ~d ->
  let cap = max d 1 in
  let st =
    {
      n;
      cap;
      occ_round = Array.make (cap * n) min_int;
      occ_id = Array.make (cap * n) (-1);
    }
  in
  {
    Strategy.name;
    step =
      (fun ~round ~arrivals ->
         Array.iter
           (fun (r : Request.t) ->
              match choose st ~round r with
              | Some (res, t) -> assign st ~round r res t
              | None -> ())
           arrivals;
         collect_serves st ~round);
  }

let least_loaded ?(bias = Strategy.no_bias) () =
  let choose st ~round (r : Request.t) =
    (* best (free_slots, bias, lower res), compared field by field *)
    let best_free = ref (-1)
    and best_bias = ref 0
    and best_res = ref (-1)
    and best_t = ref (-1) in
    Array.iter
      (fun res ->
         match earliest_free st ~round res r with
         | None -> ()
         | Some t ->
           let free = free_slots st ~round res r
           and b = bias ~request:r ~resource:res ~round in
           let better =
             !best_res < 0 || free > !best_free
             || (free = !best_free
                 && (b > !best_bias || (b = !best_bias && res < !best_res)))
           in
           if better then begin
             best_free := free;
             best_bias := b;
             best_res := res;
             best_t := t
           end)
      r.Request.alternatives;
    if !best_res < 0 then None else Some (!best_res, !best_t)
  in
  make ~name:"greedy_2choice" ~choose

let random_choice ~rng () =
  let choose st ~round (r : Request.t) =
    let res = Prelude.Rng.pick rng r.Request.alternatives in
    Option.map (fun t -> (res, t)) (earliest_free st ~round res r)
  in
  make ~name:"greedy_random" ~choose

let first_fit () =
  let choose st ~round (r : Request.t) =
    let rec try_alts i =
      if i >= Array.length r.Request.alternatives then None
      else
        let res = r.Request.alternatives.(i) in
        match earliest_free st ~round res r with
        | Some t -> Some (res, t)
        | None -> try_alts (i + 1)
    in
    try_alts 0
  in
  make ~name:"greedy_firstfit" ~choose
