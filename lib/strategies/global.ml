module Request = Sched.Request
module Strategy = Sched.Strategy
module Bipartite = Graph.Bipartite
module Matching = Graph.Matching
module Tiered = Graph.Tiered

type kind = Kernel.kind = Fix | Current | Fix_balance | Eager | Balance | Remax

type solver = Kernel | Kernel_ring | Rebuild

(* The state below belongs to the Rebuild path: the naive from-scratch
   solver retained as the differential-testing oracle for the
   incremental kernel (see kernel.ml, which produces identical
   services round for round). *)
type state = {
  kind : kind;
  n : int;
  d : int;
  bias : Strategy.bias;
  active : (int, Request.t) Hashtbl.t; (* unserved, unexpired requests *)
  assigned : (int, int * int) Hashtbl.t; (* id -> (resource, abs. round) *)
}

let kind_name = Kernel.kind_name

(* Requests and serves are keyed by unique ids, so ordering by id alone
   reproduces the polymorphic [compare] these sites used to rely on. *)
let by_id (a, _) (b, _) = Int.compare a b

let serve_compare (a : Strategy.serve) (b : Strategy.serve) =
  if a.request <> b.request then Int.compare a.request b.request
  else Int.compare a.resource b.resource

(* Remove requests whose window closed before [round].  Their
   assignments, if any, are in the past and are dropped too. *)
let expire st ~round =
  let dead =
    Hashtbl.fold
      (fun id r acc -> if Request.last_round r < round then id :: acc else acc)
      st.active []
  in
  List.iter
    (fun id ->
       Hashtbl.remove st.active id;
       Hashtbl.remove st.assigned id)
    dead

(* The subproblem right side: slots (resource, round+offset) for
   offset in [0, d).  Dense vertex index. *)
let slot_vertex st ~round ~resource ~slot_round =
  ((slot_round - round) * st.n) + resource

let vertex_slot st ~round v = (v mod st.n, round + (v / st.n))

(* Candidate service rounds of request [r] at the current round. *)
let window st (r : Request.t) ~round =
  let lo = max round r.Request.arrival in
  let hi = min (Request.last_round r) (round + st.d - 1) in
  (lo, hi)

(* Solve one round of a fix-family strategy: previously assigned pairs
   are frozen (excluded from the problem together with their slots), the
   remaining requests are matched into the remaining slots. *)
let solve_fix_family st ~round ~tiers_of =
  let occupied = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ (resource, slot_round) ->
       if slot_round >= round then
         Hashtbl.replace occupied
           (slot_vertex st ~round ~resource ~slot_round)
           ())
    st.assigned;
  let lefts =
    Hashtbl.fold
      (fun id r acc ->
         if Hashtbl.mem st.assigned id then acc else (id, r) :: acc)
      st.active []
    |> List.sort by_id
    |> Array.of_list
  in
  let g =
    Bipartite.create ~n_left:(Array.length lefts) ~n_right:(st.n * st.d)
  in
  let edge_info = ref [] in
  Array.iteri
    (fun li (_, r) ->
       Array.iter
         (fun resource ->
            let lo, hi = window st r ~round in
            for slot_round = lo to hi do
              let v = slot_vertex st ~round ~resource ~slot_round in
              if not (Hashtbl.mem occupied v) then begin
                let e = Bipartite.add_edge g ~left:li ~right:v in
                edge_info := (e, r, resource, slot_round) :: !edge_info
              end
            done)
         r.Request.alternatives)
    lefts;
  let weights = Array.make (Bipartite.n_edges g) [||] in
  List.iter
    (fun (e, r, resource, slot_round) ->
       weights.(e) <- tiers_of r ~resource ~slot_round)
    !edge_info;
  let m = Tiered.solve g ~weight:(fun e -> weights.(e)) in
  Array.iteri
    (fun li (id, _) ->
       let v = m.Matching.left_to.(li) in
       if v >= 0 then begin
         let resource, slot_round = vertex_slot st ~round v in
         Hashtbl.replace st.assigned id (resource, slot_round)
       end)
    lefts

(* Solve one round of a full-reschedule strategy (eager/balance): every
   active request competes for every slot of the window; the keep tier
   guarantees previously scheduled requests stay scheduled. *)
let solve_full st ~round ~tiers_of =
  let lefts =
    Hashtbl.fold (fun id r acc -> (id, r) :: acc) st.active []
    |> List.sort by_id
    |> Array.of_list
  in
  let g =
    Bipartite.create ~n_left:(Array.length lefts) ~n_right:(st.n * st.d)
  in
  let edge_info = ref [] in
  Array.iteri
    (fun li (id, r) ->
       let kept = Hashtbl.mem st.assigned id in
       Array.iter
         (fun resource ->
            let lo, hi = window st r ~round in
            for slot_round = lo to hi do
              let v = slot_vertex st ~round ~resource ~slot_round in
              let e = Bipartite.add_edge g ~left:li ~right:v in
              edge_info := (e, r, kept, resource, slot_round) :: !edge_info
            done)
         r.Request.alternatives)
    lefts;
  let weights = Array.make (Bipartite.n_edges g) [||] in
  List.iter
    (fun (e, r, kept, resource, slot_round) ->
       weights.(e) <- tiers_of r ~kept ~resource ~slot_round)
    !edge_info;
  let m = Tiered.solve g ~weight:(fun e -> weights.(e)) in
  Hashtbl.reset st.assigned;
  Array.iteri
    (fun li (id, _) ->
       let v = m.Matching.left_to.(li) in
       if v >= 0 then begin
         let resource, slot_round = vertex_slot st ~round v in
         Hashtbl.replace st.assigned id (resource, slot_round)
       end)
    lefts

(* Solve one round of A_current: all active requests versus the n slots
   of the current round only. *)
let solve_current st ~round =
  let lefts =
    Hashtbl.fold (fun id r acc -> (id, r) :: acc) st.active []
    |> List.sort by_id
    |> Array.of_list
  in
  let g = Bipartite.create ~n_left:(Array.length lefts) ~n_right:st.n in
  let weights = ref [] in
  Array.iteri
    (fun li (_, r) ->
       Array.iter
         (fun resource ->
            let e = Bipartite.add_edge g ~left:li ~right:resource in
            weights :=
              (e, [| 1; st.bias ~request:r ~resource ~round |]) :: !weights)
         r.Request.alternatives)
    lefts;
  let warr = Array.make (Bipartite.n_edges g) [||] in
  List.iter (fun (e, w) -> warr.(e) <- w) !weights;
  let m = Tiered.solve g ~weight:(fun e -> warr.(e)) in
  Hashtbl.reset st.assigned;
  Array.iteri
    (fun li (id, _) ->
       let v = m.Matching.left_to.(li) in
       if v >= 0 then Hashtbl.replace st.assigned id (v, round))
    lefts

(* Services of the current round: assigned pairs landing on slot round
   [round]; served requests leave the active set. *)
let collect_serves st ~round =
  let serves =
    Hashtbl.fold
      (fun id (resource, slot_round) acc ->
         if slot_round = round then
           { Strategy.request = id; resource } :: acc
         else acc)
      st.assigned []
    |> List.sort serve_compare
  in
  List.iter
    (fun { Strategy.request; _ } ->
       Hashtbl.remove st.active request;
       Hashtbl.remove st.assigned request)
    serves;
  serves

let step st ~round ~arrivals =
  expire st ~round;
  Array.iter
    (fun (r : Request.t) -> Hashtbl.replace st.active r.Request.id r)
    arrivals;
  (match st.kind with
   | Fix ->
     let tiers_of r ~resource ~slot_round =
       [|
         (if r.Request.arrival = round then 1 else 0);
         1;
         st.bias ~request:r ~resource ~round:slot_round;
       |]
     in
     solve_fix_family st ~round ~tiers_of
   | Fix_balance ->
     let tiers_of r ~resource ~slot_round =
       let w = Array.make (st.d + 1) 0 in
       w.(slot_round - round) <- 1;
       w.(st.d) <- st.bias ~request:r ~resource ~round:slot_round;
       w
     in
     solve_fix_family st ~round ~tiers_of
   | Eager ->
     let tiers_of r ~kept ~resource ~slot_round =
       [|
         (if kept then 1 else 0);
         1;
         (if slot_round = round then 1 else 0);
         st.bias ~request:r ~resource ~round:slot_round;
       |]
     in
     solve_full st ~round ~tiers_of
   | Remax ->
     (* the ablation drops the keep tier entirely *)
     let tiers_of r ~kept:_ ~resource ~slot_round =
       [|
         1;
         (if slot_round = round then 1 else 0);
         st.bias ~request:r ~resource ~round:slot_round;
       |]
     in
     solve_full st ~round ~tiers_of
   | Balance ->
     let tiers_of r ~kept ~resource ~slot_round =
       let w = Array.make (st.d + 3) 0 in
       w.(0) <- (if kept then 1 else 0);
       w.(1) <- 1;
       w.(2 + (slot_round - round)) <- 1;
       w.(st.d + 2) <- st.bias ~request:r ~resource ~round:slot_round;
       w
     in
     solve_full st ~round ~tiers_of
   | Current -> solve_current st ~round);
  collect_serves st ~round

let make kind ?(solver = Kernel) ?(bias = Strategy.no_bias) ?metrics () :
  Strategy.factory =
 fun ~n ~d ->
  match solver with
  | Kernel ->
    Kernel.make ~kind ~n ~d ~bias ~metrics:(Obs.Metrics.resolve metrics) ()
  | Kernel_ring ->
    Kernel.make ~variant:Graph.Warm.Ring ~kind ~n ~d ~bias
      ~metrics:(Obs.Metrics.resolve metrics) ()
  | Rebuild ->
    let st =
      {
        kind;
        n;
        d;
        bias;
        active = Hashtbl.create 64;
        assigned = Hashtbl.create 64;
      }
    in
    { Strategy.name = kind_name kind;
      step = (fun ~round ~arrivals -> step st ~round ~arrivals) }

let fix ?solver ?bias ?metrics () = make Fix ?solver ?bias ?metrics ()
let remax ?solver ?bias ?metrics () = make Remax ?solver ?bias ?metrics ()
let current ?solver ?bias ?metrics () = make Current ?solver ?bias ?metrics ()

let fix_balance ?solver ?bias ?metrics () =
  make Fix_balance ?solver ?bias ?metrics ()

let eager ?solver ?bias ?metrics () = make Eager ?solver ?bias ?metrics ()
let balance ?solver ?bias ?metrics () = make Balance ?solver ?bias ?metrics ()

let all =
  [
    ("A_fix", fun ?bias () -> fix ?bias ());
    ("A_current", fun ?bias () -> current ?bias ());
    ("A_fix_balance", fun ?bias () -> fix_balance ?bias ());
    ("A_eager", fun ?bias () -> eager ?bias ());
    ("A_balance", fun ?bias () -> balance ?bias ());
  ]
