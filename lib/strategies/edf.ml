module Request = Sched.Request
module Strategy = Sched.Strategy

type state = {
  n : int;
  bias : Strategy.bias;
  coordinate : bool;
  queues : (int, Request.t) Hashtbl.t array; (* per resource: id -> request *)
  served : (int, unit) Hashtbl.t;
  (* expiry buckets: last_round -> (resource, id) queue entries, so a
     round drops exactly the entries whose window just closed instead
     of scanning every queue (the kernel's O(expiring) scheme).
     Entries already removed by a serve make the removal a no-op. *)
  expiry : (int, (int * int) list ref) Hashtbl.t;
  mutable drained : int; (* buckets below this round are gone *)
}

(* The request resource [res] serves at [round]: live, not yet served
   (when coordinating), earliest deadline; ties by higher bias, then
   lower id. *)
let pick st ~round res =
  let better (a : Request.t) (b : Request.t) =
    let da = Request.last_round a and db = Request.last_round b in
    if da <> db then da < db
    else begin
      let ba = st.bias ~request:a ~resource:res ~round
      and bb = st.bias ~request:b ~resource:res ~round in
      if ba <> bb then ba > bb else a.Request.id < b.Request.id
    end
  in
  Hashtbl.fold
    (fun _ r best ->
       if not (Request.is_live r ~round) then best
       else if st.coordinate && Hashtbl.mem st.served r.Request.id then best
       else
         match best with
         | None -> Some r
         | Some b -> if better r b then Some r else best)
    st.queues.(res) None

let step st ~round ~arrivals =
  (* drop entries whose window closed before [round]: O(expiring) *)
  for closed = st.drained to round - 1 do
    match Hashtbl.find_opt st.expiry closed with
    | None -> ()
    | Some entries ->
      List.iter (fun (res, id) -> Hashtbl.remove st.queues.(res) id) !entries;
      Hashtbl.remove st.expiry closed
  done;
  if round > st.drained then st.drained <- round;
  (* admit arrivals into each listed resource's queue *)
  Array.iter
    (fun (r : Request.t) ->
       let last = Request.last_round r in
       if last >= round then begin
         let bucket =
           match Hashtbl.find_opt st.expiry last with
           | Some b -> b
           | None ->
             let b = ref [] in
             Hashtbl.replace st.expiry last b;
             b
         in
         Array.iter
           (fun res ->
              Hashtbl.replace st.queues.(res) r.Request.id r;
              bucket := (res, r.Request.id) :: !bucket)
           r.Request.alternatives
       end)
    arrivals;
  let serves = ref [] in
  for res = 0 to st.n - 1 do
    match pick st ~round res with
    | None -> ()
    | Some r ->
      Hashtbl.remove st.queues.(res) r.Request.id;
      Hashtbl.replace st.served r.Request.id ();
      serves := { Strategy.request = r.Request.id; resource = res } :: !serves
  done;
  List.rev !serves

let make ~coordinate ~name ?(bias = Strategy.no_bias) () : Strategy.factory =
 fun ~n ~d:_ ->
  let st =
    {
      n;
      bias;
      coordinate;
      queues = Array.init n (fun _ -> Hashtbl.create 16);
      served = Hashtbl.create 64;
      expiry = Hashtbl.create 64;
      drained = 0;
    }
  in
  { Strategy.name = name; step = (fun ~round ~arrivals -> step st ~round ~arrivals) }

let independent ?bias () = make ~coordinate:false ~name:"EDF" ?bias ()
let coordinated ?bias () = make ~coordinate:true ~name:"EDF_coord" ?bias ()
