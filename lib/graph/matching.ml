module Ivec = Prelude.Ivec

type t = {
  left_to : int array;
  right_to : int array;
  left_edge : int array;
}

let empty g =
  {
    left_to = Array.make (Bipartite.n_left g) (-1);
    right_to = Array.make (Bipartite.n_right g) (-1);
    left_edge = Array.make (Bipartite.n_left g) (-1);
  }

let copy m =
  {
    left_to = Array.copy m.left_to;
    right_to = Array.copy m.right_to;
    left_edge = Array.copy m.left_edge;
  }

let extend g m =
  let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
  if nl < Array.length m.left_to || nr < Array.length m.right_to then
    invalid_arg "Matching.extend: graph smaller than matching";
  let grow a n =
    let a' = Array.make n (-1) in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  in
  {
    left_to = grow m.left_to nl;
    right_to = grow m.right_to nr;
    left_edge = grow m.left_edge nl;
  }

let size m =
  Array.fold_left (fun acc r -> if r >= 0 then acc + 1 else acc) 0 m.left_to

let is_matched_left m u = m.left_to.(u) >= 0
let is_matched_right m v = m.right_to.(v) >= 0

let use_edge g m id =
  let u = Bipartite.edge_left g id and v = Bipartite.edge_right g id in
  if m.left_to.(u) >= 0 then
    invalid_arg "Matching.use_edge: left endpoint already matched";
  if m.right_to.(v) >= 0 then
    invalid_arg "Matching.use_edge: right endpoint already matched";
  m.left_to.(u) <- v;
  m.right_to.(v) <- u;
  m.left_edge.(u) <- id

let drop_left m u =
  let v = m.left_to.(u) in
  if v >= 0 then begin
    m.left_to.(u) <- -1;
    m.right_to.(v) <- -1;
    m.left_edge.(u) <- -1
  end

let is_valid g m =
  let ok = ref true in
  Array.iteri
    (fun u v ->
       if v >= 0 then begin
         if m.right_to.(v) <> u then ok := false;
         let id = m.left_edge.(u) in
         if id < 0 || id >= Bipartite.n_edges g
            || Bipartite.edge_left g id <> u
            || Bipartite.edge_right g id <> v
         then ok := false
       end
       else if m.left_edge.(u) <> -1 then ok := false)
    m.left_to;
  Array.iteri (fun v u -> if u >= 0 && m.left_to.(u) <> v then ok := false)
    m.right_to;
  !ok

let is_maximal g m =
  let free_pair = ref false in
  Bipartite.iter_edges g (fun _ ~left ~right ->
      if m.left_to.(left) < 0 && m.right_to.(right) < 0 then
        free_pair := true);
  not !free_pair

let matched_edges m =
  let acc = ref [] in
  for u = Array.length m.left_to - 1 downto 0 do
    if m.left_edge.(u) >= 0 then acc := m.left_edge.(u) :: !acc
  done;
  !acc

let greedy_maximal g =
  let m = empty g in
  Bipartite.iter_edges g (fun id ~left ~right ->
      if m.left_to.(left) < 0 && m.right_to.(right) < 0 then
        use_edge g m id);
  m

let augment_along g m path =
  match path with
  | [] -> invalid_arg "Matching.augment_along: empty path"
  | first :: _ ->
    let start = Bipartite.edge_left g first in
    if m.left_to.(start) >= 0 then
      invalid_arg "Matching.augment_along: path must start at a free left \
                   vertex";
    (* validate alternation before mutating *)
    let rec check i = function
      | [] -> ()
      | id :: rest ->
        let matched_here =
          m.left_edge.(Bipartite.edge_left g id) = id
        in
        let expect_matched = i mod 2 = 1 in
        if matched_here <> expect_matched then
          invalid_arg "Matching.augment_along: path does not alternate";
        check (i + 1) rest
    in
    check 0 path;
    if List.length path mod 2 = 0 then
      invalid_arg "Matching.augment_along: path must have odd length";
    (* flip: drop the matched (odd) edges, then add the unmatched (even)
       ones *)
    List.iteri
      (fun i id -> if i mod 2 = 1 then drop_left m (Bipartite.edge_left g id))
      path;
    List.iteri
      (fun i id -> if i mod 2 = 0 then use_edge g m id)
      path
