(** Incremental maximum matching on a growing bipartite graph.

    {!Hopcroft_karp} solves a fixed graph; this module keeps a matching
    {e maximum while the graph grows}.  The intended discipline — the one
    the streaming offline optimum ({!Offline.Opt_stream}) follows — is:

    + append vertices and edges to the underlying {!Bipartite.t} so that
      every new edge is incident to a right vertex added since the last
      call to {!augment_new_rights} (a scheduling round's time slots
      arrive together with all edges into them);
    + call {!augment_new_rights} with the first newly added right vertex.

    Under that discipline one augmenting-path search per new right
    vertex, ever, restores maximality: every augmenting path in a
    bipartite graph has exactly one free endpoint per side, any path
    created by the appends must end at a new (free) right vertex, and
    roots whose search failed can never gain a path later (non-revival).
    The differential test-suite pins this against {!Hopcroft_karp} and
    the grouped max-flow on hundreds of randomized instances.

    Searches are plain Kuhn DFS with visit stamps: [O(E)] worst case per
    new right vertex, near-constant in practice because most slots match
    immediately or fail on a tiny reachable set. *)

type t

type search_stats = {
  searches : int;  (** augmenting-path searches started on free roots *)
  successes : int; (** searches that grew the matching *)
  warm_hits : int;
      (** successes whose first probed left vertex was free — no
          rematching; [warm_hits / searches] is the warm-start hit
          rate the streaming-optimum metrics report *)
  visited : int;   (** total left vertices stamped across all searches *)
}

val create : Bipartite.t -> t
(** Attach to a graph and compute an initial maximum matching (via
    {!Hopcroft_karp.solve_from} warm-started from a greedy matching when
    the graph already has edges; free for an empty graph).  The graph may
    keep growing afterwards; this module never mutates it. *)

val graph : t -> Bipartite.t

val size : t -> int
(** Current matching size — the running offline optimum when the graph
    is a paper-graph prefix. *)

val stats : t -> search_stats
(** Cumulative search-effort counters since {!create} (the initial full
    solve of a pre-populated graph is not counted; only incremental
    searches are). *)

val augment_from_right : t -> int -> bool
(** One augmenting-path search rooted at the given right vertex; flips
    the path and returns [true] if the matching grew.  No-op returning
    [false] on an already-matched vertex.
    @raise Invalid_argument if the vertex is out of range. *)

val augment_new_rights : t -> first:int -> int
(** [augment_new_rights t ~first] runs {!augment_from_right} on every
    right vertex in [first .. Bipartite.n_right (graph t) - 1] and
    returns the number of successful augmentations.  Under the module's
    append discipline this restores maximality after a batch of appends.
    @raise Invalid_argument on a negative [first]. *)

val matching : t -> Matching.t
(** Snapshot of the current matching, sized to the graph's current
    vertex counts — suitable for {!Hopcroft_karp.min_vertex_cover} /
    {!Hopcroft_karp.is_koenig_certificate} certification. *)
