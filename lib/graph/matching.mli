(** Matchings in bipartite graphs.

    A matching is stored as the pair of partner maps ([-1] means free)
    plus the edge id used at each matched left vertex, so schedules can be
    reconstructed edge-exactly. *)

type t = {
  left_to : int array;   (** left vertex -> matched right vertex or -1 *)
  right_to : int array;  (** right vertex -> matched left vertex or -1 *)
  left_edge : int array; (** left vertex -> edge id used or -1 *)
}

val empty : Bipartite.t -> t
(** All vertices free. *)

val copy : t -> t

val extend : Bipartite.t -> t -> t
(** A copy whose arrays are sized to the graph's {e current} vertex
    counts, with every appended vertex free.  This is how a matching
    follows a graph that has grown via {!Bipartite.add_left_vertex} /
    {!Bipartite.add_right_vertex} since the matching was created.
    @raise Invalid_argument if the graph is smaller than the matching. *)

val size : t -> int
(** Number of matched edges. *)

val is_matched_left : t -> int -> bool
val is_matched_right : t -> int -> bool

val use_edge : Bipartite.t -> t -> int -> unit
(** [use_edge g m id] matches the endpoints of edge [id].
    @raise Invalid_argument if either endpoint is already matched. *)

val drop_left : t -> int -> unit
(** Unmatch the given left vertex (no-op if free). *)

val is_valid : Bipartite.t -> t -> bool
(** Partner maps are mutually consistent and every used edge exists in the
    graph with the recorded endpoints. *)

val is_maximal : Bipartite.t -> t -> bool
(** No edge joins two free vertices. *)

val matched_edges : t -> int list
(** Ids of the edges in the matching, ascending by left vertex. *)

val greedy_maximal : Bipartite.t -> t
(** Scan edges in id order and take every edge whose endpoints are both
    free: a maximal (not necessarily maximum) matching. *)

val augment_along : Bipartite.t -> t -> int list -> unit
(** [augment_along g m path] flips matching membership along an
    alternating path given as a list of edge ids
    [e0; e1; …; e2k] where even-indexed edges are currently unmatched and
    odd-indexed edges are currently matched, and the path starts at a free
    left vertex and ends at a free right vertex.  Increases [size] by one.
    @raise Invalid_argument if the list does not describe such a path. *)
