(* Allocation-free replica of Tiered.solve over a reusable flat arena.

   The algorithm is the same residual-graph SPFA as Tiered — one sweep
   from all free left vertices, augment along the maximum-gain path while
   the gain is lexicographically positive — and it visits vertices and
   edges in exactly the same order (FIFO queue, per-left edges in
   insertion order, best_target ties broken towards the smallest right
   index), so for any graph it produces the same matching edge-for-edge.
   What changes is the representation: a left-grouped CSR with a flat
   [k]-stride weight array replaces Bipartite + Lexvec.t per edge,
   distance labels live in a flat int matrix guarded by visit stamps
   instead of [Lexvec.t option] arrays, and the queue is an int ring
   buffer.  A solver value is reused round after round; steady-state
   solving allocates nothing.

   Two selection variants share that sweep.  [Ring] is the historical
   one: after each sweep, [best_target] scans all [nr] right vertices —
   with sweeps ~ augments ~ O(n) per round this scan is the quadratic
   term B.scale measured past n~256.  [Bucketed] keeps a
   distance-bucketed candidate queue filled during the sweep itself:
   whenever a right vertex's label improves it is pushed into the bucket
   keyed by its tier-0 distance (offset-shifted, clamped into overflow
   buckets at both ends), and selection walks buckets from the top,
   lazily revalidating entries (stale stamp, matched since, or tier-0
   distance now mapping to a different bucket).  Because tier 0
   dominates the lexicographic order and the bucket key is monotone in
   tier-0 distance, the first bucket holding a valid entry contains the
   lex-maximum — full lex compare plus smallest-index tie-break inside
   that bucket reproduces the ring scan's choice exactly, so both
   variants yield identical matchings edge-for-edge (pinned by a
   300-graph differential in test_kernel.ml).  Cost drops from O(nr)
   per sweep to O(labels improved this sweep). *)

type variant = Ring | Bucketed

(* Tier-0 distances land in buckets [d0 + boff] clamped to
   [0, nbuckets-1]; the clamped overflow buckets may mix distinct
   distances, which the full lex compare inside a bucket absorbs. *)
let nbuckets = 64
let boff = 32

type stats = { sweeps : int; augments : int; warm_hits : int }

type t = {
  variant : variant;
  mutable k : int;  (* weight-vector length (uniform per round) *)
  mutable nl : int;
  mutable nr : int;
  mutable ne : int;
  (* CSR: edges of left [u] are loff.(u) .. loff.(u+1)-1, in insertion
     order; loff.(nl) is fixed up at solve time *)
  mutable loff : int array;
  mutable esrc : int array;
  mutable edst : int array;
  mutable ew : int array; (* edge id e, tier j -> ew.(e*k + j) *)
  (* matching *)
  mutable left_to_ : int array;
  mutable left_edge_ : int array;
  mutable right_to_ : int array;
  (* SPFA scratch; vertex code = u for left, nl + v for right *)
  mutable dist : int array;   (* code c, tier j -> dist.(c*k + j) *)
  mutable have : int array;   (* stamp: dist slice valid this sweep *)
  mutable inq : int array;    (* stamp: code currently queued *)
  mutable parent : int array; (* code -> edge used to reach it *)
  mutable queue : int array;  (* ring buffer, capacity nl + nr + 1 *)
  mutable qhead : int;
  mutable qtail : int;
  mutable clock : int;        (* sweep stamp; strictly increasing *)
  mutable cand : int array;   (* one candidate distance vector *)
  mutable path : int array;   (* augmenting path, edges root-to-start *)
  (* bucketed-selection scratch; per-sweep validity via bstamp = clock *)
  bsize : int array;          (* entries used in bdata.(b) this sweep *)
  bstamp : int array;         (* bucket valid iff bstamp.(b) = clock *)
  bdata : int array array;    (* right-vertex candidates per bucket *)
  mutable bmax : int;         (* highest bucket touched this sweep *)
  mutable sweeps : int;
  mutable augments : int;
  mutable warm_hits : int;
}

let create ?(variant = Ring) () =
  {
    variant;
    k = 1;
    nl = 0;
    nr = 0;
    ne = 0;
    loff = Array.make 8 0;
    esrc = [||];
    edst = [||];
    ew = [||];
    left_to_ = [||];
    left_edge_ = [||];
    right_to_ = [||];
    dist = [||];
    have = [||];
    inq = [||];
    parent = [||];
    queue = [||];
    qhead = 0;
    qtail = 0;
    clock = 0;
    cand = Array.make 8 0;
    path = [||];
    bsize = Array.make nbuckets 0;
    bstamp = Array.make nbuckets 0;
    bdata = Array.make nbuckets [||];
    bmax = -1;
    sweeps = 0;
    augments = 0;
    warm_hits = 0;
  }

let variant t = t.variant

let stats t =
  { sweeps = t.sweeps; augments = t.augments; warm_hits = t.warm_hits }

(* Grow-only capacity management.  Stamp arrays zero-fill their tail so
   stale cells can never collide with a live clock value. *)
let ensure a n fill =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n ((2 * Array.length a) + 8)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let begin_round t ~n_right ~k =
  if n_right < 0 then invalid_arg "Warm.begin_round: negative n_right";
  if k < 1 then invalid_arg "Warm.begin_round: k must be >= 1";
  t.k <- k;
  t.nl <- 0;
  t.nr <- n_right;
  t.ne <- 0;
  t.cand <- ensure t.cand k 0;
  t.right_to_ <- ensure t.right_to_ n_right (-1);
  Array.fill t.right_to_ 0 n_right (-1)

let add_left t =
  let u = t.nl in
  t.loff <- ensure t.loff (u + 2) 0;
  t.loff.(u) <- t.ne;
  t.left_to_ <- ensure t.left_to_ (u + 1) (-1);
  t.left_edge_ <- ensure t.left_edge_ (u + 1) (-1);
  t.left_to_.(u) <- -1;
  t.left_edge_.(u) <- -1;
  t.nl <- u + 1;
  u

let add_edge t ~right =
  if t.nl = 0 then invalid_arg "Warm.add_edge: no left vertex yet";
  if right < 0 || right >= t.nr then
    invalid_arg "Warm.add_edge: right vertex out of range";
  let e = t.ne in
  t.esrc <- ensure t.esrc (e + 1) 0;
  t.edst <- ensure t.edst (e + 1) 0;
  t.ew <- ensure t.ew ((e + 1) * t.k) 0;
  t.esrc.(e) <- t.nl - 1;
  t.edst.(e) <- right;
  Array.fill t.ew (e * t.k) t.k 0;
  t.ne <- e + 1;
  e

let set_weight t e j v =
  if e < 0 || e >= t.ne then invalid_arg "Warm.set_weight: bad edge";
  if j < 0 || j >= t.k then invalid_arg "Warm.set_weight: bad tier";
  t.ew.((e * t.k) + j) <- v

let n_left t = t.nl
let left_to t u = t.left_to_.(u)
let left_edge t u = t.left_edge_.(u)
let right_to t v = t.right_to_.(v)

(* dist slice at [off_a] lexicographically greater than at [off_b]? *)
let dist_gt t off_a off_b =
  let k = t.k and dist = t.dist in
  let rec go j =
    if j >= k then false
    else
      let a = Array.unsafe_get dist (off_a + j)
      and b = Array.unsafe_get dist (off_b + j) in
      if a <> b then a > b else go (j + 1)
  in
  go 0

let bucket_of d0 =
  let b = d0 + boff in
  if b < 0 then 0 else if b >= nbuckets then nbuckets - 1 else b

(* Record right vertex [v] (whose tier-0 label just became [d0]) as a
   selection candidate.  Duplicates are fine: each label improvement
   adds one entry, and selection revalidates lazily. *)
let bpush t v d0 =
  let b = bucket_of d0 in
  if t.bstamp.(b) <> t.clock then begin
    t.bstamp.(b) <- t.clock;
    t.bsize.(b) <- 0
  end;
  let n = t.bsize.(b) in
  if n >= Array.length t.bdata.(b) then
    t.bdata.(b) <- ensure t.bdata.(b) (n + 1) 0;
  t.bdata.(b).(n) <- v;
  t.bsize.(b) <- n + 1;
  if b > t.bmax then t.bmax <- b

(* One SPFA sweep; mirrors Tiered.spfa exactly (same FIFO order, same
   strict-improvement relaxations).  Returns unit; results live in
   dist/parent guarded by the [have] stamp. *)
let spfa t =
  let nl = t.nl and nr = t.nr and k = t.k in
  let nv = nl + nr in
  t.clock <- t.clock + 1;
  t.qhead <- 0;
  t.qtail <- 0;
  t.bmax <- -1;
  let clock = t.clock in
  let qcap = nv + 1 in
  let dist = t.dist and have = t.have and inq = t.inq in
  let parent = t.parent and queue = t.queue in
  let ew = t.ew and cand = t.cand in
  let push code =
    if inq.(code) <> clock then begin
      inq.(code) <- clock;
      queue.(t.qtail) <- code;
      t.qtail <- (t.qtail + 1) mod qcap
    end
  in
  for u = 0 to nl - 1 do
    if t.left_to_.(u) < 0 then begin
      Array.fill dist (u * k) k 0;
      have.(u) <- clock;
      push u
    end
  done;
  let budget = (nv + 1) * (t.ne + 1) * 2 in
  let steps = ref 0 in
  while t.qhead <> t.qtail do
    incr steps;
    if !steps > budget then
      failwith "Warm.spfa: relaxation budget exceeded (positive cycle?)";
    let code = queue.(t.qhead) in
    t.qhead <- (t.qhead + 1) mod qcap;
    inq.(code) <- 0;
    if code < nl then begin
      (* left vertex: relax along its non-matching edges *)
      let u = code in
      if have.(u) = clock then begin
        let off_u = u * k in
        let stop = if u + 1 < nl then t.loff.(u + 1) else t.ne in
        for id = t.loff.(u) to stop - 1 do
          if t.left_edge_.(u) <> id then begin
            let v = t.edst.(id) in
            let off_e = id * k in
            for j = 0 to k - 1 do
              Array.unsafe_set cand j
                (Array.unsafe_get dist (off_u + j)
                 + Array.unsafe_get ew (off_e + j))
            done;
            let code_v = nl + v in
            let off_v = code_v * k in
            let better =
              have.(code_v) <> clock
              ||
              let rec go j =
                if j >= k then false
                else
                  let c = Array.unsafe_get cand j
                  and d = Array.unsafe_get dist (off_v + j) in
                  if c <> d then c > d else go (j + 1)
              in
              go 0
            in
            if better then begin
              Array.blit cand 0 dist off_v k;
              have.(code_v) <- clock;
              parent.(code_v) <- id;
              if t.variant = Bucketed then
                bpush t v (Array.unsafe_get dist off_v);
              push code_v
            end
          end
        done
      end
    end
    else begin
      (* right vertex: relax along its matching edge (if matched) *)
      let v = code - nl in
      if have.(code) = clock then begin
        let u = t.right_to_.(v) in
        if u >= 0 then begin
          let id = t.left_edge_.(u) in
          let off_v = code * k and off_u = u * k and off_e = id * k in
          for j = 0 to k - 1 do
            Array.unsafe_set cand j
              (Array.unsafe_get dist (off_v + j)
               - Array.unsafe_get ew (off_e + j))
          done;
          let better =
            have.(u) <> clock
            ||
            let rec go j =
              if j >= k then false
              else
                let c = Array.unsafe_get cand j
                and d = Array.unsafe_get dist (off_u + j) in
                if c <> d then c > d else go (j + 1)
            in
            go 0
          in
          if better then begin
            Array.blit cand 0 dist off_u k;
            have.(u) <- clock;
            parent.(u) <- id;
            push u
          end
        end
      end
    end
  done

(* Best free right vertex by gain: maximum distance, ties to the
   smallest index — the same scan as Tiered.best_target. *)
let best_target_ring t =
  let nl = t.nl and k = t.k in
  let best = ref (-1) in
  for v = 0 to t.nr - 1 do
    if t.right_to_.(v) < 0 && t.have.(nl + v) = t.clock then begin
      if !best < 0 then best := v
      else if dist_gt t ((nl + v) * k) ((nl + !best) * k) then best := v
    end
  done;
  !best

(* The same selection from the bucketed candidate queue.  Walk buckets
   top-down; an entry is valid iff its vertex was labelled this sweep,
   is still free, and its *current* tier-0 distance still maps to this
   bucket (a later improvement moves it to a higher bucket, leaving a
   stale entry behind).  The first bucket with a valid entry contains
   the lex-maximum — the bucket key is monotone in tier-0 distance and
   tier 0 dominates the lex order; the clamped overflow buckets may mix
   distances, which the full compare absorbs.  Smallest index wins ties
   explicitly, since bucket insertion order is not index order. *)
let best_target_bucketed t =
  let nl = t.nl and k = t.k in
  let best = ref (-1) in
  let b = ref t.bmax in
  while !best < 0 && !b >= 0 do
    if t.bstamp.(!b) = t.clock then begin
      let arr = t.bdata.(!b) and n = t.bsize.(!b) in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get arr i in
        if
          t.right_to_.(v) < 0
          && t.have.(nl + v) = t.clock
          && bucket_of t.dist.((nl + v) * k) = !b
        then
          if !best < 0 then best := v
          else if v <> !best then begin
            let off_v = (nl + v) * k and off_b = (nl + !best) * k in
            if dist_gt t off_v off_b then best := v
            else if v < !best && not (dist_gt t off_b off_v) then best := v
          end
      done
    end;
    if !best < 0 then decr b
  done;
  !best

let best_target t =
  match t.variant with
  | Ring -> best_target_ring t
  | Bucketed -> best_target_bucketed t

let gain_positive t v =
  let off = (t.nl + v) * t.k in
  let rec go j =
    if j >= t.k then false
    else
      let x = t.dist.(off + j) in
      if x <> 0 then x > 0 else go (j + 1)
  in
  go 0

(* Collect the augmenting path ending at free right [v] (edges stored
   root-to-start in t.path), then flip it with the same drop-then-use
   order as Matching.augment_along. *)
let augment t v =
  t.path <- ensure t.path ((2 * t.nl) + 1) 0;
  let path = t.path in
  let len = ref 0 in
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    let e = t.parent.(t.nl + !v) in
    path.(!len) <- e;
    incr len;
    let u = t.esrc.(e) in
    if t.left_to_.(u) >= 0 then begin
      let e' = t.left_edge_.(u) in
      path.(!len) <- e';
      incr len;
      v := t.edst.(e')
    end
    else continue_ := false
  done;
  let l = !len in
  (* path.(i) sits at start-index l-1-i; drop the matched (odd) edges
     first, then use the unmatched (even) ones *)
  for i = 0 to l - 1 do
    if (l - 1 - i) land 1 = 1 then begin
      let u = t.esrc.(path.(i)) in
      let w = t.left_to_.(u) in
      if w >= 0 then begin
        t.left_to_.(u) <- -1;
        t.right_to_.(w) <- -1;
        t.left_edge_.(u) <- -1
      end
    end
  done;
  for i = 0 to l - 1 do
    if (l - 1 - i) land 1 = 0 then begin
      let e = path.(i) in
      let u = t.esrc.(e) and w = t.edst.(e) in
      t.left_to_.(u) <- w;
      t.right_to_.(w) <- u;
      t.left_edge_.(u) <- e
    end
  done;
  t.augments <- t.augments + 1;
  if l = 1 then t.warm_hits <- t.warm_hits + 1

let solve t =
  let nv = t.nl + t.nr in
  t.loff <- ensure t.loff (t.nl + 1) 0;
  t.loff.(t.nl) <- t.ne;
  t.dist <- ensure t.dist (nv * t.k) 0;
  t.have <- ensure t.have nv 0;
  t.inq <- ensure t.inq nv 0;
  t.parent <- ensure t.parent nv (-1);
  t.queue <- ensure t.queue (nv + 1) 0;
  let continue_ = ref true in
  while !continue_ do
    spfa t;
    t.sweeps <- t.sweeps + 1;
    let v = best_target t in
    if v >= 0 && gain_positive t v then augment t v
    else continue_ := false
  done
