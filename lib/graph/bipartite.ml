module Ivec = Prelude.Ivec

(* [adj_l]/[adj_r] are capacity arrays: indices [>= n_left]/[>= n_right]
   are pre-allocated empty adjacency vectors waiting for
   [add_left_vertex]/[add_right_vertex].  Growth doubles the capacity so
   streaming construction stays amortised O(1) per vertex. *)
type t = {
  mutable n_left : int;
  mutable n_right : int;
  mutable srcs : Ivec.t; (* edge id -> left endpoint *)
  mutable dsts : Ivec.t; (* edge id -> right endpoint *)
  mutable adj_l : Ivec.t array;
  mutable adj_r : Ivec.t array;
}

let create ~n_left ~n_right =
  if n_left < 0 || n_right < 0 then
    invalid_arg "Bipartite.create: negative vertex count";
  {
    n_left;
    n_right;
    srcs = Ivec.create ();
    dsts = Ivec.create ();
    adj_l = Array.init n_left (fun _ -> Ivec.create ~capacity:4 ());
    adj_r = Array.init n_right (fun _ -> Ivec.create ~capacity:4 ());
  }

let n_left t = t.n_left
let n_right t = t.n_right
let n_edges t = Ivec.length t.srcs

let grow_capacity arr used =
  let cap = Array.length arr in
  if used < cap then arr
  else begin
    let arr' =
      Array.init (max 4 (2 * cap)) (fun i ->
          if i < cap then arr.(i) else Ivec.create ~capacity:4 ())
    in
    arr'
  end

let add_left_vertex t =
  t.adj_l <- grow_capacity t.adj_l t.n_left;
  let v = t.n_left in
  t.n_left <- v + 1;
  v

let add_right_vertex t =
  t.adj_r <- grow_capacity t.adj_r t.n_right;
  let v = t.n_right in
  t.n_right <- v + 1;
  v

let add_edge t ~left ~right =
  if left < 0 || left >= t.n_left then
    invalid_arg "Bipartite.add_edge: left endpoint out of range";
  if right < 0 || right >= t.n_right then
    invalid_arg "Bipartite.add_edge: right endpoint out of range";
  let id = Ivec.length t.srcs in
  Ivec.push t.srcs left;
  Ivec.push t.dsts right;
  Ivec.push t.adj_l.(left) id;
  Ivec.push t.adj_r.(right) id;
  id

let edge_left t id = Ivec.get t.srcs id
let edge_right t id = Ivec.get t.dsts id
let adj_left t v = t.adj_l.(v)
let adj_right t v = t.adj_r.(v)
let degree_left t v = Ivec.length t.adj_l.(v)
let degree_right t v = Ivec.length t.adj_r.(v)

let iter_edges t f =
  for id = 0 to n_edges t - 1 do
    f id ~left:(edge_left t id) ~right:(edge_right t id)
  done

let has_edge t ~left ~right =
  if degree_left t left <= degree_right t right then
    Ivec.exists (fun id -> edge_right t id = right) t.adj_l.(left)
  else Ivec.exists (fun id -> edge_left t id = left) t.adj_r.(right)
