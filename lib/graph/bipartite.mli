(** Bipartite graphs with dense integer vertex ids.

    Left vertices model requests, right vertices model time slots (but the
    module is generic).  Vertices are [0 .. n_left-1] and [0 .. n_right-1];
    edges carry a stable id in insertion order, which the weighted matching
    engine uses to attach weights.  Parallel edges are permitted (the
    scheduling graphs never create them, but nothing here depends on
    their absence).

    Graphs are appendable: {!add_left_vertex} and {!add_right_vertex}
    grow a side by one vertex, which the streaming offline optimum uses
    to extend the paper graph round by round.  Vertices and edges are
    never removed, so already-issued ids stay valid forever. *)

type t

val create : n_left:int -> n_right:int -> t
(** An empty graph on the given vertex counts. *)

val add_left_vertex : t -> int
(** Append a fresh isolated left vertex and return its id
    (the new [n_left - 1]).  Amortised O(1). *)

val add_right_vertex : t -> int
(** Append a fresh isolated right vertex and return its id
    (the new [n_right - 1]).  Amortised O(1). *)

val n_left : t -> int
val n_right : t -> int
val n_edges : t -> int

val add_edge : t -> left:int -> right:int -> int
(** Insert an edge and return its id ([0 .. n_edges-1] in insertion
    order).
    @raise Invalid_argument if an endpoint is out of range. *)

val edge_left : t -> int -> int
val edge_right : t -> int -> int
(** Endpoints of an edge id. *)

val adj_left : t -> int -> Prelude.Ivec.t
(** Edge ids incident to a left vertex.  The returned vector is the
    internal one: callers must not mutate it. *)

val adj_right : t -> int -> Prelude.Ivec.t
(** Edge ids incident to a right vertex (same caveat). *)

val degree_left : t -> int -> int
val degree_right : t -> int -> int

val iter_edges : t -> (int -> left:int -> right:int -> unit) -> unit
(** Iterate all edges in id order. *)

val has_edge : t -> left:int -> right:int -> bool
(** Linear in the smaller degree. *)
