module Ivec = Prelude.Ivec

(* Incremental maximum matching on a growing bipartite graph.

   The structure shadows the partner maps of {!Matching} in capacity
   arrays so the graph can keep growing underneath it, and restores
   maximality after a batch of appends by Kuhn-style augmenting-path
   searches rooted at the freshly added free right vertices.

   Why roots on the right suffice: every augmenting path in a bipartite
   graph has exactly one free endpoint on each side.  If the matching was
   maximum before the appends and every new edge is incident to a new
   right vertex (the paper-graph streaming discipline: a round's slots
   arrive together with all edges into them), then any augmenting path
   must use a new edge, whose new right endpoint is free and therefore an
   endpoint of the path.  Old free right vertices stay dead: an
   augmenting path rooted at one would have its single right endpoint
   there, so it could not absorb any new edge (new edges end at *free*
   right vertices, which cannot be interior), hence it would have existed
   before the append — contradiction.  Augmentations never revive dead
   roots (the classical non-revival lemma), so one search per new right
   vertex, ever, keeps the matching maximum. *)

type search_stats = {
  searches : int;
  successes : int;
  warm_hits : int;
  visited : int;
}

type t = {
  g : Bipartite.t;
  mutable left_to : int array; (* capacity >= n_left g; -1 = free *)
  mutable right_to : int array; (* capacity >= n_right g; -1 = free *)
  mutable left_edge : int array; (* capacity >= n_left g; -1 = free *)
  mutable stamp : int array; (* per left vertex, DFS visit clock *)
  mutable clock : int;
  mutable size : int;
  (* plain counters (no locking: callers own the structure), read out by
     the observability layer via [stats] *)
  mutable searches : int;
  mutable successes : int;
  mutable warm_hits : int;
  mutable visited : int;
  mutable cur_visits : int; (* left vertices stamped by the live search *)
}

let grow a n ~fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (2 * cap)) fill in
    Array.blit a 0 a' 0 cap;
    a'
  end

let sync t =
  let nl = Bipartite.n_left t.g and nr = Bipartite.n_right t.g in
  t.left_to <- grow t.left_to nl ~fill:(-1);
  t.left_edge <- grow t.left_edge nl ~fill:(-1);
  t.stamp <- grow t.stamp nl ~fill:0;
  t.right_to <- grow t.right_to nr ~fill:(-1)

let create g =
  let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
  let t =
    {
      g;
      left_to = Array.make (max nl 1) (-1);
      right_to = Array.make (max nr 1) (-1);
      left_edge = Array.make (max nl 1) (-1);
      stamp = Array.make (max nl 1) 0;
      clock = 0;
      size = 0;
      searches = 0;
      successes = 0;
      warm_hits = 0;
      visited = 0;
      cur_visits = 0;
    }
  in
  if Bipartite.n_edges g > 0 then begin
    (* a pre-populated graph needs a full solve once; afterwards the
       incremental invariant carries the maximality forward *)
    let m = Hopcroft_karp.solve_from g (Matching.greedy_maximal g) in
    Array.blit m.Matching.left_to 0 t.left_to 0 nl;
    Array.blit m.Matching.left_edge 0 t.left_edge 0 nl;
    Array.blit m.Matching.right_to 0 t.right_to 0 nr;
    t.size <- Matching.size m
  end;
  t

let graph t = t.g
let size t = t.size

let stats t =
  {
    searches = t.searches;
    successes = t.successes;
    warm_hits = t.warm_hits;
    visited = t.visited;
  }

(* DFS from a right vertex looking for a free left vertex along an
   alternating path; flips the path in place on success. *)
let rec search t r =
  let adj = Bipartite.adj_right t.g r in
  let n = Ivec.length adj in
  let rec try_edge i =
    if i >= n then false
    else begin
      let id = Ivec.get adj i in
      let u = Bipartite.edge_left t.g id in
      if t.stamp.(u) = t.clock then try_edge (i + 1)
      else begin
        t.stamp.(u) <- t.clock;
        t.cur_visits <- t.cur_visits + 1;
        let r' = t.left_to.(u) in
        if r' < 0 || search t r' then begin
          (* if u was matched, the recursive call found r' a new partner
             already, so stealing u is safe *)
          t.left_to.(u) <- r;
          t.right_to.(r) <- u;
          t.left_edge.(u) <- id;
          true
        end
        else try_edge (i + 1)
      end
    end
  in
  try_edge 0

let augment_from_right t r =
  sync t;
  if r < 0 || r >= Bipartite.n_right t.g then
    invalid_arg "Augment.augment_from_right: right vertex out of range";
  if t.right_to.(r) >= 0 then false
  else begin
    t.clock <- t.clock + 1;
    t.cur_visits <- 0;
    let grew = search t r in
    t.searches <- t.searches + 1;
    t.visited <- t.visited + t.cur_visits;
    if grew then begin
      t.size <- t.size + 1;
      t.successes <- t.successes + 1;
      (* a warm hit: the root's first probe was a free left vertex, no
         rematching needed — the common case on paper-graph streams *)
      if t.cur_visits = 1 then t.warm_hits <- t.warm_hits + 1
    end;
    grew
  end

let augment_new_rights t ~first =
  sync t;
  if first < 0 then invalid_arg "Augment.augment_new_rights: negative first";
  let gained = ref 0 in
  for r = first to Bipartite.n_right t.g - 1 do
    if augment_from_right t r then incr gained
  done;
  !gained

let matching t =
  sync t;
  let nl = Bipartite.n_left t.g and nr = Bipartite.n_right t.g in
  {
    Matching.left_to = Array.sub t.left_to 0 nl;
    right_to = Array.sub t.right_to 0 nr;
    left_edge = Array.sub t.left_edge 0 nl;
  }
