(** Warm-start arena for tiered maximum-weight matching.

    A reusable, allocation-free replica of {!Tiered.solve}: same residual
    SPFA from all free left vertices, same FIFO relaxation order, same
    maximum-gain augmenting step with ties broken towards the smallest
    right index — so on any graph it returns the {e same matching,
    edge for edge}, as {!Tiered.solve} (the differential suite pins
    this).  The difference is purely representational: a left-grouped CSR
    with flat [k]-stride integer weights, stamp-guarded flat distance
    matrices instead of [Lexvec.t option] arrays, and an int ring buffer
    for the queue.  One value is created per strategy and re-armed every
    round with {!begin_round}; steady-state solving performs no heap
    allocation, which is where the online kernel's speedup over the
    rebuild path comes from.

    Build discipline: {!add_left} opens a left vertex; subsequent
    {!add_edge} calls attach to it (CSR grouping), with per-edge weights
    zero-initialised and filled by {!set_weight}.  Weight vectors are
    uniform length [k] for the whole round, as {!Tiered} requires. *)

type t

type variant =
  | Ring
      (** Historical selection: after each sweep, scan all [n_right]
          vertices for the maximum-gain target — O(n_right) per sweep,
          the quadratic term in the fix-family solves. *)
  | Bucketed
      (** Distance-bucketed candidate queue filled during the sweep;
          selection walks buckets top-down with lazy revalidation.
          Outcome-identical to [Ring] on every graph (same matching,
          edge for edge — pinned by a 300-graph differential); cost per
          sweep drops to O(labels improved). *)

type stats = {
  sweeps : int;
      (** SPFA sweeps run — each is one augmenting-path search over the
          current residual graph (the kernel's
          [strategy.augment_searches]) *)
  augments : int;  (** sweeps that grew the matching *)
  warm_hits : int;
      (** augmentations along a single free edge — no rematching of
          already-placed requests was needed *)
}

val create : ?variant:variant -> unit -> t
(** Default [Ring] — callers that want the asymptotic win opt in to
    [Bucketed] (the kernel does, by default, via
    {!Strategies.Kernel}). *)

val variant : t -> variant

val begin_round : t -> n_right:int -> k:int -> unit
(** Re-arm for a fresh subproblem: no left vertices, no edges, [n_right]
    free right vertices, weight vectors of length [k].  Previously grown
    capacity is retained.
    @raise Invalid_argument on negative [n_right] or [k < 1]. *)

val add_left : t -> int
(** Open the next left vertex and return its index (consecutive from
    0). *)

val add_edge : t -> right:int -> int
(** Add an edge from the most recently added left vertex; returns the
    edge id (consecutive from 0).  Weights start at all-zero.
    @raise Invalid_argument before any {!add_left} or on an
    out-of-range right vertex. *)

val set_weight : t -> int -> int -> int -> unit
(** [set_weight t e j v] sets tier [j] of edge [e] to [v]. *)

val solve : t -> unit
(** Run the tiered max-weight matching to optimality, identical in
    outcome to {!Tiered.solve} on the same graph and weights. *)

val n_left : t -> int

val left_to : t -> int -> int
(** Matched right vertex of a left vertex, or [-1]. *)

val left_edge : t -> int -> int
(** Matched edge of a left vertex, or [-1]. *)

val right_to : t -> int -> int
(** Matched left vertex of a right vertex, or [-1]. *)

val stats : t -> stats
(** Cumulative effort counters since {!create}. *)
