(** The paper's bipartite graph [G = (R ∪ S, E)] of an instance.

    Left vertices are request ids; right vertices are dense time-slot
    indices ({!Instance.slot_index}); a request is connected to every slot
    of each of its alternative resources inside its service window.  Any
    feasible schedule induces a matching in this graph, and the offline
    optimum is a maximum matching (Sec. 1.2). *)

val of_instance : Instance.t -> Graph.Bipartite.t
(** Build [G].  Edge ids are in (request, alternative, round) order. *)

val edge_for :
  Graph.Bipartite.t -> Instance.t -> request:int -> resource:int ->
  round:int -> int option
(** The edge id connecting the request to slot (resource, round), if it
    exists in [G]. *)

(** Round-by-round construction of [G] for the streaming offline
    optimum.  After [t] calls to {!Stream.advance} the graph equals the
    prefix of [G] restricted to rounds [0 .. t-1]: slots use the same
    dense index as {!Instance.slot_index} ([round * n + resource]), left
    vertices are assigned in feed order (so they equal request ids when
    fed from {!Instance.arrivals_at} round by round), and edges into
    future rounds simply do not exist yet.  Every edge appended by an
    [advance] is incident to that round's new slot column — the append
    discipline {!Graph.Augment} relies on. *)
module Stream : sig
  type t

  val start : n_resources:int -> t
  (** An empty stream: no rounds, no requests.
      @raise Invalid_argument if [n_resources < 1]. *)

  val graph : t -> Graph.Bipartite.t
  (** The growing prefix graph (shared, not a copy). *)

  val round : t -> int
  (** Number of rounds appended so far = the next round to append. *)

  val slot_index : t -> resource:int -> round:int -> int
  (** Dense slot index of an already-appended round.
      @raise Invalid_argument out of range. *)

  val advance : t -> arrivals:Request.t array -> int
  (** Append the next round: [n_resources] fresh slot vertices, the
      edges of still-live earlier requests into them, and one left
      vertex (with its round-local edges) per arrival.  Returns the id
      of the first slot vertex of the new column, ready to pass to
      {!Graph.Augment.augment_new_rights} as [~first].
      @raise Invalid_argument if an arrival's [arrival] field is not the
      current round or names a resource [>= n_resources]. *)
end
