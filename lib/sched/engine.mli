(** The synchronous round engine.

    Drives a strategy over an instance exactly as Sec. 1.2 of the paper
    prescribes: each round, expired requests die, new requests are
    revealed, the strategy decides, and one request per resource is
    served.  The engine owns all validity checking, so a buggy strategy
    cannot silently overcount. *)

exception Protocol_error of string
(** A strategy returned an illegal service: unknown or expired request,
    resource not among its alternatives, or two services on one resource
    in the same round. *)

val run : ?metrics:Obs.Metrics.t -> Instance.t -> Strategy.factory -> Outcome.t
(** Run the strategy over the whole instance.  Services of an
    already-served request are legal but counted as [wasted] (the paper's
    EDF duplicates); everything else illegal raises {!Protocol_error}.

    [metrics] (or, when omitted, the ambient registry of
    {!Obs.Metrics.set_ambient}) receives per-round instrumentation:
    counters [engine.rounds], [engine.arrivals], [engine.served],
    [engine.wasted]; histograms [engine.step_us] (wall-clock latency of
    each strategy step, microseconds) and [engine.served_per_round].
    With neither set, the engine records nothing and pays one match per
    round. *)

val run_all : Instance.t -> Strategy.factory list -> Outcome.t list
(** [run] once per factory on the same instance. *)

type adaptive = round:int -> is_served:(int -> bool) -> Request.t list
(** An adaptive adversary: called at the start of every round with the
    current round number and a predicate telling whether a given request
    id has been served so far, it returns the requests arriving this
    round (protos; ids are assigned in emission order, so the adversary
    can predict them by counting).  Returned arrivals must have
    [arrival = round].  Used by the paper's Theorem 2.6, whose adversary
    blocks whichever colour group the algorithm left most unserved. *)

val run_adaptive :
  ?metrics:Obs.Metrics.t ->
  n:int -> d:int -> last_arrival_round:int -> adversary:adaptive ->
  Strategy.factory -> Outcome.t
(** Run a strategy against an adaptive adversary.  The adversary is
    consulted for rounds [0 .. last_arrival_round]; the engine then keeps
    stepping the strategy until every window has closed.  The realised
    instance is available as [(result).instance], so the offline optimum
    of exactly the adaptively-generated workload can be computed
    afterwards. *)

(** The incremental (live) engine: same validation rules as {!run}, but
    the workload arrives over time — requests are submitted between
    rounds and the caller decides when each round ticks.  This is what a
    {e serving} shard drives: admit, tick, collect terminal outcomes.

    Determinism: the outcome of a run depends only on the strategy and
    the sequence of submissions between steps, so replaying a recorded
    trace through a fresh engine reproduces every decision exactly. *)
module Live : sig
  type outcome = {
    round : int;                (** the round just executed *)
    served : (int * int) list;
        (** (request id, resource) of first services, in service order *)
    expired : int list;
        (** ids whose window closed unserved in this round, ascending *)
  }

  type t

  val create :
    ?metrics:Obs.Metrics.t -> n:int -> d:int -> Strategy.factory -> t
  (** A live engine over [n] resources with nominal deadline [d].  The
      strategy is instantiated once; [metrics] (or the ambient registry)
      receives the same [engine.*] instrumentation as {!run}.
      @raise Invalid_argument if [n < 1] or [d < 1]. *)

  val submit :
    t -> alternatives:int list -> deadline:int -> (int, string) result
  (** Admit a request arriving at the {e current} round; it becomes part
      of the next {!step}'s arrivals.  Returns the engine-assigned dense
      id.  [Error] (malformed alternatives, resource [>= n], deadline
      outside [1 .. d]) admits nothing. *)

  val step : t -> outcome
  (** Execute the current round: reveal the queued submissions to the
      strategy, validate and apply its services, close expiring windows,
      and advance the round counter.
      @raise Protocol_error on an illegal service, as {!run}. *)

  val round : t -> int
  (** The next round {!step} will execute (0 initially). *)

  val pending : t -> int
  (** Admitted requests with no terminal outcome yet. *)

  val submitted : t -> int
  (** Total requests ever admitted (also the next fresh id). *)

  val is_served : t -> int -> bool
  val strategy_name : t -> string
end
