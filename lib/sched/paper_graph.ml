let of_instance inst =
  let g =
    Graph.Bipartite.create
      ~n_left:(Instance.n_requests inst)
      ~n_right:(Instance.total_slots inst)
  in
  Array.iter
    (fun (r : Request.t) ->
       Array.iter
         (fun res ->
            for round = r.Request.arrival to Request.last_round r do
              ignore
                (Graph.Bipartite.add_edge g ~left:r.Request.id
                   ~right:(Instance.slot_index inst ~resource:res ~round))
            done)
         r.Request.alternatives)
    inst.Instance.requests;
  g

module Stream = struct
  (* Round-by-round construction of the same graph: each [advance]
     appends the round's slot column and every edge into it — from the
     round's arrivals (whose windows open here) and from still-live
     earlier requests.  All new edges are incident to the new right
     vertices, which is exactly the append discipline
     {!Graph.Augment} needs to keep a maximum matching incrementally. *)

  type t = {
    n_resources : int;
    g : Graph.Bipartite.t;
    mutable round : int; (* next round to append *)
    mutable live : (int * Request.t) list; (* (left vertex, request) *)
  }

  let start ~n_resources =
    if n_resources < 1 then
      invalid_arg "Paper_graph.Stream.start: need >= 1 resource";
    {
      n_resources;
      g = Graph.Bipartite.create ~n_left:0 ~n_right:0;
      round = 0;
      live = [];
    }

  let graph t = t.g
  let round t = t.round

  let slot_index t ~resource ~round =
    if resource < 0 || resource >= t.n_resources then
      invalid_arg "Paper_graph.Stream.slot_index: resource out of range";
    if round < 0 || round >= t.round then
      invalid_arg "Paper_graph.Stream.slot_index: round not appended yet";
    (round * t.n_resources) + resource

  let connect t lv (r : Request.t) ~round =
    Array.iter
      (fun res ->
         ignore
           (Graph.Bipartite.add_edge t.g ~left:lv
              ~right:((round * t.n_resources) + res)))
      r.Request.alternatives

  let advance t ~arrivals =
    let round = t.round in
    let first_slot = Graph.Bipartite.n_right t.g in
    for _ = 1 to t.n_resources do
      ignore (Graph.Bipartite.add_right_vertex t.g : int)
    done;
    (* live requests from earlier rounds extend into the new column *)
    List.iter (fun (lv, r) -> connect t lv r ~round) t.live;
    t.live <- List.filter (fun (_, r) -> Request.last_round r > round) t.live;
    Array.iter
      (fun (r : Request.t) ->
         if r.Request.arrival <> round then
           invalid_arg
             (Printf.sprintf
                "Paper_graph.Stream.advance: arrival %d fed at round %d"
                r.Request.arrival round);
         Array.iter
           (fun res ->
              if res < 0 || res >= t.n_resources then
                invalid_arg
                  "Paper_graph.Stream.advance: resource out of range")
           r.Request.alternatives;
         let lv = Graph.Bipartite.add_left_vertex t.g in
         connect t lv r ~round;
         if Request.last_round r > round then t.live <- (lv, r) :: t.live)
      arrivals;
    t.round <- round + 1;
    first_slot
end

let edge_for g inst ~request ~resource ~round =
  if round < 0 || round >= inst.Instance.horizon
     || resource < 0 || resource >= inst.Instance.n_resources
  then None
  else begin
    let slot = Instance.slot_index inst ~resource ~round in
    let found = ref None in
    Prelude.Ivec.iter
      (fun e ->
         if Graph.Bipartite.edge_right g e = slot && !found = None then
           found := Some e)
      (Graph.Bipartite.adj_left g request);
    !found
  end
