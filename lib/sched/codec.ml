(* Text codec for instances and request fields.

   The grammar is shared with the lib/serve wire protocol: a request's
   alternative list is rendered as comma-separated resource ids, and a
   request line is three space-separated fields.  Keeping the grammar
   here (under sched, not serve) lets traces be saved, loaded and
   replayed without linking the network layer. *)

let version = "rsp/1"

let render_alts alts = String.concat "," (List.map string_of_int alts)

let parse_alts s =
  if s = "" then Error "empty alternative list"
  else
    let fields = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest ->
        (match int_of_string_opt f with
         | Some v when v < 0 ->
           Error (Printf.sprintf "negative resource %d" v)
         | Some v when List.mem v acc ->
           Error (Printf.sprintf "duplicate resource %d" v)
         | Some v -> go (v :: acc) rest
         | None -> Error (Printf.sprintf "malformed resource %S" f))
    in
    go [] fields

(* [first] is the arrival round in a trace file and the client's tag on
   the wire — same shape, different meaning. *)
let render_req_fields ~first ~alternatives ~deadline =
  Printf.sprintf "%d %s %d" first (render_alts alternatives) deadline

let parse_req_fields ~what s =
  match String.split_on_char ' ' s with
  | [ first; alts; deadline ] ->
    (match int_of_string_opt first, parse_alts alts,
           int_of_string_opt deadline with
     | Some _, Ok _, Some dl when dl < 1 ->
       Error (Printf.sprintf "deadline %d must be >= 1" dl)
     | Some f, Ok alternatives, Some dl -> Ok (f, alternatives, dl)
     | None, _, _ -> Error (Printf.sprintf "malformed %s %S" what first)
     | _, Error m, _ -> Error m
     | _, _, None -> Error (Printf.sprintf "malformed deadline %S" deadline))
  | _ -> Error (Printf.sprintf "expected '<%s> <alts> <deadline>': %S" what s)

let to_string (inst : Instance.t) =
  let b = Buffer.create (64 + (32 * Instance.n_requests inst)) in
  Buffer.add_string b
    (Printf.sprintf "instance %s n=%d d=%d requests=%d\n" version
       inst.Instance.n_resources inst.Instance.d
       (Instance.n_requests inst));
  Array.iter
    (fun (r : Request.t) ->
       Buffer.add_string b
         (Printf.sprintf "req %s\n"
            (render_req_fields ~first:r.Request.arrival
               ~alternatives:(Array.to_list r.Request.alternatives)
               ~deadline:r.Request.deadline)))
    inst.Instance.requests;
  Buffer.add_string b "end\n";
  Buffer.contents b

let parse_header line =
  match String.split_on_char ' ' line with
  | [ "instance"; v; nf; df; cf ] when v = version ->
    let field name s =
      let prefix = name ^ "=" in
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        int_of_string_opt (String.sub s pl (String.length s - pl))
      else None
    in
    (match field "n" nf, field "d" df, field "requests" cf with
     | Some n, Some d, Some count -> Ok (n, d, count)
     | _ -> Error (Printf.sprintf "malformed instance header %S" line))
  | "instance" :: v :: _ when v <> version ->
    Error (Printf.sprintf "unsupported trace version %S (want %s)" v version)
  | _ -> Error (Printf.sprintf "malformed instance header %S" line)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty trace"
  | header :: rest ->
    (match parse_header header with
     | Error _ as e -> e
     | Ok (n, d, count) ->
       let rec go acc = function
         | [ "end" ] ->
           let protos = List.rev acc in
           if List.length protos <> count then
             Error
               (Printf.sprintf "header claims %d requests, trace has %d"
                  count (List.length protos))
           else
             (match Instance.build ~n_resources:n ~d protos with
              | inst -> Ok inst
              | exception Invalid_argument m -> Error m)
         | [] -> Error "truncated trace (missing 'end')"
         | line :: rest when String.length line >= 4
                          && String.sub line 0 4 = "req " ->
           (match
              parse_req_fields ~what:"arrival"
                (String.sub line 4 (String.length line - 4))
            with
            | Error _ as e -> e
            | Ok (arrival, alternatives, deadline) ->
              (match Request.make ~arrival ~alternatives ~deadline with
               | proto -> go (proto :: acc) rest
               | exception Invalid_argument m -> Error m))
         | line :: _ -> Error (Printf.sprintf "malformed trace line %S" line)
       in
       go [] rest)

let save ~path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load ~path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
         let len = in_channel_length ic in
         of_string (really_input_string ic len))
