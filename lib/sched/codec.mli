(** Text codec for instances and request fields.

    A versioned, line-oriented format shared with the [lib/serve] wire
    protocol: the alternative-list and request-line grammar here is the
    one requests travel over the wire with, so a trace saved with
    {!save} replays byte-identically through the server ([reqsched load
    --mode replay]).

    Format (one record per line):
    {v
    instance rsp/1 n=<n> d=<d> requests=<count>
    req <arrival> <alt0,alt1,...> <deadline>
    ...
    end
    v}

    {!to_string} is canonical: [to_string (of_string s)] is
    byte-identical to a canonically rendered [s], and
    [of_string (to_string i)] rebuilds an instance with identical
    parameters and requests (the round-trip the test-suite pins). *)

val version : string
(** ["rsp/1"], shared with [Serve.Protocol]. *)

val render_alts : int list -> string
(** Comma-separated resource ids, e.g. ["3,0"]. *)

val parse_alts : string -> (int list, string) result
(** Inverse of {!render_alts}; rejects empty lists, negatives,
    duplicates and non-numeric fields. *)

val render_req_fields :
  first:int -> alternatives:int list -> deadline:int -> string
(** ["<first> <alts> <deadline>"] — [first] is the arrival round in a
    trace file and the client's request tag on the wire. *)

val parse_req_fields :
  what:string -> string -> (int * int list * int, string) result
(** Inverse of {!render_req_fields}; [what] names the first field in
    error messages ("arrival", "tag"). *)

val to_string : Instance.t -> string
val of_string : string -> (Instance.t, string) result

val save : path:string -> Instance.t -> unit
(** {!to_string} to a file.  @raise Sys_error on I/O failure. *)

val load : path:string -> (Instance.t, string) result
