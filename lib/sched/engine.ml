exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

type adaptive = round:int -> is_served:(int -> bool) -> Request.t list

(* Shared per-run bookkeeping: validates every service against the model
   rules and records first services.  [lookup] resolves ids to requests
   (the id space may still be growing during an adaptive run). *)
type ledger = {
  n : int;
  lookup : int -> Request.t option;
  served_tbl : (int, int * int) Hashtbl.t; (* id -> (resource, round) *)
  mutable wasted : int;
  resource_busy : int array; (* resource -> last round it served *)
}

let make_ledger ~n ~lookup =
  { n; lookup; served_tbl = Hashtbl.create 256; wasted = 0;
    resource_busy = Array.make n (-1) }

let apply_services ledger ~round services =
  List.iter
    (fun { Strategy.request; resource } ->
       let r =
         match ledger.lookup request with
         | Some r -> r
         | None -> fail "round %d: unknown request %d" round request
       in
       if not (Request.is_live r ~round) then
         fail "round %d: request %d outside its window [%d,%d]" round
           request r.Request.arrival (Request.last_round r);
       if resource < 0 || resource >= ledger.n then
         fail "round %d: resource %d out of range" round resource;
       if not (Request.has_alternative r resource) then
         fail "round %d: resource %d not an alternative of request %d"
           round resource request;
       if ledger.resource_busy.(resource) = round then
         fail "round %d: resource %d used twice" round resource;
       ledger.resource_busy.(resource) <- round;
       if Hashtbl.mem ledger.served_tbl request then
         ledger.wasted <- ledger.wasted + 1
       else Hashtbl.replace ledger.served_tbl request (resource, round))
    services

let finish ledger ~inst ~strategy_name =
  let n_req = Instance.n_requests inst in
  let served_at = Array.make n_req None in
  let per_round_served = Array.make (max inst.Instance.horizon 1) 0 in
  let served = ref 0 in
  Hashtbl.iter
    (fun id (resource, round) ->
       served_at.(id) <- Some (resource, round);
       per_round_served.(round) <- per_round_served.(round) + 1;
       incr served)
    ledger.served_tbl;
  {
    Outcome.instance = inst;
    strategy_name;
    served_at;
    served = !served;
    wasted = ledger.wasted;
    per_round_served;
  }

(* Per-round metric recording around one strategy step.  [step] is a
   thunk so the un-instrumented path pays a single match per round.
   Returns the services the strategy emitted (validated and applied):
   the live engine needs them to report per-request outcomes. *)
let step_with_metrics metrics ledger ~round ~arrivals step =
  match metrics with
  | None ->
    let services = step () in
    apply_services ledger ~round services;
    services
  | Some m ->
    let served0 = Hashtbl.length ledger.served_tbl
    and wasted0 = ledger.wasted in
    let t0 = Obs.Span.start () in
    let services = step () in
    Obs.Metrics.observe m "engine.step_us" (Obs.Span.elapsed t0 *. 1e6);
    apply_services ledger ~round services;
    let served = Hashtbl.length ledger.served_tbl - served0 in
    Obs.Metrics.incr m "engine.rounds";
    Obs.Metrics.incr ~by:(Array.length arrivals) m "engine.arrivals";
    Obs.Metrics.incr ~by:served m "engine.served";
    Obs.Metrics.incr ~by:(ledger.wasted - wasted0) m "engine.wasted";
    Obs.Metrics.observe m "engine.served_per_round" (float_of_int served);
    services

let run ?metrics inst factory =
  let metrics = Obs.Metrics.resolve metrics in
  let strategy = factory ~n:inst.Instance.n_resources ~d:inst.Instance.d in
  let ledger =
    make_ledger ~n:inst.Instance.n_resources ~lookup:(fun id ->
        if id >= 0 && id < Instance.n_requests inst then
          Some inst.Instance.requests.(id)
        else None)
  in
  for round = 0 to inst.Instance.horizon - 1 do
    let arrivals = Instance.arrivals_at inst round in
    ignore
      (step_with_metrics metrics ledger ~round ~arrivals (fun () ->
           strategy.Strategy.step ~round ~arrivals))
  done;
  finish ledger ~inst ~strategy_name:strategy.Strategy.name

let run_all inst factories = List.map (run inst) factories

let run_adaptive ?metrics ~n ~d ~last_arrival_round ~adversary factory =
  if last_arrival_round < 0 then
    invalid_arg "Engine.run_adaptive: negative last_arrival_round";
  let metrics = Obs.Metrics.resolve metrics in
  let strategy = factory ~n ~d in
  let by_id : (int, Request.t) Hashtbl.t = Hashtbl.create 256 in
  let emitted = ref [] (* reversed *) in
  let next_id = ref 0 in
  let ledger =
    make_ledger ~n ~lookup:(fun id -> Hashtbl.find_opt by_id id)
  in
  let horizon = last_arrival_round + d in
  for round = 0 to horizon - 1 do
    let arrivals =
      if round > last_arrival_round then [||]
      else begin
        let protos =
          adversary ~round
            ~is_served:(fun id -> Hashtbl.mem ledger.served_tbl id)
        in
        let assigned =
          List.map
            (fun (r : Request.t) ->
               if r.Request.arrival <> round then
                 invalid_arg
                   (Printf.sprintf
                      "Engine.run_adaptive: adversary emitted arrival %d \
                       at round %d"
                      r.Request.arrival round);
               let r = Request.with_id r !next_id in
               incr next_id;
               Hashtbl.replace by_id r.Request.id r;
               emitted := r :: !emitted;
               r)
            protos
        in
        Array.of_list assigned
      end
    in
    ignore
      (step_with_metrics metrics ledger ~round ~arrivals (fun () ->
           strategy.Strategy.step ~round ~arrivals))
  done;
  let protos =
    List.rev_map
      (fun (r : Request.t) ->
         Request.make ~arrival:r.Request.arrival
           ~alternatives:(Array.to_list r.Request.alternatives)
           ~deadline:r.Request.deadline)
      !emitted
  in
  let inst = Instance.build ~n_resources:n ~d protos in
  finish ledger ~inst ~strategy_name:strategy.Strategy.name

(* ------------------------------------------------------------------ *)
(* Live: the incremental engine behind lib/serve.

   Same validation ledger as the batch runs, but the workload is not
   known in advance: requests are submitted between rounds and the
   caller decides when each round happens (a shard's tick).  Every
   admitted request reaches exactly one terminal state — served (the
   step that first serves it reports the id) or expired (reported by
   the step that closes its window). *)

module Live = struct
  type outcome = {
    round : int;                (** the round just executed *)
    served : (int * int) list;
        (** (request id, resource) of first services, in service order *)
    expired : int list;         (** ids whose window closed unserved *)
  }

  type t = {
    n : int;
    d : int;
    strategy : Strategy.t;
    metrics : Obs.Metrics.t option;
    ledger : ledger;
    by_id : (int, Request.t) Hashtbl.t;
    expiry : (int, int list ref) Hashtbl.t; (* last_round -> ids, reversed *)
    mutable queued : Request.t list;        (* reversed arrivals *)
    mutable next_id : int;
    mutable round : int;
    mutable live : int;                     (* admitted, no terminal yet *)
  }

  let create ?metrics ~n ~d factory =
    if n < 1 then invalid_arg "Engine.Live.create: n must be >= 1";
    if d < 1 then invalid_arg "Engine.Live.create: d must be >= 1";
    let metrics = Obs.Metrics.resolve metrics in
    let by_id = Hashtbl.create 256 in
    {
      n;
      d;
      strategy = factory ~n ~d;
      metrics;
      ledger = make_ledger ~n ~lookup:(fun id -> Hashtbl.find_opt by_id id);
      by_id;
      expiry = Hashtbl.create 64;
      queued = [];
      next_id = 0;
      round = 0;
      live = 0;
    }

  let round t = t.round
  let pending t = t.live
  let submitted t = t.next_id
  let strategy_name t = t.strategy.Strategy.name

  let is_served t id = Hashtbl.mem t.ledger.served_tbl id

  let submit t ~alternatives ~deadline =
    if deadline > t.d then
      Error (Printf.sprintf "deadline %d exceeds the server's d=%d" deadline t.d)
    else if List.exists (fun a -> a >= t.n) alternatives then
      Error
        (Printf.sprintf "resource out of range (n=%d): %s" t.n
           (String.concat ","
              (List.map string_of_int
                 (List.filter (fun a -> a >= t.n) alternatives))))
    else
      match Request.make ~arrival:t.round ~alternatives ~deadline with
      | exception Invalid_argument m -> Error m
      | proto ->
        let r = Request.with_id proto t.next_id in
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.by_id r.Request.id r;
        t.queued <- r :: t.queued;
        t.live <- t.live + 1;
        let last = Request.last_round r in
        (match Hashtbl.find_opt t.expiry last with
         | Some ids -> ids := r.Request.id :: !ids
         | None -> Hashtbl.replace t.expiry last (ref [ r.Request.id ]));
        Ok r.Request.id

  let step t =
    let round = t.round in
    let arrivals = Array.of_list (List.rev t.queued) in
    t.queued <- [];
    let services =
      step_with_metrics t.metrics t.ledger ~round ~arrivals (fun () ->
          t.strategy.Strategy.step ~round ~arrivals)
    in
    (* keep only first services: a re-service of an already-served
       request is legal-but-wasted, and the ledger maps each id to its
       first (resource, round) only *)
    let served =
      List.filter
        (fun { Strategy.request; resource } ->
           match Hashtbl.find_opt t.ledger.served_tbl request with
           | Some (res, r) -> r = round && res = resource
           | None -> false)
        services
      |> List.map (fun { Strategy.request; resource } -> (request, resource))
    in
    let expired =
      match Hashtbl.find_opt t.expiry round with
      | None -> []
      | Some ids ->
        List.filter
          (fun id -> not (Hashtbl.mem t.ledger.served_tbl id))
          (List.sort Int.compare !ids)
    in
    Hashtbl.remove t.expiry round;
    t.live <- t.live - List.length served - List.length expired;
    t.round <- round + 1;
    { round; served; expired }
end
