(* Tests for the report-layer utilities: Gantt rendering and CSV
   export.  (The experiment integration tests live in test_report.) *)

module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine

let check = Alcotest.check

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let small_outcome () =
  let inst =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  Engine.run inst (Strategies.Global.balance ())

(* ------------------------------------------------------------------ *)
(* Gantt *)

let test_gantt_shape () =
  let o = small_outcome () in
  let s = Report.Gantt.render o in
  let lines = String.split_on_char '\n' s in
  (* title, ruler, one line per resource *)
  check Alcotest.bool "has resource rows" true
    (List.exists (fun l -> contains ~needle:"S0" l) lines
     && List.exists (fun l -> contains ~needle:"S1" l) lines);
  check Alcotest.bool "mentions strategy" true
    (contains ~needle:"A_balance" s)

let test_gantt_idle_dots () =
  (* a singleton request leaves the other resource idle *)
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [ req ~arrival:0 ~alts:[ 0 ] ~deadline:1 ]
  in
  let o = Engine.run inst (Strategies.Global.balance ()) in
  let s = Report.Gantt.render o in
  check Alcotest.bool "glyph for request 0" true (contains ~needle:"0" s);
  check Alcotest.bool "idle dot" true (contains ~needle:"." s)

let test_gantt_failures_listed () =
  let o = small_outcome () in
  (* 5 requests with 2 resources and deadline <= 2: at most 4 servable *)
  let s = Report.Gantt.render_with_failures o in
  check Alcotest.bool "lists failed ids" true
    (contains ~needle:"failed (arrived round 0)" s)

let test_gantt_truncation () =
  let protos =
    List.init 300 (fun i -> req ~arrival:i ~alts:[ 0 ] ~deadline:1)
  in
  let inst = Instance.build ~n_resources:1 ~d:1 protos in
  let o = Engine.run inst (Strategies.Global.fix ()) in
  let s = Report.Gantt.render ~max_rounds:50 o in
  check Alcotest.bool "notes truncation" true
    (contains ~needle:"truncated at 50 of 300 rounds" s)

let test_gantt_comparison () =
  let o = small_outcome () in
  let s = Report.Gantt.render_comparison o o in
  check Alcotest.bool "has divider" true
    (contains ~needle:"----------" s)

(* ------------------------------------------------------------------ *)
(* Export *)

let test_csv_of_table () =
  let t =
    Prelude.Texttable.create ~title:"demo" ~header:[ "a"; "b" ] ()
  in
  Prelude.Texttable.add_row t [ "x,y"; "plain" ];
  Prelude.Texttable.add_rule t;
  Prelude.Texttable.add_row t [ "with \"quote\""; "2" ];
  let csv = Report.Export.csv_of_table t in
  check Alcotest.string "csv"
    "# demo\na,b\n\"x,y\",plain\n\"with \"\"quote\"\"\",2\n" csv

let test_csv_of_instance () =
  let inst =
    Instance.build ~n_resources:3 ~d:2
      [ req ~arrival:1 ~alts:[ 2; 0 ] ~deadline:2 ]
  in
  let csv = Report.Export.csv_of_instance inst in
  check Alcotest.string "instance csv"
    "id,arrival,deadline,last_round,alternatives\n0,1,2,2,2|0\n" csv

let test_csv_of_outcome () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
      ]
  in
  let o = Engine.run inst (Strategies.Global.fix ()) in
  let csv = Report.Export.csv_of_outcome o in
  check Alcotest.bool "has header" true
    (contains ~needle:"id,arrival,deadline,served,resource,round,latency" csv);
  check Alcotest.bool "served row" true (contains ~needle:"0,0,1,1,0,0,0" csv);
  check Alcotest.bool "failed row" true (contains ~needle:"1,0,1,0,,," csv)

let test_write_file_roundtrip () =
  let path = Filename.temp_file "reqsched_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Report.Export.write_file ~path "hello,world\n";
       let ic = open_in path in
       let line = input_line ic in
       close_in ic;
       check Alcotest.string "roundtrip" "hello,world" line)

let test_texttable_accessors () =
  let t = Prelude.Texttable.create ~title:"t" ~header:[ "h1"; "h2" ] () in
  Prelude.Texttable.add_row t [ "a" ];
  check Alcotest.(option string) "title" (Some "t")
    (Prelude.Texttable.title t);
  check Alcotest.(list string) "header" [ "h1"; "h2" ]
    (Prelude.Texttable.header t);
  check
    Alcotest.(list (list string))
    "rows padded"
    [ [ "a"; "" ] ]
    (Prelude.Texttable.rows t)

(* ------------------------------------------------------------------ *)
(* Harness.ratio_of *)

let test_ratio_of () =
  check (Alcotest.float 1e-9) "normal" 1.25
    (Report.Harness.ratio_of ~opt:5 ~served:4);
  check (Alcotest.float 1e-9) "both zero" 1.0
    (Report.Harness.ratio_of ~opt:0 ~served:0);
  check Alcotest.bool "served zero, opt positive" true
    (Report.Harness.ratio_of ~opt:7 ~served:0 = infinity);
  (* the regression the compare/sweep tables had: opt /. max 1 served
     silently printed opt itself for a shut-out strategy *)
  check Alcotest.bool "not the naive guard" true
    (Report.Harness.ratio_of ~opt:7 ~served:0 <> 7.0);
  check Alcotest.string "renders as inf, not a number" "inf"
    (Printf.sprintf "%.4f" (Report.Harness.ratio_of ~opt:7 ~served:0)
     |> fun s -> String.sub s 0 3)

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let prop_gantt_glyphs_match_served =
  (* one glyph per served request inside the drawn range *)
  qtest "gantt draws exactly the served slots"
    QCheck.(pair (int_range 2 4) (int_range 0 600))
    (fun (n, seed) ->
       let rng = Prelude.Rng.create ~seed in
       let inst =
         Adversary.Random_workload.make ~rng ~n ~d:3 ~rounds:20 ~load:1.2 ()
       in
       let o = Engine.run inst (Strategies.Global.balance ()) in
       let s = Report.Gantt.render ~max_rounds:1000 o in
       (* count non-dot cells in the resource rows *)
       let cells = ref 0 in
       List.iter
         (fun line ->
            if String.length line > 1 && line.[0] = 'S' then begin
              let body =
                try String.sub line 6 (String.length line - 6)
                with Invalid_argument _ -> ""
              in
              String.iter (fun c -> if c <> '.' && c <> ' ' then incr cells)
                body
            end)
         (String.split_on_char '\n' s);
       !cells = o.Sched.Outcome.served)

let prop_csv_outcome_row_count =
  qtest "outcome CSV has one row per request plus header"
    QCheck.(int_range 0 500)
    (fun seed ->
       let rng = Prelude.Rng.create ~seed in
       let inst =
         Adversary.Random_workload.make ~rng ~n:3 ~d:2 ~rounds:10 ~load:1.0 ()
       in
       let o = Engine.run inst (Strategies.Global.fix ()) in
       let csv = Report.Export.csv_of_outcome o in
       let lines =
         List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
       in
       List.length lines = 1 + Sched.Instance.n_requests inst)

let () =
  Alcotest.run "report-utils"
    [
      ( "gantt",
        [
          Alcotest.test_case "shape" `Quick test_gantt_shape;
          Alcotest.test_case "idle dots" `Quick test_gantt_idle_dots;
          Alcotest.test_case "failures listed" `Quick
            test_gantt_failures_listed;
          Alcotest.test_case "truncation" `Quick test_gantt_truncation;
          Alcotest.test_case "comparison" `Quick test_gantt_comparison;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv of table" `Quick test_csv_of_table;
          Alcotest.test_case "csv of instance" `Quick test_csv_of_instance;
          Alcotest.test_case "csv of outcome" `Quick test_csv_of_outcome;
          Alcotest.test_case "write file" `Quick test_write_file_roundtrip;
          Alcotest.test_case "texttable accessors" `Quick
            test_texttable_accessors;
        ] );
      ( "harness",
        [ Alcotest.test_case "ratio_of" `Quick test_ratio_of ] );
      ( "properties",
        [ prop_gantt_glyphs_match_served; prop_csv_outcome_row_count ] );
    ]
