(* Tests for the observability layer: the metric registry and its merge
   law, the exporters' round-trips, span timing, the Parmap adapter, and
   the engine / streaming-optimum instrumentation hooks. *)

module Metrics = Obs.Metrics
module Export = Obs.Export
module Stats = Prelude.Stats

let check = Alcotest.check

let prop ?(count = 200) name gen p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen p)

(* ------------------------------------------------------------------ *)
(* registry *)

let test_counters () =
  let m = Metrics.create () in
  check Alcotest.int "absent is 0" 0 (Metrics.counter m "a");
  Metrics.incr m "a";
  Metrics.incr ~by:4 m "a";
  Metrics.incr ~by:(-2) m "a";
  check Alcotest.int "1 + 4 - 2" 3 (Metrics.counter m "a");
  Metrics.set_counter m "a" 10;
  check Alcotest.int "overwritten" 10 (Metrics.counter m "a")

let test_gauges () =
  let m = Metrics.create () in
  check Alcotest.bool "absent is nan" true (Float.is_nan (Metrics.gauge m "g"));
  Metrics.set m "g" 2.5;
  Metrics.set m "g" 7.25;
  check (Alcotest.float 0.0) "last write wins" 7.25 (Metrics.gauge m "g")

let test_histograms () =
  let m = Metrics.create () in
  check Alcotest.bool "absent is None" true (Metrics.histogram m "h" = None);
  List.iter (Metrics.observe m "h") [ 1.0; 2.0; 3.0 ];
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    check Alcotest.int "count" 3 (Stats.count s);
    check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean s);
    check (Alcotest.float 0.0) "min" 1.0 (Stats.min s);
    check (Alcotest.float 0.0) "max" 3.0 (Stats.max s)

let test_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  (match Metrics.set m "x" 1.0 with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "gauge write into a counter accepted");
  match Metrics.observe m "x" 1.0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "histogram write into a counter accepted"

let test_snapshot_sorted_and_isolated () =
  let m = Metrics.create () in
  Metrics.incr m "zz";
  Metrics.observe m "aa" 5.0;
  Metrics.set m "mm" 1.0;
  let snap = Metrics.snapshot m in
  check
    Alcotest.(list string)
    "sorted by name" [ "aa"; "mm"; "zz" ] (List.map fst snap);
  (* the snapshot's Stats payloads are private copies *)
  Metrics.observe m "aa" 100.0;
  (match List.assoc "aa" snap with
   | Metrics.Histogram s -> check Alcotest.int "copy unaffected" 1 (Stats.count s)
   | _ -> Alcotest.fail "aa is a histogram");
  Metrics.clear m;
  check Alcotest.int "cleared" 0 (List.length (Metrics.snapshot m))

let test_merge_units () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:3 a "c";
  Metrics.incr ~by:4 b "c";
  Metrics.set a "g" 1.5;
  Metrics.set b "g" 2.0;
  Metrics.observe a "h" 1.0;
  Metrics.observe b "h" 3.0;
  Metrics.incr a "only_a";
  Metrics.incr b "only_b";
  let merged = Metrics.merge (Metrics.snapshot a) (Metrics.snapshot b) in
  (match List.assoc "c" merged with
   | Metrics.Counter 7 -> ()
   | _ -> Alcotest.fail "counters must add");
  (match List.assoc "g" merged with
   | Metrics.Gauge g -> check (Alcotest.float 1e-9) "gauges add" 3.5 g
   | _ -> Alcotest.fail "g is a gauge");
  (match List.assoc "h" merged with
   | Metrics.Histogram s ->
     check Alcotest.int "histogram count" 2 (Stats.count s);
     check (Alcotest.float 1e-9) "histogram mean" 2.0 (Stats.mean s)
   | _ -> Alcotest.fail "h is a histogram");
  check Alcotest.bool "union keeps both singletons" true
    (List.mem_assoc "only_a" merged && List.mem_assoc "only_b" merged);
  check
    Alcotest.(list string)
    "merge output sorted"
    (List.sort compare (List.map fst merged))
    (List.map fst merged);
  (* kind clash across snapshots *)
  let c = Metrics.create () in
  Metrics.set c "c" 1.0;
  (match Metrics.merge (Metrics.snapshot a) (Metrics.snapshot c) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind clash accepted");
  check Alcotest.int "merge_all []" 0 (List.length (Metrics.merge_all []))

let test_merge_into () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:2 a "c";
  Metrics.incr ~by:5 b "c";
  Metrics.observe b "h" 4.0;
  Metrics.merge_into a (Metrics.snapshot b);
  check Alcotest.int "counter folded" 7 (Metrics.counter a "c");
  match Metrics.histogram a "h" with
  | Some s -> check Alcotest.int "histogram folded" 1 (Stats.count s)
  | None -> Alcotest.fail "histogram not folded"

let test_ambient () =
  check Alcotest.bool "unset by default" true (Metrics.ambient () = None);
  let m = Metrics.create () in
  Metrics.set_ambient (Some m);
  check Alcotest.bool "resolve falls back" true
    (match Metrics.resolve None with Some x -> x == m | None -> false);
  let o = Metrics.create () in
  check Alcotest.bool "explicit wins" true
    (match Metrics.resolve (Some o) with Some x -> x == o | None -> false);
  Metrics.set_ambient None;
  check Alcotest.bool "resolve None when unset" true
    (Metrics.resolve None = None)

(* The tentpole law: recording a workload split across k registries and
   merging the snapshots equals recording everything into one registry.
   Ops are counter increments and histogram observations over a small
   name pool. *)
let prop_merge_equals_single =
  let op =
    QCheck.(
      pair (int_range 0 3)
        (pair bool (float_range (-100.) 100.)))
  in
  prop ~count:150 "merged shards = single registry"
    QCheck.(pair (int_range 1 5) (small_list op))
    (fun (shards, ops) ->
       let single = Metrics.create () in
       let parts = Array.init shards (fun _ -> Metrics.create ()) in
       List.iteri
         (fun i (name_i, (is_counter, v)) ->
            let part = parts.(i mod shards) in
            if is_counter then begin
              let name = Printf.sprintf "c%d" name_i in
              let by = int_of_float v in
              Metrics.incr ~by single name;
              Metrics.incr ~by part name
            end
            else begin
              let name = Printf.sprintf "h%d" name_i in
              Metrics.observe single name v;
              Metrics.observe part name v
            end)
         ops;
       let merged =
         Metrics.merge_all
           (Array.to_list (Array.map Metrics.snapshot parts))
       in
       let expect = Metrics.snapshot single in
       List.length merged = List.length expect
       && List.for_all2
            (fun (n1, v1) (n2, v2) ->
               n1 = n2
               &&
               match (v1, v2) with
               | Metrics.Counter a, Metrics.Counter b -> a = b
               | Metrics.Histogram a, Metrics.Histogram b ->
                 Stats.count a = Stats.count b
                 && abs_float (Stats.mean a -. Stats.mean b) < 1e-6
                 && abs_float (Stats.m2 a -. Stats.m2 b) < 1e-3
                 && Stats.min a = Stats.min b
                 && Stats.max a = Stats.max b
               | _ -> false)
            merged expect)

(* ------------------------------------------------------------------ *)
(* exporters *)

let mixed_snapshot () =
  let m = Metrics.create () in
  Metrics.incr ~by:42 m "engine.served";
  Metrics.incr ~by:(-3) m "debt";
  Metrics.set m "load.factor" 1.0625;
  List.iter (Metrics.observe m "lat.us") [ 0.125; 3.5; 17.75; 2.25 ];
  Metrics.snapshot m

let snapshot_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) ->
          n1 = n2
          &&
          match (v1, v2) with
          | Metrics.Counter x, Metrics.Counter y -> x = y
          | Metrics.Gauge x, Metrics.Gauge y -> x = y
          | Metrics.Histogram x, Metrics.Histogram y ->
            Stats.count x = Stats.count y
            && Stats.mean x = Stats.mean y
            && Stats.m2 x = Stats.m2 y
            && Stats.min x = Stats.min y
            && Stats.max x = Stats.max y
          | _ -> false)
       a b

let test_csv_roundtrip () =
  let snap = mixed_snapshot () in
  check Alcotest.bool "csv inverts exactly" true
    (snapshot_equal snap (Export.of_csv (Export.to_csv snap)))

let test_json_roundtrip () =
  let snap = mixed_snapshot () in
  check Alcotest.bool "json inverts exactly" true
    (snapshot_equal snap (Export.of_json (Export.to_json snap)))

let test_export_malformed () =
  (match Export.of_csv "name,kind,value\nx,counter" with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "truncated csv accepted");
  match Export.of_json "{\"name\":\"x\"" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated json accepted"

let test_format_of_string () =
  check Alcotest.bool "text" true (Export.format_of_string "text" = Ok Export.Text);
  check Alcotest.bool "csv" true (Export.format_of_string "csv" = Ok Export.Csv);
  check Alcotest.bool "json" true (Export.format_of_string "json" = Ok Export.Json);
  match Export.format_of_string "yaml" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "yaml accepted"

(* random finite snapshots survive both round-trips bit-exactly (%.17g
   is lossless for doubles) *)
let prop_export_roundtrip =
  let fin = QCheck.float_range (-1e9) 1e9 in
  prop ~count:100 "csv and json round-trip"
    QCheck.(
      triple (int_range (-1000) 1000) fin
        (list_of_size Gen.(int_range 1 8) fin))
    (fun (c, g, obs) ->
       let m = Metrics.create () in
       Metrics.incr ~by:c m "c";
       Metrics.set m "g" g;
       List.iter (Metrics.observe m "h") obs;
       let snap = Metrics.snapshot m in
       snapshot_equal snap (Export.of_csv (Export.to_csv snap))
       && snapshot_equal snap (Export.of_json (Export.to_json snap)))

let test_table_render () =
  (* the text table renders one row per metric and never raises *)
  let s = Prelude.Texttable.render (Export.table (mixed_snapshot ())) in
  List.iter
    (fun needle ->
       check Alcotest.bool (needle ^ " present") true
         (let n = String.length needle and h = String.length s in
          let rec at i = i + n <= h && (String.sub s i n = needle || at (i + 1)) in
          at 0))
    [ "engine.served"; "load.factor"; "lat.us"; "counter"; "gauge"; "histogram" ]

(* ------------------------------------------------------------------ *)
(* spans *)

let test_span () =
  let m = Metrics.create () in
  let x = Obs.Span.time m "t" (fun () -> 41 + 1) in
  check Alcotest.int "value through" 42 x;
  (match Metrics.histogram m "t" with
   | Some s ->
     check Alcotest.int "one observation" 1 (Stats.count s);
     check Alcotest.bool "non-negative" true (Stats.min s >= 0.0)
   | None -> Alcotest.fail "span not recorded");
  (* time observes even when the thunk raises *)
  (match Obs.Span.time m "t" (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception swallowed");
  check Alcotest.int "raising run recorded" 2
    (match Metrics.histogram m "t" with
     | Some s -> Stats.count s
     | None -> 0);
  Obs.Span.record None "u" (Obs.Span.start ())

(* ------------------------------------------------------------------ *)
(* parmap adapter *)

let test_instrument_parmap () =
  let m = Metrics.create () in
  let ys =
    Obs.Instrument.parmap_map ~metrics:m ~domains:3
      (fun x -> x * 2)
      (List.init 10 Fun.id)
  in
  check Alcotest.(list int) "map still maps" (List.init 10 (fun i -> 2 * i)) ys;
  check Alcotest.int "one map" 1 (Metrics.counter m "parmap.maps");
  check Alcotest.int "all tasks" 10 (Metrics.counter m "parmap.tasks");
  check (Alcotest.float 0.0) "domains gauge" 3.0
    (Metrics.gauge m "parmap.last_domains");
  match Metrics.histogram m "parmap.tasks_per_domain" with
  | Some s -> check Alcotest.int "one sample per domain" 3 (Stats.count s)
  | None -> Alcotest.fail "tasks_per_domain missing"

(* ------------------------------------------------------------------ *)
(* engine + streaming optimum hooks *)

let small_instance () =
  let rng = Prelude.Rng.create ~seed:5 in
  Adversary.Random_workload.make ~rng ~n:4 ~d:3 ~rounds:30 ~load:1.2 ()

let test_engine_metrics_consistent () =
  let m = Metrics.create () in
  let inst = small_instance () in
  let o = Sched.Engine.run ~metrics:m inst (Strategies.Global.balance ()) in
  check Alcotest.int "rounds = horizon" inst.Sched.Instance.horizon
    (Metrics.counter m "engine.rounds");
  check Alcotest.int "arrivals = requests"
    (Sched.Instance.n_requests inst)
    (Metrics.counter m "engine.arrivals");
  check Alcotest.int "served matches outcome" o.Sched.Outcome.served
    (Metrics.counter m "engine.served");
  check Alcotest.int "wasted matches outcome" o.Sched.Outcome.wasted
    (Metrics.counter m "engine.wasted");
  match Metrics.histogram m "engine.step_us" with
  | Some s ->
    check Alcotest.int "one step sample per round" inst.Sched.Instance.horizon
      (Stats.count s)
  | None -> Alcotest.fail "step latency missing"

let test_opt_stream_metrics_consistent () =
  let m = Metrics.create () in
  let inst = small_instance () in
  let v = Offline.Opt_stream.value ~metrics:m inst in
  check Alcotest.int "instrumentation does not change the optimum"
    (Offline.Opt.value inst) v;
  check Alcotest.int "augmentations = optimum" v
    (Metrics.counter m "opt_stream.augmentations");
  check Alcotest.int "arrivals = requests"
    (Sched.Instance.n_requests inst)
    (Metrics.counter m "opt_stream.arrivals");
  check Alcotest.bool "searches cover augmentations" true
    (Metrics.counter m "opt_stream.searches" >= v);
  check Alcotest.bool "warm hits bounded by successes" true
    (Metrics.counter m "opt_stream.warm_hits" <= v)

let test_ambient_reaches_harness () =
  let m = Metrics.create () in
  Metrics.set_ambient (Some m);
  Fun.protect
    ~finally:(fun () -> Metrics.set_ambient None)
    (fun () ->
       let r =
         Report.Harness.run_instance (small_instance ())
           (Strategies.Global.fix ())
       in
       check Alcotest.int "engine counters reach the ambient registry"
         r.Report.Harness.outcome.Sched.Outcome.served
         (Metrics.counter m "engine.served");
       check Alcotest.bool "opt_stream counters too" true
         (Metrics.counter m "opt_stream.rounds" > 0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "snapshot sorted + isolated" `Quick
            test_snapshot_sorted_and_isolated;
          Alcotest.test_case "merge units" `Quick test_merge_units;
          Alcotest.test_case "merge_into" `Quick test_merge_into;
          Alcotest.test_case "ambient" `Quick test_ambient;
          prop_merge_equals_single;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_export_malformed;
          Alcotest.test_case "format parsing" `Quick test_format_of_string;
          Alcotest.test_case "table render" `Quick test_table_render;
          prop_export_roundtrip;
        ] );
      ( "span",
        [ Alcotest.test_case "timing" `Quick test_span ] );
      ( "instrument",
        [
          Alcotest.test_case "parmap adapter" `Quick test_instrument_parmap;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "engine counters" `Quick
            test_engine_metrics_consistent;
          Alcotest.test_case "opt_stream counters" `Quick
            test_opt_stream_metrics_consistent;
          Alcotest.test_case "ambient reaches harness" `Quick
            test_ambient_reaches_harness;
        ] );
    ]
