(* The job-runner battery: determinism across domain counts, fault
   isolation (with retries), and cache robustness under truncation,
   corruption, version skew and concurrent writers — plus the golden
   snapshot of the quick Table 1 summary. *)

module Jobs = Report.Jobs

(* ------------------------------------------------------------------ *)
(* scratch cache directories *)

let dir_counter = ref 0

let fresh_cache_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reqsched-test-jobcache-%d-%d" (Unix.getpid ())
         !dir_counter)
  in
  (* a stale directory from a killed earlier run must not leak entries
     into this one *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let remove_cache_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let with_cache_dir f =
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> remove_cache_dir dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* value serialisation: bit-exact round trip *)

let rec equal_value a b =
  match (a, b) with
  | Jobs.Int x, Jobs.Int y -> x = y
  | Jobs.Bool x, Jobs.Bool y -> x = y
  | Jobs.Str x, Jobs.Str y -> x = y
  | Jobs.Rat x, Jobs.Rat y -> Prelude.Rat.equal x y
  | Jobs.Float x, Jobs.Float y ->
    (* [%h] keeps every finite/infinite bit pattern; nan payloads
       collapse to one canonical nan, which is still nan *)
    (Float.is_nan x && Float.is_nan y)
    || Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Jobs.List xs, Jobs.List ys ->
    List.length xs = List.length ys && List.for_all2 equal_value xs ys
  | _ -> false

let value_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [
        map (fun i -> Jobs.Int i) int;
        map (fun f -> Jobs.Float f) float;
        map (fun b -> Jobs.Bool b) bool;
        map2
          (fun n d -> Jobs.Rat (Prelude.Rat.make n (max 1 d)))
          (int_range (-1000) 1000) (int_range 1 1000);
        map (fun s -> Jobs.Str s) (string_size (int_bound 20));
        oneofl
          [
            Jobs.Float nan;
            Jobs.Float infinity;
            Jobs.Float neg_infinity;
            Jobs.Float (-0.0);
            Jobs.Float 0x1.fffffffffffffp+1023;
            Jobs.Float 0x0.0000000000001p-1022;
            Jobs.Str "colon:and space and \n newline \196\159";
            Jobs.Str "";
          ];
      ]
  in
  sized @@ fix (fun self -> function
    | 0 -> base
    | n ->
      frequency
        [
          (3, base);
          ( 1,
            map
              (fun vs -> Jobs.List vs)
              (list_size (int_bound 4) (self (n / 2))) );
        ])

let value_arb =
  QCheck.make value_gen ~print:(fun v -> Jobs.value_to_string v)

let prop_roundtrip =
  QCheck.Test.make ~name:"value round-trips bit-exactly" ~count:500 value_arb
    (fun v ->
       match Jobs.value_of_string (Jobs.value_to_string v) with
       | Ok v' -> equal_value v v'
       | Error _ -> false)

let prop_no_trailing_bytes =
  QCheck.Test.make ~name:"trailing bytes are rejected" ~count:200 value_arb
    (fun v ->
       match Jobs.value_of_string (Jobs.value_to_string v ^ " i 1") with
       | Ok _ -> false
       | Error _ -> true)

let test_of_string_never_raises () =
  List.iter
    (fun s ->
       match Jobs.value_of_string s with
       | Ok _ | Error _ -> ())
    [
      ""; " "; "i"; "i "; "i x"; "f"; "f zz"; "b 2"; "r 1 0"; "r 1";
      "s 5:ab"; "s -1:"; "s 9999999999999999999999:x"; "l 3 i 1"; "l -1";
      "q 7"; "s 2:\\q"; "l 1 l 1 l 1 i"; "r 4611686018427387904 3";
    ]

(* ------------------------------------------------------------------ *)
(* determinism: any domain count, byte-identical outcomes in order *)

(* a deterministic value mixer: the job's result depends only on its
   index, never on domain, timing or interleaving *)
let mixed_value i =
  let h = (i * 2654435761) land 0x3FFFFFFF in
  Jobs.List
    [
      Jobs.Int h;
      Jobs.Float (Float.of_int h /. 7.0);
      Jobs.Bool (h land 1 = 1);
      Jobs.Rat (Prelude.Rat.make h (1 + (h mod 97)));
      Jobs.Str (Printf.sprintf "job-%d" i);
    ]

let battery_jobs n =
  List.init n (fun i ->
      Jobs.job
        ~name:(Printf.sprintf "case-%d" i)
        ~params:[ ("i", string_of_int i) ]
        (fun ~attempt:_ -> mixed_value i))

let run_battery ~domains n =
  let ctx = Jobs.create ~domains () in
  let outcomes = Jobs.map ctx ~family:"det" (battery_jobs n) in
  List.map
    (function
      | Jobs.Done v -> Jobs.value_to_string v
      | Jobs.Failed f -> "FAILED " ^ f.Jobs.name)
    outcomes

let prop_determinism =
  QCheck.Test.make ~name:"parallel runner is byte-identical to serial"
    ~count:30
    QCheck.(int_range 0 40)
    (fun n ->
       let serial = run_battery ~domains:1 n in
       let two = run_battery ~domains:2 n in
       let many =
         run_battery ~domains:(Prelude.Parmap.recommended_domains ()) n
       in
       serial = two && serial = many)

(* ------------------------------------------------------------------ *)
(* fault isolation *)

exception Boom of int

(* the shape of a strategy factory that blows up at construction time:
   the sweep must complete around it *)
let raising_factory () : unit -> int = failwith "strategy factory raised"

let test_failing_job_is_isolated () =
  let ctx = Jobs.create ~domains:2 () in
  let jobs =
    [
      Jobs.job ~name:"good-1" (fun ~attempt:_ -> Jobs.Int 1);
      Jobs.job ~name:"bad-factory" (fun ~attempt:_ ->
          let f = raising_factory () in
          Jobs.Int (f ()));
      Jobs.job ~name:"good-2" (fun ~attempt:_ -> Jobs.Int 2);
    ]
  in
  match Jobs.map ctx ~family:"fault" jobs with
  | [ a; b; c ] ->
    Alcotest.check Alcotest.int "first survives" 1 (Jobs.int_value a);
    Alcotest.check Alcotest.int "last survives" 2 (Jobs.int_value c);
    (match b with
     | Jobs.Failed f ->
       Alcotest.check Alcotest.string "family recorded" "fault"
         f.Jobs.family;
       Alcotest.check Alcotest.string "name recorded" "bad-factory"
         f.Jobs.name;
       Alcotest.check Alcotest.int "one attempt" 1 f.Jobs.attempts;
       Alcotest.check Alcotest.bool "message mentions the exception" true
         (contains ~needle:"factory" f.Jobs.message)
     | Jobs.Done _ -> Alcotest.fail "raising job reported Done");
    let st = Jobs.stats ctx in
    Alcotest.check Alcotest.int "failed counted" 1 st.Jobs.failed;
    Alcotest.check Alcotest.int "all executed" 3 st.Jobs.executed;
    let report = Jobs.render_failures ctx in
    Alcotest.check Alcotest.bool "failure report names the job" true
      (contains ~needle:"fault/bad-factory" report)
  | _ -> Alcotest.fail "outcome arity"

let test_seed_specific_failure () =
  let ctx = Jobs.create ~domains:2 () in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let outcomes =
    Jobs.map ctx ~family:"fault"
      (List.map
         (fun seed ->
            Jobs.job
              ~name:(Printf.sprintf "seed-%d" seed)
              ~params:[ ("seed", string_of_int seed) ]
              (fun ~attempt:_ ->
                 if seed = 3 then raise (Boom seed) else Jobs.Int (seed * 10)))
         seeds)
  in
  List.iter2
    (fun seed o ->
       match (seed = 3, o) with
       | true, Jobs.Failed f ->
         Alcotest.check Alcotest.int "failing seed attempts" 1 f.Jobs.attempts
       | true, Jobs.Done _ -> Alcotest.fail "seed 3 must fail"
       | false, Jobs.Done _ ->
         Alcotest.check Alcotest.int "value" (seed * 10) (Jobs.int_value o)
       | false, Jobs.Failed _ ->
         Alcotest.fail (Printf.sprintf "seed %d must succeed" seed))
    seeds outcomes;
  Alcotest.check Alcotest.int "exactly one failure" 1
    (List.length (Jobs.failures ctx))

let flaky_job =
  (* deterministic-after-retry: the first attempt raises, the second
     succeeds — the fault model of a transient resource error *)
  Jobs.job ~name:"flaky" (fun ~attempt ->
      if attempt = 0 then failwith "transient" else Jobs.Int 7)

let test_retry_recovers_flaky_job () =
  let no_retry = Jobs.create ~domains:1 () in
  (match Jobs.map no_retry ~family:"fault" [ flaky_job ] with
   | [ Jobs.Failed f ] ->
     Alcotest.check Alcotest.int "attempts without retry" 1 f.Jobs.attempts
   | _ -> Alcotest.fail "without retries the flaky job must fail");
  let retry = Jobs.create ~domains:1 ~retries:1 () in
  (match Jobs.map retry ~family:"fault" [ flaky_job ] with
   | [ o ] -> Alcotest.check Alcotest.int "recovered value" 7 (Jobs.int_value o)
   | _ -> Alcotest.fail "arity");
  let st = Jobs.stats retry in
  Alcotest.check Alcotest.int "retry counted" 1 st.Jobs.retried;
  Alcotest.check Alcotest.int "no failure recorded" 0 st.Jobs.failed

(* ------------------------------------------------------------------ *)
(* the cache *)

let tricky_values =
  [
    Jobs.Float nan;
    Jobs.Float (-0.0);
    Jobs.Float infinity;
    Jobs.Str "line\nbreak:and 2:colons";
    Jobs.List [ Jobs.Rat (Prelude.Rat.make 22 7); Jobs.Bool false ];
    Jobs.Int min_int;
  ]

let tricky_jobs ~poison =
  List.mapi
    (fun i v ->
       Jobs.job
         ~name:(Printf.sprintf "tricky-%d" i)
         (fun ~attempt:_ -> if poison then failwith "recomputed!" else v))
    tricky_values

let cache_path ~dir ~name =
  Filename.concat dir (Jobs.key_digest ~family:"cache" ~name ~params:[] () ^ ".job")

let test_cache_roundtrip_bit_exact () =
  with_cache_dir @@ fun dir ->
  let writer = Jobs.create ~domains:2 ~cache_dir:dir ~resume:true () in
  let first = Jobs.map writer ~family:"cache" (tricky_jobs ~poison:false) in
  Alcotest.check Alcotest.int "first run computes everything"
    (List.length tricky_values)
    (Jobs.stats writer).Jobs.executed;
  (* second ctx: every compute raises, so any value that comes back can
     only have come from the cache — and must be bit-identical *)
  let reader = Jobs.create ~domains:2 ~cache_dir:dir ~resume:true () in
  let second = Jobs.map reader ~family:"cache" (tricky_jobs ~poison:true) in
  let st = Jobs.stats reader in
  Alcotest.check Alcotest.int "all hits" (List.length tricky_values)
    st.Jobs.cache_hits;
  Alcotest.check Alcotest.int "nothing recomputed" 0 st.Jobs.executed;
  Alcotest.check (Alcotest.float 1e-9) "hit rate" 1.0 (Jobs.hit_rate st);
  List.iter2
    (fun a b ->
       match (a, b) with
       | Jobs.Done va, Jobs.Done vb ->
         Alcotest.check Alcotest.bool "bit-exact" true (equal_value va vb);
         Alcotest.check Alcotest.string "byte-exact" (Jobs.value_to_string va)
           (Jobs.value_to_string vb)
       | _ -> Alcotest.fail "cache read failed")
    first second

(* without --resume the cache is written but never read *)
let test_cache_write_without_resume () =
  with_cache_dir @@ fun dir ->
  let ctx = Jobs.create ~domains:1 ~cache_dir:dir () in
  ignore (Jobs.map ctx ~family:"cache" (tricky_jobs ~poison:false));
  Alcotest.check Alcotest.int "no reads" 0 (Jobs.stats ctx).Jobs.cache_hits;
  Alcotest.check Alcotest.bool "entries written" true
    (Array.length (Sys.readdir dir) = List.length tricky_values);
  let again = Jobs.create ~domains:1 ~cache_dir:dir () in
  ignore (Jobs.map again ~family:"cache" (tricky_jobs ~poison:false));
  Alcotest.check Alcotest.int "still no reads" 0
    (Jobs.stats again).Jobs.cache_hits;
  Alcotest.check Alcotest.int "recomputed" (List.length tricky_values)
    (Jobs.stats again).Jobs.executed

let damage_then_recompute ~label damage =
  with_cache_dir @@ fun dir ->
  let seed_job = [ Jobs.job ~name:"victim" (fun ~attempt:_ -> Jobs.Int 42) ] in
  let writer = Jobs.create ~domains:1 ~cache_dir:dir ~resume:true () in
  ignore (Jobs.map writer ~family:"cache" seed_job);
  let path = cache_path ~dir ~name:"victim" in
  Alcotest.check Alcotest.bool (label ^ ": entry exists") true
    (Sys.file_exists path);
  damage path;
  let reader = Jobs.create ~domains:1 ~cache_dir:dir ~resume:true () in
  (match Jobs.map reader ~family:"cache" seed_job with
   | [ o ] ->
     Alcotest.check Alcotest.int (label ^ ": recomputed value") 42
       (Jobs.int_value o)
   | _ -> Alcotest.fail "arity");
  let st = Jobs.stats reader in
  Alcotest.check Alcotest.int (label ^ ": detected as corrupt") 1
    st.Jobs.corrupt;
  Alcotest.check Alcotest.int (label ^ ": recomputed, not crashed") 1
    st.Jobs.executed;
  Alcotest.check Alcotest.int (label ^ ": no hit") 0 st.Jobs.cache_hits;
  (* the recompute repaired the entry *)
  let healed = Jobs.create ~domains:1 ~cache_dir:dir ~resume:true () in
  ignore (Jobs.map healed ~family:"cache" seed_job);
  Alcotest.check Alcotest.int (label ^ ": healed") 1
    (Jobs.stats healed).Jobs.cache_hits

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_cache_truncated () =
  damage_then_recompute ~label:"truncated" (fun path ->
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s / 2)))

let test_cache_corrupted () =
  damage_then_recompute ~label:"corrupted" (fun path ->
      let s = read_file path in
      (* flip the cached integer: the md5 line no longer matches *)
      let s = Bytes.of_string s in
      let at = Bytes.length s - 2 in
      Bytes.set s at (if Bytes.get s at = '2' then '3' else '2');
      write_file path (Bytes.to_string s))

let test_cache_stale_version () =
  damage_then_recompute ~label:"stale version" (fun path ->
      match String.split_on_char '\n' (read_file path) with
      | _version :: rest ->
        write_file path
          (String.concat "\n" ("reqsched-jobcache 999" :: rest))
      | [] -> Alcotest.fail "empty cache file")

let test_cache_empty_file () =
  damage_then_recompute ~label:"empty file" (fun path -> write_file path "")

let test_concurrent_writers_atomic () =
  with_cache_dir @@ fun dir ->
  (* many domains race to publish the same key; each write goes through
     a private tmp file and one rename, so whichever wins, the entry is
     complete and parseable — and no tmp litter survives *)
  let n = 24 in
  let same_key =
    List.init n (fun _ ->
        Jobs.job ~name:"contended" (fun ~attempt:_ ->
            Jobs.Str (String.make 4096 'x')))
  in
  let ctx =
    Jobs.create
      ~domains:(Prelude.Parmap.recommended_domains ())
      ~cache_dir:dir ()
  in
  ignore (Jobs.map ctx ~family:"cache" same_key);
  let entries = Sys.readdir dir in
  Alcotest.check Alcotest.int "exactly one published entry" 1
    (Array.length entries);
  Alcotest.check Alcotest.bool "no tmp litter" true
    (Array.for_all
       (fun f -> not (String.length f >= 4 && String.sub f 0 4 = ".tmp"))
       entries);
  let reader = Jobs.create ~domains:1 ~cache_dir:dir ~resume:true () in
  match
    Jobs.map reader ~family:"cache"
      [
        Jobs.job ~name:"contended" (fun ~attempt:_ ->
            failwith "should have hit");
      ]
  with
  | [ o ] ->
    (match o with
     | Jobs.Done (Jobs.Str s) ->
       Alcotest.check Alcotest.int "entry intact" 4096 (String.length s)
     | _ -> Alcotest.fail "contended entry unreadable")
  | _ -> Alcotest.fail "arity"

(* a failed job leaves no cache entry: resuming retries it *)
let test_failure_not_cached () =
  with_cache_dir @@ fun dir ->
  let ctx = Jobs.create ~domains:1 ~cache_dir:dir ~resume:true () in
  (match
     Jobs.map ctx ~family:"cache"
       [ Jobs.job ~name:"always-fails" (fun ~attempt:_ -> failwith "no") ]
   with
   | [ Jobs.Failed _ ] -> ()
   | _ -> Alcotest.fail "must fail");
  Alcotest.check Alcotest.int "no entry written" 0
    (Array.length (Sys.readdir dir));
  let again = Jobs.create ~domains:1 ~cache_dir:dir ~resume:true () in
  match
    Jobs.map again ~family:"cache"
      [ Jobs.job ~name:"always-fails" (fun ~attempt:_ -> Jobs.Int 5) ]
  with
  | [ o ] ->
    Alcotest.check Alcotest.int "resume reruns the failure" 5
      (Jobs.int_value o)
  | _ -> Alcotest.fail "arity"

(* the interrupted-battery story: half the battery completes, the run
   dies, the resumed run recomputes only the missing half *)
let test_resume_after_partial_run () =
  with_cache_dir @@ fun dir ->
  let all = battery_jobs 10 in
  let first_half = List.filteri (fun i _ -> i < 5) all in
  let killed = Jobs.create ~domains:2 ~cache_dir:dir ~resume:true () in
  ignore (Jobs.map killed ~family:"det" first_half);
  let resumed = Jobs.create ~domains:2 ~cache_dir:dir ~resume:true () in
  let outcomes = Jobs.map resumed ~family:"det" all in
  let st = Jobs.stats resumed in
  Alcotest.check Alcotest.int "completed jobs are not recomputed" 5
    st.Jobs.cache_hits;
  Alcotest.check Alcotest.int "only the missing half runs" 5 st.Jobs.executed;
  List.iteri
    (fun i o ->
       Alcotest.check Alcotest.bool
         (Printf.sprintf "job %d value survives the resume" i)
         true
         (match o with
          | Jobs.Done v -> equal_value v (mixed_value i)
          | Jobs.Failed _ -> false))
    outcomes

(* ------------------------------------------------------------------ *)
(* accessors and summary *)

let test_accessor_fallbacks () =
  let f =
    Jobs.Failed
      {
        Jobs.family = "x"; name = "y"; attempts = 1; message = "m";
        backtrace = "";
      }
  in
  Alcotest.check Alcotest.bool "float nan" true (Float.is_nan (Jobs.float_value f));
  Alcotest.check Alcotest.int "int min" min_int (Jobs.int_value f);
  Alcotest.check Alcotest.bool "bool false" false (Jobs.bool_value f);
  Alcotest.check Alcotest.bool "rat zero" true
    (Prelude.Rat.equal (Jobs.rat_value f) (Prelude.Rat.make 0 1));
  Alcotest.check Alcotest.string "cell FAILED" "FAILED"
    (Jobs.cell f (fun _ -> "?"));
  (match Jobs.nth f 0 with
   | Jobs.Failed _ -> ()
   | Jobs.Done _ -> Alcotest.fail "nth of failure");
  (match Jobs.nth (Jobs.Done (Jobs.Int 3)) 0 with
   | Jobs.Failed _ -> ()
   | Jobs.Done _ -> Alcotest.fail "nth of non-list");
  match Jobs.nth (Jobs.Done (Jobs.List [ Jobs.Int 8 ])) 0 with
  | Jobs.Done (Jobs.Int 8) -> ()
  | _ -> Alcotest.fail "nth projection"

let test_summary_deterministic () =
  let run () =
    let ctx = Jobs.create ~domains:2 () in
    ignore (Jobs.map ctx ~family:"det" (battery_jobs 6));
    Jobs.summary ctx
  in
  let a = run () and b = run () in
  Alcotest.check Alcotest.string "summary has no wall-clock content" a b;
  Alcotest.check Alcotest.string "summary shape"
    "jobs: total=6 executed=6 cache-hits=0 corrupt=0 failed=0 retried=0 \
     hit-rate=0.0%"
    a

(* ------------------------------------------------------------------ *)
(* golden snapshot: the quick Table 1 summary *)

let golden_path () =
  (* cwd is test/ under `dune runtest` (the dep is copied next to the
     executable) but the project root under a bare `dune exec` *)
  List.find_opt Sys.file_exists
    [ "golden_table1_quick.txt"; Filename.concat "test" "golden_table1_quick.txt" ]

let test_golden_table1_quick () =
  let expected =
    match golden_path () with
    | Some p -> read_file p
    | None -> Alcotest.fail "golden_table1_quick.txt not found"
  in
  let e =
    Report.Experiments.table1_summary ~ctx:(Jobs.local ()) ~quick:true
  in
  let got = Report.Experiments.render e in
  if got <> expected then
    Alcotest.failf
      "Table 1 quick summary drifted from test/golden_table1_quick.txt.\n\
       If the change is intended, regenerate with:\n\
      \  dune exec bin/reqsched.exe -- exp T1.summary --quick | sed \
       '/^jobs:/,$d' > test/golden_table1_quick.txt\n\
       --- expected ---\n%s--- got ---\n%s"
      expected got

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "jobs" ~and_exit:true
    [
      ( "serialisation",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_no_trailing_bytes;
          Alcotest.test_case "malformed input never raises" `Quick
            test_of_string_never_raises;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_determinism ] );
      ( "fault isolation",
        [
          Alcotest.test_case "raising factory is isolated" `Quick
            test_failing_job_is_isolated;
          Alcotest.test_case "seed-specific failure" `Quick
            test_seed_specific_failure;
          Alcotest.test_case "retry recovers flaky job" `Quick
            test_retry_recovers_flaky_job;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round trip bit-exact" `Quick
            test_cache_roundtrip_bit_exact;
          Alcotest.test_case "write without resume" `Quick
            test_cache_write_without_resume;
          Alcotest.test_case "truncated entry" `Quick test_cache_truncated;
          Alcotest.test_case "corrupted entry" `Quick test_cache_corrupted;
          Alcotest.test_case "stale version" `Quick test_cache_stale_version;
          Alcotest.test_case "empty file" `Quick test_cache_empty_file;
          Alcotest.test_case "concurrent writers" `Quick
            test_concurrent_writers_atomic;
          Alcotest.test_case "failures are not cached" `Quick
            test_failure_not_cached;
          Alcotest.test_case "resume after partial run" `Quick
            test_resume_after_partial_run;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "accessor fallbacks" `Quick
            test_accessor_fallbacks;
          Alcotest.test_case "summary deterministic" `Quick
            test_summary_deterministic;
        ] );
      ( "golden",
        [
          Alcotest.test_case "table 1 quick snapshot" `Slow
            test_golden_table1_quick;
        ] );
    ]
