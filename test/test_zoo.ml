(* Workload zoo: generator properties, streaming-vs-batch SLO scoring
   differential, and the golden quick-tier summary snapshot.

   The zoo generators promise three things the properties here pin:
   byte-identical regeneration from the same seed (the cache contract),
   codec-valid instances (so any zoo instance can travel the rsp/1 wire
   format and replay), and a load knob that is monotone in the emitted
   request count (so sweeps over load are meaningful). *)

module Zoo = Workload.Zoo
module Slo = Analysis.Slo
module Codec = Sched.Codec
module Instance = Sched.Instance
module Engine = Sched.Engine
module Jobs = Report.Jobs
module Registry = Report.Registry

(* ------------------------------------------------------------------ *)
(* shared generators *)

let params_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* d = int_range 1 5 in
    let* rounds = int_range 1 40 in
    let* load = float_range 0.0 2.5 in
    let* seed = int_range 0 10_000 in
    return (n, d, rounds, load, seed))

let params_print (n, d, rounds, load, seed) =
  Printf.sprintf "n=%d d=%d rounds=%d load=%h seed=%d" n d rounds load seed

let params_arb = QCheck.make ~print:params_print params_gen

let gen_family (f : Zoo.family) (n, d, rounds, load, seed) =
  f.Zoo.generate ~n ~d ~rounds ~load ~seed

(* ------------------------------------------------------------------ *)
(* property: same seed => byte-identical instance *)

let prop_deterministic (f : Zoo.family) =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "%s: same seed regenerates byte-identically" f.key)
    params_arb (fun p ->
      let a = Codec.to_string (gen_family f p) in
      let b = Codec.to_string (gen_family f p) in
      String.equal a b)

(* ------------------------------------------------------------------ *)
(* property: every instance survives the codec round-trip, and every
   request it carries is well-formed for its window *)

let prop_codec_valid (f : Zoo.family) =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "%s: codec round-trip and request validity" f.key)
    params_arb (fun ((n, _, rounds, _, _) as p) ->
      let inst = gen_family f p in
      let s = Codec.to_string inst in
      (match Codec.of_string s with
      | Error m -> QCheck.Test.fail_reportf "codec rejected own output: %s" m
      | Ok inst' ->
          if not (String.equal (Codec.to_string inst') s) then
            QCheck.Test.fail_report "round-trip not byte-identical");
      (* arrivals all lie inside [0, rounds): summing the per-round
         arrival arrays must account for every request exactly once *)
      let seen = ref 0 in
      for r = 0 to rounds - 1 do
        Array.iter
          (fun (req : Sched.Request.t) ->
            if req.arrival <> r then
              QCheck.Test.fail_reportf "request %d filed under round %d"
                req.id r;
            if req.deadline < 1 then
              QCheck.Test.fail_reportf "request %d: deadline %d < 1" req.id
                req.deadline;
            Array.iter
              (fun a ->
                if a < 0 || a >= n then
                  QCheck.Test.fail_reportf
                    "request %d: resource %d outside [0,%d)" req.id a n)
              req.alternatives;
            incr seen)
          (Instance.arrivals_at inst r)
      done;
      !seen = Instance.n_requests inst)

(* ------------------------------------------------------------------ *)
(* property: the load knob is monotone in the emitted request count *)

let prop_load_monotone (f : Zoo.family) =
  QCheck.Test.make ~count:80
    ~name:(Printf.sprintf "%s: request count monotone in load" f.key)
    (QCheck.make
       ~print:(fun (p, dl) ->
         Printf.sprintf "%s delta=%h" (params_print p) dl)
       QCheck.Gen.(
         let* p = params_gen in
         let* delta = float_range 0.0 1.5 in
         return (p, delta)))
    (fun ((n, d, rounds, load, seed), delta) ->
      let lo = Instance.n_requests (gen_family f (n, d, rounds, load, seed)) in
      let hi =
        Instance.n_requests (gen_family f (n, d, rounds, load +. delta, seed))
      in
      lo <= hi)

(* ------------------------------------------------------------------ *)
(* differential: streaming Slo scores == scores recomputed from the
   full outcome log, bit-exact (no tolerances) *)

let feq a b = (Float.is_nan a && Float.is_nan b) || Float.equal a b

let scores_equal (a : Slo.scores) (b : Slo.scores) =
  a.submitted = b.submitted && a.served = b.served && a.expired = b.expired
  && a.rounds = b.rounds
  && feq a.violation_rate b.violation_rate
  && feq a.throughput b.throughput
  && feq a.antt b.antt
  && feq a.max_delay_factor b.max_delay_factor
  && a.machines_needed = b.machines_needed

let pp_scores_line (s : Slo.scores) =
  Printf.sprintf
    "sub=%d served=%d expired=%d rounds=%d viol=%h thr=%h antt=%h maxdf=%h \
     m=%d"
    s.submitted s.served s.expired s.rounds s.violation_rate s.throughput
    s.antt s.max_delay_factor s.machines_needed

let factory_of_name name =
  match Registry.factory_of_name ~seed:1 name with
  | Ok f -> f
  | Error m -> Alcotest.fail m

let check_differential ~what inst strategy =
  let streamed = Slo.score_stream inst (factory_of_name strategy) in
  let batch = Slo.of_outcome (Engine.run inst (factory_of_name strategy)) in
  if not (scores_equal streamed.scores batch) then
    Alcotest.failf "%s x %s: streaming != batch\nstream: %s\nbatch:  %s" what
      strategy
      (pp_scores_line streamed.scores)
      (pp_scores_line batch)

(* the deterministic strategies the zoo sweeps; rotating through them
   spreads the 300 random instances over every implementation *)
let strategies = Report.Zoo.strategies

let test_differential_random () =
  let seeds = 60 in
  let count = ref 0 in
  for seed = 0 to seeds - 1 do
    List.iter
      (fun (f : Zoo.family) ->
        let n = 2 + (seed mod 5) in
        let d = 1 + (seed mod 3) in
        let rounds = 8 + (seed mod 7) in
        let load = 0.4 +. (0.2 *. float_of_int (seed mod 10)) in
        let inst = f.generate ~n ~d ~rounds ~load ~seed in
        let strategy =
          List.nth strategies (seed mod List.length strategies)
        in
        check_differential
          ~what:(Printf.sprintf "%s seed=%d" f.key seed)
          inst strategy;
        incr count)
      Zoo.families
  done;
  Alcotest.(check bool)
    "covered at least 300 random instances" true (!count >= 300)

(* every non-adaptive theorem adversary, each against two strategies
   (thm26 is adaptive: it has no fixed instance to score) *)
let test_differential_adversaries () =
  List.iter
    (fun (name, d) ->
      let inst =
        match
          Registry.instance_of_workload ~name ~n:4 ~d ~rounds:18 ~load:1.0
            ~seed:3
        with
        | Ok i -> i
        | Error m -> Alcotest.failf "%s: %s" name m
      in
      List.iter (check_differential ~what:name inst) [ "fix"; "balance" ])
    (* each adversary has its own divisibility constraint on d:
       thm22 (ell=4) needs 3 | d and 2 | d; thm23 needs d even;
       thm25 needs d = 3x - 1 *)
    [
      ("thm21", 6); ("thm22", 6); ("thm23", 6); ("thm24", 6); ("thm25", 5);
      ("thm37", 6);
    ]

(* ------------------------------------------------------------------ *)
(* golden snapshot: the quick-tier zoo summary *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path () =
  (* cwd is test/ under `dune runtest` (the dep is copied next to the
     executable) but the project root under a bare `dune exec` *)
  List.find_opt Sys.file_exists
    [ "golden_zoo_quick.txt"; Filename.concat "test" "golden_zoo_quick.txt" ]

let render_zoo ctx =
  Report.Experiments.render (Report.Zoo.summary ~ctx ~quick:true)

let test_golden_zoo_quick () =
  let expected =
    match golden_path () with
    | Some p -> read_file p
    | None -> Alcotest.fail "golden_zoo_quick.txt not found"
  in
  let got = render_zoo (Jobs.local ()) in
  if got <> expected then
    Alcotest.failf
      "zoo quick summary drifted from test/golden_zoo_quick.txt.\n\
       If the change is intended, regenerate with:\n\
      \  dune exec bin/reqsched.exe -- zoo --quick | sed '/^jobs:/,$d' > \
       test/golden_zoo_quick.txt\n\
       --- expected ---\n%s--- got ---\n%s"
      expected got

(* serial and parallel runners must render the same bytes *)
let test_jobs_determinism () =
  let serial = render_zoo (Jobs.create ~domains:1 ()) in
  let parallel = render_zoo (Jobs.local ()) in
  Alcotest.(check string) "zoo summary identical across --jobs levels" serial
    parallel

(* ------------------------------------------------------------------ *)

let () =
  let per_family mk = List.map mk Zoo.families in
  Alcotest.run "zoo" ~and_exit:true
    [
      ( "generators",
        List.map QCheck_alcotest.to_alcotest
          (per_family prop_deterministic
          @ per_family prop_codec_valid
          @ per_family prop_load_monotone) );
      ( "slo differential",
        [
          Alcotest.test_case "300 random zoo instances" `Slow
            test_differential_random;
          Alcotest.test_case "theorem adversaries" `Quick
            test_differential_adversaries;
        ] );
      ( "golden",
        [
          Alcotest.test_case "zoo quick snapshot" `Slow test_golden_zoo_quick;
          Alcotest.test_case "serial == parallel rendering" `Slow
            test_jobs_determinism;
        ] );
    ]
